# Developer entry points.  CI runs the same three targets as separate
# jobs (.github/workflows/ci.yml) so lint and test regressions are
# distinguishable at a glance.

PYTHON ?= python
PYTHONPATH := src

.PHONY: lint race test test-sanitize test-trace test-race bench bench-sell serve-bench bench-obs bench-obs-fleet bench-fleet tune tune-smoke check

## Static analysis: the twelve RDL rules over the whole tree, JSON
## mode, non-zero exit on any finding.  See docs/analysis.md.
lint:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro.analysis src tests

## Static race report: only the concurrency rules (RDL009-RDL012) over
## the shipped sources — lock discipline, executor closure escapes,
## lock ordering, double-checked init.
race:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro race --json src

## Tier-1 test suite.
test:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Tier-1 suite with every format constructor validating its own
## structural invariants (the runtime sanitizer's blanket switch).
test-sanitize:
	REPRO_SANITIZE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## Tier-1 suite with the global tracer enabled: observation must never
## change behaviour (docs/observability.md).
test-trace:
	REPRO_TRACE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q

## The threaded subsystems under the runtime lockset sanitizer: every
## tracked shared field touched by two threads must be covered by a
## common lock, asserted per test (tests/conftest.py).
test-race:
	REPRO_RACE=1 PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m pytest -x -q tests/serve tests/parallel tests/obs tests/analysis

## SpMM benchmark suite (writes BENCH_smsv.json); `make bench QUICK=1`
## for the CI smoke variant.
bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench smsv $(if $(QUICK),--quick)

## SELL-C-sigma benchmark suite (writes BENCH_sell.json): scheduled
## reordered layouts vs fixed formats, the (sigma, C) trajectory and
## the bitwise SMO gate.  `make bench-sell QUICK=1` for the CI smoke
## variant.
bench-sell:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench sell $(if $(QUICK),--quick)

## Serving benchmark suite (writes BENCH_serve.json): batched-vs-
## unbatched throughput plus the mid-stream re-schedule demo.
## `make serve-bench QUICK=1` for the CI smoke variant.
serve-bench:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench serve $(if $(QUICK),--smoke)

## Tracing-overhead gate (writes BENCH_obs.json): disabled-mode span
## cost must stay under 2% of one SMSV call, and the no-op singleton
## checks are deterministic.  `make bench-obs QUICK=1` for the CI
## smoke variant (same gate, smaller matrix).
bench-obs:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench obs $(if $(QUICK),--quick)

## Fleet observability gate (writes BENCH_obs.json): traced answers
## bitwise vs untraced, merged timeline covers every worker lane with
## valid cross-process parents, SLO breach + flight dump fire
## deterministically.  `make bench-obs-fleet QUICK=1` for the CI
## smoke variant.
bench-obs-fleet:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench obs --fleet $(if $(QUICK),--smoke)

## Fleet benchmark suite (writes BENCH_fleet.json): multi-worker
## virtual-throughput scaling, zero-copy transport accounting and the
## overload admission bound — all deterministic, so the suite gates.
## `make bench-fleet QUICK=1` for the CI smoke variant.
bench-fleet:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench fleet $(if $(QUICK),--smoke)

## Measured-time knob search over the report suite; winners persist
## to the tuning cache (REPRO_TUNE_CACHE or ~/.cache/repro/tune.json)
## where the scheduler and kernels consult them.
tune:
	PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro tune

## Tuning gate (writes BENCH_tune.json): tuned knobs never slower than
## the analytic defaults on their own measurements, warm-cache format
## decisions deterministic and served from the persisted cache, cold
## buckets falling back to the analytic model unchanged.  The cache is
## pinned to a temp file so the run never touches ~/.cache.
tune-smoke:
	REPRO_TUNE_CACHE=$$(mktemp -d)/tune.json PYTHONPATH=$(PYTHONPATH) $(PYTHON) -m repro bench tune --smoke

## Everything CI gates on.
check: lint race test test-sanitize test-trace test-race
