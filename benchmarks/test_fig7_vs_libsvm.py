"""Figure 7 — speedups of the adaptive system over parallel LIBSVM.

Paper: HPC-SVM (the adaptive system) vs parallel LIBSVM on the same Ivy
Bridge CPUs across the real-world datasets: 1.2-16.5x, 4x on average;
against its own fixed-CSR implementation the adaptive gain is 1.3x on
average (i.e. most of the LIBSVM gap is kernel quality, the rest is
layout).

Regenerated with full SMO training (capped iterations) of AdaptiveSVC
vs the LIBSVM-style baseline on Table V clones, measured wall time.
"""

import time

import pytest

from benchmarks.conftest import print_series
from repro.baselines import FixedFormatSVC, LibSVMStyleSVC
from repro.core import AutoTuner, LayoutScheduler
from repro.svm import AdaptiveSVC

DATASETS = ("adult", "aloi", "mnist", "trefethen", "connect-4", "gisette")
MAX_ITER = 500  # real SMO runs thousands of iterations; 500 keeps the
M_CAP = 800  # probe overhead realistically amortised yet the bench fast


def _adaptive_scheduler() -> LayoutScheduler:
    """Probe-based scheduling with a cheap probe (1 repeat, row
    sample) — the configuration a runtime system would actually use,
    where the decision cost is a small fraction of training."""
    return LayoutScheduler(
        "probe",
        tuner=AutoTuner(probe_rows=512, repeats=1, smsv_per_probe=2),
    )


def _train_seconds(clf, X, y) -> float:
    t0 = time.perf_counter()
    clf.fit(X, y)
    return time.perf_counter() - t0


@pytest.fixture(scope="module")
def speedups():
    from repro.data import load_dataset

    adaptive_vs_libsvm = {}
    adaptive_vs_own_csr = {}
    for name in DATASETS:
        ds = load_dataset(name, seed=0, m_override=M_CAP)
        X = ds.in_format("CSR")
        y = ds.y[: X.shape[0]]
        kw = dict(C=1.0, tol=1e-3, max_iter=MAX_ITER)
        t_lib = _train_seconds(LibSVMStyleSVC("linear", **kw), X, y)
        t_csr = _train_seconds(FixedFormatSVC("CSR", "linear", **kw), X, y)
        t_ada = _train_seconds(
            AdaptiveSVC("linear", scheduler=_adaptive_scheduler(), **kw),
            X,
            y,
        )
        adaptive_vs_libsvm[name] = t_lib / t_ada
        adaptive_vs_own_csr[name] = t_csr / t_ada
    return adaptive_vs_libsvm, adaptive_vs_own_csr


def test_fig7_regenerate(speedups, benchmark, record_rows):
    vs_libsvm, vs_csr = speedups

    from repro.data import load_dataset

    ds = load_dataset("adult", seed=0, m_override=300)
    X = ds.in_format("CSR")
    y = ds.y[:300]
    benchmark.pedantic(
        lambda: AdaptiveSVC(
            "linear", C=1.0, max_iter=30, scheduler=_adaptive_scheduler()
        ).fit(X, y),
        rounds=3,
        iterations=1,
    )

    rows = [
        f"{name:12s} adaptive-over-LIBSVM {vs_libsvm[name]:6.2f}x   "
        f"adaptive-over-own-CSR {vs_csr[name]:6.2f}x"
        for name in DATASETS
    ]
    geo = 1.0
    for v in vs_libsvm.values():
        geo *= v
    geo **= 1.0 / len(vs_libsvm)
    rows.append(f"{'geomean':12s} adaptive-over-LIBSVM {geo:6.2f}x")
    print_series("Fig. 7: adaptive vs parallel LIBSVM (measured)", "", rows)
    record_rows("fig7_vs_libsvm", vs_libsvm)
    record_rows("fig7_vs_own_csr", vs_csr)

    # Shape: adaptive beats the LIBSVM-style baseline everywhere, and
    # the average gain over the baseline exceeds the gain over the
    # own-CSR implementation (kernel quality + layout > layout alone).
    assert all(v > 1.0 for v in vs_libsvm.values())
    mean_lib = sum(vs_libsvm.values()) / len(vs_libsvm)
    mean_csr = sum(vs_csr.values()) / len(vs_csr)
    assert mean_lib > mean_csr
    assert mean_lib > 1.5  # the paper reports 4x on average
