"""Figure 4 — COO-over-CSR speedup grows with vdim.

Paper: "the speedup of COO over CSR is increasing as vdim is growing"
because irregular row lengths under-utilise fixed-width SIMD in CSR
while COO's flat element stream is immune.

NumPy's own CSR kernel is lane-oblivious, so the lane effect is
regenerated with the SIMD vector-machine model (exact per-group lane
accounting; see DESIGN.md substitution table); the measured NumPy
times are printed alongside as the substrate reference.  Asserted
shape: the modelled COO/CSR speedup is monotone increasing in vdim and
crosses 1.0 (CSR wins at low vdim / aloi, COO wins at high vdim /
mnist — the paper's Table VI selections).
"""

import pytest

from benchmarks.conftest import measure_smsv_seconds, print_series
from repro.data.synthetic import matrix_with_vdim
from repro.formats import COOMatrix, CSRMatrix
from repro.hardware import VectorMachine, get_machine

M, N, ADIM = 2048, 4096, 40
VDIM_SWEEP = (0.0, 25.0, 100.0, 400.0, 900.0, 1600.0)


def _pair(vdim: float):
    rows, cols, vals, shape = matrix_with_vdim(
        M, N, adim=ADIM, vdim=vdim, seed=3
    )
    return (
        CSRMatrix.from_coo(rows, cols, vals, shape),
        COOMatrix.from_coo(rows, cols, vals, shape),
    )


@pytest.fixture(scope="module")
def series():
    vm = VectorMachine(get_machine("knc"))  # the paper's Phi, W = 8
    model = {}
    measured = {}
    for vdim in VDIM_SWEEP:
        csr, coo = _pair(vdim)
        model[vdim] = vm.count(csr).seconds / vm.count(coo).seconds
        measured[vdim] = measure_smsv_seconds(csr) / measure_smsv_seconds(coo)
    return model, measured


def test_fig4_regenerate(series, benchmark, record_rows):
    model, measured = series
    csr, _ = _pair(VDIM_SWEEP[-1])
    v = csr.row(0)
    benchmark(lambda: csr.smsv(v))

    rows = [
        f"vdim={vdim:7.0f}   COO-over-CSR (SIMD model) {model[vdim]:6.3f}x"
        f"   (measured NumPy ref {measured[vdim]:6.3f}x)"
        for vdim in VDIM_SWEEP
    ]
    print_series(
        "Fig. 4: COO/CSR speedup vs vdim (adim=40, W=8)", "", rows
    )
    record_rows("fig4_model_speedup", model)

    speedups = [model[v] for v in VDIM_SWEEP]
    assert speedups == sorted(speedups), "speedup must grow with vdim"
    assert speedups[0] < 1.0, "CSR must win at vdim=0 (the aloi side)"
    assert speedups[-1] > 1.0, "COO must win at high vdim (the mnist side)"


def test_fig4_crossover_between_aloi_and_mnist():
    # Table V: aloi vdim=85 (CSR selected), mnist vdim=1594 (COO
    # selected); the model's crossover must sit between them.
    vm = VectorMachine(get_machine("knc"))
    csr_a, coo_a = _pair(85.0)
    csr_m, coo_m = _pair(1594.0)
    assert vm.count(csr_a).seconds < vm.count(coo_a).seconds
    assert vm.count(csr_m).seconds > vm.count(coo_m).seconds
