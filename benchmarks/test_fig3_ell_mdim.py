"""Figure 3 — ELL performance vs maximum row length.

Paper: matrices with M = N = 4096, nnz = 8192 and mdim in
{1, 2, ..., 4096} stored in ELL; higher mdim = more padding = worse
performance (mat2 stores 4096x2, mat4096 stores 4096x4096).  The paper
also observes performance decreasing as vdim increases along the same
sweep.  Baseline: the worst (highest-mdim) case.
"""

import pytest

from benchmarks.conftest import measure_smsv_seconds, print_series
from repro.data.synthetic import matrix_with_mdim
from repro.features import extract_profile
from repro.formats import ELLMatrix
from repro.hardware import VectorMachine, get_machine

M = N = 4096
NNZ = 8192
MEASURED_SWEEP = (2, 8, 32, 128, 512)
MODEL_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def _ell(mdim: int) -> ELLMatrix:
    rows, cols, vals, shape = matrix_with_mdim(M, N, NNZ, mdim, seed=0)
    return ELLMatrix.from_coo(rows, cols, vals, shape)


@pytest.fixture(scope="module")
def measured_times():
    return {md: measure_smsv_seconds(_ell(md)) for md in MEASURED_SWEEP}


def test_fig3_regenerate(measured_times, benchmark, record_rows):
    m = _ell(MEASURED_SWEEP[0])
    v = m.row(1)
    benchmark(lambda: m.smsv(v))

    worst = max(measured_times.values())
    rows = []
    for md in MEASURED_SWEEP:
        p = extract_profile(_ell(md))
        rows.append(
            f"mdim={md:5d}  vdim={p.vdim:10.1f}  measured "
            f"{measured_times[md] * 1e6:9.1f} us  speedup-vs-worst-measured "
            f"{worst / measured_times[md]:7.2f}x"
        )
    vm = VectorMachine(get_machine("ivybridge"))
    model = {md: vm.count(_ell(md)).seconds for md in MODEL_SWEEP}
    mworst = max(model.values())
    rows.append("--- SIMD model, full paper sweep (baseline mdim=4096) ---")
    rows += [
        f"mdim={md:5d}   model speedup {mworst / t:9.2f}x"
        for md, t in model.items()
    ]
    print_series("Fig. 3: ELL speedup vs mdim (M=N=4096, nnz=8192)", "", rows)
    record_rows("fig3_measured_us", {k: v * 1e6 for k, v in measured_times.items()})

    times = [measured_times[md] for md in MEASURED_SWEEP]
    assert times == sorted(times), "higher mdim must be slower"
    assert times[-1] / times[0] > 5
    model_times = [model[md] for md in MODEL_SWEEP]
    assert model_times == sorted(model_times)


def test_fig3_monotone_measured(measured_times):
    times = [measured_times[md] for md in MEASURED_SWEEP]
    assert times == sorted(times), "higher mdim must be slower"
    assert times[-1] / times[0] > 5


def test_fig3_vdim_grows_along_sweep():
    # The paper's secondary observation: the same sweep raises vdim.
    vdims = [extract_profile(_ell(md)).vdim for md in (2, 32, 512)]
    assert vdims == sorted(vdims)


def test_fig3_model_full_range():
    vm = VectorMachine(get_machine("ivybridge"))
    assert vm.count(_ell(4096)).seconds / vm.count(_ell(2)).seconds > 100
