"""Ablation — derived formats (CSC / BCSR) as probe candidates.

Design question: the paper names CSC and BCSR as derivable formats but
never evaluates them.  Do they ever win the SMO probe?  Expected
shape (the OSKI folklore): BCSR wins when the matrix has dense
sub-blocks (its fill ratio is high); CSC never wins the SMO access
pattern (row extraction is a full scan); on generic scattered sparsity
the basic five remain optimal.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.core import AutoTuner
from repro.data.synthetic import uniform_rows_matrix
from repro.formats import format_class
from repro.perf.timers import benchmark as time_fn

CANDIDATES = ["CSR", "COO", "ELL", "BCSR", "CSC"]


def block_sparse_matrix(
    n_blocks_side: int = 48, block: int = 8, occupancy: float = 0.08,
    seed: int = 0,
):
    """A matrix of dense ``block x block`` tiles at sparse positions —
    BCSR's home turf."""
    rng = np.random.default_rng(seed)
    size = n_blocks_side * block
    rows_list, cols_list = [], []
    for bi in range(n_blocks_side):
        cols_occ = rng.random(n_blocks_side) < occupancy
        cols_occ[rng.integers(n_blocks_side)] = True  # no empty rows
        for bj in np.nonzero(cols_occ)[0]:
            r, c = np.meshgrid(
                np.arange(block), np.arange(block), indexing="ij"
            )
            rows_list.append((bi * block + r).ravel())
            cols_list.append((bj * block + c).ravel())
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    values = 0.1 + rng.random(rows.shape[0])
    return rows, cols, values, (size, size)


def _smo_kernel_seconds(matrix, n=6, repeats=3) -> float:
    """Row extraction + SMSV (the SMO pattern), median."""
    rng = np.random.default_rng(1)
    ids = [int(i) for i in rng.integers(0, matrix.shape[0], size=n)]

    def run():
        for i in ids:
            matrix.smsv(matrix.row(i))

    return time_fn(run, repeats=repeats, warmup=1).median / n


@pytest.fixture(scope="module")
def results():
    out = {}
    # workload 1: block-structured (BCSR's case)
    blocky = block_sparse_matrix()
    # workload 2: scattered uniform sparsity (generic case)
    scattered = uniform_rows_matrix(384, 384, 24, seed=0)
    for label, (rows, cols, vals, shape) in (
        ("block-structured", blocky),
        ("scattered", scattered),
    ):
        per = {}
        for fmt in CANDIDATES:
            kwargs = {"block_shape": (8, 8)} if fmt == "BCSR" else {}
            m = format_class(fmt).from_coo(rows, cols, vals, shape, **kwargs)
            per[fmt] = _smo_kernel_seconds(m)
        out[label] = per
    return out


def test_ablation_derived_formats(results, benchmark, record_rows):
    rows, cols, vals, shape = block_sparse_matrix()
    m = format_class("BCSR").from_coo(
        rows, cols, vals, shape, block_shape=(8, 8)
    )
    v = m.row(0)
    benchmark(lambda: m.smsv(v))

    lines = []
    for label, per in results.items():
        best = min(per, key=per.get)
        lines.append(
            f"{label:16s} best={best:5s}  "
            + "  ".join(f"{f}={t * 1e6:8.1f}us" for f, t in per.items())
        )
    print_series("Ablation: derived formats under the SMO probe", "", lines)
    record_rows(
        "ablation_derived",
        {k: {f: t * 1e6 for f, t in v.items()} for k, v in results.items()},
    )

    blocky = results["block-structured"]
    scattered = results["scattered"]
    # BCSR must be competitive on its home turf (within 1.5x of the
    # winner) and CSR must beat CSC everywhere (row-scan cost).
    assert blocky["BCSR"] <= min(blocky.values()) * 1.5
    assert blocky["CSC"] > blocky["CSR"]
    assert scattered["CSC"] > scattered["CSR"]
    # On scattered data plain CSR-class formats win; BCSR pays padding.
    assert min(scattered, key=scattered.get) in ("CSR", "COO", "ELL")
