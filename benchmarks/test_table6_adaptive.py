"""Table VI — effects of the adaptive system.

Paper: for nine datasets, the worst format, the adaptive system's
selection, and the average & max speedup of the selection over the
other formats (1.7x - 16.2x average 6.8x; max up to 39.6x).

Regenerated on the Table V clones with measured SMSV times: for every
dataset, measure all five formats, record the scheduler's pick, and
compute the pick's average speedup over the other four formats and its
max speedup over the worst format.  Asserted shape: the adaptive pick
is never the worst format, its regret vs the measured oracle is small,
and the average-of-averages is materially above 1.
"""

import pytest

from benchmarks.conftest import print_series, smsv_seconds_per_format
from repro.core import LayoutScheduler
from repro.data import load_dataset

DATASETS = (
    "adult",
    "breast_cancer",
    "aloi",
    "gisette",
    "mnist",
    "sector",
    "leukemia",
    "connect-4",
    "trefethen",
)

PAPER_SELECTIONS = {
    "adult": ("DIA", "ELL"),
    "breast_cancer": ("ELL", "CSR"),
    "aloi": ("COO", "CSR"),
    "gisette": ("DIA", "DEN"),
    "mnist": ("ELL", "COO"),
    "sector": ("DEN", "COO"),
    "leukemia": ("ELL", "DEN"),
    "connect-4": ("COO", "DEN"),
    "trefethen": ("DEN", "DIA"),
}


@pytest.fixture(scope="module")
def adaptive_results():
    sched = LayoutScheduler("probe")
    results = {}
    for name in DATASETS:
        ds = load_dataset(name, seed=0)
        times = smsv_seconds_per_format(ds.rows, ds.cols, ds.values, ds.shape)
        pick = sched.decide_from_coo(
            ds.rows, ds.cols, ds.values, ds.shape
        ).fmt
        worst = max(times, key=times.get)
        oracle = min(times, key=times.get)
        others = [t for f, t in times.items() if f != pick]
        avg_speedup = sum(t / times[pick] for t in others) / len(others)
        max_speedup = times[worst] / times[pick]
        regret = times[pick] / times[oracle]
        results[name] = dict(
            pick=pick,
            worst=worst,
            oracle=oracle,
            avg=avg_speedup,
            max=max_speedup,
            regret=regret,
        )
    return results


def test_table6_regenerate(adaptive_results, benchmark, record_rows):
    ds = load_dataset("adult", seed=0)
    sched = LayoutScheduler("probe")
    benchmark.pedantic(
        lambda: LayoutScheduler("probe").decide_from_coo(
            ds.rows, ds.cols, ds.values, ds.shape
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    for name, r in adaptive_results.items():
        pw, ps = PAPER_SELECTIONS[name]
        rows.append(
            f"{name:14s} worst={r['worst']:4s} pick={r['pick']:4s} "
            f"oracle={r['oracle']:4s} avg={r['avg']:6.2f}x "
            f"max={r['max']:6.2f}x regret={r['regret']:5.2f} "
            f"(paper: worst={pw} pick={ps})"
        )
    avgs = [r["avg"] for r in adaptive_results.values()]
    rows.append(
        f"{'average':14s} avg-of-avg={sum(avgs) / len(avgs):6.2f}x "
        f"(paper: 6.8x)"
    )
    print_series("Table VI: adaptive system effects (measured)", "", rows)
    record_rows(
        "table6",
        {
            k: {kk: vv for kk, vv in v.items()}
            for k, v in adaptive_results.items()
        },
    )

    for name, r in adaptive_results.items():
        # The adaptive pick is never the worst format...
        assert r["pick"] != r["worst"], name
        # ...and is within 2.2x of the measured oracle (probing on a
        # row sample of a skewed matrix can miss narrowly).
        assert r["regret"] < 2.2, (name, r)
    # Material average gain over non-adaptive choices.
    assert sum(avgs) / len(avgs) > 2.0


def test_table6_adaptive_beats_every_fixed_policy(adaptive_results):
    # The headline argument against LIBSVM/GPUSVM: any *fixed* format
    # loses to the adaptive picks in aggregate (geomean across
    # datasets of time ratios > 1 for every fixed policy).
    from repro.formats import FORMAT_NAMES

    sched_times = {}
    for name in DATASETS:
        ds = load_dataset(name, seed=0)
        sched_times[name] = smsv_seconds_per_format(
            ds.rows, ds.cols, ds.values, ds.shape
        )
    for fixed in FORMAT_NAMES:
        geo = 1.0
        for name, times in sched_times.items():
            pick = adaptive_results[name]["pick"]
            geo *= times[fixed] / times[pick]
        geo **= 1.0 / len(sched_times)
        assert geo >= 1.0, f"fixed {fixed} policy beat the adaptive system"
