"""Figure 6 — price per speedup for 0.8 CIFAR-10 accuracy by method.

Paper: $/speedup with the 8-core CPU as the 1.0x baseline; the Tesla
P100 is the most efficient platform, the 8-core CPU the least efficient
among untuned platforms, and tuning improves the DGX's efficiency from
$1,039 to $223 per unit speedup.
"""

import pytest

from benchmarks.conftest import print_series
from repro.hardware.pricing import best_value, format_table
from repro.tuning import reproduce_table7
from repro.tuning.table7 import as_price_points

PAPER_PRICE_PER_SPEEDUP = {
    "Intel Caffe on 8-core CPUs": 1_571,
    "Intel Caffe on KNL": 813,
    "Intel Caffe on Haswell": 493,
    "Nvidia Caffe on Tesla P100 GPU": 196,
    "Nvidia Caffe on DGX station": 1_039,
    "Tune B on DGX station": 963,
    "Tune eta on DGX station": 371,
    "Tune mu on DGX station": 223,
}


@pytest.fixture(scope="module")
def points():
    return as_price_points(reproduce_table7())


def test_fig6_regenerate(points, benchmark, record_rows):
    benchmark(lambda: as_price_points(reproduce_table7()))

    print_series("Fig. 6: price per speedup", "", [format_table(points)])
    record_rows(
        "fig6_price_per_speedup",
        {p.method: p.price_per_speedup for p in points},
    )

    by = {p.method: p for p in points}
    # Every bar within 12% of the paper.
    for method, paper in PAPER_PRICE_PER_SPEEDUP.items():
        assert by[method].price_per_speedup == pytest.approx(
            paper, rel=0.12
        ), method
    # P100 most efficient overall (paper Section V-C).
    assert "P100" in best_value(points).method
    # 8-core CPU least efficient among the five untuned platforms.
    platforms = [p for p in points if "Tune" not in p.method]
    assert "8-core" in max(
        platforms, key=lambda p: p.price_per_speedup
    ).method


def test_fig6_tuning_improves_dgx_efficiency(points):
    by = {p.method: p for p in points}
    assert (
        by["Tune mu on DGX station"].price_per_speedup
        < by["Tune eta on DGX station"].price_per_speedup
        < by["Tune B on DGX station"].price_per_speedup
        < by["Nvidia Caffe on DGX station"].price_per_speedup
    )
