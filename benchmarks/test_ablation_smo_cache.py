"""Ablation — SMO kernel-row cache and incremental f-maintenance.

Design questions (DESIGN.md §5):

1. How much does the LRU kernel-row cache save?  Metric: kernel rows
   actually computed, with and without the cache, on identical runs.
2. What would recomputing f from scratch (Eq. (3)) cost instead of the
   incremental update (Eq. (4))?  Counted in SMSVs: full recompute is
   M SMSVs per iteration vs 2 with the incremental scheme.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.data import load_dataset
from repro.svm.kernels import LinearKernel
from repro.svm.smo import smo_train

M_CAP = 500
MAX_ITER = 300


@pytest.fixture(scope="module")
def runs():
    ds = load_dataset("adult", seed=0, m_override=M_CAP)
    X = ds.in_format("CSR")
    y = ds.y[:M_CAP]
    out = {}
    for cache_rows in (0, 32, 256):
        out[cache_rows] = smo_train(
            X, y, LinearKernel(), C=1.0, max_iter=MAX_ITER,
            cache_rows=cache_rows,
        )
    return out


def test_ablation_row_cache(runs, benchmark, record_rows):
    ds = load_dataset("adult", seed=0, m_override=M_CAP)
    X = ds.in_format("CSR")
    y = ds.y[:M_CAP]
    benchmark.pedantic(
        lambda: smo_train(
            X, y, LinearKernel(), C=1.0, max_iter=50, cache_rows=256
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    for cache_rows, res in runs.items():
        total = res.kernel_rows_computed + res.kernel_rows_cached
        hit = res.kernel_rows_cached / total if total else 0.0
        rows.append(
            f"cache={cache_rows:4d} rows computed={res.kernel_rows_computed:6d} "
            f"hits={res.kernel_rows_cached:6d} hit-rate={hit:5.1%} "
            f"iters={res.iterations}"
        )
    rows.append(
        f"f-maintenance: incremental = 2 SMSVs/iter; full recompute "
        f"(Eq. 3) would be {M_CAP} SMSVs/iter -> {M_CAP / 2:.0f}x more "
        f"kernel work"
    )
    print_series("Ablation: SMO row cache & f maintenance", "", rows)
    record_rows(
        "ablation_cache_rows_computed",
        {k: v.kernel_rows_computed for k, v in runs.items()},
    )

    # Cache monotonically reduces computed rows.
    computed = [runs[c].kernel_rows_computed for c in (0, 32, 256)]
    assert computed == sorted(computed, reverse=True)
    assert runs[256].kernel_rows_computed < runs[0].kernel_rows_computed
    # The mathematics is unchanged by caching.
    y = load_dataset("adult", seed=0, m_override=M_CAP).y[:M_CAP]
    assert runs[256].objective(y) == pytest.approx(
        runs[0].objective(y), rel=1e-9
    )
