"""Ablation — autotuner probe sample size.

Design question (DESIGN.md §5): probing the full matrix is exact but
costs milliseconds; probing a row sample is cheaper but can misrank.
Sweep the sample size and report decision cost vs regret against the
full-matrix oracle decision.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.core import AutoTuner
from repro.data import load_dataset
from repro.formats import FORMAT_NAMES, format_class
from repro.perf.timers import benchmark as time_fn

DATASETS = ("adult", "aloi", "mnist", "trefethen")
SAMPLE_SIZES = (64, 256, 1024, None)  # None = full matrix


def _smo_kernel_seconds_per_format(ds):
    """Oracle times with the same shape the probe measures: row
    extraction + SMSV (SMO's per-selected-sample kernel work)."""
    out = {}
    rng = np.random.default_rng(9)
    for fmt in FORMAT_NAMES:
        m = format_class(fmt).from_coo(ds.rows, ds.cols, ds.values, ds.shape)
        ids = [int(i) for i in rng.integers(0, m.shape[0], size=4)]

        def run():
            for i in ids:
                m.smsv(m.row(i))

        out[fmt] = time_fn(run, repeats=5, warmup=1).median
    return out


@pytest.fixture(scope="module")
def sweep():
    full_times = {}
    for name in DATASETS:
        ds = load_dataset(name, seed=0)
        full_times[name] = _smo_kernel_seconds_per_format(ds)

    out = {}
    for size in SAMPLE_SIZES:
        regrets = []
        cost = 0.0
        for name in DATASETS:
            ds = load_dataset(name, seed=0)
            tuner = AutoTuner(
                probe_rows=size, repeats=2, smsv_per_probe=2, seed=1
            )
            t0 = time.perf_counter()
            pick = tuner.best(ds.rows, ds.cols, ds.values, ds.shape)
            cost += time.perf_counter() - t0
            times = full_times[name]
            regrets.append(times[pick] / min(times.values()))
        geo = 1.0
        for r in regrets:
            geo *= r
        out[size] = dict(
            geomean_regret=geo ** (1.0 / len(regrets)),
            probe_seconds=cost / len(DATASETS),
        )
    return out


def test_ablation_probe_size(sweep, benchmark, record_rows):
    ds = load_dataset("adult", seed=0)
    tuner = AutoTuner(probe_rows=256, repeats=1, smsv_per_probe=1)
    benchmark.pedantic(
        lambda: tuner.best(ds.rows, ds.cols, ds.values, ds.shape),
        rounds=3,
        iterations=1,
    )

    rows = [
        f"probe_rows={str(size):>5s}   geomean regret "
        f"{r['geomean_regret']:5.2f}x   probe cost "
        f"{r['probe_seconds'] * 1e3:8.2f} ms"
        for size, r in sweep.items()
    ]
    print_series("Ablation: probe sample size", "", rows)
    record_rows(
        "ablation_probe",
        {str(k): v["geomean_regret"] for k, v in sweep.items()},
    )

    # Full-matrix probing is (near-)exact; the slack covers timing
    # noise between two independent measurements of the same quantity.
    assert sweep[None]["geomean_regret"] < 1.25
    # Even small samples keep regret bounded — the property that makes
    # cheap runtime probing viable.
    assert sweep[64]["geomean_regret"] < 2.5
    # Larger samples never cost less than smaller ones by much (sanity
    # on the cost accounting).
    assert sweep[None]["probe_seconds"] >= sweep[64]["probe_seconds"] * 0.5
