"""Ablation — scheduler strategy: rules vs cost vs probe vs hybrid.

Design question (DESIGN.md §5): how much of the adaptive gain does each
decision mechanism capture, and what does each cost to run?  Metric:
regret = time(pick) / time(measured oracle) per Table V dataset, plus
the wall cost of making the decision itself.
"""

import time

import pytest

from benchmarks.conftest import print_series, smsv_seconds_per_format
from repro.core import LayoutScheduler
from repro.core.scheduler import STRATEGIES
from repro.data import load_dataset

DATASETS = ("adult", "aloi", "mnist", "sector", "trefethen", "gisette")


@pytest.fixture(scope="module")
def regrets():
    oracle_times = {}
    for name in DATASETS:
        ds = load_dataset(name, seed=0)
        oracle_times[name] = smsv_seconds_per_format(
            ds.rows, ds.cols, ds.values, ds.shape
        )

    table = {}
    for strategy in STRATEGIES:
        per_ds = {}
        decision_cost = 0.0
        for name in DATASETS:
            ds = load_dataset(name, seed=0)
            sched = LayoutScheduler(strategy)
            t0 = time.perf_counter()
            pick = sched.decide_from_coo(
                ds.rows, ds.cols, ds.values, ds.shape
            ).fmt
            decision_cost += time.perf_counter() - t0
            times = oracle_times[name]
            per_ds[name] = times[pick] / min(times.values())
        geo = 1.0
        for r in per_ds.values():
            geo *= r
        geo **= 1.0 / len(per_ds)
        table[strategy] = dict(
            per_ds=per_ds,
            geomean_regret=geo,
            decision_seconds=decision_cost / len(DATASETS),
        )
    return table


def test_ablation_scheduler_strategies(regrets, benchmark, record_rows):
    ds = load_dataset("aloi", seed=0)
    benchmark.pedantic(
        lambda: LayoutScheduler("cost").decide_from_coo(
            ds.rows, ds.cols, ds.values, ds.shape
        ),
        rounds=5,
        iterations=1,
    )

    rows = [
        f"{s:8s} geomean-regret {r['geomean_regret']:5.2f}x   "
        f"decision cost {r['decision_seconds'] * 1e3:8.2f} ms"
        for s, r in regrets.items()
    ]
    print_series("Ablation: scheduler strategy vs oracle", "", rows)
    record_rows(
        "ablation_scheduler",
        {s: r["geomean_regret"] for s, r in regrets.items()},
    )

    # Probing measures the real substrate: lowest regret of all.
    probe = regrets["probe"]["geomean_regret"]
    for s, r in regrets.items():
        assert r["geomean_regret"] >= probe - 1e-9 or s == "probe"
    assert probe < 1.3
    # Model-based strategies must still capture most of the gain
    # (bounded regret), at negligible decision cost.
    for s in ("rules", "cost"):
        assert regrets[s]["geomean_regret"] < 4.0
        assert regrets[s]["decision_seconds"] < regrets["probe"][
            "decision_seconds"
        ]
    # Hybrid sits between cost and probe in regret.
    assert regrets["hybrid"]["geomean_regret"] <= (
        regrets["cost"]["geomean_regret"] + 1e-9
    )
