"""Ablation — SIMD width W and the CSR/COO decision boundary.

Design question (DESIGN.md §5): the Fig. 4 crossover depends on the
machine's vector width.  Sweep W in {4, 8, 16} on the vector-machine
model and locate the vdim at which COO overtakes CSR; wider SIMD should
move the crossover *down* (more lanes idle sooner), which is why the
paper's many-core Phi (W=8 doubles) favours COO more than a narrow SSE
machine would.
"""

import dataclasses

import pytest

from benchmarks.conftest import print_series
from repro.data.synthetic import matrix_with_vdim
from repro.formats import COOMatrix, CSRMatrix
from repro.hardware import VectorMachine, get_machine

VDIMS = (0.0, 25.0, 100.0, 225.0, 400.0, 625.0, 900.0, 1600.0)
M, N, ADIM = 2048, 4096, 40


def _crossover(width: int) -> float:
    base = get_machine("knc")
    machine = dataclasses.replace(base, simd_width=width)
    vm = VectorMachine(machine)
    for vdim in VDIMS:
        rows, cols, vals, shape = matrix_with_vdim(
            M, N, adim=ADIM, vdim=vdim, seed=3
        )
        csr = vm.count(CSRMatrix.from_coo(rows, cols, vals, shape)).seconds
        coo = vm.count(COOMatrix.from_coo(rows, cols, vals, shape)).seconds
        if csr > coo:
            return vdim
    return float("inf")


@pytest.fixture(scope="module")
def crossovers():
    return {w: _crossover(w) for w in (4, 8, 16)}


def test_ablation_simd_width(crossovers, benchmark, record_rows):
    rows_, cols_, vals_, shape_ = matrix_with_vdim(
        M, N, adim=ADIM, vdim=400.0, seed=3
    )
    csr = CSRMatrix.from_coo(rows_, cols_, vals_, shape_)
    vm = VectorMachine(get_machine("knc"))
    benchmark(lambda: vm.count(csr))

    rows = [
        f"W={w:3d}   COO overtakes CSR at vdim ~ {v}"
        for w, v in crossovers.items()
    ]
    print_series("Ablation: SIMD width vs CSR/COO crossover", "", rows)
    record_rows("ablation_simd_crossover", crossovers)

    # Wider SIMD -> earlier crossover (monotone non-increasing).
    vals = [crossovers[w] for w in (4, 8, 16)]
    assert vals[0] >= vals[1] >= vals[2]
    # At the paper's W=8 the crossover lies between aloi (85) and
    # mnist (1594) — the Table VI selections.
    assert 85.0 < crossovers[8] <= 1594.0
