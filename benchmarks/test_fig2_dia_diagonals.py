"""Figure 2 — DIA performance vs number of diagonals.

Paper: matrices with M = N = nnz = 4096 and ndig in {2, 4, ..., 4096},
stored in DIA; the more diagonals, the worse the performance (each
diagonal of the 4096-diagonal matrix holds one element padded with 4095
zeros).  Baseline: the 4096-diagonal (worst) case.

Regenerated twice: measured NumPy DIA SMSV over a feasible sweep, and
the SIMD vector-machine model over the paper's full sweep.  Asserted
shape: speedup over the worst case decreases monotonically with ndig,
with a large total range.
"""

import pytest

from benchmarks.conftest import measure_smsv_seconds, print_series
from repro.data.synthetic import matrix_with_ndig
from repro.formats import DIAMatrix
from repro.hardware import VectorMachine, get_machine

M = N = NNZ = 4096
MEASURED_SWEEP = (2, 8, 32, 128, 512)
MODEL_SWEEP = (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096)


def _dia(ndig: int) -> DIAMatrix:
    rows, cols, vals, shape = matrix_with_ndig(M, N, NNZ, ndig, seed=0)
    return DIAMatrix.from_coo(rows, cols, vals, shape)


@pytest.fixture(scope="module")
def measured_times():
    return {nd: measure_smsv_seconds(_dia(nd)) for nd in MEASURED_SWEEP}


def test_fig2_regenerate(measured_times, benchmark, record_rows):
    m = _dia(MEASURED_SWEEP[0])
    v = m.row(1)
    benchmark(lambda: m.smsv(v))

    worst = max(measured_times.values())
    rows = [
        f"ndig={nd:5d}   measured {t * 1e6:9.1f} us   "
        f"speedup-vs-worst-measured {worst / t:7.2f}x"
        for nd, t in measured_times.items()
    ]
    vm = VectorMachine(get_machine("ivybridge"))
    model = {nd: vm.count(_dia(nd)).seconds for nd in MODEL_SWEEP}
    mworst = max(model.values())
    rows.append("--- SIMD model, full paper sweep (baseline ndig=4096) ---")
    rows += [
        f"ndig={nd:5d}   model speedup {mworst / t:9.2f}x"
        for nd, t in model.items()
    ]
    print_series("Fig. 2: DIA speedup vs ndig (M=N=nnz=4096)", "", rows)
    record_rows("fig2_measured_us", {k: v * 1e6 for k, v in measured_times.items()})
    record_rows("fig2_model_speedup", {k: mworst / v for k, v in model.items()})

    times = [measured_times[nd] for nd in MEASURED_SWEEP]
    assert times == sorted(times), "more diagonals must be slower"
    assert times[-1] / times[0] > 5
    model_times = [model[nd] for nd in MODEL_SWEEP]
    assert model_times == sorted(model_times)


def test_fig2_monotone_measured(measured_times):
    times = [measured_times[nd] for nd in MEASURED_SWEEP]
    assert times == sorted(times), "more diagonals must be slower"
    assert times[-1] / times[0] > 5


def test_fig2_model_full_range():
    vm = VectorMachine(get_machine("ivybridge"))
    t2 = vm.count(_dia(2)).seconds
    t4096 = vm.count(_dia(4096)).seconds
    # One element per diagonal vs 2048 per diagonal: ~3 orders.
    assert t4096 / t2 > 100
