"""Table III — full dataset x format speedup matrix.

Paper: speedups (normalised to the slowest format) for adult / aloi /
mnist / gisette / trefethen; best-over-worst spreads of 3.73x - 14.3x.

Regenerated with measured SMSV times on the Table V clones and, in
parallel, with the SIMD vector-machine model (the paper's Ivy Bridge /
Phi architecture effects); the model matrix is the one compared against
the paper's numbers in EXPERIMENTS.md.
"""

import pytest

from benchmarks.conftest import (
    normalise_to_slowest,
    print_series,
    smsv_seconds_per_format,
)
from repro.data import load_dataset
from repro.formats import FORMAT_NAMES, format_class
from repro.hardware import VectorMachine, get_machine

DATASETS = ("adult", "aloi", "mnist", "gisette", "trefethen")

#: Paper Table III, for the printed side-by-side comparison.
PAPER_TABLE_III = {
    "adult": {"ELL": 14, "CSR": 13, "COO": 8.6, "DEN": 13, "DIA": 1.0},
    "aloi": {"ELL": 2.8, "CSR": 6.6, "COO": 1.0, "DEN": 3.8, "DIA": 1.7},
    "mnist": {"ELL": 1.0, "CSR": 4.8, "COO": 5.1, "DEN": 1.5, "DIA": 1.1},
    "gisette": {"ELL": 1.9, "CSR": 1.9, "COO": 1.2, "DEN": 3.7, "DIA": 1.0},
    "trefethen": {"ELL": 3.1, "CSR": 3.6, "COO": 3.9, "DEN": 1.0, "DIA": 4.1},
}


@pytest.fixture(scope="module")
def matrices():
    measured = {}
    modelled = {}
    vm = VectorMachine(get_machine("ivybridge"))
    for name in DATASETS:
        ds = load_dataset(name, seed=0)
        times = smsv_seconds_per_format(ds.rows, ds.cols, ds.values, ds.shape)
        measured[name] = normalise_to_slowest(times)
        mtimes = {
            f: vm.count(
                format_class(f).from_coo(ds.rows, ds.cols, ds.values, ds.shape)
            ).seconds
            for f in FORMAT_NAMES
        }
        modelled[name] = normalise_to_slowest(mtimes)
    return measured, modelled


def test_table3_regenerate(matrices, benchmark, record_rows):
    measured, modelled = matrices
    ds = load_dataset("mnist", seed=0)
    m = ds.in_format("COO")
    v = m.row(0)
    benchmark(lambda: m.smsv(v))

    header = f"{'dataset':10s} " + " ".join(f"{f:>21s}" for f in FORMAT_NAMES)
    rows = []
    for name in DATASETS:
        cells = []
        for f in FORMAT_NAMES:
            cells.append(
                f"m{measured[name][f]:5.1f}/s{modelled[name][f]:5.1f}"
                f"/p{PAPER_TABLE_III[name][f]:5.1f}"
            )
        rows.append(f"{name:10s} " + " ".join(f"{c:>21s}" for c in cells))
    rows.append("(m = measured NumPy, s = SIMD model, p = paper)")
    print_series("Table III: format speedup matrix", header, rows)
    record_rows("table3_measured", measured)
    record_rows("table3_modelled", modelled)

    # Shape assertions on the SIMD model (the architecture the paper
    # measured): the worst format per dataset agrees with the paper for
    # the structurally-forced cases.
    assert min(modelled["adult"], key=modelled["adult"].get) == "DIA"
    assert min(modelled["trefethen"], key=modelled["trefethen"].get) == "DEN"
    assert min(modelled["gisette"], key=modelled["gisette"].get) == "DIA"
    # mnist: high vdim keeps COO competitive with CSR (paper has them
    # nearly tied at 5.1 vs 4.8; note aloi and mnist have almost equal
    # cv(dim), so no lane-utilisation model can reproduce the paper's
    # *opposite* COO/CSR orderings on both — see EXPERIMENTS.md).
    assert modelled["mnist"]["COO"] > modelled["mnist"]["CSR"] * 0.8
    # ...while both sit far above the worst format.
    assert modelled["mnist"]["COO"] > 3.0
    # spreads are material everywhere (paper: 3.7x - 14.3x; gisette is
    # fully dense, so every format does the same flops there and only
    # storage/index overheads separate them — a smaller but still real
    # spread).
    for name in DATASETS:
        floor = 1.5 if name == "gisette" else 3.0
        assert max(modelled[name].values()) >= floor, name
