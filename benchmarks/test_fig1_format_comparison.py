"""Figure 1 — SMSV performance of all five formats on five datasets.

Paper: adult, aloi, mnist, gisette, trefethen processed by SVM in all
five formats, normalised to the slowest format per dataset; best and
worst formats vary per dataset.

Regenerated here with measured SMSV times on the Table V clones.  The
asserted shape: per dataset the best/worst spread is large (>= 2x), and
the structurally predicted losers lose (DIA is worst-tier on adult,
DEN is worst-tier on trefethen — the paper's two clearest cases).
"""

import pytest

from benchmarks.conftest import (
    normalise_to_slowest,
    print_series,
    smsv_seconds_per_format,
)
from repro.data import load_dataset
from repro.formats import FORMAT_NAMES

DATASETS = ("adult", "aloi", "mnist", "gisette", "trefethen")


@pytest.fixture(scope="module")
def fig1_speedups():
    table = {}
    for name in DATASETS:
        ds = load_dataset(name, seed=0)
        times = smsv_seconds_per_format(ds.rows, ds.cols, ds.values, ds.shape)
        table[name] = normalise_to_slowest(times)
    return table


def test_fig1_regenerate(fig1_speedups, benchmark, record_rows):
    # Benchmark the headline kernel (adult in its best format) so the
    # figure has a calibrated absolute anchor.
    ds = load_dataset("adult", seed=0)
    best_fmt = max(fig1_speedups["adult"], key=fig1_speedups["adult"].get)
    m = ds.in_format(best_fmt)
    v = m.row(0)
    benchmark(lambda: m.smsv(v))

    header = f"{'dataset':12s} " + " ".join(f"{f:>8s}" for f in FORMAT_NAMES)
    rows = []
    for name in DATASETS:
        s = fig1_speedups[name]
        rows.append(
            f"{name:12s} " + " ".join(f"{s[f]:7.2f}x" for f in FORMAT_NAMES)
        )
    print_series("Fig. 1: speedup over slowest format (measured)", header, rows)
    record_rows("fig1_speedups", fig1_speedups)

    # Shape assertions (also run standalone below, kept here so the
    # --benchmark-only pass validates them too).
    for name, s in fig1_speedups.items():
        assert max(s.values()) >= 2.0, f"{name}: no meaningful spread"
    winners = {max(s, key=s.get) for s in fig1_speedups.values()}
    assert len(winners) >= 2, "one format won everywhere"


def test_fig1_best_worst_spread(fig1_speedups):
    # Paper Table III: spreads of 3.7x - 14.3x per dataset.
    for name, s in fig1_speedups.items():
        assert max(s.values()) >= 2.0, f"{name}: no meaningful spread"


def test_fig1_structural_losers_lose(fig1_speedups):
    # adult is scattered-sparse: DIA must be bottom-tier (paper: worst).
    adult = fig1_speedups["adult"]
    assert adult["DIA"] <= sorted(adult.values())[1] + 1e-9
    # trefethen is banded: its diagonal structure must make DIA/ELL the
    # leaders and DEN must not win (paper: DEN worst).
    tref = fig1_speedups["trefethen"]
    assert max(tref, key=tref.get) in ("DIA", "ELL", "CSR")
    assert max(tref.values()) > tref["DEN"]


def test_fig1_best_format_varies(fig1_speedups):
    # The core motivation: no single format wins everywhere.
    winners = {max(s, key=s.get) for s in fig1_speedups.values()}
    assert len(winners) >= 2


def test_fig1_effective_bandwidth_gisette(benchmark):
    # Section III-B quotes measured bandwidth per format on gisette
    # (ELL 25.3 / CSR 63.9 / COO 63.5 / DEN 53.1 / DIA 37.7 GB/s on Ivy
    # Bridge).  Reproduce the measurement methodology: counted traffic
    # (Eq. 7's numerator) divided by wall time, per format.
    import time

    from repro.formats import format_class
    from repro.perf import BandwidthEstimator, OpCounter

    ds = load_dataset("gisette", seed=0)
    mden = ds.in_format("DEN")
    vden = mden.row(0)
    benchmark(lambda: mden.smsv(vden))
    bandwidths = {}
    for fmt in FORMAT_NAMES:
        m = format_class(fmt).from_coo(ds.rows, ds.cols, ds.values, ds.shape)
        v = m.row(0)
        est = BandwidthEstimator()
        for _ in range(3):
            c = OpCounter()
            t0 = time.perf_counter()
            m.smsv(v, counter=c)
            est.record(c, time.perf_counter() - t0)
        bandwidths[fmt] = est.gb_per_s
    print_series(
        "Fig. 1 aside: effective bandwidth on gisette (paper: ELL 25.3 "
        "CSR 63.9 COO 63.5 DEN 53.1 DIA 37.7 GB/s)",
        "",
        [f"  {f}: {bw:6.1f} GB/s" for f, bw in bandwidths.items()],
    )
    # Same order of magnitude as a real memory system, and every format
    # achieves a nonzero rate.
    assert all(0.5 < bw < 500 for bw in bandwidths.values()), bandwidths
