"""Shared helpers for the benchmark suite.

Run with::

    pytest benchmarks/ --benchmark-only

Every experiment prints the rows/series the paper reports (visible with
``-s``; also attached to each benchmark's ``extra_info`` so they land in
``--benchmark-json`` output).  Shapes — who wins, monotonicity, rough
factors — are asserted; absolute numbers are substrate-dependent and
are not.
"""

from __future__ import annotations

import sys
from typing import Callable, Dict, Iterable, List, Sequence

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, MatrixFormat, format_class
from repro.perf.timers import benchmark as time_fn


def measure_smsv_seconds(
    matrix: MatrixFormat,
    *,
    n_vectors: int = 4,
    repeats: int = 3,
    seed: int = 0,
    stat: str = "median",
) -> float:
    """Seconds of one SMSV with row vectors (the SMO pattern).

    ``stat="best"`` returns the minimum instead of the median —
    the right statistic when comparing runs expected to be *equal*
    (constant-work sweeps), where any difference is pure OS jitter.
    """
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, matrix.shape[0], size=n_vectors)
    vectors = [matrix.row(int(i)) for i in ids]

    def run() -> None:
        for v in vectors:
            matrix.smsv(v)

    result = time_fn(run, repeats=repeats, warmup=1)
    value = result.best if stat == "best" else result.median
    return value / n_vectors


def smsv_seconds_per_format(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    shape,
    *,
    formats: Sequence[str] = FORMAT_NAMES,
    seed: int = 0,
) -> Dict[str, float]:
    """Measured SMSV seconds for the same matrix in each format."""
    out: Dict[str, float] = {}
    for name in formats:
        m = format_class(name).from_coo(rows, cols, values, shape)
        out[name] = measure_smsv_seconds(m, seed=seed)
    return out


def normalise_to_slowest(times: Dict[str, float]) -> Dict[str, float]:
    """Fig. 1-style speedups: slowest format = 1.0x."""
    worst = max(times.values())
    return {k: worst / v for k, v in times.items()}


def print_series(title: str, header: str, rows: Iterable[str]) -> None:
    """Emit one experiment's table to stdout (captured by -s)."""
    print(f"\n=== {title} ===", file=sys.stderr)
    print(header, file=sys.stderr)
    for row in rows:
        print(row, file=sys.stderr)


@pytest.fixture
def record_rows(benchmark):
    """Attach printed rows to the pytest-benchmark record."""

    def _record(key: str, value) -> None:
        benchmark.extra_info[key] = value

    return _record
