"""Ablation — threaded SMSV (the OpenMP analogue).

Design question: how much does row-blocked threading recover of the
paper's OpenMP parallelism on this substrate?  NumPy releases the GIL
inside large ufunc/BLAS calls, so blocks genuinely overlap for big
matrices; for small ones the dispatch overhead dominates — which is why
``parallel_matvec`` has a serial fast path.

Assertions are deliberately weak (this may run on a loaded 2-core VM):
correctness is exact, and threading must never be catastrophically
slower than serial on the large case.
"""

import numpy as np
import pytest

from benchmarks.conftest import print_series
from repro.data.synthetic import uniform_rows_matrix
from repro.formats import format_class
from repro.parallel import WorkerPool, parallel_matvec
from repro.perf.timers import benchmark as time_fn

M, N, ROW_NNZ = 20_000, 4_000, 60


@pytest.fixture(scope="module")
def workload():
    rows, cols, vals, shape = uniform_rows_matrix(M, N, ROW_NNZ, seed=0)
    return {
        fmt: format_class(fmt).from_coo(rows, cols, vals, shape)
        for fmt in ("DEN", "CSR", "ELL")
    }


@pytest.fixture(scope="module")
def timings(workload):
    rng = np.random.default_rng(0)
    x = rng.standard_normal(N)
    out = {}
    for fmt, m in workload.items():
        serial = time_fn(lambda: m.matvec(x), repeats=5, warmup=1).median
        per_workers = {1: serial}
        for w in (2, 4):
            with WorkerPool(w) as pool:
                per_workers[w] = time_fn(
                    lambda: parallel_matvec(
                        m, x, pool=pool, min_rows_per_block=1024
                    ),
                    repeats=5,
                    warmup=1,
                ).median
        out[fmt] = per_workers
    return out


def test_ablation_parallel_smsv(workload, timings, benchmark, record_rows):
    m = workload["CSR"]
    rng = np.random.default_rng(1)
    x = rng.standard_normal(N)
    with WorkerPool(4) as pool:
        benchmark(lambda: parallel_matvec(m, x, pool=pool))

    rows = []
    for fmt, per in timings.items():
        rows.append(
            f"{fmt:4s} "
            + "  ".join(
                f"P={w}: {t * 1e3:7.2f} ms ({per[1] / t:4.2f}x)"
                for w, t in per.items()
            )
        )
    print_series(
        f"Ablation: threaded SMSV, {M}x{N} rows={ROW_NNZ} nnz", "", rows
    )
    record_rows(
        "ablation_parallel",
        {f: {str(w): t for w, t in per.items()} for f, per in timings.items()},
    )

    # correctness (exact) for every format and worker count
    x = np.random.default_rng(2).standard_normal(N)
    for fmt, m in workload.items():
        ref = m.matvec(x)
        with WorkerPool(4) as pool:
            got = parallel_matvec(m, x, pool=pool, min_rows_per_block=1024)
        assert np.allclose(got, ref), fmt
    # threading is never catastrophically slower on the big case
    for fmt, per in timings.items():
        assert per[4] < per[1] * 2.0, (fmt, per)
