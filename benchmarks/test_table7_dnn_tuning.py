"""Table VII — time and speedup for reaching 0.8 CIFAR-10 accuracy.

Paper: eight rows (five platforms at Caffe defaults + three incremental
DGX tuning stages) with B, eta, mu, iterations, epochs, time, price,
speedup and price/speedup.

Regenerated from the calibrated convergence model x per-machine
iteration-time model; every column is asserted against the paper within
tolerance.  A measured mini-scale tuning run (real training on the
synthetic CIFAR-10) accompanies it in ``examples/dnn_tuning.py``.
"""

import pytest

from benchmarks.conftest import print_series
from repro.tuning import reproduce_table7
from repro.tuning.table7 import format_rows

#: Table VII verbatim: (B, eta, mu, iterations, time s, speedup, $/spd).
PAPER = {
    "Intel Caffe on 8-core CPUs": (100, 0.001, 0.90, 60000, 29427, 1, 1571),
    "Intel Caffe on KNL": (100, 0.001, 0.90, 60000, 4922, 6, 813),
    "Intel Caffe on Haswell": (100, 0.001, 0.90, 60000, 1997, 15, 493),
    "Nvidia Caffe on Tesla P100 GPU": (100, 0.001, 0.90, 60000, 503, 59, 196),
    "Nvidia Caffe on DGX station": (100, 0.001, 0.90, 60000, 387, 76, 1039),
    "Tune B on DGX station": (512, 0.001, 0.90, 30000, 361, 82, 963),
    "Tune eta on DGX station": (512, 0.003, 0.90, 12000, 138, 213, 371),
    "Tune mu on DGX station": (512, 0.003, 0.95, 7000, 83, 355, 223),
}


@pytest.fixture(scope="module")
def rows():
    return reproduce_table7()


def test_table7_regenerate(rows, benchmark, record_rows):
    benchmark(reproduce_table7)

    print_series("Table VII (regenerated)", "", [format_rows(rows)])
    record_rows(
        "table7",
        {r.method: (r.batch_size, r.lr, r.momentum, r.iterations, r.seconds)
         for r in rows},
    )

    assert len(rows) == 8
    for r in rows:
        b, lr, mu, iters, secs, speedup, pps = PAPER[r.method]
        # Hyper-parameters the tuner must *choose* identically.
        assert r.batch_size == b, r.method
        assert r.lr == pytest.approx(lr), r.method
        assert r.momentum == pytest.approx(mu, abs=0.011), r.method
        # Derived quantities within 10%.
        assert r.iterations == pytest.approx(iters, rel=0.01), r.method
        assert r.seconds == pytest.approx(secs, rel=0.10), r.method
        assert r.speedup == pytest.approx(speedup, rel=0.12), r.method
        assert r.price_per_speedup == pytest.approx(pps, rel=0.12), r.method


def test_table7_epochs_column(rows):
    # Paper epochs: 120 for untuned rows, then 307* / 123 / 72.
    # (*the printed 387 in the paper is inconsistent with its own
    # iterations x B / n_train = 307; we match the arithmetic.)
    by = {r.method: r for r in rows}
    assert by["Intel Caffe on 8-core CPUs"].epochs == pytest.approx(120)
    assert by["Tune B on DGX station"].epochs == pytest.approx(307, rel=0.01)
    assert by["Tune eta on DGX station"].epochs == pytest.approx(123, rel=0.01)
    assert by["Tune mu on DGX station"].epochs == pytest.approx(72, rel=0.01)
