"""Ablation — SMO working-set rule and shrinking.

Design question: how much do LIBSVM's serial refinements (second-order
pair selection, shrinking) contribute on top of the paper's plain
maximal-violating-pair SMO — and do they interact with the layout
choice?  Metrics: iterations to convergence, kernel rows computed, and
wall time, on Table V clones.
"""

import time

import pytest

from benchmarks.conftest import print_series
from repro.data import load_dataset
from repro.svm.kernels import GaussianKernel
from repro.svm.smo import smo_train

DATASETS = ("adult", "aloi", "connect-4")
M_CAP = 600
VARIANTS = {
    "first": dict(working_set="first", shrink_every=0),
    "second": dict(working_set="second", shrink_every=0),
    "first+shrink": dict(working_set="first", shrink_every=100),
    "second+shrink": dict(working_set="second", shrink_every=100),
}


@pytest.fixture(scope="module")
def results():
    out = {}
    for name in DATASETS:
        ds = load_dataset(name, seed=0, m_override=M_CAP)
        X = ds.in_format("CSR")
        y = ds.y[: X.shape[0]]
        per = {}
        for label, kw in VARIANTS.items():
            t0 = time.perf_counter()
            r = smo_train(
                X, y, GaussianKernel(0.05), C=1.0, tol=1e-3,
                max_iter=20_000, **kw,
            )
            per[label] = dict(
                seconds=time.perf_counter() - t0,
                iterations=r.iterations,
                rows=r.kernel_rows_computed,
                converged=r.converged,
                objective=r.objective(y),
            )
        out[name] = per
    return out


def test_ablation_working_set(results, benchmark, record_rows):
    ds = load_dataset("adult", seed=0, m_override=300)
    X = ds.in_format("CSR")
    y = ds.y[:300]
    benchmark.pedantic(
        lambda: smo_train(
            X, y, GaussianKernel(0.05), C=1.0, max_iter=200,
            working_set="second",
        ),
        rounds=3,
        iterations=1,
    )

    rows = []
    for name, per in results.items():
        for label, r in per.items():
            rows.append(
                f"{name:10s} {label:14s} iters={r['iterations']:6d} "
                f"rows={r['rows']:6d} time={r['seconds'] * 1e3:8.1f} ms "
                f"obj={r['objective']:.4f}"
            )
    print_series("Ablation: SMO working set & shrinking", "", rows)
    record_rows(
        "ablation_working_set",
        {
            f"{n}/{l}": r["iterations"]
            for n, per in results.items()
            for l, r in per.items()
        },
    )

    for name, per in results.items():
        # All variants converge to the same optimum.
        objs = [r["objective"] for r in per.values()]
        assert all(r["converged"] for r in per.values()), name
        assert max(objs) - min(objs) < 1e-3 * max(1.0, abs(objs[0])), name
        # Second-order needs no more iterations than first-order
        # (usually strictly fewer); small slack for easy problems.
        assert (
            per["second"]["iterations"]
            <= per["first"]["iterations"] * 1.1
        ), name
