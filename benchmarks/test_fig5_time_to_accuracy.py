"""Figure 5 — time to 0.8 CIFAR-10 accuracy by method.

Paper: eight bars (8 CPUs, KNL, Haswell, GPU, DGX, DGX1, DGX2, DGX3)
ranging from 29,427 s down to 83 s.

Regenerated from the calibrated convergence x iteration-time models
(Table VII pipeline), with one *measured* anchor: the real NumPy CNN
trained on the synthetic CIFAR-10 to the target accuracy, so the
pipeline's notion of "time to accuracy" is demonstrated end to end,
not just modelled.
"""

import pytest

from benchmarks.conftest import print_series
from repro.data import synthetic_cifar10
from repro.dnn import Trainer, cifar10_small
from repro.tuning import reproduce_table7

PAPER_SECONDS = {
    "Intel Caffe on 8-core CPUs": 29_427,
    "Intel Caffe on KNL": 4_922,
    "Intel Caffe on Haswell": 1_997,
    "Nvidia Caffe on Tesla P100 GPU": 503,
    "Nvidia Caffe on DGX station": 387,
    "Tune B on DGX station": 361,
    "Tune eta on DGX station": 138,
    "Tune mu on DGX station": 83,
}


@pytest.fixture(scope="module")
def rows():
    return reproduce_table7()


def test_fig5_regenerate(rows, benchmark, record_rows):
    # Measured anchor: one real epoch of the mini CNN (the unit the
    # modelled bars are made of).
    data = synthetic_cifar10(200, 50, seed=0, flip_prob=0.0)
    trainer = Trainer(
        cifar10_small(seed=0), batch_size=50, lr=0.01,
        target_accuracy=0.99, max_epochs=1,
    )
    benchmark.pedantic(
        lambda: trainer.train_epoch(data, 1), rounds=2, iterations=1
    )

    out = [
        f"{r.method:34s} model {r.seconds:9.1f} s   paper "
        f"{PAPER_SECONDS[r.method]:7d} s   ratio "
        f"{r.seconds / PAPER_SECONDS[r.method]:5.2f}"
        for r in rows
    ]
    print_series("Fig. 5: time to 0.8 accuracy by method", "", out)
    record_rows("fig5_seconds", {r.method: r.seconds for r in rows})

    # Shape: every bar within 10% of the paper's measurement.
    for r in rows:
        assert r.seconds == pytest.approx(
            PAPER_SECONDS[r.method], rel=0.10
        ), r.method
    # Ordering identical to the paper's figure.
    model_order = [r.method for r in sorted(rows, key=lambda r: r.seconds)]
    paper_order = [
        m for m, _ in sorted(PAPER_SECONDS.items(), key=lambda kv: kv[1])
    ]
    assert model_order == paper_order


def test_fig5_headline_8hours_to_a_minute(rows):
    assert rows[0].seconds > 8 * 3600  # 8.2 hours
    assert min(r.seconds for r in rows) < 120  # ~1 minute


def test_fig5_measured_training_reaches_target():
    # End-to-end measured counterpart on the synthetic dataset.
    data = synthetic_cifar10(800, 200, seed=0)
    run = Trainer(
        cifar10_small(seed=0), batch_size=50, lr=0.01, momentum=0.9,
        target_accuracy=0.8, max_epochs=15,
    ).fit(data)
    assert run.reached_target
    assert run.seconds_to_target is not None and run.seconds_to_target > 0
