"""Cross-cutting hypothesis properties over the model layers.

Properties that span packages: pricing identities, convergence-model
monotonicities, roofline scaling, and the loss function's convexity
signature — the invariants the Table VII / Fig. 6 pipelines silently
rely on.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnn import SoftmaxCrossEntropy
from repro.hardware import get_machine, roofline_time
from repro.hardware.pricing import price_per_speedup_table
from repro.tuning import ConvergenceModel


class TestPricingProperties:
    @given(
        times=st.lists(
            st.floats(1.0, 1e5), min_size=2, max_size=6, unique=True
        ),
        price=st.floats(100.0, 1e5),
    )
    @settings(max_examples=50, deadline=None)
    def test_speedup_identities(self, times, price):
        names = [f"m{i}" for i in range(len(times))]
        rows = price_per_speedup_table(
            dict(zip(names, times)), {n: price for n in names}
        )
        by = {r.method: r for r in rows}
        slowest = max(times)
        # The baseline has speedup exactly 1; all speedups >= 1.
        assert any(r.speedup == pytest.approx(1.0) for r in rows)
        for name, t in zip(names, times):
            assert by[name].speedup == pytest.approx(slowest / t)
            assert by[name].price_per_speedup == pytest.approx(
                price * t / slowest
            )
        # With equal prices, faster method => strictly better $/speedup.
        order_by_time = sorted(names, key=lambda n: by[n].seconds)
        pps = [by[n].price_per_speedup for n in order_by_time]
        assert pps == sorted(pps)


class TestConvergenceModelProperties:
    @given(b=st.sampled_from([64, 100, 128, 256, 512, 1024, 2048]))
    @settings(max_examples=30, deadline=None)
    def test_optimal_lr_minimises_epochs_over_lr(self, b):
        model = ConvergenceModel()
        lr_opt = model.lr_opt(b)
        e_opt = model.epochs_to_target(b, lr_opt, 0.90)
        for factor in (0.3, 0.6, 1.5, 2.5):
            e = model.epochs_to_target(b, lr_opt * factor, 0.90)
            if e is not None:
                assert e >= e_opt - 1e-9

    @given(
        b=st.sampled_from([100, 256, 512, 1024]),
        mu=st.floats(0.0, 0.99),
    )
    @settings(max_examples=50, deadline=None)
    def test_epochs_always_positive_or_divergent(self, b, mu):
        model = ConvergenceModel()
        e = model.epochs_to_target(b, model.lr_opt(b), mu)
        assert e is None or e > 0

    def test_batch_monotone_above_crit_at_optimal_lr(self):
        model = ConvergenceModel()
        epochs = [
            model.epochs_to_target(b, model.lr_opt(b), 0.90)
            for b in (512, 1024, 2048, 4096)
        ]
        assert epochs == sorted(epochs)


class TestRooflineProperties:
    @given(
        flops=st.floats(1.0, 1e12),
        nbytes=st.floats(1.0, 1e12),
        scale=st.floats(1.1, 100.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_homogeneous_scaling(self, flops, nbytes, scale):
        m = get_machine("haswell")
        t1 = roofline_time(flops, nbytes, m)
        t2 = roofline_time(flops * scale, nbytes * scale, m)
        assert t2 == pytest.approx(t1 * scale, rel=1e-9)

    @given(flops=st.floats(1.0, 1e12), nbytes=st.floats(1.0, 1e12))
    @settings(max_examples=60, deadline=None)
    def test_max_of_roofs(self, flops, nbytes):
        m = get_machine("p100")
        t = roofline_time(flops, nbytes, m, efficiency=0.5)
        t_c = roofline_time(flops, 1e-9 + 0, m, efficiency=0.5)
        t_m = roofline_time(0.0, nbytes, m, efficiency=0.5)
        assert t == pytest.approx(max(t_c, t_m), rel=1e-9)


class TestLossProperties:
    @given(seed=st.integers(0, 2**16), n=st.integers(1, 16), k=st.integers(2, 8))
    @settings(max_examples=60, deadline=None)
    def test_loss_bounds_and_shift_invariance(self, seed, n, k):
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((n, k)) * 3.0
        y = rng.integers(0, k, n)
        lf = SoftmaxCrossEntropy()
        loss, grad = lf(logits.copy(), y)
        assert loss >= 0.0
        # shifting all logits per row leaves softmax (and loss) fixed
        shifted = logits + rng.standard_normal((n, 1)) * 5.0
        loss2, _ = lf(shifted, y)
        assert loss2 == pytest.approx(loss, rel=1e-9, abs=1e-12)
        # gradient row sums vanish (softmax simplex constraint)
        assert np.allclose(grad.sum(axis=1), 0.0, atol=1e-10)

    @given(seed=st.integers(0, 2**16))
    @settings(max_examples=30, deadline=None)
    def test_gradient_step_decreases_loss(self, seed):
        # First-order sanity: a small step against the gradient helps.
        rng = np.random.default_rng(seed)
        logits = rng.standard_normal((8, 5))
        y = rng.integers(0, 5, 8)
        lf = SoftmaxCrossEntropy()
        loss, grad = lf(logits.copy(), y)
        loss2, _ = lf(logits - 0.01 * grad, y)
        assert loss2 <= loss + 1e-12
