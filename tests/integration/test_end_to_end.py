"""Cross-module integration tests: the full pipelines users run."""

import io

import numpy as np
import pytest

from repro import AdaptiveSVC, extract_profile, from_dense, schedule_layout
from repro.baselines import LibSVMStyleSVC
from repro.core import LayoutScheduler
from repro.data import (
    load_dataset,
    read_libsvm,
    synthetic_cifar10,
    write_libsvm,
)
from repro.dnn import Trainer, cifar10_small
from repro.formats import format_class
from repro.svm import SVC


class TestSVMPipeline:
    def test_libsvm_file_to_adaptive_model(self, tmp_path):
        # The full user journey: LIBSVM file -> scheduler -> training
        # -> prediction.
        ds = load_dataset("aloi", seed=0, m_override=300)
        path = tmp_path / "aloi.libsvm"
        write_libsvm(
            path, (ds.rows, ds.cols, ds.values, ds.shape), ds.y
        )
        (rows, cols, vals, shape), y = read_libsvm(
            path, n_features=ds.shape[1]
        )
        sched = LayoutScheduler("cost")
        X, decision = sched.apply_coo(rows, cols, vals, shape)
        assert decision.fmt == X.name
        clf = SVC("linear", C=1.0, max_iter=2000).fit(X, y)
        assert clf.score(X, y) > 0.9

    def test_adaptive_matches_baseline_predictions(self):
        ds = load_dataset("adult", seed=0, m_override=250)
        X = ds.in_format("CSR")
        y = ds.y[:250]
        kw = dict(C=1.0, tol=1e-3, max_iter=5000)
        ada = AdaptiveSVC(
            "linear", scheduler=LayoutScheduler("cost"), **kw
        ).fit(X, y)
        lib = LibSVMStyleSVC("linear", **kw).fit(X, y)
        agree = float(np.mean(ada.predict(X) == lib.predict(X)))
        assert agree > 0.97  # same algorithm, different layout/kernel

    def test_scheduler_cache_warm_across_fits(self):
        # Re-deciding for structurally identical data (same profile,
        # different labels/values) must reuse the cached decision — the
        # runtime-scheduling cost story.
        sched = LayoutScheduler("cost")
        first = load_dataset("adult", seed=0, m_override=200)
        second = load_dataset("adult", seed=0, m_override=200, label_noise=0.2)
        d1 = sched.decide_from_coo(
            first.rows, first.cols, first.values, first.shape
        )
        d2 = sched.decide_from_coo(
            second.rows, second.cols, second.values, second.shape
        )
        assert not d1.cached and d2.cached and d1.fmt == d2.fmt

    def test_profile_stable_across_formats_and_io(self, tmp_path):
        ds = load_dataset("mnist", seed=0, m_override=200)
        p0 = ds.profile
        # through a format round trip
        m = ds.in_format("DIA")
        assert extract_profile(m) == p0
        # through file I/O
        buf = io.StringIO()
        write_libsvm(buf, (ds.rows, ds.cols, ds.values, ds.shape), ds.y)
        buf.seek(0)
        (r, c, v, s), _ = read_libsvm(buf, n_features=ds.shape[1])
        cls = format_class("CSR")
        assert extract_profile(cls.from_coo(r, c, v, s)) == p0


class TestDNNPipeline:
    def test_train_and_improve(self):
        data = synthetic_cifar10(300, 100, seed=0, flip_prob=0.0)
        net = cifar10_small(seed=0)
        acc0 = net.accuracy(data.x_test.astype(np.float64), data.y_test)
        run = Trainer(
            net, batch_size=50, lr=0.01, momentum=0.9,
            target_accuracy=0.99, max_epochs=3,
        ).fit(data)
        assert run.final_accuracy > acc0 + 0.2

    def test_tuning_pipeline_consistency(self):
        # The Table VII rows must be internally consistent:
        # iterations ~ epochs * n / B, and time = iterations * t_iter.
        from repro.hardware import DNN_MACHINES, DNNPerfModel
        from repro.tuning import CIFAR10_N_TRAIN, reproduce_table7

        for r in reproduce_table7():
            assert r.iterations == pytest.approx(
                r.epochs * CIFAR10_N_TRAIN / r.batch_size, rel=1e-3
            )
            perf = DNNPerfModel(DNN_MACHINES[r.machine])
            assert r.seconds == pytest.approx(
                perf.training_time(r.iterations, r.batch_size), rel=1e-9
            )


class TestSchedulerOnArbitraryInput:
    @pytest.mark.parametrize("density", [0.01, 0.3, 1.0])
    def test_any_density_schedules_and_trains(self, rng, density):
        a = (rng.random((120, 40)) < density) * rng.standard_normal((120, 40))
        # guarantee at least one nnz per row so labels are learnable
        a[np.arange(120), rng.integers(0, 40, 120)] += 1.0
        m, decision = schedule_layout(from_dense(a, "COO"), "cost")
        w = rng.standard_normal(40)
        y = np.where(a @ w > np.median(a @ w), 1.0, -1.0)
        if np.all(y == y[0]):
            y[:60] = -y[0]
        clf = SVC("linear", C=1.0, max_iter=3000).fit(m, y)
        assert clf.score(m, y) > 0.75
