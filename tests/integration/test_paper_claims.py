"""The paper's headline claims, asserted end to end.

Each test cites the claim verbatim (abstract / intro) and checks the
corresponding property of this reproduction.
"""

import numpy as np
import pytest

from repro.core import LayoutScheduler
from repro.data import load_dataset
from repro.hardware import VectorMachine, get_machine
from repro.formats import FORMAT_NAMES, format_class
from repro.tuning import reproduce_table7


class TestSVMClaims:
    """"Our implementation achieves 1.7-16.3x speedup (6.8x on average)
    against the non-adaptive case (using the worst data format)"."""

    @pytest.fixture(scope="class")
    def model_speedups(self):
        # On the SIMD model of the paper's platform: adaptive pick vs
        # worst format, per Table V clone.
        vm = VectorMachine(get_machine("ivybridge"))
        sched = LayoutScheduler("cost")
        out = {}
        for name in ("adult", "aloi", "mnist", "sector", "trefethen",
                     "connect-4", "leukemia"):
            ds = load_dataset(name, seed=0)
            times = {
                f: vm.count(
                    format_class(f).from_coo(
                        ds.rows, ds.cols, ds.values, ds.shape
                    )
                ).seconds
                for f in FORMAT_NAMES
            }
            pick = sched.decide_from_coo(
                ds.rows, ds.cols, ds.values, ds.shape
            ).fmt
            out[name] = max(times.values()) / times[pick]
        return out

    def test_adaptive_vs_worst_range(self, model_speedups):
        values = list(model_speedups.values())
        # Paper range 1.7-16.3x; we assert a material spread with the
        # same order of magnitude.
        assert min(values) > 1.5
        assert max(values) > 8.0

    def test_average_speedup_material(self, model_speedups):
        mean = float(np.mean(list(model_speedups.values())))
        # Paper average 6.8x.
        assert mean > 4.0


class TestDNNClaims:
    """"For DNN training on CIFAR-10 dataset, we reduce the time from
    8.2 hours to only roughly 1 minute" and "We achieve a 355x
    speedup"."""

    @pytest.fixture(scope="class")
    def rows(self):
        return reproduce_table7()

    def test_82_hours_baseline(self, rows):
        assert rows[0].seconds / 3600 == pytest.approx(8.2, abs=0.2)

    def test_roughly_one_minute_final(self, rows):
        final = rows[-1].seconds
        assert 60 <= final <= 120  # "roughly 1 minute"

    def test_355x_speedup_order(self, rows):
        assert rows[-1].speedup == pytest.approx(355, rel=0.1)

    def test_dollars_per_speedup_ranking(self, rows):
        """"the Tesla P100 GPU is the most efficient platform and the
        8-core CPU is the least efficient platform"."""
        platforms = [r for r in rows if "Tune" not in r.method]
        best = min(platforms, key=lambda r: r.price_per_speedup)
        worst = max(platforms, key=lambda r: r.price_per_speedup)
        assert "P100" in best.method
        assert "8-core" in worst.method


class TestMotivationClaim:
    """"the most suitable formats for different datasets vary
    significantly" (Section I / Fig. 1)."""

    def test_no_universal_best_format(self):
        vm = VectorMachine(get_machine("ivybridge"))
        winners = set()
        for name in ("adult", "gisette", "mnist", "trefethen"):
            ds = load_dataset(name, seed=0)
            times = {
                f: vm.count(
                    format_class(f).from_coo(
                        ds.rows, ds.cols, ds.values, ds.shape
                    )
                ).seconds
                for f in FORMAT_NAMES
            }
            winners.add(min(times, key=times.get))
        assert len(winners) >= 3
