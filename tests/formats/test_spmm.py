"""Blocked multi-vector SMSV (SpMM): bit-for-bit identity with the
single-vector kernels across every format, plus counter accounting.

The contract under test is the one the fused dual-row SMO path relies
on: column ``c`` of ``matmat(V)`` / ``smsv_multi(vectors)`` must equal
``matvec(V[:, c])`` / ``smsv(vectors[c])`` *bitwise* — not just to
tolerance — so batching never perturbs the training trajectory.
"""

import numpy as np
import pytest

from repro.formats import (
    FORMAT_NAMES,
    SparseVector,
    from_dense,
)
from repro.formats.base import VALUE_DTYPE
from repro.perf import OpCounter

#: The five scheduled formats plus the two derived ones — all seven
#: implement the SpMM entry points.
ALL_FORMATS = tuple(FORMAT_NAMES) + ("CSC", "BCSR")


def _sparse_vectors(rng, n, k, density=0.3):
    out = []
    for _ in range(k):
        x = rng.standard_normal(n)
        x[rng.random(n) >= density] = 0.0
        out.append(SparseVector.from_dense(x))
    return out


@pytest.fixture(params=ALL_FORMATS)
def any_fmt(request):
    return request.param


class TestMatmatIdentity:
    @pytest.mark.parametrize("k", [1, 2, 3, 8])
    def test_columns_bitwise_equal_matvec(
        self, small_sparse, rng, any_fmt, k
    ):
        m = from_dense(small_sparse, any_fmt)
        V = rng.standard_normal((30, k))
        Y = m.matmat(V)
        assert Y.shape == (40, k)
        assert Y.dtype == np.dtype(VALUE_DTYPE)
        for c in range(k):
            np.testing.assert_array_equal(Y[:, c], m.matvec(V[:, c]))

    def test_banded_matrix(self, banded, rng, any_fmt):
        # DIA's natural shape: per-diagonal broadcast must stay
        # column-identical too.
        m = from_dense(banded, any_fmt)
        V = rng.standard_normal((50, 4))
        Y = m.matmat(V)
        for c in range(4):
            np.testing.assert_array_equal(Y[:, c], m.matvec(V[:, c]))

    def test_k_zero(self, small_sparse, any_fmt):
        m = from_dense(small_sparse, any_fmt)
        Y = m.matmat(np.zeros((30, 0)))
        assert Y.shape == (40, 0)

    def test_empty_matrix(self, rng, any_fmt):
        m = from_dense(np.zeros((6, 5)), any_fmt)
        V = rng.standard_normal((5, 3))
        np.testing.assert_array_equal(m.matmat(V), np.zeros((6, 3)))

    def test_rhs_coerced_like_matvec(self, small_sparse, any_fmt):
        # float32 and int64 blocks are coerced to VALUE_DTYPE, matching
        # matvec's np.asarray(x, dtype=VALUE_DTYPE) semantics.
        m = from_dense(small_sparse, any_fmt)
        V32 = np.ones((30, 2), dtype=np.float32)
        Vi = np.ones((30, 2), dtype=np.int64)
        ref = m.matvec(np.ones(30))
        for V in (V32, Vi):
            Y = m.matmat(V)
            assert Y.dtype == np.dtype(VALUE_DTYPE)
            np.testing.assert_array_equal(Y[:, 0], ref)
            np.testing.assert_array_equal(Y[:, 1], ref)

    def test_shape_validation(self, small_sparse, any_fmt):
        m = from_dense(small_sparse, any_fmt)
        with pytest.raises(ValueError, match="matmat expects"):
            m.matmat(np.zeros((7, 2)))
        with pytest.raises(ValueError, match="matmat expects"):
            m.matmat(np.zeros(30))


class TestSmsvMultiIdentity:
    @pytest.mark.parametrize("k", [1, 2, 3, 8])
    def test_columns_bitwise_equal_smsv(
        self, small_sparse, rng, any_fmt, k
    ):
        m = from_dense(small_sparse, any_fmt)
        vectors = _sparse_vectors(rng, 30, k)
        Y = m.smsv_multi(vectors)
        assert Y.shape == (40, k)
        assert Y.dtype == np.dtype(VALUE_DTYPE)
        for c, v in enumerate(vectors):
            np.testing.assert_array_equal(Y[:, c], m.smsv(v))

    def test_dual_row_pair(self, small_sparse, any_fmt):
        # The SMO hot path: the two batched vectors are themselves rows
        # of the matrix.
        m = from_dense(small_sparse, any_fmt)
        vi, vj = m.row(3), m.row(12)
        Y = m.smsv_multi([vi, vj])
        np.testing.assert_array_equal(Y[:, 0], m.smsv(vi))
        np.testing.assert_array_equal(Y[:, 1], m.smsv(vj))

    def test_empty_vector_in_batch(self, small_sparse, any_fmt):
        m = from_dense(small_sparse, any_fmt)
        empty = SparseVector.from_dense(np.zeros(30))
        dense = SparseVector.from_dense(np.ones(30))
        Y = m.smsv_multi([empty, dense])
        np.testing.assert_array_equal(Y[:, 0], np.zeros(40))
        np.testing.assert_array_equal(Y[:, 1], m.smsv(dense))

    def test_no_vectors(self, small_sparse, any_fmt):
        m = from_dense(small_sparse, any_fmt)
        assert m.smsv_multi([]).shape == (40, 0)

    def test_accepts_any_iterable(self, small_sparse, rng, any_fmt):
        m = from_dense(small_sparse, any_fmt)
        vectors = _sparse_vectors(rng, 30, 3)
        Y_list = m.smsv_multi(vectors)
        Y_gen = m.smsv_multi(v for v in vectors)
        np.testing.assert_array_equal(Y_list, Y_gen)

    def test_length_validation(self, small_sparse, any_fmt):
        m = from_dense(small_sparse, any_fmt)
        bad = SparseVector.from_dense(np.ones(7))
        with pytest.raises(ValueError, match="length"):
            m.smsv_multi([bad])


class TestSpmmCounters:
    def test_matmat_reports_spmm(self, small_sparse, rng, any_fmt):
        m = from_dense(small_sparse, any_fmt)
        V = rng.standard_normal((30, 4))
        c = OpCounter()
        m.matmat(V, c)
        assert c.spmm_calls >= 1
        assert c.spmm_columns >= 4
        assert c.flops > 0
        assert c.bytes_read > 0 and c.bytes_written > 0

    def test_smsv_multi_reports_spmm(self, small_sparse, rng, any_fmt):
        m = from_dense(small_sparse, any_fmt)
        c = OpCounter()
        m.smsv_multi(_sparse_vectors(rng, 30, 3), c)
        assert c.spmm_calls >= 1
        assert c.spmm_columns >= 3

    def test_batched_flops_match_k_singles(self, small_sparse, rng):
        # For the overriding formats the modelled flop count of one
        # k-wide sweep equals k single matvecs — SpMM saves traversal
        # and dispatch, never arithmetic.
        for fmt in ("CSR", "COO", "ELL", "DEN"):
            m = from_dense(small_sparse, fmt)
            V = rng.standard_normal((30, 3))
            batched, singles = OpCounter(), OpCounter()
            m.matmat(V, batched)
            for col in range(3):
                m.matvec(V[:, col], singles)
            assert batched.flops == singles.flops
