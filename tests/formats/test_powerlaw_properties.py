"""Property tests on power-law row distributions (the SELL stress shape).

Two cross-format invariants, exercised where they are hardest — heavy-
tailed row lengths with empty rows and a wide mdim/adim gap:

1. Permutation transparency is *bitwise*: RCSR/RSELL/SELL answer every
   kernel exactly like the unpermuted CSR reference.
2. Cross-format blocked SMSV agrees with CSR within the documented
   tolerance for every format (and bitwise for the exact family).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import powerlaw_rows_matrix
from repro.formats import FORMAT_NAMES, SparseVector, convert
from repro.formats.csr import CSRMatrix
from repro.formats.reorder import RCSRMatrix, RSELLMatrix
from repro.formats.sell import SELLMatrix

#: Formats whose kernels are bitwise-CSR by construction.
EXACT = ("SELL", "RCSR", "RSELL")


@st.composite
def powerlaw_triples(draw):
    m = draw(st.integers(min_value=0, max_value=50))
    n = draw(st.integers(min_value=1, max_value=40))
    alpha = draw(st.floats(min_value=1.2, max_value=3.0))
    min_nnz = draw(st.integers(min_value=1, max_value=max(1, n // 4)))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return powerlaw_rows_matrix(
        m, n, alpha=alpha, min_nnz=min_nnz, seed=seed
    )


def _vectors(n, k, seed):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(k):
        xv = rng.standard_normal(n) * (rng.random(n) < 0.4)
        out.append(SparseVector.from_dense(xv))
    return out


@given(
    triples=powerlaw_triples(),
    cls=st.sampled_from([RCSRMatrix, RSELLMatrix]),
    sigma=st.sampled_from([None, 4, 16]),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_permuted_matvec_bitwise_equals_unpermuted(
    triples, cls, sigma, seed
):
    rows, cols, vals, shape = triples
    ref = CSRMatrix.from_coo(rows, cols, vals, shape)
    wrapped = cls.from_coo(rows, cols, vals, shape, sigma=sigma)
    x = np.random.default_rng(seed).standard_normal(shape[1])
    assert np.array_equal(wrapped.matvec(x), ref.matvec(x))


@given(
    triples=powerlaw_triples(),
    chunk=st.integers(min_value=1, max_value=24),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_sell_any_chunk_bitwise_equals_csr(triples, chunk, seed):
    rows, cols, vals, shape = triples
    ref = CSRMatrix.from_coo(rows, cols, vals, shape)
    sell = SELLMatrix.from_coo(rows, cols, vals, shape, chunk=chunk)
    x = np.random.default_rng(seed).standard_normal(shape[1])
    assert np.array_equal(sell.matvec(x), ref.matvec(x))


@given(
    triples=powerlaw_triples(),
    fmt=st.sampled_from(FORMAT_NAMES + EXACT + ("RELL",)),
    k=st.integers(min_value=1, max_value=4),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=60, deadline=None)
def test_cross_format_smsv_multi_matches_csr(triples, fmt, k, seed):
    rows, cols, vals, shape = triples
    ref = CSRMatrix.from_coo(rows, cols, vals, shape)
    other = convert(ref, fmt)
    vs = _vectors(shape[1], k, seed)
    want = ref.smsv_multi(vs)
    got = other.smsv_multi(vs)
    if fmt in EXACT or fmt == "CSR":
        assert np.array_equal(got, want)
    else:
        assert np.allclose(got, want, atol=1e-9)


@given(triples=powerlaw_triples(), sigma=st.sampled_from([None, 8]))
@settings(max_examples=40, deadline=None)
def test_permuted_roundtrip_is_canonical(triples, sigma):
    rows, cols, vals, shape = triples
    wrapped = RSELLMatrix.from_coo(rows, cols, vals, shape, sigma=sigma)
    r2, c2, v2 = wrapped.to_coo()
    assert np.array_equal(r2, rows)
    assert np.array_equal(c2, cols)
    assert np.array_equal(v2, vals)
