"""Degenerate shapes: empty matrices, single cells, extreme aspect."""

import numpy as np
import pytest

from repro.features import profile_from_dense
from repro.formats import FORMAT_NAMES, SparseVector, convert, from_dense


ALL_FORMATS = FORMAT_NAMES + ("CSC", "BCSR", "SELL", "RCSR", "RELL", "RSELL")


class TestEmptyAndTiny:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_all_zero_matrix(self, fmt):
        a = np.zeros((5, 4))
        m = from_dense(a, fmt)
        assert m.nnz == 0
        assert np.allclose(m.matvec(np.ones(4)), np.zeros(5))
        assert np.allclose(m.to_dense(), a)
        for i in range(5):
            assert m.row(i).nnz == 0

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_one_by_one(self, fmt):
        for val in (0.0, 3.5):
            a = np.array([[val]])
            m = from_dense(a, fmt)
            assert np.allclose(m.matvec(np.array([2.0])), [2.0 * val])
            assert np.allclose(m.to_dense(), a)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_single_row(self, fmt, rng):
        a = rng.standard_normal((1, 12)) * (rng.random((1, 12)) < 0.5)
        m = from_dense(a, fmt)
        x = rng.standard_normal(12)
        assert np.allclose(m.matvec(x), a @ x)
        assert np.allclose(m.row(0).to_dense(), a[0])

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_single_column(self, fmt, rng):
        a = rng.standard_normal((12, 1)) * (rng.random((12, 1)) < 0.5)
        m = from_dense(a, fmt)
        assert np.allclose(m.matvec(np.array([2.0])), a[:, 0] * 2.0)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_extreme_aspect_ratios(self, fmt, rng):
        for shape in [(2, 200), (200, 2)]:
            a = (rng.random(shape) < 0.1) * rng.standard_normal(shape)
            m = from_dense(a, fmt)
            x = rng.standard_normal(shape[1])
            assert np.allclose(m.matvec(x), a @ x)
            assert np.allclose(m.to_dense(), a)

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_smsv_with_empty_vector(self, fmt, small_sparse):
        m = from_dense(small_sparse, fmt)
        v = SparseVector.from_dense(np.zeros(30))
        assert np.allclose(m.smsv(v), np.zeros(40))

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    @pytest.mark.parametrize("shape", [(0, 5), (5, 0), (0, 0)])
    def test_zero_dimension_shapes(self, fmt, shape):
        m = from_dense(np.zeros(shape), fmt)
        assert m.nnz == 0
        y = m.matvec(np.zeros(shape[1]))
        assert y.shape == (shape[0],)
        assert m.to_dense().shape == shape
        r, c, v = m.to_coo()
        assert r.size == c.size == v.size == 0

    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_zero_dimension_conversions(self, fmt):
        for shape in [(0, 5), (5, 0), (0, 0)]:
            m = from_dense(np.zeros(shape), fmt)
            for dst in ALL_FORMATS:
                d = convert(m, dst)
                assert d.shape == shape and d.nnz == 0


class TestProfileEdgeCases:
    def test_single_nnz_profile(self):
        a = np.zeros((6, 8))
        a[3, 5] = 1.0
        p = profile_from_dense(a)
        assert p.nnz == 1 and p.ndig == 1 and p.mdim == 1
        assert p.dnnz == 1.0

    def test_one_by_one_profiles(self):
        p0 = profile_from_dense(np.zeros((1, 1)))
        assert p0.nnz == 0
        p1 = profile_from_dense(np.ones((1, 1)))
        assert (p1.nnz, p1.ndig, p1.mdim) == (1, 1, 1)
        assert p1.density == 1.0


class TestSchedulerEdgeCases:
    def test_schedules_empty_matrix(self):
        from repro.core import LayoutScheduler

        sched = LayoutScheduler("cost")
        e = np.empty(0, dtype=np.int64)
        decision = sched.decide_from_coo(e, e, np.empty(0), (5, 5))
        assert decision.fmt in ALL_FORMATS

    def test_rules_empty_matrix(self):
        from repro.core.rules import rule_based_choice

        p = profile_from_dense(np.zeros((4, 4)))
        assert rule_based_choice(p).fmt == "CSR"
