"""Hypothesis property tests for the format library.

Invariants:

1. Any matrix survives a round trip through any format.
2. All formats compute the same matvec as the dense reference.
3. Conversion between any two formats preserves the logical matrix.
4. Storage accounting always matches the analytic formulas, and
   padding never undercounts nnz.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.formats import FORMAT_NAMES, convert, from_dense
from repro.formats.storage import storage_elements_analytic

#: PR 4 layouts ride along in every invariant the analytic-storage
#: test does not cover (their storage is instance-dependent and is
#: asserted in test_sell.py / test_reorder.py instead).
EXTENDED_NAMES = FORMAT_NAMES + ("SELL", "RCSR", "RELL", "RSELL")


@st.composite
def sparse_matrices(draw):
    """Random small matrices with controllable sparsity, incl. empties.

    Shapes start at zero: 0-row and 0-column matrices are legal inputs
    every format must survive (they show up as empty shards and
    all-filtered datasets).
    """
    m = draw(st.integers(min_value=0, max_value=12))
    n = draw(st.integers(min_value=0, max_value=12))
    density = draw(st.floats(min_value=0.0, max_value=1.0))
    values = draw(
        arrays(
            np.float64,
            (m, n),
            elements=st.floats(
                min_value=-100, max_value=100, allow_nan=False
            ),
        )
    )
    mask = draw(
        arrays(np.float64, (m, n), elements=st.floats(0, 1)).map(
            lambda a: a < density
        )
    )
    return values * mask


@given(a=sparse_matrices(), fmt=st.sampled_from(EXTENDED_NAMES))
@settings(max_examples=120, deadline=None)
def test_roundtrip_preserves_matrix(a, fmt):
    m = from_dense(a, fmt)
    assert np.allclose(m.to_dense(), a)


@given(a=sparse_matrices(), fmt=st.sampled_from(EXTENDED_NAMES), seed=st.integers(0, 2**16))
@settings(max_examples=120, deadline=None)
def test_matvec_matches_dense(a, fmt, seed):
    x = np.random.default_rng(seed).standard_normal(a.shape[1])
    m = from_dense(a, fmt)
    assert np.allclose(m.matvec(x), a @ x, atol=1e-9)


@given(
    a=sparse_matrices(),
    src=st.sampled_from(EXTENDED_NAMES),
    dst=st.sampled_from(EXTENDED_NAMES),
)
@settings(max_examples=120, deadline=None)
def test_conversion_preserves_matrix(a, src, dst):
    m = convert(from_dense(a, src), dst)
    assert m.name == dst
    assert np.allclose(m.to_dense(), a)


@given(a=sparse_matrices(), fmt=st.sampled_from(FORMAT_NAMES))
@settings(max_examples=120, deadline=None)
def test_storage_accounting(a, fmt):
    m = from_dense(a, fmt)
    kw = dict(m=a.shape[0], n=a.shape[1], nnz=m.nnz)
    if fmt == "ELL":
        kw["mdim"] = m.mdim
    if fmt == "DIA":
        kw["ndig"] = m.ndig
    assert m.storage_elements() == storage_elements_analytic(fmt, **kw)


@given(a=sparse_matrices(), fmt=st.sampled_from(EXTENDED_NAMES))
@settings(max_examples=80, deadline=None)
def test_row_extraction_matches_dense(a, fmt):
    m = from_dense(a, fmt)
    for i in range(a.shape[0]):
        assert np.allclose(m.row(i).to_dense(), a[i])


@given(a=sparse_matrices(), fmt=st.sampled_from(EXTENDED_NAMES))
@settings(max_examples=80, deadline=None)
def test_row_norms_match_dense(a, fmt):
    m = from_dense(a, fmt)
    assert np.allclose(m.row_norms_sq(), (a * a).sum(axis=1), atol=1e-9)
