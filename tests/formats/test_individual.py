"""Format-specific behaviour: the properties the paper exploits."""

import numpy as np
import pytest

from repro.formats import (
    COOMatrix,
    CSRMatrix,
    DenseMatrix,
    DIAMatrix,
    ELLMatrix,
    from_dense,
)
from repro.formats.dia import diag_span
from repro.formats.storage import storage_elements_analytic


class TestDense:
    def test_storage_is_mn_regardless_of_sparsity(self):
        a = np.zeros((10, 20))
        a[0, 0] = 1.0
        m = DenseMatrix(a)
        assert m.storage_elements() == 200

    def test_c_contiguous(self, rng):
        a = np.asfortranarray(rng.standard_normal((8, 9)))
        m = DenseMatrix(a)
        assert m.array.flags["C_CONTIGUOUS"]

    def test_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            DenseMatrix(np.zeros(5))

    def test_to_dense_returns_copy(self, rng):
        a = rng.standard_normal((4, 4))
        m = DenseMatrix(a)
        d = m.to_dense()
        d[0, 0] = 999.0
        assert m.array[0, 0] != 999.0


class TestCSR:
    def test_storage_formula(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        assert m.storage_elements() == storage_elements_analytic(
            "CSR", m=40, n=30, nnz=m.nnz
        )

    def test_row_lengths(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        expected = (small_sparse != 0).sum(axis=1)
        assert np.array_equal(m.row_lengths, expected)

    def test_empty_rows_handled(self):
        # rows 0 and 2 empty: the reduceat path must not smear values.
        a = np.zeros((4, 3))
        a[1, 1] = 2.0
        a[3, 0] = 3.0
        m = from_dense(a, "CSR")
        y = m.matvec(np.array([1.0, 1.0, 1.0]))
        assert np.allclose(y, [0.0, 2.0, 0.0, 3.0])

    def test_inconsistent_ptr_rejected(self):
        with pytest.raises(ValueError, match="row_ptr"):
            CSRMatrix(
                np.array([1.0]),
                np.array([0]),
                np.array([0, 0]),  # endpoint != nnz
                (1, 2),
            )

    def test_decreasing_ptr_rejected(self):
        with pytest.raises(ValueError, match="non-decreasing"):
            CSRMatrix(
                np.array([1.0, 2.0]),
                np.array([0, 1]),
                np.array([0, 2, 1, 2]),
                (3, 2),
            )


class TestCOO:
    def test_storage_formula(self, small_sparse):
        m = from_dense(small_sparse, "COO")
        assert m.storage_elements() == 3 * m.nnz

    def test_triples_row_major_sorted(self, small_sparse):
        m = from_dense(small_sparse, "COO")
        keys = m.rows.astype(np.int64) * m.shape[1] + m.cols
        assert np.all(np.diff(keys) > 0)

    def test_row_uses_binary_search(self, small_sparse):
        m = from_dense(small_sparse, "COO")
        # empty row returns empty vector
        assert m.row(7).nnz == 0

    def test_empty_matrix_matvec(self):
        m = COOMatrix(
            np.array([], dtype=np.int32),
            np.array([], dtype=np.int32),
            np.array([]),
            (5, 4),
        )
        assert np.allclose(m.matvec(np.ones(4)), np.zeros(5))


class TestELL:
    def test_mdim_is_max_row_length(self, small_sparse):
        m = from_dense(small_sparse, "ELL")
        assert m.mdim == int((small_sparse != 0).sum(axis=1).max())

    def test_storage_is_padded(self, small_sparse):
        m = from_dense(small_sparse, "ELL")
        assert m.storage_elements() == 2 * 40 * m.mdim
        assert m.storage_elements() >= 2 * m.nnz  # padding never shrinks

    def test_padding_slots_are_zero_value_index(self):
        a = np.zeros((3, 4))
        a[0, :3] = [1.0, 2.0, 3.0]
        a[1, 2] = 5.0
        m = from_dense(a, "ELL")
        assert m.mdim == 3
        # row 1 has one real element then padding
        assert m.data[1, 0] == 5.0
        assert np.all(m.data[1, 1:] == 0.0)
        assert np.all(m.indices[1, 1:] == 0)
        # row 2 is all padding
        assert np.all(m.data[2] == 0.0)

    def test_matvec_correct_despite_padding(self, rng):
        a = np.zeros((5, 6))
        a[0] = rng.standard_normal(6)  # forces mdim = 6
        a[3, 2] = 7.0
        m = from_dense(a, "ELL")
        x = rng.standard_normal(6)
        assert np.allclose(m.matvec(x), a @ x)

    def test_bad_row_lengths_rejected(self):
        with pytest.raises(ValueError, match="row_lengths"):
            ELLMatrix(
                np.zeros((2, 3)),
                np.zeros((2, 3), dtype=np.int32),
                np.array([1]),
                (2, 5),
            )


class TestDIA:
    def test_diag_span(self):
        assert diag_span(0, (4, 4)) == (0, 4)
        assert diag_span(2, (4, 4)) == (0, 2)
        assert diag_span(-2, (4, 4)) == (2, 4)
        assert diag_span(3, (4, 4)) == (0, 1)
        assert diag_span(5, (4, 6)) == (0, 1)

    def test_ndig_counts_occupied_diagonals(self, banded):
        m = from_dense(banded, "DIA")
        assert m.ndig == 5

    def test_storage_formula(self, banded):
        m = from_dense(banded, "DIA")
        assert m.storage_elements() == 5 * (50 + 1)

    def test_identity_matrix(self):
        m = from_dense(np.eye(6), "DIA")
        assert m.ndig == 1
        assert np.allclose(m.matvec(np.arange(6.0)), np.arange(6.0))

    def test_rectangular_matrices(self, rng):
        for shape in [(3, 8), (8, 3)]:
            a = (rng.random(shape) < 0.4) * rng.standard_normal(shape)
            m = from_dense(a, "DIA")
            x = rng.standard_normal(shape[1])
            assert np.allclose(m.matvec(x), a @ x)
            assert np.allclose(m.to_dense(), a)

    def test_single_offdiagonal(self):
        a = np.zeros((5, 5))
        a[0, 4] = 3.0
        m = from_dense(a, "DIA")
        assert m.ndig == 1
        assert np.allclose(m.matvec(np.ones(5)), [3, 0, 0, 0, 0])

    def test_full_dense_hits_table2_max(self):
        a = np.ones((4, 5))
        m = from_dense(a, "DIA")
        assert m.ndig == 4 + 5 - 1
        assert m.storage_elements() == (min(4, 5) + 1) * (4 + 5 - 1)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            DIAMatrix(np.array([0]), np.zeros((1, 3)), (5, 5))
