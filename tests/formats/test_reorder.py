"""Row reordering: sigma-window permutations and transparent wrappers.

The contract under test: a :class:`PermutedMatrix` answers every query
in the *original* index space — callers cannot tell rows were
reordered.  For the CSR- and SELL-backed wrappers the agreement with
the unpermuted CSR reference is bitwise (the stored kernels reduce
CSR's product array in CSR's order; the wrapper only scatters finished
row sums).  The ELL-backed wrapper inherits ELL's documented 1-ULP
einsum tolerance.
"""

import numpy as np
import pytest

from repro.analysis import FormatInvariantError, check_format, format_violations
from repro.data.synthetic import powerlaw_rows_matrix
from repro.formats import SparseVector
from repro.formats.csr import CSRMatrix
from repro.formats.reorder import (
    PermutedMatrix,
    RCSRMatrix,
    RELLMatrix,
    RSELLMatrix,
    invert_permutation,
    sigma_window_permutation,
)

BITWISE_WRAPPERS = (RCSRMatrix, RSELLMatrix)


@pytest.fixture
def triples():
    return powerlaw_rows_matrix(
        120, 50, alpha=1.6, min_nnz=1, max_nnz=40, seed=9
    )


class TestSigmaWindowPermutation:
    def test_global_sort_is_descending(self, rng):
        lengths = rng.integers(0, 50, size=200)
        perm = sigma_window_permutation(lengths)
        sorted_lengths = lengths[perm]
        assert np.all(np.diff(sorted_lengths) <= 0)

    def test_windows_sort_locally_only(self, rng):
        lengths = rng.integers(0, 50, size=100)
        perm = sigma_window_permutation(lengths, sigma=16)
        for w0 in range(0, 100, 16):
            w1 = min(w0 + 16, 100)
            # rows stay inside their window...
            assert np.all((perm[w0:w1] >= w0) & (perm[w0:w1] < w1))
            # ...and are descending within it
            assert np.all(np.diff(lengths[perm[w0:w1]]) <= 0)

    def test_stable_on_ties(self):
        lengths = np.array([3, 3, 3, 3])
        assert np.array_equal(
            sigma_window_permutation(lengths), np.arange(4)
        )

    def test_invert_permutation(self, rng):
        perm = rng.permutation(37)
        inv = invert_permutation(perm)
        assert np.array_equal(perm[inv], np.arange(37))
        assert np.array_equal(inv[perm], np.arange(37))


class TestTransparency:
    @pytest.mark.parametrize("cls", BITWISE_WRAPPERS)
    @pytest.mark.parametrize("sigma", [None, 8, 32])
    def test_matvec_bitwise_vs_csr(self, triples, rng, cls, sigma):
        rows, cols, vals, shape = triples
        ref = CSRMatrix.from_coo(rows, cols, vals, shape)
        wrapped = cls.from_coo(rows, cols, vals, shape, sigma=sigma)
        x = rng.standard_normal(shape[1])
        assert np.array_equal(wrapped.matvec(x), ref.matvec(x))

    @pytest.mark.parametrize("cls", BITWISE_WRAPPERS)
    @pytest.mark.parametrize("k", [1, 3])
    def test_matmat_bitwise_vs_csr(self, triples, rng, cls, k):
        rows, cols, vals, shape = triples
        ref = CSRMatrix.from_coo(rows, cols, vals, shape)
        wrapped = cls.from_coo(rows, cols, vals, shape)
        V = rng.standard_normal((shape[1], k))
        assert np.array_equal(wrapped.matmat(V), ref.matmat(V))

    def test_rell_within_one_ulp(self, triples, rng):
        rows, cols, vals, shape = triples
        ref = CSRMatrix.from_coo(rows, cols, vals, shape)
        wrapped = RELLMatrix.from_coo(rows, cols, vals, shape)
        x = rng.standard_normal(shape[1])
        assert np.allclose(wrapped.matvec(x), ref.matvec(x), atol=1e-12)

    @pytest.mark.parametrize("cls", BITWISE_WRAPPERS + (RELLMatrix,))
    def test_rows_in_original_index_space(self, triples, cls):
        rows, cols, vals, shape = triples
        ref = CSRMatrix.from_coo(rows, cols, vals, shape)
        wrapped = cls.from_coo(rows, cols, vals, shape)
        for i in range(shape[0]):
            a, b = wrapped.row(i), ref.row(i)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.values, b.values)

    @pytest.mark.parametrize("cls", BITWISE_WRAPPERS)
    def test_row_norms_bitwise(self, triples, cls):
        rows, cols, vals, shape = triples
        ref = CSRMatrix.from_coo(rows, cols, vals, shape)
        wrapped = cls.from_coo(rows, cols, vals, shape)
        assert np.array_equal(wrapped.row_norms_sq(), ref.row_norms_sq())

    @pytest.mark.parametrize("cls", BITWISE_WRAPPERS)
    def test_smsv_bitwise(self, triples, rng, cls):
        rows, cols, vals, shape = triples
        ref = CSRMatrix.from_coo(rows, cols, vals, shape)
        wrapped = cls.from_coo(rows, cols, vals, shape)
        xv = rng.standard_normal(shape[1]) * (rng.random(shape[1]) < 0.3)
        v = SparseVector.from_dense(xv)
        assert np.array_equal(wrapped.smsv(v), ref.smsv(v))

    def test_to_coo_is_canonical(self, triples):
        rows, cols, vals, shape = triples
        wrapped = RCSRMatrix.from_coo(rows, cols, vals, shape)
        r2, c2, v2 = wrapped.to_coo()
        assert np.array_equal(r2, rows)
        assert np.array_equal(c2, cols)
        assert np.array_equal(v2, vals)

    def test_stored_rows_actually_sorted(self, triples):
        rows, cols, vals, shape = triples
        wrapped = RSELLMatrix.from_coo(rows, cols, vals, shape)
        stored_lengths = np.asarray(wrapped.stored.row_lengths)
        assert np.all(np.diff(stored_lengths) <= 0)
        # the permutation really moved something on this shape
        assert not np.array_equal(wrapped.perm, np.arange(shape[0]))

    def test_storage_counts_perm_vector(self, triples):
        rows, cols, vals, shape = triples
        wrapped = RCSRMatrix.from_coo(rows, cols, vals, shape)
        assert (
            wrapped.storage_elements()
            == wrapped.stored.storage_elements() + shape[0]
        )


class TestDegenerateShapes:
    @pytest.mark.parametrize("cls", BITWISE_WRAPPERS + (RELLMatrix,))
    def test_empty_and_zero_row_shapes(self, cls):
        e = np.empty(0, dtype=np.int64)
        for shape in [(0, 4), (5, 4)]:
            m = cls.from_coo(e, e, np.empty(0), shape)
            assert m.nnz == 0
            assert np.array_equal(
                m.matvec(np.ones(4)), np.zeros(shape[0])
            )

    def test_single_row(self, rng):
        rows = np.zeros(3, dtype=np.int64)
        cols = np.array([1, 4, 6], dtype=np.int64)
        vals = rng.standard_normal(3)
        m = RSELLMatrix.from_coo(rows, cols, vals, (1, 8))
        ref = CSRMatrix.from_coo(rows, cols, vals, (1, 8))
        x = rng.standard_normal(8)
        assert np.array_equal(m.matvec(x), ref.matvec(x))


class TestSanitizer:
    @pytest.mark.parametrize(
        "cls", BITWISE_WRAPPERS + (RELLMatrix, PermutedMatrix)
    )
    def test_healthy_wrapper_passes(self, triples, cls):
        rows, cols, vals, shape = triples
        m = cls.from_coo(rows, cols, vals, shape)
        assert format_violations(m) == []
        assert format_violations(m, deep=True) == []

    def test_corrupt_perm_not_a_permutation(self, triples):
        rows, cols, vals, shape = triples
        m = RCSRMatrix.from_coo(rows, cols, vals, shape)
        m.perm[0] = m.perm[1]
        with pytest.raises(
            FormatInvariantError, match="not a permutation"
        ):
            check_format(m)

    def test_corrupt_inverse(self, triples):
        rows, cols, vals, shape = triples
        m = RCSRMatrix.from_coo(rows, cols, vals, shape)
        m.inv_perm[:] = np.roll(m.inv_perm, 1)
        with pytest.raises(
            FormatInvariantError, match="inv_perm is not the inverse"
        ):
            check_format(m)

    def test_corrupt_stored_core_is_attributed(self, triples):
        rows, cols, vals, shape = triples
        m = RSELLMatrix.from_coo(rows, cols, vals, shape)
        pad = np.nonzero(~m.stored._valid)[0]
        assert pad.size
        m.stored.data[pad[0]] = 1.0
        with pytest.raises(
            FormatInvariantError, match="stored SELL: padding slot"
        ):
            check_format(m)
