"""Table II storage-model tests: analytic formulas vs built matrices."""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, from_dense
from repro.formats.storage import (
    StorageModel,
    storage_elements_analytic,
    storage_max,
    storage_min,
)


def _stats(m):
    kw = dict(m=m.shape[0], n=m.shape[1], nnz=m.nnz)
    if m.name == "ELL":
        kw["mdim"] = m.mdim
    if m.name == "DIA":
        kw["ndig"] = m.ndig
    return kw


class TestAnalyticExact:
    def test_matches_built_matrices(self, small_sparse, banded):
        for a in (small_sparse, banded):
            for name in FORMAT_NAMES:
                m = from_dense(a, name)
                assert m.storage_elements() == storage_elements_analytic(
                    name, **_stats(m)
                ), name

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            storage_elements_analytic("XXX", m=1, n=1, nnz=0)


class TestTable2Bounds:
    """The Min/Max columns of Table II, checked against constructions."""

    @pytest.mark.parametrize("name", FORMAT_NAMES)
    def test_dense_matrix_hits_max(self, name, rng):
        m_, n_ = 12, 9
        a = rng.random((m_, n_)) + 1.0  # fully dense
        m = from_dense(a, name)
        assert m.storage_elements() == storage_max(name, m_, n_)

    def test_min_single_nnz(self):
        m_, n_ = 12, 9
        a = np.zeros((m_, n_))
        a[3, 4] = 1.0
        assert from_dense(a, "DEN").storage_elements() == m_ * n_
        assert from_dense(a, "CSR").storage_elements() == m_ + 3
        assert from_dense(a, "COO").storage_elements() == 3
        assert from_dense(a, "ELL").storage_elements() == 2 * m_
        assert from_dense(a, "DIA").storage_elements() == min(m_, n_) + 1

    @pytest.mark.parametrize("name", FORMAT_NAMES)
    def test_min_formula_matches(self, name):
        m_, n_ = 12, 9
        got = storage_min(name, m_, n_)
        a = np.zeros((m_, n_))
        a[3, 4] = 1.0
        assert from_dense(a, name).storage_elements() == got

    def test_max_ordering_matches_paper(self):
        # At full density: DEN < ELL < CSR < COO (the reason sparse
        # formats lose on gisette/epsilon/dna).
        m_, n_ = 100, 80
        assert (
            storage_max("DEN", m_, n_)
            < storage_max("ELL", m_, n_)
            < storage_max("CSR", m_, n_)
            < storage_max("COO", m_, n_)
        )


class TestByteModel:
    def test_bytes_match_backing_arrays_csr(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        model = StorageModel()
        est = model.bytes_for("CSR", m=40, n=30, nnz=m.nnz)
        assert est == m.storage_bytes()

    def test_bytes_match_backing_arrays_den(self, small_sparse):
        m = from_dense(small_sparse, "DEN")
        assert StorageModel().bytes_for(
            "DEN", m=40, n=30, nnz=m.nnz
        ) == m.storage_bytes()

    def test_bytes_coo(self, small_sparse):
        m = from_dense(small_sparse, "COO")
        assert StorageModel().bytes_for(
            "COO", m=40, n=30, nnz=m.nnz
        ) == m.storage_bytes()

    def test_unknown_format(self):
        with pytest.raises(ValueError):
            StorageModel().bytes_for("XXX", m=1, n=1, nnz=0)
