"""SELL-C slice storage: construction, kernels, storage, sanitizer.

The load-bearing claim everything else builds on: the SELL kernels
compress their padded product stream back to exactly CSR's product
array before reducing, so every result is *bitwise* identical to CSR —
stronger than ELL's documented 1-ULP tolerance.
"""

import numpy as np
import pytest

from repro.analysis import FormatInvariantError, check_format, format_violations
from repro.data.synthetic import powerlaw_rows_matrix
from repro.formats import from_dense
from repro.formats.csr import CSRMatrix
from repro.formats.sell import (
    DEFAULT_CHUNK,
    SELLMatrix,
    sell_storage_elements,
    slice_widths_for,
)
from repro.perf.counters import OpCounter


@pytest.fixture
def triples():
    return powerlaw_rows_matrix(
        100, 40, alpha=1.7, min_nnz=1, max_nnz=30, seed=3
    )


@pytest.fixture
def pair(triples):
    rows, cols, vals, shape = triples
    sell = SELLMatrix.from_coo(rows, cols, vals, shape)
    csr = CSRMatrix.from_coo(rows, cols, vals, shape)
    return sell, csr


class TestConstruction:
    def test_slice_widths_are_tight(self, pair):
        sell, _ = pair
        lengths = sell.row_lengths
        assert np.array_equal(
            sell.slice_widths, slice_widths_for(lengths, sell.chunk)
        )
        # every slice width is attained by some row in that slice
        m = sell.shape[0]
        for s, w in enumerate(sell.slice_widths):
            lo, hi = s * sell.chunk, min((s + 1) * sell.chunk, m)
            assert lengths[lo:hi].max(initial=0) == w

    def test_padding_slots_are_zero(self, pair):
        sell, _ = pair
        pad = ~sell._valid
        assert np.all(sell.data[pad] == 0.0)
        assert np.all(sell.indices[pad] == 0)

    @pytest.mark.parametrize("chunk", [1, 3, DEFAULT_CHUNK, 64, 1000])
    def test_any_chunk_roundtrips(self, triples, chunk):
        rows, cols, vals, shape = triples
        sell = SELLMatrix.from_coo(rows, cols, vals, shape, chunk=chunk)
        r2, c2, v2 = sell.to_coo()
        assert np.array_equal(r2, rows)
        assert np.array_equal(c2, cols)
        assert np.array_equal(v2, vals)

    def test_storage_accounting(self, pair):
        sell, _ = pair
        assert sell.storage_elements() == sell_storage_elements(
            sell.row_lengths, sell.chunk
        )
        assert sell.padded_elements >= sell.nnz
        assert sell.nnz == int(sell.row_lengths.sum())

    def test_rejects_bad_chunk(self, triples):
        rows, cols, vals, shape = triples
        with pytest.raises(ValueError):
            SELLMatrix.from_coo(rows, cols, vals, shape, chunk=0)


class TestKernelsBitwiseCSR:
    @pytest.mark.parametrize("chunk", [1, 4, DEFAULT_CHUNK, 17])
    def test_matvec_bitwise(self, triples, rng, chunk):
        rows, cols, vals, shape = triples
        sell = SELLMatrix.from_coo(rows, cols, vals, shape, chunk=chunk)
        csr = CSRMatrix.from_coo(rows, cols, vals, shape)
        x = rng.standard_normal(shape[1])
        assert np.array_equal(sell.matvec(x), csr.matvec(x))

    @pytest.mark.parametrize("k", [1, 2, 5])
    def test_matmat_bitwise(self, pair, rng, k):
        sell, csr = pair
        V = rng.standard_normal((sell.shape[1], k))
        assert np.array_equal(sell.matmat(V), csr.matmat(V))

    def test_row_and_norms_bitwise(self, pair):
        sell, csr = pair
        assert np.array_equal(sell.row_norms_sq(), csr.row_norms_sq())
        for i in range(sell.shape[0]):
            a, b = sell.row(i), csr.row(i)
            assert np.array_equal(a.indices, b.indices)
            assert np.array_equal(a.values, b.values)

    def test_counter_charges_padded_work(self, pair, rng):
        sell, _ = pair
        c = OpCounter()
        sell.matvec(rng.standard_normal(sell.shape[1]), c)
        assert c.flops == 2 * sell.padded_elements
        assert c.bytes_read > 0 and c.bytes_written > 0

    def test_matmat_reports_spmm(self, pair, rng):
        sell, _ = pair
        c = OpCounter()
        sell.matmat(rng.standard_normal((sell.shape[1], 3)), c)
        assert c.spmm_calls == 1 and c.spmm_columns == 3


class TestDegenerateShapes:
    def test_all_zero_matrix(self):
        m = from_dense(np.zeros((5, 4)), "SELL")
        assert m.nnz == 0 and m.padded_elements == 0
        assert np.array_equal(m.matvec(np.ones(4)), np.zeros(5))

    def test_zero_rows(self):
        m = from_dense(np.zeros((0, 4)), "SELL")
        assert m.n_slices == 0
        assert m.matvec(np.ones(4)).shape == (0,)

    def test_single_row(self, rng):
        a = rng.standard_normal((1, 9)) * (rng.random((1, 9)) < 0.5)
        m = from_dense(a, "SELL")
        x = rng.standard_normal(9)
        ref = from_dense(a, "CSR")
        assert np.array_equal(m.matvec(x), ref.matvec(x))

    def test_empty_rows_between_full_ones(self, rng):
        a = (rng.random((20, 8)) < 0.4) * rng.standard_normal((20, 8))
        a[0] = a[7] = a[19] = 0.0
        m = from_dense(a, "SELL")
        ref = from_dense(a, "CSR")
        x = rng.standard_normal(8)
        assert np.array_equal(m.matvec(x), ref.matvec(x))
        assert m.row(7).nnz == 0


class TestSanitizer:
    def test_healthy_matrix_passes(self, pair):
        sell, _ = pair
        assert format_violations(sell) == []
        assert format_violations(sell, deep=True) == []

    def test_corrupt_pad_value(self, pair):
        sell, _ = pair
        pad = np.nonzero(~sell._valid)[0]
        assert pad.size, "fixture must have at least one padding slot"
        sell.data[pad[0]] = 7.5
        with pytest.raises(FormatInvariantError, match="padding slot data"):
            check_format(sell)

    def test_corrupt_pad_index(self, pair):
        sell, _ = pair
        pad = np.nonzero(~sell._valid)[0]
        sell.indices[pad[0]] = 3
        with pytest.raises(
            FormatInvariantError, match="padding slot indices"
        ):
            check_format(sell)

    def test_corrupt_column_order(self, pair):
        sell, _ = pair
        # find a row with >= 2 entries and swap its first two columns
        lengths = sell.row_lengths
        r = int(np.nonzero(lengths >= 2)[0][0])
        lo = int(sell.row_starts[r])
        sell.indices[lo], sell.indices[lo + 1] = (
            int(sell.indices[lo + 1]),
            int(sell.indices[lo]),
        )
        with pytest.raises(
            FormatInvariantError, match="not strictly increasing"
        ):
            check_format(sell)

    def test_corrupt_index_out_of_range(self, pair):
        sell, _ = pair
        j = int(np.nonzero(sell._valid)[0][0])
        sell.indices[j] = sell.shape[1] + 2
        with pytest.raises(FormatInvariantError, match="out of range"):
            check_format(sell)
