"""SparseVector and shared MatrixFormat contract tests."""

import numpy as np
import pytest

from repro.formats import SparseVector
from repro.formats.base import validate_coo


class TestSparseVector:
    def test_from_dense_roundtrip(self, rng):
        x = rng.standard_normal(20)
        x[rng.random(20) < 0.5] = 0.0
        v = SparseVector.from_dense(x)
        assert np.array_equal(v.to_dense(), x)
        assert v.nnz == np.count_nonzero(x)
        assert len(v) == 20

    def test_empty_vector(self):
        v = SparseVector(np.array([], dtype=np.int32), np.array([]), 10)
        assert v.nnz == 0
        assert np.array_equal(v.to_dense(), np.zeros(10))

    def test_unsorted_indices_are_sorted(self):
        v = SparseVector(np.array([3, 1]), np.array([30.0, 10.0]), 5)
        assert list(v.indices) == [1, 3]
        assert list(v.values) == [10.0, 30.0]

    def test_duplicate_indices_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SparseVector(np.array([2, 2]), np.array([1.0, 2.0]), 5)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="out of range"):
            SparseVector(np.array([5]), np.array([1.0]), 5)
        with pytest.raises(ValueError, match="out of range"):
            SparseVector(np.array([-1]), np.array([1.0]), 5)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            SparseVector(np.array([1, 2]), np.array([1.0]), 5)

    def test_dot_matches_dense(self, rng):
        for _ in range(5):
            a = rng.standard_normal(30) * (rng.random(30) < 0.4)
            b = rng.standard_normal(30) * (rng.random(30) < 0.4)
            va, vb = SparseVector.from_dense(a), SparseVector.from_dense(b)
            assert va.dot(vb) == pytest.approx(float(a @ b))

    def test_dot_disjoint_supports_is_zero(self):
        a = SparseVector(np.array([0, 1]), np.array([1.0, 2.0]), 6)
        b = SparseVector(np.array([3, 4]), np.array([1.0, 2.0]), 6)
        assert a.dot(b) == 0.0

    def test_dot_dimension_mismatch(self):
        a = SparseVector(np.array([0]), np.array([1.0]), 5)
        b = SparseVector(np.array([0]), np.array([1.0]), 6)
        with pytest.raises(ValueError, match="dimension"):
            a.dot(b)

    def test_norm_sq(self, rng):
        x = rng.standard_normal(15)
        v = SparseVector.from_dense(x)
        assert v.norm_sq() == pytest.approx(float(x @ x))

    def test_scale(self):
        v = SparseVector(np.array([1, 3]), np.array([2.0, -4.0]), 5)
        w = v.scale(0.5)
        assert np.allclose(w.to_dense(), v.to_dense() * 0.5)
        # original untouched
        assert np.allclose(v.values, [2.0, -4.0])


class TestValidateCoo:
    def test_sorts_row_major(self):
        rows, cols, vals = validate_coo(
            np.array([1, 0, 1]),
            np.array([0, 2, 1]),
            np.array([10.0, 20.0, 30.0]),
            (2, 3),
        )
        assert list(rows) == [0, 1, 1]
        assert list(cols) == [2, 0, 1]
        assert list(vals) == [20.0, 10.0, 30.0]

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            validate_coo(
                np.array([0, 0]), np.array([1, 1]), np.array([1.0, 2.0]), (2, 2)
            )

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="row index"):
            validate_coo(np.array([5]), np.array([0]), np.array([1.0]), (2, 2))
        with pytest.raises(ValueError, match="column index"):
            validate_coo(np.array([0]), np.array([5]), np.array([1.0]), (2, 2))

    def test_rejects_ragged(self):
        with pytest.raises(ValueError, match="equal length"):
            validate_coo(np.array([0]), np.array([0, 1]), np.array([1.0]), (2, 2))


class TestSharedContract:
    """Contract checks run over all five formats via the fmt fixture."""

    def test_roundtrip_to_dense(self, small_sparse, matrix_in_fmt):
        assert np.allclose(matrix_in_fmt.to_dense(), small_sparse)

    def test_matvec_matches_dense(self, small_sparse, matrix_in_fmt, rng):
        x = rng.standard_normal(small_sparse.shape[1])
        assert np.allclose(matrix_in_fmt.matvec(x), small_sparse @ x)

    def test_matvec_rejects_bad_shape(self, matrix_in_fmt, rng):
        with pytest.raises(ValueError, match="matvec expects"):
            matrix_in_fmt.matvec(rng.standard_normal(7))

    def test_smsv_matches_dense(self, small_sparse, matrix_in_fmt, rng):
        xv = rng.standard_normal(small_sparse.shape[1])
        xv[rng.random(len(xv)) < 0.6] = 0.0
        v = __import__("repro.formats", fromlist=["SparseVector"]).SparseVector.from_dense(xv)
        assert np.allclose(matrix_in_fmt.smsv(v), small_sparse @ xv)

    def test_row_extraction(self, small_sparse, matrix_in_fmt):
        for i in (0, 7, small_sparse.shape[0] - 1):  # incl. empty row 7
            assert np.allclose(
                matrix_in_fmt.row(i).to_dense(), small_sparse[i]
            )

    def test_row_out_of_range(self, matrix_in_fmt):
        with pytest.raises(IndexError):
            matrix_in_fmt.row(matrix_in_fmt.shape[0])
        with pytest.raises(IndexError):
            matrix_in_fmt.row(-1)

    def test_row_norms(self, small_sparse, matrix_in_fmt):
        assert np.allclose(
            matrix_in_fmt.row_norms_sq(), (small_sparse**2).sum(axis=1)
        )

    def test_nnz_and_density(self, small_sparse, matrix_in_fmt):
        nnz = int(np.count_nonzero(small_sparse))
        assert matrix_in_fmt.nnz == nnz
        assert matrix_in_fmt.density == pytest.approx(
            nnz / small_sparse.size
        )

    def test_storage_bytes_positive(self, matrix_in_fmt):
        assert matrix_in_fmt.storage_bytes() > 0

    def test_counter_reports_traffic(self, matrix_in_fmt, rng):
        from repro.perf import OpCounter

        c = OpCounter()
        x = rng.standard_normal(matrix_in_fmt.shape[1])
        matrix_in_fmt.matvec(x, counter=c)
        assert c.flops > 0
        assert c.bytes_read > 0
        assert c.bytes_written > 0
