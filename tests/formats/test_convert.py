"""Conversion and scipy-interop tests."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.formats import (
    FORMAT_NAMES,
    convert,
    format_class,
    from_dense,
    from_scipy,
    to_scipy,
)


class TestConvert:
    def test_all_pairs_roundtrip(self, small_sparse):
        for src in FORMAT_NAMES:
            m = from_dense(small_sparse, src)
            for dst in FORMAT_NAMES:
                m2 = convert(m, dst)
                assert m2.name == dst
                assert np.allclose(m2.to_dense(), small_sparse), (src, dst)

    def test_identity_conversion_is_noop(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        assert convert(m, "CSR") is m
        assert convert(m, "csr") is m  # case-insensitive

    def test_unknown_format_rejected(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        with pytest.raises(ValueError, match="unknown format"):
            convert(m, "JDS")  # jagged diagonal: not implemented

    def test_format_class_lookup(self):
        for name in FORMAT_NAMES:
            assert format_class(name).name == name
            assert format_class(name.lower()).name == name

    def test_from_dense_rejects_1d(self):
        with pytest.raises(ValueError, match="2-D"):
            from_dense(np.zeros(5), "CSR")


class TestScipyInterop:
    def test_import_scipy_csr(self, small_sparse):
        s = sp.csr_matrix(small_sparse)
        m = from_scipy(s, "ELL")
        assert np.allclose(m.to_dense(), small_sparse)

    def test_import_scipy_with_duplicates(self):
        # scipy COO may carry duplicate coordinates; import must sum them.
        s = sp.coo_matrix(
            (np.array([1.0, 2.0]), (np.array([0, 0]), np.array([1, 1]))),
            shape=(2, 3),
        )
        m = from_scipy(s, "CSR")
        assert m.to_dense()[0, 1] == 3.0

    def test_export_matches(self, small_sparse):
        for name in FORMAT_NAMES:
            m = from_dense(small_sparse, name)
            s = to_scipy(m)
            assert np.allclose(s.toarray(), small_sparse)

    def test_matvec_agrees_with_scipy(self, small_sparse, rng):
        s = sp.csr_matrix(small_sparse)
        x = rng.standard_normal(small_sparse.shape[1])
        ref = s @ x
        for name in FORMAT_NAMES:
            m = from_dense(small_sparse, name)
            assert np.allclose(m.matvec(x), ref), name
