"""Derived formats (paper Section III-A): CSC and BCSR."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import (
    BCSRMatrix,
    CSCMatrix,
    SparseVector,
    convert,
    from_dense,
)


class TestCSC:
    def test_roundtrip(self, small_sparse):
        m = from_dense(small_sparse, "CSC")
        assert np.allclose(m.to_dense(), small_sparse)
        assert m.nnz == np.count_nonzero(small_sparse)

    def test_matvec(self, small_sparse, rng):
        m = from_dense(small_sparse, "CSC")
        x = rng.standard_normal(30)
        assert np.allclose(m.matvec(x), small_sparse @ x)

    def test_smsv_exploits_sparse_vector(self, small_sparse, rng):
        m = from_dense(small_sparse, "CSC")
        xv = rng.standard_normal(30)
        xv[rng.random(30) < 0.7] = 0.0
        v = SparseVector.from_dense(xv)
        assert np.allclose(m.smsv(v), small_sparse @ xv)

    def test_smsv_counter_proportional_to_support(self, small_sparse):
        from repro.perf import OpCounter

        m = from_dense(small_sparse, "CSC")
        # empty vector: zero flops
        c = OpCounter()
        m.smsv(SparseVector.from_dense(np.zeros(30)), counter=c)
        assert c.flops == 0

    def test_row_and_column_extraction(self, small_sparse):
        m = from_dense(small_sparse, "CSC")
        assert np.allclose(m.row(7).to_dense(), small_sparse[7])
        assert np.allclose(m.column(11).to_dense(), small_sparse[:, 11])
        assert np.allclose(m.column(3).to_dense(), small_sparse[:, 3])

    def test_storage_is_csr_transposed(self, small_sparse):
        csc = from_dense(small_sparse, "CSC")
        assert csc.storage_elements() == 2 * csc.nnz + 30 + 1

    def test_conversion_from_all_formats(self, small_sparse):
        for src in ("CSR", "COO", "DIA"):
            m = convert(from_dense(small_sparse, src), "CSC")
            assert isinstance(m, CSCMatrix)
            assert np.allclose(m.to_dense(), small_sparse)

    def test_validation(self):
        with pytest.raises(ValueError, match="col_ptr"):
            CSCMatrix(
                np.array([1.0]), np.array([0]), np.array([0, 0]), (2, 1)
            )


class TestBCSR:
    def test_roundtrip(self, small_sparse):
        m = from_dense(small_sparse, "BCSR")
        assert np.allclose(m.to_dense(), small_sparse)
        assert m.nnz == np.count_nonzero(small_sparse)

    def test_matvec(self, small_sparse, rng):
        m = from_dense(small_sparse, "BCSR")
        x = rng.standard_normal(30)
        assert np.allclose(m.matvec(x), small_sparse @ x)

    @pytest.mark.parametrize("block", [(1, 1), (2, 3), (4, 4), (8, 2)])
    def test_block_shapes(self, small_sparse, rng, block):
        rows, cols = np.nonzero(small_sparse)
        m = BCSRMatrix.from_coo(
            rows, cols, small_sparse[rows, cols], small_sparse.shape,
            block_shape=block,
        )
        x = rng.standard_normal(30)
        assert np.allclose(m.matvec(x), small_sparse @ x)
        assert np.allclose(m.to_dense(), small_sparse)

    def test_ragged_edges(self, rng):
        # Dimensions not divisible by the block: padding must be exact.
        a = (rng.random((10, 7)) < 0.4) * rng.standard_normal((10, 7))
        rows, cols = np.nonzero(a)
        m = BCSRMatrix.from_coo(rows, cols, a[rows, cols], a.shape,
                                block_shape=(4, 4))
        x = rng.standard_normal(7)
        assert np.allclose(m.matvec(x), a @ x)
        assert np.allclose(m.to_dense(), a)

    def test_row_extraction(self, small_sparse):
        m = from_dense(small_sparse, "BCSR")
        for i in (0, 7, 39):
            assert np.allclose(m.row(i).to_dense(), small_sparse[i])

    def test_fill_ratio_dense_blocks(self):
        # A block-diagonal matrix of full 4x4 blocks: fill ratio 1.
        a = np.kron(np.eye(5), np.ones((4, 4)))
        m = from_dense(a, "BCSR")
        assert m.fill_ratio == pytest.approx(1.0)
        assert m.n_blocks == 5

    def test_fill_ratio_scattered(self):
        # Scattered singletons: each opens a whole 4x4 block.
        a = np.zeros((16, 16))
        a[0, 0] = a[5, 9] = a[13, 2] = 1.0
        m = from_dense(a, "BCSR")
        assert m.fill_ratio == pytest.approx(3 / (3 * 16))

    def test_storage_accounting(self, small_sparse):
        m = from_dense(small_sparse, "BCSR")
        br, bc = m.block_shape
        n_brows = -(-40 // br)
        assert m.storage_elements() == (
            m.n_blocks * br * bc + m.n_blocks + n_brows + 1
        )

    def test_smsv(self, small_sparse, rng):
        m = from_dense(small_sparse, "BCSR")
        xv = rng.standard_normal(30) * (rng.random(30) < 0.5)
        v = SparseVector.from_dense(xv)
        assert np.allclose(m.smsv(v), small_sparse @ xv)

    def test_validation(self):
        with pytest.raises(ValueError, match="block dimensions"):
            BCSRMatrix.from_coo(
                np.array([0]), np.array([0]), np.array([1.0]), (2, 2),
                block_shape=(0, 1),
            )


@given(
    seed=st.integers(0, 2**16),
    density=st.floats(0.05, 0.9),
    fmt=st.sampled_from(["CSC", "BCSR"]),
)
@settings(max_examples=60, deadline=None)
def test_derived_formats_property(seed, density, fmt):
    rng = np.random.default_rng(seed)
    a = (rng.random((11, 9)) < density) * rng.standard_normal((11, 9))
    m = from_dense(a, fmt)
    assert np.allclose(m.to_dense(), a)
    x = rng.standard_normal(9)
    assert np.allclose(m.matvec(x), a @ x, atol=1e-9)
    for i in range(11):
        assert np.allclose(m.row(i).to_dense(), a[i])
