"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.race import (
    clear_race_reports,
    race_enabled,
    race_reports,
)
from repro.formats import FORMAT_NAMES, from_dense


@pytest.fixture(autouse=True, scope="session")
def _isolated_tune_cache(tmp_path_factory):
    """Pin the persisted tuning cache to a per-session temp file.

    The suite's scheduler and kernel expectations are written against
    the analytic defaults; a developer's real ``~/.cache/repro/
    tune.json`` must not leak warm entries into them, and tests that
    tune must not pollute the real cache.  Tests that need their own
    cache file repoint ``REPRO_TUNE_CACHE`` per-test (the process-wide
    handle re-resolves the path on every call).
    """
    import os

    from repro.tune.cache import reset_tune_cache

    prior = os.environ.get("REPRO_TUNE_CACHE")
    path = tmp_path_factory.mktemp("tune") / "tune.json"
    os.environ["REPRO_TUNE_CACHE"] = str(path)
    reset_tune_cache()
    yield
    if prior is None:
        os.environ.pop("REPRO_TUNE_CACHE", None)
    else:
        os.environ["REPRO_TUNE_CACHE"] = prior
    reset_tune_cache()


@pytest.fixture(autouse=True)
def _race_report_gate():
    """Under ``REPRO_RACE=1`` every test must leave the sanitizer clean.

    This is what makes the race shard (``make test-race``) a real
    gate: any test whose threads touch a tracked field under disjoint
    locksets fails *that test* with the rendered report, instead of
    the finding scrolling past in a summary.  Tests exercising the
    sanitizer's own detection use private ``RaceSanitizer`` instances,
    so the global one stays clean by construction.  Free when the env
    var is unset.
    """
    if not race_enabled():
        yield
        return
    clear_race_reports()
    yield
    reports = race_reports()
    clear_race_reports()  # one test's leak must not cascade
    assert not reports, (
        "lockset sanitizer found potential data races:\n"
        + "\n".join(f"  {r.render()}" for r in reports)
    )


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def small_sparse(rng) -> np.ndarray:
    """A 40x30 ~20%-dense matrix with at least one empty row/column."""
    a = (rng.random((40, 30)) < 0.2) * rng.standard_normal((40, 30))
    a[7, :] = 0.0  # empty row
    a[:, 11] = 0.0  # empty column
    return a


@pytest.fixture
def banded(rng) -> np.ndarray:
    """A 50x50 matrix with 5 occupied diagonals."""
    a = np.zeros((50, 50))
    for o in (-3, -1, 0, 1, 3):
        idx = np.arange(max(0, -o), min(50, 50 - o))
        a[idx, idx + o] = rng.standard_normal(idx.shape[0]) + 2.0
    return a


@pytest.fixture(params=FORMAT_NAMES)
def fmt_name(request) -> str:
    """Parametrises a test over all five storage formats."""
    return request.param


@pytest.fixture
def matrix_in_fmt(small_sparse, fmt_name):
    return from_dense(small_sparse, fmt_name)


def make_labels(rng: np.random.Generator, x: np.ndarray) -> np.ndarray:
    """Linearly separable ±1 labels for a dense feature matrix."""
    w = rng.standard_normal(x.shape[1])
    s = x @ w
    y = np.where(s > np.median(s), 1.0, -1.0)
    if np.all(y == y[0]):
        y[: len(y) // 2] = -y[0]
    return y
