"""ServedModel / InferenceEngine: flattening, bitwise contracts, swaps."""

import numpy as np
import pytest

from repro.perf.counters import OpCounter
from repro.serve import (
    EXACT_SERVE_FORMATS,
    InferenceEngine,
    PairSlice,
    ServedModel,
)
from repro.serve.loadgen import query_sampler
from repro.svm import SVC, MulticlassSVC
from repro.svm.kernels import make_kernel
from tests.conftest import make_labels


@pytest.fixture(scope="module")
def binary_fitted():
    rng = np.random.default_rng(11)
    x = rng.standard_normal((90, 7))
    y = make_labels(rng, x)
    return SVC("gaussian", gamma=0.4, C=2.0).fit(x, y), x


@pytest.fixture(scope="module")
def multiclass_fitted():
    rng = np.random.default_rng(12)
    centers = np.array([[2.0, 0, 0, 0, 0], [0, 2.0, 0, 0, 0],
                        [0, 0, 2.0, 0, 0]])
    x = np.vstack(
        [rng.standard_normal((30, 5)) * 0.6 + c for c in centers]
    )
    y = np.repeat([0.0, 1.0, 2.0], 30)
    return MulticlassSVC("gaussian", gamma=0.5, C=2.0).fit(x, y), x, y


@pytest.fixture(scope="module")
def queries():
    rng = np.random.default_rng(13)
    s = query_sampler(7, 4)
    return [s(rng) for _ in range(9)]


class TestServedModelConstruction:
    def test_from_svc_shapes(self, binary_fitted):
        clf, _x = binary_fitted
        m = ServedModel.from_svc(clf)
        assert m.n_support == clf.n_support
        assert m.n_pairs == 1
        assert m.classes is None
        assert m.pairs[0].bias == pytest.approx(clf.result_.b)

    def test_from_multiclass_shapes(self, multiclass_fitted):
        model, _x, _y = multiclass_fitted
        m = ServedModel.from_multiclass(model)
        assert m.n_pairs == 3  # 3 classes -> 3 pairwise models
        assert m.n_support == sum(
            len(pm.svc._sv_vectors) for pm in model.models_
        )
        # slices tile the arena exactly
        assert m.pairs[0].lo == 0
        for a, b in zip(m.pairs, m.pairs[1:]):
            assert a.hi == b.lo
        assert m.pairs[-1].hi == m.n_support

    def test_from_model_dispatch(self, binary_fitted, multiclass_fitted):
        assert ServedModel.from_model(binary_fitted[0]).classes is None
        assert ServedModel.from_model(
            multiclass_fitted[0]
        ).classes is not None
        with pytest.raises(TypeError, match="expected SVC"):
            ServedModel.from_model(object())

    def test_unfitted_rejected(self):
        with pytest.raises(RuntimeError):
            ServedModel.from_svc(SVC())
        with pytest.raises(RuntimeError):
            ServedModel.from_multiclass(MulticlassSVC())

    def test_coef_shape_validated(self):
        from repro.formats.csr import CSRMatrix

        matrix = CSRMatrix.from_coo(
            np.array([0]), np.array([0]), np.array([1.0]), (1, 2)
        )
        with pytest.raises(ValueError, match="coef shape"):
            ServedModel(
                matrix,
                np.ones(3),
                [PairSlice((1.0, -1.0), 0, 1, 0.0)],
                make_kernel("linear"),
            )


class TestBitwiseContracts:
    def test_batched_equals_single_per_format(self, binary_fitted, queries):
        engine = InferenceEngine(ServedModel.from_svc(binary_fitted[0]))
        for fmt in EXACT_SERVE_FORMATS:
            engine.convert_to(fmt)
            batched = engine.decision_function(queries)
            singles = np.stack([engine.decision_one(v) for v in queries])
            assert np.array_equal(batched, singles), fmt

    def test_cross_format_decisions_agree(self, multiclass_fitted):
        """Dense row/query overlaps: formats agree to 1 ULP, labels
        exactly.  (The multiclass training data is dense, so every
        stacked SV row is full-width — the regime where reduceat /
        bincount / einsum association orders can differ.)"""
        model = ServedModel.from_multiclass(multiclass_fitted[0])
        engine = InferenceEngine(model)
        rng = np.random.default_rng(14)
        s = query_sampler(model.n_features, 3)
        qs = [s(rng) for _ in range(8)]
        ref_dec = ref_lab = None
        for fmt in EXACT_SERVE_FORMATS:
            engine.convert_to(fmt)
            dec = engine.decision_function(qs)
            lab = engine.predict(qs)
            if ref_dec is None:
                ref_dec, ref_lab = dec, lab
            else:
                assert np.allclose(ref_dec, dec, rtol=0.0, atol=1e-12)
                assert np.array_equal(ref_lab, lab), fmt

    def test_cross_format_bitwise_on_sparse_workload(self):
        """Sparse overlaps (the serving regime): every format in the
        family produces the same bits."""
        from repro.serve.bench import flip_model

        model = flip_model(seed=1)
        sampler = query_sampler(model.n_features, 10)
        rng = np.random.default_rng(15)
        qs = [sampler(rng) for _ in range(32)]
        engine = InferenceEngine(model)
        reference = None
        for fmt in EXACT_SERVE_FORMATS:
            engine.convert_to(fmt)
            dec = engine.decision_function(qs)
            if reference is None:
                reference = dec
            else:
                assert np.array_equal(reference, dec), fmt

    def test_labels_match_training_stack(self, multiclass_fitted):
        model, x, _y = multiclass_fitted
        engine = InferenceEngine(ServedModel.from_multiclass(model))
        from repro.formats.convert import from_dense

        X = from_dense(x, "CSR")
        vectors = [X.row(i) for i in range(X.shape[0])]
        served = engine.predict(vectors)
        assert np.array_equal(served, model.predict(x))

    def test_binary_labels_are_pm_one(self, binary_fitted, queries):
        engine = InferenceEngine(ServedModel.from_svc(binary_fitted[0]))
        labels = engine.predict(queries)
        assert set(np.unique(labels)) <= {-1.0, 1.0}
        assert engine.predict_one(queries[0]) in (-1.0, 1.0)

    def test_empty_batch(self, binary_fitted):
        engine = InferenceEngine(ServedModel.from_svc(binary_fitted[0]))
        assert engine.decision_function([]).shape == (0, 1)
        assert engine.predict([]).shape == (0,)


class TestLayoutSwaps:
    def test_convert_to_swaps_and_reports(self, binary_fitted):
        engine = InferenceEngine(ServedModel.from_svc(binary_fitted[0]))
        assert engine.format == "CSR"
        assert engine.convert_to("ELL") is True
        assert engine.format == "ELL"
        assert engine.convert_to("ELL") is False

    def test_warm_cache_reuses_objects(self, binary_fitted):
        engine = InferenceEngine(ServedModel.from_svc(binary_fitted[0]))
        engine.convert_to("COO")
        first = engine.model.matrix
        engine.convert_to("CSR")
        engine.convert_to("COO")
        assert engine.model.matrix is first

    def test_clone_isolates_format_state(self, binary_fitted):
        base = ServedModel.from_svc(binary_fitted[0])
        a, b = base.clone(), base.clone()
        InferenceEngine(a).convert_to("ELL")
        assert a.matrix.name == "ELL"
        assert b.matrix.name == "CSR"
        # heavy arrays stay shared
        assert a.coef is b.coef
        assert a.sv_norms is b.sv_norms

    def test_counter_records_spmm(self, binary_fitted, queries):
        counter = OpCounter()
        engine = InferenceEngine(
            ServedModel.from_svc(binary_fitted[0]), counter=counter
        )
        engine.predict(queries)
        assert counter.spmm_calls == 1
        assert counter.spmm_columns == len(queries)
