"""Load generation and the virtual-time serving simulation."""

import numpy as np
import pytest

from repro.serve import (
    AdmissionController,
    FormatRescheduler,
    InferenceEngine,
    closed_loop,
    open_loop,
    phase_shift,
    query_sampler,
    replay_unbatched,
    simulate,
)
from repro.serve.bench import flip_model, synthetic_model


@pytest.fixture(scope="module")
def engine_model():
    return synthetic_model(150, 80, 8, seed=31)


def _sampler(n_features=80, nnz=6):
    return query_sampler(n_features, nnz)


class TestWorkloads:
    def test_open_loop_is_seeded_deterministic(self):
        a = open_loop(50, 500.0, _sampler(), seed=5)
        b = open_loop(50, 500.0, _sampler(), seed=5)
        assert [r.t for r in a.arrivals] == [r.t for r in b.arrivals]
        assert all(
            np.array_equal(x.vector.values, y.vector.values)
            for x, y in zip(a.arrivals, b.arrivals)
        )
        c = open_loop(50, 500.0, _sampler(), seed=6)
        assert [r.t for r in a.arrivals] != [r.t for r in c.arrivals]

    def test_open_loop_times_increase(self):
        w = open_loop(100, 1000.0, _sampler(), seed=1)
        ts = [r.t for r in w.arrivals]
        assert ts == sorted(ts)
        assert len(w) == 100

    def test_closed_loop_respects_concurrency_cycle(self):
        w = closed_loop(
            12, 3, _sampler(), service_ms=2.0, think_ms=1.0, seed=0
        )
        ts = [r.t for r in w.arrivals]
        assert ts == sorted(ts)
        # 3 clients at t=0, then reissues every 3 ms per client
        assert ts[:3] == [0.0, 0.0, 0.0]
        assert ts[3] == pytest.approx(0.003)

    def test_phase_shift_structure(self):
        w = phase_shift(
            _sampler(), singles=4, bursts=3, burst_size=5, seed=0
        )
        assert len(w) == 4 + 15
        burst_ts = [r.t for r in w.arrivals[4:9]]
        assert len(set(burst_ts)) == 1  # a burst arrives simultaneously

    def test_deadlines_attached(self):
        w = open_loop(5, 100.0, _sampler(), seed=0, deadline_ms=7.0)
        for r in w.arrivals:
            assert r.deadline == pytest.approx(r.t + 0.007)

    def test_validation(self):
        with pytest.raises(ValueError):
            open_loop(5, 0.0, _sampler())
        with pytest.raises(ValueError):
            closed_loop(5, 0, _sampler())
        with pytest.raises(ValueError):
            query_sampler(10, 0)


class TestSimulate:
    def test_every_request_answered_and_batched_equals_unbatched(
        self, engine_model
    ):
        engine = InferenceEngine(engine_model.clone())
        w = open_loop(60, 3000.0, _sampler(), seed=2)
        report = simulate(engine, w, max_batch=4, max_wait_ms=2.0)
        assert set(report.responses) == set(range(60))
        ref = replay_unbatched(
            InferenceEngine(engine_model.clone()), w
        )
        assert report.responses == ref  # exact float equality

    def test_simulation_is_replayable(self, engine_model):
        w = open_loop(40, 2000.0, _sampler(), seed=3)
        r1 = simulate(InferenceEngine(engine_model.clone()), w)
        r2 = simulate(InferenceEngine(engine_model.clone()), w)
        assert r1.responses == r2.responses
        assert r1.metrics.snapshot() == r2.metrics.snapshot()

    def test_wide_bursts_coalesce(self, engine_model):
        engine = InferenceEngine(engine_model.clone())
        w = phase_shift(
            _sampler(), singles=0, bursts=5, burst_size=8, seed=4
        )
        report = simulate(engine, w, max_batch=8, max_wait_ms=2.0)
        assert report.metrics.batch_histogram() == {8: 5}

    def test_paced_singles_serve_alone(self, engine_model):
        engine = InferenceEngine(engine_model.clone())
        w = phase_shift(
            _sampler(), singles=6, single_gap_ms=10.0, bursts=0, seed=4
        )
        report = simulate(engine, w, max_batch=8, max_wait_ms=2.0)
        assert report.metrics.batch_histogram() == {1: 6}
        # latency = pure coalescing wait = max_wait for a lone request
        assert max(report.metrics.latencies) <= 0.002 + 1e-12

    def test_backpressure_rejects_over_capacity(self, engine_model):
        engine = InferenceEngine(engine_model.clone())
        w = phase_shift(
            _sampler(), singles=0, bursts=1, burst_size=10, seed=5
        )
        adm = AdmissionController(capacity=4, shed_at=1.0)
        report = simulate(
            engine, w, max_batch=32, max_wait_ms=2.0, admission=adm
        )
        snap = report.metrics.snapshot()
        assert snap["rejected"] == 6
        assert snap["served"] == 4
        assert adm.in_flight == 0  # every admitted slot released

    def test_shedding_degrades_to_single_path(self, engine_model):
        engine = InferenceEngine(engine_model.clone())
        w = phase_shift(
            _sampler(), singles=0, bursts=1, burst_size=8, seed=6
        )
        adm = AdmissionController(capacity=8, shed_at=0.5)
        report = simulate(
            engine, w, max_batch=32, max_wait_ms=2.0, admission=adm
        )
        snap = report.metrics.snapshot()
        assert snap["degraded"] == 4
        assert snap["served"] == 8  # degraded answers still count
        # degraded answers equal the batched ones bitwise
        ref = replay_unbatched(
            InferenceEngine(engine_model.clone()), w
        )
        assert report.responses == ref

    def test_deadline_expiry_drops_requests(self, engine_model):
        engine = InferenceEngine(engine_model.clone())
        # lone requests with deadlines shorter than the coalescing wait
        w = phase_shift(
            _sampler(),
            singles=5,
            single_gap_ms=10.0,
            bursts=0,
            seed=7,
            deadline_ms=1.0,
        )
        report = simulate(engine, w, max_batch=8, max_wait_ms=5.0)
        snap = report.metrics.snapshot()
        assert snap["expired"] == 5
        assert snap["served"] == 0
        assert report.responses == {}


class TestMidStreamReschedule:
    def test_phase_shift_flips_format_and_stays_bitwise(self):
        model = flip_model(seed=1)
        # Unreordered family only: the demo crossover ELL -> COO does
        # not exist once RSELL is a candidate (it wins at every k; the
        # SELL-family flip is covered in test_sell_flip.py).
        resch = FormatRescheduler(
            window=32,
            check_every=8,
            min_gain=0.0,
            candidates=("CSR", "COO", "ELL", "DIA"),
        )
        fmt0 = resch.initial_format(model.matrix)
        engine = InferenceEngine(model)
        engine.convert_to(fmt0)
        w = phase_shift(
            query_sampler(model.n_features, 10),
            singles=16,
            bursts=16,
            burst_size=8,
            seed=8,
        )
        report = simulate(
            engine, w, max_batch=8, max_wait_ms=2.0, rescheduler=resch
        )
        assert report.events, "the batch-width shift must re-schedule"
        assert report.final_format != fmt0
        assert report.metrics.reschedules == len(report.events)
        pinned = InferenceEngine(model.clone())
        pinned.convert_to(fmt0)
        assert report.responses == replay_unbatched(pinned, w)
