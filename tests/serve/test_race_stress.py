"""Concurrency stress tests: format flips racing live inference.

The engine's publish-then-swap contract (``convert_to`` builds a new
immutable matrix and only swaps the reference under the lock; readers
grab the reference once per sweep) means a background re-scheduler
flipping formats mid-stream must be *bitwise* invisible within the
exact serving family.  These tests hammer that contract with a real
background thread — under ``REPRO_RACE=1`` the lockset sanitizer
additionally watches the swapped reference itself.
"""

import threading

import numpy as np
import pytest

from repro.data.synthetic import powerlaw_rows_matrix
from repro.formats import SparseVector
from repro.formats.csr import CSRMatrix
from repro.serve import (
    FormatRescheduler,
    InferenceEngine,
    PairSlice,
    ServedModel,
)
from repro.svm.kernels import make_kernel

#: Swaps in this subset are bitwise invisible on ANY overlap (their
#: kernels reduce exactly CSR's product array in CSR's order), so the
#: stress test can assert array_equal without sparsity caveats.
FLIP_FORMATS = ("CSR", "SELL", "RCSR", "RSELL")


def small_model(seed=0):
    rows, cols, vals, shape = powerlaw_rows_matrix(
        200, 80, alpha=1.5, min_nnz=3, max_nnz=40, seed=seed
    )
    X = CSRMatrix.from_coo(rows, cols, vals, shape)
    rng = np.random.default_rng(seed + 1)
    coef = rng.standard_normal(shape[0])
    pairs = [PairSlice(classes=(-1.0, 1.0), lo=0, hi=shape[0], bias=0.1)]
    return ServedModel(X, coef, pairs, make_kernel("gaussian", gamma=0.25))


def queries(n, dim, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        xv = rng.standard_normal(dim) * (rng.random(dim) < 0.3)
        out.append(SparseVector.from_dense(xv))
    return out


class TestFlipStress:
    def test_background_flips_are_bitwise_invisible(self):
        engine = InferenceEngine(small_model())
        q = queries(6, 80, seed=7)
        reference = engine.decision_function(q)

        stop = threading.Event()
        flips = {"n": 0}

        def flipper():
            i = 0
            while not stop.is_set():
                fmt = FLIP_FORMATS[i % len(FLIP_FORMATS)]
                if engine.convert_to(fmt):
                    flips["n"] += 1
                i += 1

        t = threading.Thread(target=flipper, name="flipper")
        t.start()
        try:
            for _ in range(60):
                got = engine.decision_function(q)
                assert np.array_equal(got, reference)
                one = engine.decision_one(q[0])
                assert np.array_equal(one, reference[0])
        finally:
            stop.set()
            t.join()
        # the thread really was flipping under us, not idling
        assert flips["n"] > 0

    def test_rescheduler_driven_flips_under_concurrent_reads(self):
        """The full serve loop shape: reads + rescheduler on threads."""
        engine = InferenceEngine(small_model(seed=3))
        resched = FormatRescheduler(window=8, check_every=2, min_gain=0.0)
        q = queries(8, 80, seed=5)
        reference = engine.decision_function(q)

        errors = []
        done = threading.Barrier(3)

        def reader():
            try:
                for _ in range(40):
                    got = engine.decision_function(q)
                    if not np.array_equal(got, reference):
                        errors.append("reader saw a torn batch")
                        return
            finally:
                done.wait(timeout=30)

        def policy():
            try:
                for _ in range(40):
                    e = resched.after_batch(len(q), engine._matrix())
                    if e is not None:
                        engine.convert_to(e.to_fmt)
            finally:
                done.wait(timeout=30)

        threads = [
            threading.Thread(target=reader, name="reader-1"),
            threading.Thread(target=reader, name="reader-2"),
            threading.Thread(target=policy, name="policy"),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert engine.format in FLIP_FORMATS + ("COO", "ELL", "DIA")

    def test_warm_cache_flip_back_is_the_same_object(self):
        engine = InferenceEngine(small_model())
        assert engine.convert_to("SELL")
        sell = engine._matrix()
        assert engine.convert_to("CSR")
        assert engine.convert_to("SELL")
        assert engine._matrix() is sell

    def test_concurrent_converts_to_same_format_build_once(self):
        engine = InferenceEngine(small_model())
        barrier = threading.Barrier(6)
        results = []
        lock = threading.Lock()

        def convert():
            barrier.wait()
            changed = engine.convert_to("RSELL")
            with lock:
                results.append(changed)

        threads = [threading.Thread(target=convert) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # exactly one thread performed the swap; the rest saw it done
        assert sum(results) == 1
        assert engine.format == "RSELL"


class TestSharedRescheduler:
    def test_concurrent_after_batch_counts_every_batch(self):
        model = small_model()
        resched = FormatRescheduler(window=64, check_every=1000)
        matrix = model.matrix
        resched.initial_format(matrix)
        n_threads, per_thread = 8, 25
        barrier = threading.Barrier(n_threads)

        def feed():
            barrier.wait()
            for _ in range(per_thread):
                resched.after_batch(4, matrix)

        threads = [threading.Thread(target=feed) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # _batches_seen increments under the policy lock: no lost
        # updates.  (Read under the lock too — the lockset sanitizer
        # cannot see the join() happens-before edge.)
        with resched._lock:
            assert resched._batches_seen == n_threads * per_thread
