"""Front-door routing: shard table, least-loaded dispatch, hot spots."""

import pytest

from repro.serve.router import (
    HotSpot,
    HotSpotDetector,
    Router,
    ShardTable,
)


class TestShardTable:
    def test_place_and_replicas(self):
        table = ShardTable(3)
        assert table.place("m", 2)
        assert table.place("m", 0)
        assert not table.place("m", 2)  # already there
        assert table.replicas("m") == (0, 2)  # sorted
        assert table.models() == ("m",)
        assert table.models_on(2) == ("m",)
        assert table.models_on(1) == ()

    def test_place_rejects_out_of_range(self):
        table = ShardTable(2)
        with pytest.raises(ValueError):
            table.place("m", 2)
        with pytest.raises(ValueError):
            table.place("m", -1)

    def test_acquire_picks_least_loaded_ties_low(self):
        table = ShardTable(3)
        table.place("m", 0)
        table.place("m", 2)
        # All counts zero: tie breaks to the lowest shard id.
        assert table.acquire("m") == 0
        # Shard 0 now has one outstanding: 2 is least loaded.
        assert table.acquire("m") == 2
        # Tied again at 1 each: back to the lowest id.
        assert table.acquire("m") == 0
        assert table.outstanding() == (2, 0, 1)

    def test_release_decrements_and_clamps(self):
        table = ShardTable(2)
        table.place("m", 1)
        table.acquire("m")
        table.release(1)
        assert table.outstanding() == (0, 0)
        table.release(1, 5)  # over-release clamps at zero
        assert table.outstanding() == (0, 0)

    def test_acquire_unknown_model_raises(self):
        table = ShardTable(2)
        with pytest.raises(KeyError):
            table.acquire("ghost")

    def test_acquire_is_deterministic(self):
        """Same placement + same dispatch sequence = same routing."""

        def run():
            table = ShardTable(3)
            for shard in (0, 1, 2):
                table.place("m", shard)
            out = [table.acquire("m") for _ in range(10)]
            table.release(out[0])
            out.append(table.acquire("m"))
            return out

        assert run() == run()

    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError):
            ShardTable(0)


class TestHotSpotDetector:
    def test_single_shard_never_fires(self):
        det = HotSpotDetector(1, window=8, check_every=2, threshold=1.5)
        assert all(
            det.observe("m", 0) is None for _ in range(16)
        )

    def test_skewed_traffic_fires_and_names_dominant_model(self):
        det = HotSpotDetector(2, window=16, check_every=4, threshold=1.5)
        hot = None
        for _ in range(8):
            hot = det.observe("m", 0) or hot
        assert isinstance(hot, HotSpot)
        assert hot.hot_shard == 0
        assert hot.cold_shard == 1
        assert hot.model == "m"
        assert hot.imbalance >= 1.5

    def test_balanced_traffic_stays_quiet(self):
        det = HotSpotDetector(2, window=16, check_every=4, threshold=1.5)
        for i in range(32):
            assert det.observe("m", i % 2) is None

    def test_only_checks_every_n_observations(self):
        det = HotSpotDetector(2, window=16, check_every=8, threshold=1.5)
        for i in range(7):
            assert det.observe("m", 0) is None
        assert det.observe("m", 0) is not None

    def test_dominant_model_on_hot_shard(self):
        det = HotSpotDetector(2, window=16, check_every=16, threshold=1.2)
        hot = None
        for _ in range(5):
            det.observe("a", 0)
        for _ in range(11):  # the 16th observation runs the check
            hot = det.observe("b", 0) or hot
        assert hot is not None
        assert hot.model == "b"

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            HotSpotDetector(0)
        with pytest.raises(ValueError):
            HotSpotDetector(4, window=2)
        with pytest.raises(ValueError):
            HotSpotDetector(2, check_every=0)
        with pytest.raises(ValueError):
            HotSpotDetector(2, threshold=1.0)


class TestRouter:
    def test_dispatch_routes_and_reports(self):
        table = ShardTable(2)
        table.place("m", 0)
        table.place("m", 1)
        det = HotSpotDetector(2, window=8, check_every=2, threshold=1.5)
        router = Router(table, det)
        shard, _ = router.dispatch("m")
        assert shard == 0
        shard, _ = router.dispatch("m")
        assert shard == 1  # least-loaded alternation
        router.complete(0)
        router.complete(1)
        assert table.outstanding() == (0, 0)

    def test_router_without_detector(self):
        table = ShardTable(1)
        table.place("m", 0)
        router = Router(table)
        shard, hotspot = router.dispatch("m")
        assert shard == 0
        assert hotspot is None
