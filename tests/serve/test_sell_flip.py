"""Mid-stream re-scheduling into the SELL family stays bitwise exact."""

import numpy as np
import pytest

from repro.data.synthetic import powerlaw_rows_matrix
from repro.formats import SparseVector
from repro.formats.csr import CSRMatrix
from repro.serve import (
    EXACT_SERVE_FORMATS,
    FormatRescheduler,
    InferenceEngine,
    PairSlice,
    ServedModel,
)
from repro.svm.kernels import make_kernel


def highvar_model(seed=0):
    """A served binary model whose SV arena is heavy-tailed."""
    rows, cols, vals, shape = powerlaw_rows_matrix(
        500, 120, alpha=1.5, min_nnz=4, max_nnz=100, seed=seed
    )
    X = CSRMatrix.from_coo(rows, cols, vals, shape)
    rng = np.random.default_rng(seed + 1)
    coef = rng.standard_normal(shape[0])
    pairs = [PairSlice(classes=(-1.0, 1.0), lo=0, hi=shape[0], bias=0.3)]
    return ServedModel(X, coef, pairs, make_kernel("gaussian", gamma=0.2))


def queries(n, dim, k, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        xv = rng.standard_normal(dim) * (rng.random(dim) < 0.3)
        out.append(SparseVector.from_dense(xv))
    return out


class TestSellFamilyInServe:
    def test_initial_format_can_pick_a_sorted_layout(self):
        model = highvar_model()
        fmt = FormatRescheduler().initial_format(model.matrix)
        assert fmt in ("RCSR", "RSELL", "SELL")

    def test_convert_to_sell_family_is_bitwise_invisible(self):
        model = highvar_model()
        engine = InferenceEngine(model)
        q = queries(6, 120, 4, seed=9)
        want = engine.decision_function(q)
        for fmt in ("SELL", "RCSR", "RSELL"):
            assert engine.convert_to(fmt)
            got = engine.decision_function(q)
            assert np.array_equal(got, want), fmt
            assert engine.convert_to("CSR")

    def test_rescheduler_flips_stream_into_sorted_layout(self):
        model = highvar_model(seed=3)
        engine = InferenceEngine(model)
        resched = FormatRescheduler(
            window=16, check_every=4, min_gain=0.0
        )
        # pin the starting layout to CSR deliberately: the stream of
        # wide batches must pull the engine into a sorted layout.
        assert engine.format == "CSR"
        q = queries(8, 120, 8, seed=5)
        reference = engine.decision_function(q)

        events = []
        for _ in range(16):
            engine.decision_function(q)
            e = resched.after_batch(len(q), engine._matrix())
            if e is not None:
                events.append(e)
                engine.convert_to(e.to_fmt)

        assert events, "high-variance arena must trigger a flip"
        assert events[0].from_fmt == "CSR"
        assert events[0].to_fmt in ("RCSR", "RSELL", "SELL")
        # after the flip the served answers are still bitwise the same
        assert np.array_equal(engine.decision_function(q), reference)

    def test_exact_serve_set_includes_sell_family(self):
        assert {"SELL", "RCSR", "RSELL"} <= set(EXACT_SERVE_FORMATS)

    def test_warm_cache_returns_identical_object(self):
        model = highvar_model()
        engine = InferenceEngine(model)
        engine.convert_to("RSELL")
        first = engine._matrix()
        engine.convert_to("CSR")
        engine.convert_to("RSELL")
        assert engine._matrix() is first

    def test_single_vector_path_bitwise_across_flip(self):
        model = highvar_model(seed=7)
        engine = InferenceEngine(model)
        v = queries(1, 120, 1, seed=2)[0]
        want = engine.decision_one(v)
        engine.convert_to("RSELL")
        assert np.array_equal(engine.decision_one(v), want)
