"""Distributed tracing through the fleet, end to end.

Real worker processes: the door ships a ``TraceContext`` with every
predict verb, workers record spans into their own rings, and
``merged_trace`` pulls everything home into one timeline.  The
merge mechanics themselves are unit-pinned in
``tests/obs/test_collect.py``; these tests pin the live protocol —
and that observation never changes an answer.
"""

from __future__ import annotations

import pytest

from repro.obs.audit import audit_log
from repro.obs.trace import (
    CTX_PARENT_SPAN,
    DOOR_LANE,
    get_tracer,
)
from repro.serve.bench_fleet import (
    STRONG_BITWISE_FORMATS,
    flip_fleet_models,
)
from repro.serve.fleet import ServingFleet, simulate_fleet

from .test_fleet import (
    assert_bitwise_vs_replay,
    tenant_workload,
    two_models,
)

DOOR_SPANS = ("fleet.request", "fleet.request_one")


@pytest.fixture
def door_tracer():
    """Global tracer on and clean; prior state restored after."""
    tracer = get_tracer()
    prev = tracer.enabled
    tracer.clear()
    audit_log().clear()
    tracer.enable()
    yield tracer
    tracer.clear()
    audit_log().clear()
    tracer.enabled = prev


def assert_cross_parents_resolve(merged):
    by_id = {s.span_id: s for s in merged.spans}
    cross = 0
    for s in merged.spans:
        if merged.lanes[s.span_id] == DOOR_LANE:
            continue
        if CTX_PARENT_SPAN not in dict(s.attrs):
            continue
        cross += 1
        parent = by_id[s.parent_id]
        assert parent.name in DOOR_SPANS
        assert merged.lanes[parent.span_id] == DOOR_LANE
    assert cross > 0
    return cross


class TestProcessFleetTracing:
    def test_merged_timeline_covers_every_worker(self, door_tracer):
        models = two_models()
        workload = tenant_workload(n=120)
        with ServingFleet(models, 2, backend="process") as fleet:
            fleet.enable_worker_tracing()
            report = simulate_fleet(fleet, workload)
            merged = fleet.merged_trace()
        assert report.metrics.served > 0
        assert merged.worker_lanes() == [1, 2]
        assert merged.unresolved == 0
        assert_cross_parents_resolve(merged)
        # Lane labels carry real worker pids, all distinct.
        assert len(set(merged.pids.values())) == 3

    def test_traced_answers_stay_bitwise(self, door_tracer):
        models = two_models()
        workload = tenant_workload(n=120)
        with ServingFleet(models, 2, backend="process") as fleet:
            fleet.enable_worker_tracing()
            report = simulate_fleet(fleet, workload)
        assert_bitwise_vs_replay(models, workload, report)

    def test_killed_worker_yields_partial_trace(self, door_tracer):
        models = two_models()
        workload = tenant_workload(n=120)
        fleet = ServingFleet(models, 2, backend="process")
        try:
            fleet.enable_worker_tracing()
            simulate_fleet(fleet, workload)
            fleet.shards[1].kill()
            merged = fleet.merged_trace()
        finally:
            fleet.close()
        # The survivor's lane is present; the dead worker simply
        # contributes nothing and the merge stays total.
        assert merged.worker_lanes() == [1]
        assert_cross_parents_resolve(merged)

    def test_worker_audit_records_fold_back(self, door_tracer):
        models = flip_fleet_models(smoke=True)
        n_features = models["alpha"].n_features
        workload = tenant_workload(
            n=200, seed=11, n_features=n_features
        )
        with ServingFleet(
            models,
            2,
            backend="process",
            initial_formats={k: "CSR" for k in models},
            rescheduler={
                "window": 16,
                "check_every": 4,
                "min_gain": 0.0,
                "candidates": STRONG_BITWISE_FORMATS,
            },
        ) as fleet:
            fleet.enable_worker_tracing()
            report = simulate_fleet(fleet, workload)
            fleet.merged_trace(fold_audit=True)
        assert report.events, "heavy-tailed arenas must trigger flips"
        # The worker processes' reschedule decisions now sit in the
        # door's audit log — regret reporting covers per-replica flips.
        serve_records = [
            r for r in audit_log().records() if r.source == "serve"
        ]
        assert len(serve_records) >= len(report.events)
        assert all(r.chosen for r in serve_records)


class TestLocalBackendSharing:
    def test_trace_verbs_are_noops_for_local_shards(self, door_tracer):
        # Local shards share the door's tracer: their spans are
        # already in the door's ring (lane 0), so trace_collect must
        # ship nothing or every span would be counted twice.
        models = two_models()
        workload = tenant_workload(n=80)
        with ServingFleet(models, 2, backend="local") as fleet:
            fleet.enable_worker_tracing()
            simulate_fleet(fleet, workload)
            buffers = fleet.collect_traces()
            merged = fleet.merged_trace()
        assert all(len(b.spans) == 0 for b in buffers)
        assert merged.worker_lanes() == []
        names = {s.name for s in merged.spans}
        assert "fleet.request" in names or "fleet.request_one" in names
        assert "fleet.worker.predict" in names

    def test_untraced_fleet_ships_no_spans(self):
        tracer = get_tracer()
        prev = tracer.enabled
        tracer.disable()
        tracer.clear()
        try:
            models = two_models()
            workload = tenant_workload(n=80)
            with ServingFleet(models, 2, backend="process") as fleet:
                simulate_fleet(fleet, workload)
                merged = fleet.merged_trace()
            assert merged.spans == []
            assert merged.worker_lanes() == []
        finally:
            tracer.clear()
            tracer.enabled = prev
