"""ModelRegistry: versioning, dispatch, warm served-model cache."""

import numpy as np
import pytest

from repro.serve import InferenceEngine, ModelRegistry
from repro.svm import SVC, MulticlassSVC
from tests.conftest import make_labels


@pytest.fixture(scope="module")
def fitted_svc():
    rng = np.random.default_rng(21)
    x = rng.standard_normal((80, 6))
    y = make_labels(rng, x)
    return SVC("gaussian", gamma=0.3).fit(x, y), x


@pytest.fixture(scope="module")
def fitted_multiclass():
    rng = np.random.default_rng(22)
    x = np.vstack(
        [rng.standard_normal((25, 4)) + c for c in ([2, 0, 0, 0],
                                                    [0, 2, 0, 0],
                                                    [0, 0, 2, 0])]
    )
    y = np.repeat([0.0, 1.0, 2.0], 25)
    return MulticlassSVC("gaussian", gamma=0.5).fit(x, y), x


class TestVersioning:
    def test_register_assigns_monotonic_versions(self, fitted_svc, tmp_path):
        clf, _x = fitted_svc
        reg = ModelRegistry(tmp_path)
        assert reg.register("spam", clf) == 1
        assert reg.register("spam", clf) == 2
        assert reg.versions("spam") == [1, 2]
        assert reg.latest("spam") == 2
        assert reg.models() == ["spam"]

    def test_unknown_model_raises(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        with pytest.raises(KeyError):
            reg.latest("nope")
        with pytest.raises(KeyError):
            reg.load("nope", 1)

    def test_invalid_names_rejected(self, tmp_path):
        reg = ModelRegistry(tmp_path)
        for bad in ("", "../evil", "a b", ".hidden"):
            with pytest.raises(ValueError, match="invalid model name"):
                reg.versions(bad)

    def test_register_rejects_foreign_objects(self, tmp_path):
        with pytest.raises(TypeError, match="expected SVC"):
            ModelRegistry(tmp_path).register("x", object())


class TestLoadAndServe:
    def test_round_trip_both_kinds(
        self, fitted_svc, fitted_multiclass, tmp_path
    ):
        reg = ModelRegistry(tmp_path)
        svc, x_b = fitted_svc
        mc, x_m = fitted_multiclass
        reg.register("binary", svc)
        reg.register("multi", mc)
        assert np.array_equal(
            reg.load("binary").predict(x_b), svc.predict(x_b)
        )
        assert np.array_equal(
            reg.load("multi").predict(x_m), mc.predict(x_m)
        )

    def test_serve_flattens_and_caches(self, fitted_svc, tmp_path):
        reg = ModelRegistry(tmp_path)
        clf, _x = fitted_svc
        reg.register("m", clf)
        a = reg.serve("m")
        b = reg.serve("m")
        # clones of one warm entry: distinct objects, shared arrays
        assert a is not b
        assert a.coef is b.coef
        assert a.n_support == clf.n_support

    def test_served_clones_do_not_share_format_state(
        self, fitted_svc, tmp_path
    ):
        reg = ModelRegistry(tmp_path)
        reg.register("m", fitted_svc[0])
        a = reg.serve("m")
        b = reg.serve("m")
        InferenceEngine(a).convert_to("COO")
        assert a.matrix.name == "COO"
        assert b.matrix.name == "CSR"

    def test_serve_specific_version(self, fitted_svc, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.register("m", fitted_svc[0])
        reg.register("m", fitted_svc[0])
        assert reg.serve("m", 1).n_support == fitted_svc[0].n_support

    def test_evict_clears_cache(self, fitted_svc, tmp_path):
        reg = ModelRegistry(tmp_path)
        reg.register("m", fitted_svc[0])
        a = reg.serve("m")
        reg.evict("m")
        b = reg.serve("m")
        assert a.coef is not b.coef  # rebuilt from disk
        reg.serve("m")
        reg.evict()
        assert reg._served_cache == {}
