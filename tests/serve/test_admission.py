"""Admission control: verdicts, backpressure, deadline semantics."""

import threading

import numpy as np
import pytest

from repro.formats.base import SparseVector
from repro.serve import AdmissionController, Request, Verdict


def _vec():
    return SparseVector(np.array([0], dtype=np.int32), np.array([1.0]), 4)


class TestVerdicts:
    def test_accept_until_shed_threshold(self):
        a = AdmissionController(capacity=4, shed_at=0.5)
        assert a.admit() is Verdict.ACCEPTED  # 1/4
        assert a.admit() is Verdict.ACCEPTED  # 2/4 == 0.5, not above
        assert a.admit() is Verdict.DEGRADED  # 3/4
        assert a.admit() is Verdict.DEGRADED  # 4/4
        assert a.admit() is Verdict.REJECTED  # full

    def test_shed_at_one_disables_degradation(self):
        a = AdmissionController(capacity=2, shed_at=1.0)
        assert a.admit() is Verdict.ACCEPTED
        assert a.admit() is Verdict.ACCEPTED
        assert a.admit() is Verdict.REJECTED

    def test_release_reopens_slots(self):
        a = AdmissionController(capacity=1, shed_at=1.0)
        assert a.admit() is Verdict.ACCEPTED
        assert a.admit() is Verdict.REJECTED
        a.release()
        assert a.admit() is Verdict.ACCEPTED

    def test_occupancy(self):
        a = AdmissionController(capacity=4)
        a.admit()
        a.admit()
        assert a.occupancy == pytest.approx(0.5)
        assert a.in_flight == 2


class TestValidation:
    def test_bad_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            AdmissionController(capacity=0)

    def test_bad_shed_at(self):
        with pytest.raises(ValueError, match="shed_at"):
            AdmissionController(shed_at=0.0)
        with pytest.raises(ValueError, match="shed_at"):
            AdmissionController(shed_at=1.5)

    def test_over_release_raises(self):
        a = AdmissionController(capacity=2)
        a.admit()
        with pytest.raises(RuntimeError, match="exceeds"):
            a.release(2)


class TestDeadlines:
    def test_expiry_is_checked_against_now(self):
        r = Request(0, _vec(), arrived_at=1.0, deadline=1.5)
        assert not r.expired(1.5)
        assert r.expired(1.6)

    def test_no_deadline_never_expires(self):
        r = Request(0, _vec(), arrived_at=1.0)
        assert not r.expired(1e9)


class TestConcurrency:
    def test_slots_never_exceed_capacity_under_contention(self):
        a = AdmissionController(capacity=16, shed_at=1.0)
        admitted = []
        lock = threading.Lock()

        def worker():
            got = 0
            for _ in range(200):
                v = a.admit()
                if v is not Verdict.REJECTED:
                    got += 1
            with lock:
                admitted.append(got)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sum(admitted) == 16  # exactly capacity slots were granted
        assert a.in_flight == 16
        a.release(16)
        assert a.in_flight == 0
