"""The serving fleet: bitwise contract, zero-copy, admission, scaling.

Most tests run the ``local`` backend — the identical wire protocol
(everything still round-trips through pickle, bytes still counted)
without process startup cost; a small set exercises real worker
processes end to end.
"""

import numpy as np
import pytest

from repro.serve.admission import AdmissionController
from repro.serve.bench import synthetic_model
from repro.serve.bench_fleet import (
    STRONG_BITWISE_FORMATS,
    flip_fleet_models,
)
from repro.serve.engine import InferenceEngine
from repro.serve.fleet import ServingFleet, simulate_fleet
from repro.serve.loadgen import (
    TenantSpec,
    Workload,
    multi_tenant,
    open_loop,
    query_sampler,
    replay_unbatched,
)
from repro.serve.shm import leaked_segments

N_FEATURES = 64


def two_models():
    return {
        "alpha": synthetic_model(
            n_sv=100, n_features=N_FEATURES, row_nnz=6, seed=1
        ),
        "beta": synthetic_model(
            n_sv=80, n_features=N_FEATURES, row_nnz=8, seed=2
        ),
    }


def tenant_workload(n=160, seed=7, n_features=N_FEATURES):
    sampler = query_sampler(n_features, 5)
    return multi_tenant(
        [
            TenantSpec(
                "t-a", "alpha", n=n, rate_rps=12_000.0,
                pattern="bursty", period_s=0.01,
            ),
            TenantSpec(
                "t-b", "beta", n=2 * n // 3, rate_rps=8_000.0,
                pattern="diurnal", period_s=0.02,
            ),
        ],
        sampler,
        seed=seed,
    )


def assert_bitwise_vs_replay(models, workload, report):
    """Labels AND decision values vs per-model unbatched replays."""
    default_key = sorted(models)[0]
    for key, model in models.items():
        pinned = InferenceEngine(model.clone())
        sub = [
            r for r in workload.arrivals
            if (r.model or default_key) == key
        ]
        reference = replay_unbatched(pinned, Workload("ref", sub))
        for req in sub:
            if req.req_id not in report.responses:
                continue
            assert report.responses[req.req_id] == reference[req.req_id]
            assert np.array_equal(
                report.decisions[req.req_id],
                pinned.decision_one(req.vector),
            )


class TestBitwiseContract:
    @pytest.mark.parametrize("n_workers", [1, 2, 3])
    @pytest.mark.parametrize("max_batch", [1, 4, 8])
    def test_every_interleaving_matches_replay(self, n_workers, max_batch):
        """Routing/batching interleavings never change any answer."""
        models = two_models()
        workload = tenant_workload()
        with ServingFleet(models, n_workers, backend="local") as fleet:
            report = simulate_fleet(fleet, workload, max_batch=max_batch)
        assert report.metrics.served == len(workload)
        assert_bitwise_vs_replay(models, workload, report)

    def test_mid_stream_replica_flips_stay_bitwise(self):
        """Per-replica re-schedules fire and stay invisible."""
        models = flip_fleet_models(smoke=True)
        n_features = models["alpha"].n_features
        workload = tenant_workload(n=200, seed=11, n_features=n_features)
        with ServingFleet(
            models,
            2,
            backend="local",
            initial_formats={k: "CSR" for k in models},
            rescheduler={
                "window": 16,
                "check_every": 4,
                "min_gain": 0.0,
                "candidates": STRONG_BITWISE_FORMATS,
            },
        ) as fleet:
            report = simulate_fleet(fleet, workload)
        assert report.events, "heavy-tailed arenas must trigger flips"
        for _key, _shard, event in report.events:
            assert event.to_fmt in STRONG_BITWISE_FORMATS
        assert_bitwise_vs_replay(models, workload, report)

    def test_replicas_may_diverge_in_format(self):
        """Two replicas of one model may settle on different layouts."""
        models = flip_fleet_models(smoke=True)
        n_features = models["alpha"].n_features
        workload = tenant_workload(n=200, seed=13, n_features=n_features)
        with ServingFleet(
            models,
            2,
            backend="local",
            initial_formats={k: "CSR" for k in models},
            rescheduler={
                "window": 16,
                "check_every": 4,
                "min_gain": 0.0,
                "candidates": STRONG_BITWISE_FORMATS,
            },
        ) as fleet:
            report = simulate_fleet(fleet, workload)
            formats = fleet.snapshot().formats
        per_model = {}
        for _wid, fmts in formats.items():
            for key, fmt in fmts.items():
                per_model.setdefault(key, set()).add(fmt)
        # At least one model is replicated; divergence is allowed (not
        # required — the assertion is that *answers* never differ).
        assert any(len(shards) >= 1 for shards in per_model.values())
        assert_bitwise_vs_replay(models, workload, report)

    def test_process_backend_matches_replay(self):
        models = two_models()
        workload = tenant_workload(n=120)
        with ServingFleet(models, 2, backend="process") as fleet:
            report = simulate_fleet(fleet, workload)
        assert_bitwise_vs_replay(models, workload, report)
        assert leaked_segments() == []


class TestZeroCopy:
    def test_hot_bytes_independent_of_nnz(self):
        """Per-request boundary traffic is O(batch), never O(nnz)."""
        sampler = query_sampler(N_FEATURES, 5)
        per_req = {}
        shared = {}
        for label, n_sv, row_nnz in (
            ("small", 100, 6), ("large", 800, 24),
        ):
            model = synthetic_model(
                n_sv=n_sv, n_features=N_FEATURES, row_nnz=row_nnz, seed=3
            )
            workload = open_loop(120, 10_000.0, sampler, seed=5)
            with ServingFleet({"m": model}, 2, backend="local") as fleet:
                report = simulate_fleet(fleet, workload)
                shared[label] = sum(
                    p.shared_bytes for p in fleet.publications.values()
                )
            sent = recv = reqs = 0
            for stats in report.snapshot.transport.values():
                sent += stats["hot_bytes_sent"]
                recv += stats["hot_bytes_received"]
                reqs += stats["hot_requests"]
            assert reqs == report.metrics.served
            per_req[label] = (sent + recv) / reqs
        # ~32x nnz growth; request traffic must not follow it.
        assert shared["large"] > 16 * shared["small"]
        assert per_req["large"] <= 1.5 * per_req["small"]
        # And each request's traffic is nowhere near the matrix size.
        assert per_req["large"] * 10 < shared["large"]

    def test_matrices_cross_once_as_control_plane(self):
        model = synthetic_model(
            n_sv=400, n_features=N_FEATURES, row_nnz=20, seed=4
        )
        sampler = query_sampler(N_FEATURES, 5)
        workload = open_loop(100, 10_000.0, sampler, seed=6)
        with ServingFleet({"m": model}, 2, backend="local") as fleet:
            matrix_bytes = sum(
                p.shared_bytes for p in fleet.publications.values()
            )
            report = simulate_fleet(fleet, workload)
        for stats in report.snapshot.transport.values():
            # Attach + snapshot messages: handles and metrics, not
            # matrix payloads.
            assert stats["control_bytes_sent"] < matrix_bytes / 4


class TestAdmission:
    def test_overload_is_bounded(self):
        """At ~2x capacity: rejects happen, in-flight stays bounded."""
        model = synthetic_model(
            n_sv=100, n_features=N_FEATURES, row_nnz=6, seed=5
        )
        sampler = query_sampler(N_FEATURES, 5)
        workload = open_loop(600, 27_000.0, sampler, seed=9)
        capacity = 24
        door = AdmissionController(capacity=capacity, shed_at=1.0)
        with ServingFleet({"m": model}, 2, backend="local") as fleet:
            report = simulate_fleet(fleet, workload, admission=door)
        assert report.metrics.rejected > 0
        assert report.max_inflight <= capacity
        assert (
            report.metrics.served + report.metrics.rejected
            + report.metrics.expired == len(workload)
        )
        lat = report.metrics.snapshot()["latency"]
        assert lat["p99_ms"] <= 25.0

    def test_degraded_path_still_bitwise(self):
        """Shed-mode single-vector answers match the replay too."""
        models = two_models()
        workload = tenant_workload(n=200)
        door = AdmissionController(capacity=48, shed_at=0.25)
        with ServingFleet(models, 2, backend="local") as fleet:
            report = simulate_fleet(fleet, workload, admission=door)
        assert report.metrics.degraded > 0
        assert_bitwise_vs_replay(models, workload, report)


class TestScalingAndRebalance:
    def test_virtual_throughput_scales_with_workers(self):
        models = two_models()
        workload = tenant_workload(n=400, seed=17)
        thr = {}
        for n in (1, 4):
            with ServingFleet(models, n, backend="local") as fleet:
                report = simulate_fleet(fleet, workload)
            thr[n] = report.metrics.throughput
        assert thr[4] >= 2.5 * thr[1]

    def test_hot_spot_triggers_replica_add(self):
        """Single-model traffic skew grows the replica set."""
        models = two_models()
        sampler = query_sampler(N_FEATURES, 5)
        # All traffic to one tenant: its shard runs hot, the detector
        # fires, and the rebalancer adds a replica on the cold shard.
        workload = multi_tenant(
            [
                TenantSpec("t-a", "alpha", n=400, rate_rps=12_000.0),
            ],
            sampler,
            seed=19,
        )
        with ServingFleet(
            models, 2, backend="local", weights={"alpha": 1.0, "beta": 1.0}
        ) as fleet:
            before = fleet.table.replicas("alpha")
            report = simulate_fleet(fleet, workload)
            after = fleet.table.replicas("alpha")
        assert len(before) == 1
        assert len(after) > len(before)
        assert report.rebalances
        ev = report.rebalances[0]
        assert ev.model == "alpha"
        assert ev.imbalance >= 1.5
        # Both shards end up serving the hot model.
        assert all(c > 0 for c in report.per_shard_served.values())
        assert_bitwise_vs_replay(models, workload, report)


class TestSnapshot:
    def test_merged_view_covers_every_worker(self):
        models = two_models()
        workload = tenant_workload(n=150)
        with ServingFleet(models, 3, backend="local") as fleet:
            report = simulate_fleet(fleet, workload)
        snap = report.snapshot
        worker_served = sum(
            s["served"] for s in snap.per_worker.values()
        )
        assert worker_served == len(workload)
        assert snap.metrics.served == worker_served
        assert len(snap.per_worker) == 3
        assert sorted(snap.formats) == [0, 1, 2]
        # Latency percentiles of the merged view are union-exact:
        # every reported percentile is an actually observed sample.
        merged = sorted(snap.metrics.latencies)
        all_samples = sorted(
            x for s in snap.per_worker.values() for x in s["latencies"]
        )
        assert merged == all_samples

    def test_registry_mount(self):
        from repro.obs.metrics import MetricsRegistry

        models = two_models()
        workload = tenant_workload(n=120)
        registry = MetricsRegistry()
        with ServingFleet(models, 2, backend="local") as fleet:
            report = simulate_fleet(fleet, workload, registry=registry)
        names = {m.name for m in registry.collect()}
        assert "repro_fleet.served" in names
        assert "repro_fleet.latency_seconds" in names
        assert any(n.startswith("repro_fleet.worker0.ops.") for n in names)
        assert report.metrics.served == len(workload)


class TestLifecycle:
    def test_close_is_idempotent_and_clean(self):
        models = two_models()
        fleet = ServingFleet(models, 2, backend="process")
        fleet.close()
        fleet.close()
        assert leaked_segments() == []

    def test_context_manager_cleans_up_on_error(self):
        models = two_models()
        with pytest.raises(RuntimeError):
            with ServingFleet(models, 2, backend="local"):
                raise RuntimeError("boom")
        assert leaked_segments() == []

    def test_unknown_model_raises(self):
        models = two_models()
        sampler = query_sampler(N_FEATURES, 5)
        workload = multi_tenant(
            [TenantSpec("t-x", "gamma", n=5, rate_rps=100.0)],
            sampler,
            seed=3,
        )
        with ServingFleet(models, 2, backend="local") as fleet:
            with pytest.raises(KeyError):
                simulate_fleet(fleet, workload)

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            ServingFleet({}, 2)
        with pytest.raises(ValueError):
            ServingFleet(two_models(), 0)
        with pytest.raises(ValueError):
            ServingFleet(two_models(), 2, backend="threads")
