"""ServeMetrics merge: sharded recording == single-process replay."""

import numpy as np
import pytest

from repro.perf.counters import OpCounter
from repro.serve.metrics import ServeMetrics, summarise_latencies


def record_session(metrics_for):
    """Replay one fixed event stream into per-event target metrics.

    ``metrics_for(i)`` names the ServeMetrics that records event ``i``
    — the identity function of the sharding under test.
    """
    rng = np.random.default_rng(42)
    t = 0.0
    for i in range(120):
        m = metrics_for(i)
        size = int(rng.integers(1, 9))
        start = t + float(rng.random()) * 1e-3
        fin = start + 1e-3 + float(rng.random()) * 2e-3
        queued = [
            start - float(rng.random()) * 1e-3 for _ in range(size)
        ]
        m.record_batch(size, start, fin, queued_at=queued)
        if i % 7 == 0:
            m.record_single(start, fin)
        if i % 11 == 0:
            m.record_rejected()
        if i % 13 == 0:
            m.record_expired()
        if i % 17 == 0:
            m.record_degraded()
        if i % 19 == 0:
            m.record_reschedule()
        m.counter.spmm_calls += 1
        m.counter.spmm_columns += size
        t = fin


def merged_over(n_shards):
    shards = [ServeMetrics(counter=OpCounter()) for _ in range(n_shards)]
    record_session(lambda i: shards[i % n_shards])
    out = ServeMetrics()
    for s in shards:
        out.merge(s)
    return out


class TestMergeEqualsSingleReplay:
    @pytest.mark.parametrize("n_shards", [2, 3, 7])
    def test_percentiles_are_exactly_single_process(self, n_shards):
        single = ServeMetrics(counter=OpCounter())
        record_session(lambda i: single)
        merged = merged_over(n_shards)
        want = summarise_latencies(single.latencies)
        got = summarise_latencies(merged.latencies)
        # `lower`-method percentiles select actual samples, so the
        # union merge reproduces them bitwise.
        assert got.p50 == want.p50
        assert got.p95 == want.p95
        assert got.p99 == want.p99
        assert got.max == want.max
        assert got.count == want.count

    @pytest.mark.parametrize("n_shards", [2, 5])
    def test_counts_and_histograms_are_exact(self, n_shards):
        single = ServeMetrics(counter=OpCounter())
        record_session(lambda i: single)
        merged = merged_over(n_shards)
        for field in (
            "served", "batches", "rejected", "expired", "degraded",
            "reschedules",
        ):
            assert getattr(merged, field) == getattr(single, field)
        assert merged.batch_histogram() == single.batch_histogram()
        assert merged.first_t == single.first_t
        assert merged.last_t == single.last_t
        assert merged.counter.spmm_calls == single.counter.spmm_calls
        assert merged.counter.spmm_columns == single.counter.spmm_columns

    def test_means_agree_to_float_tolerance(self):
        """Float sums are association-dependent: near, not bitwise."""
        single = ServeMetrics(counter=OpCounter())
        record_session(lambda i: single)
        merged = merged_over(3)
        want = summarise_latencies(single.latencies).mean
        got = summarise_latencies(merged.latencies).mean
        assert got == pytest.approx(want, rel=1e-12)
        assert merged.throughput == pytest.approx(
            single.throughput, rel=1e-12
        )

    def test_merge_order_does_not_change_percentiles(self):
        shards = [ServeMetrics(counter=OpCounter()) for _ in range(4)]
        record_session(lambda i: shards[i % 4])
        fwd = ServeMetrics()
        for s in shards:
            fwd.merge(s)
        rev = ServeMetrics()
        for s in reversed(shards):
            rev.merge(s)
        a = summarise_latencies(fwd.latencies)
        b = summarise_latencies(rev.latencies)
        assert (a.p50, a.p95, a.p99, a.max) == (b.p50, b.p95, b.p99, b.max)


class TestStateTransport:
    def test_state_round_trip_is_lossless(self):
        m = ServeMetrics(counter=OpCounter())
        record_session(lambda i: m)
        back = ServeMetrics.from_state(m.state())
        assert back.latencies == m.latencies
        assert back.batch_sizes == m.batch_sizes
        assert back.served == m.served
        assert back.first_t == m.first_t
        assert back.last_t == m.last_t
        assert back.counter.as_dict() == m.counter.as_dict()

    def test_state_is_picklable(self):
        import pickle

        m = ServeMetrics(counter=OpCounter())
        m.record_batch(3, 0.0, 1e-3, queued_at=[0.0, 0.0, 0.0])
        state = pickle.loads(pickle.dumps(m.state()))
        assert ServeMetrics.from_state(state).served == 3

    def test_merge_empty_sessions(self):
        a = ServeMetrics()
        b = ServeMetrics()
        a.merge(b)
        assert a.served == 0
        assert a.elapsed == 0.0
        assert a.throughput == 0.0

    def test_max_fields_merge_as_max(self):
        """OpCounter high-water marks take max, not sum, on merge."""
        a = ServeMetrics(counter=OpCounter())
        b = ServeMetrics(counter=OpCounter())
        a.counter.parallel_work_max = 5
        b.counter.parallel_work_max = 9
        a.merge(b)
        assert a.counter.parallel_work_max == 9
