"""Bursty/diurnal arrival patterns and the multi-tenant merge."""

import numpy as np
import pytest

from repro.serve.loadgen import (
    TenantSpec,
    bursty,
    diurnal,
    multi_tenant,
    open_loop,
    query_sampler,
)

SAMPLER = query_sampler(40, 4)


class TestBursty:
    def test_deterministic_given_seed(self):
        a = bursty(100, 1000.0, SAMPLER, seed=3)
        b = bursty(100, 1000.0, SAMPLER, seed=3)
        assert [r.t for r in a.arrivals] == [r.t for r in b.arrivals]
        c = bursty(100, 1000.0, SAMPLER, seed=4)
        assert [r.t for r in a.arrivals] != [r.t for r in c.arrivals]

    def test_arrivals_are_ordered_and_counted(self):
        wl = bursty(200, 2000.0, SAMPLER, seed=1)
        times = [r.t for r in wl.arrivals]
        assert len(wl) == 200
        assert times == sorted(times)
        assert [r.req_id for r in wl.arrivals] == list(range(200))

    def test_burst_phase_is_denser(self):
        """Arrivals concentrate in the first ``duty`` of each period."""
        wl = bursty(
            2000, 1000.0, SAMPLER, seed=2,
            burst_factor=8.0, period_s=0.1, duty=0.25,
        )
        in_burst = sum(
            1 for r in wl.arrivals if (r.t % 0.1) / 0.1 < 0.25
        )
        # The burst window holds 25% of the time but (at 8x rate)
        # ~73% of the arrivals; far more than the uniform share.
        assert in_burst / len(wl) > 0.5

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            bursty(10, 0.0, SAMPLER, seed=0)


class TestDiurnal:
    def test_deterministic_given_seed(self):
        a = diurnal(100, 1000.0, SAMPLER, seed=5)
        b = diurnal(100, 1000.0, SAMPLER, seed=5)
        assert [r.t for r in a.arrivals] == [r.t for r in b.arrivals]

    def test_peak_phase_is_denser_than_trough(self):
        wl = diurnal(
            4000, 1000.0, SAMPLER, seed=6,
            amplitude=0.9, period_s=0.2, phase=0.0,
        )
        # Peak of sin is the first quarter-period; trough the third.
        peak = sum(
            1 for r in wl.arrivals if (r.t % 0.2) / 0.2 < 0.25
        )
        trough = sum(
            1 for r in wl.arrivals if 0.5 <= (r.t % 0.2) / 0.2 < 0.75
        )
        assert peak > 2 * trough

    def test_amplitude_validation(self):
        with pytest.raises(ValueError):
            diurnal(10, 100.0, SAMPLER, amplitude=1.0)
        with pytest.raises(ValueError):
            diurnal(10, 100.0, SAMPLER, amplitude=-0.1)


class TestMultiTenant:
    def tenants(self, n=60):
        return [
            TenantSpec("t-a", "alpha", n=n, rate_rps=2000.0,
                       pattern="bursty"),
            TenantSpec("t-b", "beta", n=n // 2, rate_rps=1000.0,
                       pattern="diurnal"),
            TenantSpec("t-c", "alpha", n=n // 3, rate_rps=500.0),
        ]

    def test_merge_is_time_ordered_with_fresh_req_ids(self):
        wl = multi_tenant(self.tenants(), SAMPLER, seed=7)
        times = [r.t for r in wl.arrivals]
        assert times == sorted(times)
        assert [r.req_id for r in wl.arrivals] == list(range(len(wl)))
        assert len(wl) == 60 + 30 + 20

    def test_tenant_and_model_tags_survive_the_merge(self):
        wl = multi_tenant(self.tenants(), SAMPLER, seed=7)
        by_tenant = {}
        for r in wl.arrivals:
            by_tenant.setdefault(r.tenant, set()).add(r.model)
        assert by_tenant == {
            "t-a": {"alpha"}, "t-b": {"beta"}, "t-c": {"alpha"},
        }

    def test_deterministic_given_seed(self):
        a = multi_tenant(self.tenants(), SAMPLER, seed=9)
        b = multi_tenant(self.tenants(), SAMPLER, seed=9)
        assert [(r.t, r.tenant) for r in a.arrivals] == [
            (r.t, r.tenant) for r in b.arrivals
        ]

    def test_tenants_draw_independent_streams(self):
        """Two tenants with identical specs get different arrivals."""
        wl = multi_tenant(
            [
                TenantSpec("t-1", "m", n=50, rate_rps=1000.0),
                TenantSpec("t-2", "m", n=50, rate_rps=1000.0),
            ],
            SAMPLER,
            seed=11,
        )
        t1 = [r.t for r in wl.arrivals if r.tenant == "t-1"]
        t2 = [r.t for r in wl.arrivals if r.tenant == "t-2"]
        assert t1 != t2

    def test_deadlines_propagate(self):
        wl = multi_tenant(
            [
                TenantSpec(
                    "t-a", "m", n=10, rate_rps=1000.0, deadline_ms=5.0
                )
            ],
            SAMPLER,
            seed=13,
        )
        for r in wl.arrivals:
            assert r.deadline == pytest.approx(r.t + 5e-3)

    def test_unknown_pattern_rejected(self):
        with pytest.raises(ValueError):
            multi_tenant(
                [TenantSpec("t", "m", n=5, rate_rps=100.0,
                            pattern="sawtooth")],
                SAMPLER,
                seed=0,
            )

    def test_empty_tenant_list_rejected(self):
        with pytest.raises(ValueError):
            multi_tenant([], SAMPLER, seed=0)


class TestBackwardCompat:
    def test_existing_generators_leave_tags_unset(self):
        wl = open_loop(10, 1000.0, SAMPLER, seed=1)
        for r in wl.arrivals:
            assert r.model is None
            assert r.tenant is None

    def test_vectors_come_from_the_sampler(self):
        wl = bursty(5, 1000.0, SAMPLER, seed=1)
        for r in wl.arrivals:
            assert r.vector.length == 40
