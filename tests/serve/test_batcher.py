"""MicroBatcher: size flushes, deadline flushes, event-loop contract."""

import numpy as np
import pytest

from repro.formats.base import SparseVector
from repro.serve import MicroBatcher, Request


def _req(i, t=0.0):
    v = SparseVector(np.array([0], dtype=np.int32), np.array([1.0]), 4)
    return Request(i, v, t)


class TestSizeFlush:
    def test_fills_to_max_batch(self):
        b = MicroBatcher(max_batch=3, max_wait_ms=100.0)
        assert b.submit(_req(0), 0.0) is None
        assert b.submit(_req(1), 0.0) is None
        batch = b.submit(_req(2), 0.0)
        assert [r.req_id for r in batch] == [0, 1, 2]
        assert len(b) == 0

    def test_max_batch_one_is_immediate(self):
        b = MicroBatcher(max_batch=1, max_wait_ms=100.0)
        assert [r.req_id for r in b.submit(_req(7), 0.0)] == [7]

    def test_preserves_submission_order(self):
        b = MicroBatcher(max_batch=4, max_wait_ms=100.0)
        for i in (3, 1, 2):
            b.submit(_req(i), 0.0)
        batch = b.submit(_req(0), 0.0)
        assert [r.req_id for r in batch] == [3, 1, 2, 0]


class TestDeadlineFlush:
    def test_poll_before_deadline_returns_none(self):
        b = MicroBatcher(max_batch=8, max_wait_ms=2.0)
        b.submit(_req(0), 0.0)
        assert b.poll(0.001) is None
        assert len(b) == 1

    def test_poll_at_deadline_flushes(self):
        b = MicroBatcher(max_batch=8, max_wait_ms=2.0)
        b.submit(_req(0), 0.0)
        b.submit(_req(1), 0.001)
        batch = b.poll(0.002)
        assert [r.req_id for r in batch] == [0, 1]

    def test_deadline_tracks_oldest_request(self):
        b = MicroBatcher(max_batch=8, max_wait_ms=2.0)
        b.submit(_req(0), 0.0)
        b.submit(_req(1), 0.0015)
        # deadline is oldest + wait, not newest + wait
        assert b.poll(0.002) is not None

    def test_poll_at_next_flush_at_always_flushes(self):
        # Regression: the deadline comparison must use the *same*
        # floating-point expression next_flush_at() returns; with
        # `now - oldest >= wait` instead, an event loop stepping to
        # next_flush_at() can poll without flushing, forever.
        b = MicroBatcher(max_batch=8, max_wait_ms=2.0)
        b.submit(_req(0), 0.12)  # 0.12 + 0.002 - 0.12 < 0.002 in fp
        fa = b.next_flush_at()
        assert b.poll(fa) is not None

    def test_zero_wait_flushes_on_first_poll(self):
        b = MicroBatcher(max_batch=8, max_wait_ms=0.0)
        b.submit(_req(0), 5.0)
        assert b.poll(5.0) is not None


class TestFlushAndIntrospection:
    def test_flush_drains_everything(self):
        b = MicroBatcher(max_batch=8, max_wait_ms=2.0)
        b.submit(_req(0), 0.0)
        b.submit(_req(1), 0.0)
        assert [r.req_id for r in b.flush()] == [0, 1]
        assert b.flush() is None

    def test_next_flush_at_empty_is_none(self):
        b = MicroBatcher()
        assert b.next_flush_at() is None
        b.submit(_req(0), 1.0)
        assert b.next_flush_at() == pytest.approx(1.002)

    def test_state_resets_after_drain(self):
        b = MicroBatcher(max_batch=2, max_wait_ms=2.0)
        b.submit(_req(0), 0.0)
        b.submit(_req(1), 0.0)
        b.submit(_req(2), 10.0)
        assert b.next_flush_at() == pytest.approx(10.002)


class TestValidation:
    def test_bad_max_batch(self):
        with pytest.raises(ValueError, match="max_batch"):
            MicroBatcher(max_batch=0)

    def test_bad_max_wait(self):
        with pytest.raises(ValueError, match="max_wait_ms"):
            MicroBatcher(max_wait_ms=-1.0)
