"""FormatRescheduler: histogram, cadence, hysteresis, the k-flip."""

import pytest

from repro.data.synthetic import bimodal_rows_matrix
from repro.formats.csr import CSRMatrix
from repro.serve import BatchSizeHistogram, FormatRescheduler
from repro.serve.engine import EXACT_SERVE_FORMATS


def flip_matrix(seed=0):
    rows, cols, vals, shape = bimodal_rows_matrix(
        600, 400, 10, 14, 0.1, seed=seed
    )
    return CSRMatrix.from_coo(rows, cols, vals, shape)


class TestBatchSizeHistogram:
    def test_empty_defaults_to_one(self):
        assert BatchSizeHistogram().effective_k() == 1

    def test_uniform_width(self):
        h = BatchSizeHistogram()
        for _ in range(5):
            h.observe(4)
        assert h.effective_k() == 4

    def test_column_weighted_mean(self):
        # 8 singles + 2 batches of 8: batch-weighted mean is 2.4, but
        # 16 of the 24 requests ride width-8 sweeps -> effective 6.
        h = BatchSizeHistogram()
        for _ in range(8):
            h.observe(1)
        for _ in range(2):
            h.observe(8)
        assert h.effective_k() == round((8 + 2 * 64) / 24)

    def test_window_forgets_old_mix(self):
        h = BatchSizeHistogram(window=4)
        for _ in range(50):
            h.observe(1)
        for _ in range(4):
            h.observe(8)
        assert h.effective_k() == 8

    def test_validation(self):
        with pytest.raises(ValueError):
            BatchSizeHistogram(window=0)
        with pytest.raises(ValueError):
            BatchSizeHistogram().observe(0)


class TestPolicy:
    def test_initial_format_is_an_exact_family_member(self):
        r = FormatRescheduler()
        assert r.initial_format(flip_matrix()) in EXACT_SERVE_FORMATS

    def test_checks_only_on_cadence(self):
        r = FormatRescheduler(check_every=4, min_gain=0.0)
        X = flip_matrix()
        fmt0 = r.initial_format(X)
        X0 = X if X.name == fmt0 else None
        assert X0 is None or X0.name == fmt0
        for i in range(3):
            assert r.after_batch(8, X) is None  # before the cadence tick
        # 4th batch is the first decision point
        r.after_batch(8, X)
        assert r._batches_seen == 4

    def test_flip_fires_when_batch_width_grows(self):
        X = flip_matrix()
        # The ELL -> COO crossover only exists within the unreordered
        # family: RSELL dominates this matrix at every batch width
        # (its flip coverage lives in test_sell_flip.py).
        r = FormatRescheduler(
            window=16,
            check_every=4,
            min_gain=0.0,
            candidates=("CSR", "COO", "ELL", "DIA"),
        )
        fmt0 = r.initial_format(X)
        from repro.formats.convert import convert

        X = convert(X, fmt0)
        events = []
        for _ in range(16):
            e = r.after_batch(8, X)
            if e is not None:
                events.append(e)
                X = convert(X, e.to_fmt)
        assert events, "wide batches must flip the bimodal matrix"
        assert events[0].from_fmt == fmt0
        assert events[0].to_fmt in EXACT_SERVE_FORMATS
        assert events[0].to_fmt != fmt0
        assert events[0].effective_k >= 4
        assert r.events == events

    def test_no_flip_when_mix_is_stable_at_one(self):
        X = flip_matrix()
        r = FormatRescheduler(check_every=2, min_gain=0.0)
        fmt0 = r.initial_format(X)
        from repro.formats.convert import convert

        X = convert(X, fmt0)
        for _ in range(20):
            assert r.after_batch(1, X) is None

    def test_hysteresis_suppresses_marginal_wins(self):
        X = flip_matrix()
        r = FormatRescheduler(check_every=4, min_gain=10.0)  # absurd bar
        fmt0 = r.initial_format(X)
        from repro.formats.convert import convert

        X = convert(X, fmt0)
        for _ in range(16):
            assert r.after_batch(8, X) is None

    def test_unchanged_effective_k_skips_redecision(self):
        X = flip_matrix()
        r = FormatRescheduler(check_every=1, min_gain=0.0)
        r.initial_format(X)
        r.after_batch(1, X)
        seen = r._last_k
        r.after_batch(1, X)
        assert r._last_k == seen

    def test_validation(self):
        with pytest.raises(ValueError):
            FormatRescheduler(check_every=0)
        with pytest.raises(ValueError):
            FormatRescheduler(min_gain=-0.1)
