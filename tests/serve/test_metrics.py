"""ServeMetrics: percentile summaries, counters, snapshot payload."""

import pytest

from repro.serve import ServeMetrics, summarise_latencies


class TestLatencySummary:
    def test_empty(self):
        s = summarise_latencies([])
        assert s.count == 0 and s.p99 == 0.0

    def test_percentiles_are_observed_samples(self):
        samples = [i / 1000.0 for i in range(1, 101)]
        s = summarise_latencies(samples)
        assert s.count == 100
        assert s.p50 in samples and s.p95 in samples and s.p99 in samples
        assert s.p50 <= s.p95 <= s.p99 <= s.max

    def test_as_dict_is_in_milliseconds(self):
        s = summarise_latencies([0.002])
        assert s.as_dict()["p50_ms"] == pytest.approx(2.0)


class TestServeMetrics:
    def test_record_batch_accumulates(self):
        m = ServeMetrics()
        m.record_batch(4, 1.0, 1.01, queued_at=[0.99, 0.995, 1.0, 1.0])
        m.record_batch(1, 2.0, 2.005)
        assert m.served == 5
        assert m.batches == 2
        assert m.mean_batch == pytest.approx(2.5)
        assert m.batch_histogram() == {1: 1, 4: 1}
        assert len(m.latencies) == 5

    def test_queued_at_latency_includes_coalescing_wait(self):
        m = ServeMetrics()
        m.record_batch(1, 1.0, 1.01, queued_at=[0.5])
        assert m.latencies[0] == pytest.approx(0.51)

    def test_single_path_skips_batch_histogram(self):
        m = ServeMetrics()
        m.record_single(1.0, 1.001)
        assert m.served == 1
        assert m.batches == 0
        assert m.batch_histogram() == {}

    def test_throughput_uses_active_window(self):
        m = ServeMetrics()
        m.record_batch(10, 0.0, 1.0)
        m.record_batch(10, 1.0, 2.0)
        assert m.throughput == pytest.approx(10.0)

    def test_empty_throughput_is_zero(self):
        assert ServeMetrics().throughput == 0.0

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="batch size"):
            ServeMetrics().record_batch(0, 0.0, 1.0)

    def test_snapshot_payload(self):
        m = ServeMetrics()
        m.record_batch(2, 0.0, 0.5)
        m.record_rejected(3)
        m.record_expired()
        m.record_degraded(2)
        m.record_reschedule()
        snap = m.snapshot()
        assert snap["served"] == 2
        assert snap["rejected"] == 3
        assert snap["expired"] == 1
        assert snap["degraded"] == 2
        assert snap["reschedules"] == 1
        assert snap["batch_histogram"] == {"2": 1}
        assert snap["latency"]["count"] == 2
        assert set(snap["ops"]) == {
            "flops", "bytes_total", "spmm_calls", "spmm_columns",
        }
