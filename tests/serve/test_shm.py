"""Shared-memory transport: bitwise round-trips and lifecycle hygiene."""

import pickle

import numpy as np
import pytest

from repro.formats import from_dense
from repro.formats.convert import convert
from repro.serve.bench import synthetic_model
from repro.serve.engine import InferenceEngine
from repro.serve.loadgen import query_sampler
from repro.serve.shm import (
    SHM_PREFIX,
    Attachment,
    ModelPublication,
    SegmentGroup,
    attach_matrix,
    attach_model,
    leaked_segments,
    pack_matrix,
    pack_model,
)

ALL_FORMATS = (
    "CSR", "COO", "ELL", "DIA", "DEN", "CSC", "SELL", "BCSR",
    "RCSR", "RSELL",
)


def sample_matrix(rng):
    a = (rng.random((24, 18)) < 0.3) * rng.standard_normal((24, 18))
    a[5, :] = 0.0
    return a


class TestMatrixRoundTrip:
    @pytest.mark.parametrize("fmt", ALL_FORMATS)
    def test_round_trip_is_bitwise(self, rng, fmt):
        dense = sample_matrix(rng)
        matrix = convert(from_dense(dense, "CSR"), fmt)
        with SegmentGroup() as group:
            handle = pack_matrix(matrix, group)
            att = Attachment()
            try:
                back = attach_matrix(handle, att)
                assert back.name == matrix.name
                assert back.shape == matrix.shape
                r0, c0, v0 = matrix.to_coo()
                r1, c1, v1 = back.to_coo()
                assert np.array_equal(r0, r1)
                assert np.array_equal(c0, c1)
                assert np.array_equal(v0, v1)
            finally:
                att.close()

    def test_attached_views_are_read_only(self, rng):
        matrix = from_dense(sample_matrix(rng), "CSR")
        with SegmentGroup() as group:
            handle = pack_matrix(matrix, group)
            att = Attachment()
            try:
                back = attach_matrix(handle, att)
                assert not back.values.flags.writeable
                with pytest.raises(ValueError):
                    back.values[0] = 99.0
            finally:
                att.close()

    def test_handle_is_picklable_and_small(self, rng):
        matrix = from_dense(sample_matrix(rng), "CSR")
        with SegmentGroup() as group:
            handle = pack_matrix(matrix, group)
            blob = pickle.dumps(handle)
            assert pickle.loads(blob).fmt == "CSR"
            # Segment names + dtypes + shapes, not the payload.
            assert len(blob) < 1024

    def test_empty_array_publishes_and_attaches(self):
        with SegmentGroup() as group:
            spec = group.publish(np.empty(0, dtype=np.float64))
            att = Attachment()
            try:
                view = att.attach(spec)
                assert view.shape == (0,)
                assert view.dtype == np.float64
            finally:
                att.close()


class TestModelRoundTrip:
    def test_attached_model_predicts_bitwise(self):
        model = synthetic_model(n_sv=120, n_features=60, row_nnz=6, seed=3)
        sampler = query_sampler(60, 5)
        rng = np.random.default_rng(4)
        queries = [sampler(rng) for _ in range(12)]
        want = InferenceEngine(model.clone()).decision_function(queries)
        with SegmentGroup() as group:
            handle = pack_model(model, group)
            att = Attachment()
            try:
                back = attach_model(handle, att)
                got = InferenceEngine(back).decision_function(queries)
                assert np.array_equal(got, want)
                # The cached norms travel as shared memory, not a
                # recomputation.
                assert np.array_equal(back.sv_norms, model.sv_norms)
                assert not back.sv_norms.flags.writeable
            finally:
                att.close()

    def test_control_plane_is_constant_in_nnz(self):
        small = synthetic_model(n_sv=80, n_features=60, row_nnz=4, seed=5)
        big = synthetic_model(n_sv=640, n_features=60, row_nnz=16, seed=5)
        with SegmentGroup() as g1, SegmentGroup() as g2:
            h_small = pack_model(small, g1)
            h_big = pack_model(big, g2)
            assert big.matrix.nnz >= 16 * small.matrix.nnz
            ratio = h_big.control_plane_bytes() / h_small.control_plane_bytes()
            assert ratio < 1.1
            # The shared payload, by contrast, tracks the matrix.
            assert g2.total_bytes > 8 * g1.total_bytes


class TestLifecycle:
    def test_close_unlinks_everything(self, rng):
        group = SegmentGroup()
        pack_matrix(from_dense(sample_matrix(rng), "CSR"), group)
        names = group.segment_names
        assert names and all(n.startswith(SHM_PREFIX) for n in names)
        assert set(names) <= set(leaked_segments())
        group.close()
        assert not set(names) & set(leaked_segments())

    def test_close_is_idempotent(self, rng):
        group = SegmentGroup()
        pack_matrix(from_dense(sample_matrix(rng), "CSR"), group)
        group.close()
        group.close()

    def test_attachment_close_does_not_unlink(self, rng):
        with SegmentGroup() as group:
            handle = pack_matrix(
                from_dense(sample_matrix(rng), "CSR"), group
            )
            att = Attachment()
            attach_matrix(handle, att)
            att.close()
            # The owner's segments must survive any attacher's close.
            assert set(group.segment_names) <= set(leaked_segments())

    def test_publication_lifecycle(self):
        model = synthetic_model(n_sv=60, n_features=40, row_nnz=4, seed=6)
        pub = ModelPublication(model)
        assert pub.shared_bytes > 0
        assert pub.handle.control_plane_bytes() < 2048
        pub.close()
        assert leaked_segments() == []


class TestCrashHygiene:
    def test_killed_worker_leaks_nothing(self):
        """SIGKILL a fleet worker; /dev/shm must come back empty."""
        from repro.serve.fleet import ServingFleet

        model = synthetic_model(n_sv=80, n_features=50, row_nnz=5, seed=7)
        fleet = ServingFleet({"m": model}, 2, backend="process")
        try:
            assert leaked_segments() != []  # published while serving
            victim = fleet.shards[0]
            victim.kill()
            assert not victim.alive()
        finally:
            fleet.close()
        assert leaked_segments() == []

    def test_fleet_close_after_all_workers_die(self):
        from repro.serve.fleet import ServingFleet

        model = synthetic_model(n_sv=80, n_features=50, row_nnz=5, seed=8)
        fleet = ServingFleet({"m": model}, 2, backend="process")
        for shard in fleet.shards:
            shard.kill()
        fleet.close()
        assert leaked_segments() == []
