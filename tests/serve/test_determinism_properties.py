"""Property tests: micro-batched serving is bitwise-deterministic.

The serving contract under test: for ANY arrival interleaving and ANY
batching knobs, every answer equals the unbatched single-vector answer
exactly — not approximately — and that equality survives an
adversarial format re-schedule after every single batch.  Within one
format the guarantee is unconditional (the SpMM column contract);
across formats decision values agree to 1 ULP and served labels are
compared exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import (
    EXACT_SERVE_FORMATS,
    InferenceEngine,
    open_loop,
    phase_shift,
    query_sampler,
    replay_unbatched,
    simulate,
)
from repro.serve.bench import synthetic_model

# One small model for every example: building it is the expensive part,
# and the property quantifies over workloads and knobs, not models.
MODEL = synthetic_model(120, 60, 6, seed=41)
SAMPLER = query_sampler(60, 5)


class _ToggleRescheduler:
    """Adversarial policy: force a format swap after every batch.

    Far harsher than the real cost-model policy — if answers survive a
    swap per batch, they survive any realistic cadence.
    """

    def __init__(self):
        self._i = 0
        self.events = []

    def after_batch(self, batch_size, matrix):
        from repro.serve.rescheduler import RescheduleEvent

        self._i += 1
        to = EXACT_SERVE_FORMATS[self._i % len(EXACT_SERVE_FORMATS)]
        if to == matrix.name:  # never skip a swap: pick the next one
            to = EXACT_SERVE_FORMATS[
                (self._i + 1) % len(EXACT_SERVE_FORMATS)
            ]
        e = RescheduleEvent(self._i, batch_size, matrix.name, to, "toggle")
        self.events.append(e)
        return e


@given(
    seed=st.integers(0, 2**16),
    n=st.integers(1, 48),
    rate=st.floats(200.0, 20000.0),
    max_batch=st.integers(1, 12),
    max_wait_ms=st.floats(0.0, 10.0),
)
@settings(max_examples=25, deadline=None)
def test_any_interleaving_matches_unbatched(
    seed, n, rate, max_batch, max_wait_ms
):
    w = open_loop(n, rate, SAMPLER, seed=seed)
    report = simulate(
        InferenceEngine(MODEL.clone()),
        w,
        max_batch=max_batch,
        max_wait_ms=max_wait_ms,
    )
    ref = replay_unbatched(InferenceEngine(MODEL.clone()), w)
    assert report.responses == ref


@given(
    seed=st.integers(0, 2**16),
    singles=st.integers(0, 12),
    bursts=st.integers(1, 6),
    burst_size=st.integers(2, 8),
    start=st.sampled_from(EXACT_SERVE_FORMATS),
)
@settings(max_examples=25, deadline=None)
def test_reschedule_every_batch_stays_bitwise(
    seed, singles, bursts, burst_size, start
):
    w = phase_shift(
        SAMPLER,
        singles=singles,
        bursts=bursts,
        burst_size=burst_size,
        seed=seed,
    )
    engine = InferenceEngine(MODEL.clone())
    engine.convert_to(start)
    toggler = _ToggleRescheduler()
    report = simulate(
        engine, w, max_batch=burst_size, rescheduler=toggler
    )
    assert toggler.events, "the toggler must actually swap formats"
    pinned = InferenceEngine(MODEL.clone())
    pinned.convert_to(start)
    assert report.responses == replay_unbatched(pinned, w)


@given(
    seed=st.integers(0, 2**16),
    k=st.integers(1, 10),
)
@settings(max_examples=25, deadline=None)
def test_batched_decisions_equal_singles_in_every_format(seed, k):
    rng = np.random.default_rng(seed)
    qs = [SAMPLER(rng) for _ in range(k)]
    engine = InferenceEngine(MODEL.clone())
    reference = None
    for fmt in EXACT_SERVE_FORMATS:
        engine.convert_to(fmt)
        batched = engine.decision_function(qs)
        singles = np.stack([engine.decision_one(v) for v in qs])
        # the hard, universal contract: batched == single per format
        assert np.array_equal(batched, singles)
        if reference is None:
            reference = batched
        else:
            # cross-format: 1-ULP agreement (association order may
            # differ when a row/query overlap exceeds two products)
            assert np.allclose(reference, batched, rtol=0.0, atol=1e-12)
