"""Tuning-cache robustness: the contract is "never an error".

A corrupted, truncated, schema-bumped or foreign-fingerprint cache
file must always degrade to analytic defaults — a broken tuning cache
may cost performance, never correctness and never a traceback.
"""

import json
import threading

import pytest

from repro.features.profile import DatasetProfile
from repro.tune.cache import (
    SCHEMA_VERSION,
    TuneCache,
    default_cache_path,
    entry_key,
    reset_tune_cache,
    tune_cache,
    tuned_format,
    tuned_value,
    tuning_enabled,
)
from repro.tune.fingerprint import MACHINE_BUCKET
from repro.tune.space import FORMAT_FAMILY


def _profile(**over):
    base = dict(
        m=1000, n=500, nnz=8000, ndig=10, dnnz=100.0, mdim=16,
        adim=8.0, vdim=1.0, density=0.016,
    )
    base.update(over)
    cap = base["m"] * base["n"]
    if base["nnz"] > cap:  # keep the profile's own invariant
        base["nnz"] = cap
        base["density"] = cap / (base["m"] * base["n"]) if cap else 0.0
    return DatasetProfile(**base)


@pytest.fixture
def cache_path(tmp_path, monkeypatch):
    path = tmp_path / "tune.json"
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(path))
    reset_tune_cache()
    yield path
    reset_tune_cache()


class TestRoundtrip:
    def test_put_get(self, cache_path):
        cache = TuneCache(cache_path)
        key = cache.put(
            "sell_chunk", {"chunk": 16}, profile=_profile(),
            stats={"median_seconds": 1e-6},
        )
        assert key.count("|") == 2
        entry = cache.get("sell_chunk", _profile())
        assert entry["params"] == {"chunk": 16}
        assert entry["median_seconds"] == 1e-6
        # a fresh instance reads the persisted file
        again = TuneCache(cache_path)
        assert again.get_params("sell_chunk", _profile()) == {"chunk": 16}

    def test_cold_key_is_none(self, cache_path):
        cache = TuneCache(cache_path)
        assert cache.get("sell_chunk", _profile()) is None
        assert cache.get_params("sigma") is None

    def test_machine_wide_bucket(self, cache_path):
        cache = TuneCache(cache_path)
        cache.put("workers", {"workers": 4})
        # machine-wide families ignore the profile entirely
        assert cache.get_params("workers", _profile()) == {"workers": 4}
        assert cache.bucket_for("workers", _profile()) == MACHINE_BUCKET

    def test_put_validates(self, cache_path):
        cache = TuneCache(cache_path)
        with pytest.raises(ValueError, match="invalid tuned entry"):
            cache.put("sell_chunk", {"chunk": 3})  # not a candidate value

    def test_atomic_write_leaves_no_temp_files(self, cache_path):
        cache = TuneCache(cache_path)
        for chunk in (4, 8, 16):
            cache.put("sell_chunk", {"chunk": chunk}, profile=_profile())
        leftovers = [
            p for p in cache_path.parent.iterdir() if p != cache_path
        ]
        assert leftovers == []
        assert json.loads(cache_path.read_text())["schema"] == SCHEMA_VERSION


class TestCorruption:
    def test_garbage_file_warns_and_falls_back(self, cache_path):
        cache_path.write_text("{not json at all")
        cache = TuneCache(cache_path)
        with pytest.warns(RuntimeWarning, match="not valid JSON"):
            assert cache.get("sell_chunk", _profile()) is None
        assert len(cache) == 0

    def test_truncated_file_falls_back(self, cache_path):
        cache = TuneCache(cache_path)
        cache.put("sell_chunk", {"chunk": 16}, profile=_profile())
        full = cache_path.read_text()
        cache_path.write_text(full[: len(full) // 2])
        fresh = TuneCache(cache_path)
        with pytest.warns(RuntimeWarning):
            assert fresh.get("sell_chunk", _profile()) is None

    def test_schema_bump_falls_back(self, cache_path):
        cache = TuneCache(cache_path)
        cache.put("sell_chunk", {"chunk": 16}, profile=_profile())
        doc = json.loads(cache_path.read_text())
        doc["schema"] = SCHEMA_VERSION + 1
        cache_path.write_text(json.dumps(doc))
        fresh = TuneCache(cache_path)
        with pytest.warns(RuntimeWarning, match="schema"):
            assert fresh.get("sell_chunk", _profile()) is None

    def test_invalid_entries_skipped_silently(self, cache_path):
        good = TuneCache(cache_path)
        good.put("sell_chunk", {"chunk": 16}, profile=_profile())
        doc = json.loads(cache_path.read_text())
        doc["entries"]["bad-key-no-pipes"] = {"params": {"chunk": 8}}
        doc["entries"][entry_key(good.fp_hash, "b", "sell_chunk")] = {
            "params": {"chunk": 3}  # illegal candidate value
        }
        doc["entries"][entry_key(good.fp_hash, "b", "sigma")] = "not-a-dict"
        cache_path.write_text(json.dumps(doc))
        fresh = TuneCache(cache_path)
        # partial salvage: the valid entry survives, the rest vanish
        assert fresh.get_params("sell_chunk", _profile()) == {"chunk": 16}
        assert len(fresh) == 1

    def test_foreign_fingerprint_never_matches(self, cache_path):
        theirs = TuneCache(
            cache_path, fingerprint={"cpu_model": "other-box"}
        )
        theirs.put("sell_chunk", {"chunk": 64}, profile=_profile())
        ours = TuneCache(cache_path)
        assert ours.fp_hash != theirs.fp_hash
        assert ours.get("sell_chunk", _profile()) is None
        assert not ours.has_family("sell_chunk")
        # ... but the entry itself is preserved in the file
        assert len(ours.entries()) == 1

    def test_concurrent_writers_keep_the_file_valid(self, cache_path):
        cache = TuneCache(cache_path)
        chunks = (2, 4, 8, 16, 32, 64)

        def write(c: int) -> None:
            cache.put("sell_chunk", {"chunk": c}, profile=_profile())

        threads = [
            threading.Thread(target=write, args=(c,)) for c in chunks
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        doc = json.loads(cache_path.read_text())  # never torn
        assert doc["schema"] == SCHEMA_VERSION
        fresh = TuneCache(cache_path)
        assert fresh.get_params("sell_chunk", _profile())["chunk"] in chunks

    def test_two_instances_last_writer_wins(self, cache_path):
        a = TuneCache(cache_path)
        b = TuneCache(cache_path)
        a.put("sell_chunk", {"chunk": 4}, profile=_profile())
        b.put("sigma", {"sigma": 64}, profile=_profile())
        # both writes went through an atomic whole-file replace; the
        # file is valid JSON either way
        doc = json.loads(cache_path.read_text())
        assert doc["schema"] == SCHEMA_VERSION
        fresh = TuneCache(cache_path)
        assert fresh.get_params("sigma", _profile()) == {"sigma": 64}


class TestHelpers:
    def test_env_path_override_and_singleton_swap(
        self, tmp_path, monkeypatch
    ):
        p1 = tmp_path / "one.json"
        p2 = tmp_path / "two.json"
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(p1))
        reset_tune_cache()
        assert default_cache_path() == p1
        first = tune_cache()
        assert first.path == p1
        assert tune_cache() is first  # same path, same instance
        monkeypatch.setenv("REPRO_TUNE_CACHE", str(p2))
        assert tune_cache().path == p2  # path change swaps the instance
        reset_tune_cache()

    def test_kill_switch(self, cache_path, monkeypatch):
        tune_cache().put("sell_chunk", {"chunk": 64}, profile=_profile())
        assert (
            tuned_value("sell_chunk", "chunk", profile=_profile()) == 64
        )
        monkeypatch.setenv("REPRO_TUNE", "0")
        assert not tuning_enabled()
        assert (
            tuned_value("sell_chunk", "chunk", profile=_profile(), default=8)
            == 8
        )

    def test_tuned_value_cold_default(self, cache_path):
        assert tuned_value("sigma", "sigma", default=0) == 0
        assert tuned_value("sigma", "sigma") is None

    def test_tuned_format_requires_matching_batch_k(self, cache_path):
        tune_cache().put(
            FORMAT_FAMILY,
            {"fmt": "ell", "batch_k": 2},
            profile=_profile(),
        )
        assert tuned_format(_profile(), batch_k=2) == "ELL"
        assert tuned_format(_profile(), batch_k=1) is None
        cold = _profile(m=7, nnz=56, adim=8.0, density=56 / (7 * 500))
        assert tuned_format(cold, batch_k=2) is None  # cold bucket
