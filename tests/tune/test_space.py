"""Knob catalogue tests: validity bounds, defaults, determinism."""

import pytest

from repro.features.profile import DatasetProfile
from repro.formats.sell import DEFAULT_CHUNK
from repro.tune.space import (
    FORMAT_FAMILY,
    KNOB_FAMILIES,
    SPACES,
    Knob,
    SearchSpace,
    space_for,
)


def _profile(**over):
    base = dict(
        m=1000, n=500, nnz=8000, ndig=10, dnnz=100.0, mdim=16,
        adim=8.0, vdim=1.0, density=0.016,
    )
    base.update(over)
    cap = base["m"] * base["n"]
    if base["nnz"] > cap:  # keep the profile's own invariant
        base["nnz"] = cap
        base["density"] = cap / (base["m"] * base["n"]) if cap else 0.0
    return DatasetProfile(**base)


class TestKnob:
    def test_default_must_be_candidate(self):
        with pytest.raises(ValueError, match="default"):
            Knob(name="k", values=(1, 2), default=3)

    def test_candidates_respect_bounds(self):
        with pytest.raises(ValueError, match="outside"):
            Knob(name="k", values=(0, 2), default=2, lo=1)

    def test_needs_values(self):
        with pytest.raises(ValueError, match="candidate values"):
            Knob(name="k", values=(), default=0)

    def test_profile_conditioned_default(self):
        k = Knob(
            name="k",
            values=(1, 2, 4),
            default=1,
            default_for=lambda p: 4 if p.m > 100 else 1,
        )
        assert k.default_value() == 1
        assert k.default_value(_profile(m=1000)) == 4
        assert k.default_value(_profile(m=10)) == 1

    def test_conditioned_default_outside_values_falls_back(self):
        k = Knob(
            name="k", values=(1, 2), default=1, default_for=lambda p: 99
        )
        assert k.default_value(_profile()) == 1


class TestSearchSpace:
    def test_needs_knobs(self):
        with pytest.raises(ValueError, match="needs knobs"):
            SearchSpace(family="f", knobs=())

    def test_duplicate_knobs_rejected(self):
        k = Knob(name="k", values=(1,), default=1)
        with pytest.raises(ValueError, match="duplicate"):
            SearchSpace(family="f", knobs=(k, k))

    def test_grid_default_first_and_deterministic(self):
        space = space_for("sell_chunk")
        g1 = space.grid()
        g2 = space.grid()
        assert g1 == g2
        assert g1[0] == space.default_config()
        assert len(g1) == len(space.knobs[0].values)

    def test_neighbours_vary_one_knob(self):
        space = space_for("sigma")
        base = space.default_config()
        neigh = space.neighbours(space.knobs[0], base)
        assert len(neigh) == len(space.knobs[0].values)
        assert base in neigh

    def test_validate_roundtrip(self):
        space = space_for("batch_k")
        assert space.validate({"batch_k": 8}) == {"batch_k": 8}

    def test_validate_rejects_missing_and_illegal(self):
        space = space_for("batch_k")
        with pytest.raises(ValueError, match="missing"):
            space.validate({})
        with pytest.raises(ValueError, match="not a"):
            space.validate({"batch_k": 3})


class TestCatalogue:
    def test_every_family_registered(self):
        assert set(KNOB_FAMILIES) == set(SPACES)
        for family, space in SPACES.items():
            assert space.family == family

    def test_format_family_is_not_a_knob_family(self):
        assert FORMAT_FAMILY not in SPACES

    def test_sell_chunk_default_matches_builder(self):
        assert (
            space_for("sell_chunk").default_config()["chunk"]
            == DEFAULT_CHUNK
        )

    def test_machine_wide_families(self):
        assert SPACES["workers"].machine_wide
        assert SPACES["row_blocks"].machine_wide
        assert not SPACES["sell_chunk"].machine_wide

    def test_row_blocks_default_matches_kernels(self):
        from repro.parallel.partition import DEFAULT_MIN_ROWS_PER_BLOCK

        assert (
            space_for("row_blocks").default_config()["min_rows_per_block"]
            == DEFAULT_MIN_ROWS_PER_BLOCK
        )

    def test_sigma_profile_conditioning(self):
        space = space_for("sigma")
        uniform = _profile(vdim=0.0)  # cv_dim = 0
        assert space.default_config(uniform)["sigma"] == 64
        skewed = _profile(vdim=400.0)  # cv_dim >> 0.25
        assert space.default_config(skewed)["sigma"] == 0

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError, match="unknown knob family"):
            space_for("nope")
