"""Machine fingerprint and profile bucketing tests."""

import numpy as np

from repro.data.synthetic import uniform_rows_matrix
from repro.features.extract import profile_from_coo
from repro.features.profile import DatasetProfile
from repro.tune.fingerprint import (
    MACHINE_BUCKET,
    fingerprint_hash,
    machine_fingerprint,
    profile_bucket,
    profile_from_lengths,
)


def _profile(**over):
    base = dict(
        m=1000, n=500, nnz=8000, ndig=10, dnnz=100.0, mdim=16,
        adim=8.0, vdim=1.0, density=0.016,
    )
    base.update(over)
    cap = base["m"] * base["n"]
    if base["nnz"] > cap:  # keep the profile's own invariant
        base["nnz"] = cap
        base["density"] = cap / (base["m"] * base["n"]) if cap else 0.0
    return DatasetProfile(**base)


class TestFingerprint:
    def test_stable_and_memoised(self):
        a = machine_fingerprint()
        b = machine_fingerprint()
        assert a == b
        assert a is not b  # defensive copies, not the memo itself

    def test_required_fields(self):
        fp = machine_fingerprint()
        for key in (
            "cpu_model", "cpu_count", "machine", "system",
            "page_size", "caches", "numpy", "blas", "python",
        ):
            assert key in fp
        assert fp["cpu_count"] >= 1
        assert fp["page_size"] >= 512

    def test_hash_short_stable_and_keyed(self):
        h = fingerprint_hash()
        assert len(h) == 12
        assert h == fingerprint_hash(machine_fingerprint())
        other = dict(machine_fingerprint(), cpu_model="other-cpu")
        assert fingerprint_hash(other) != h


class TestProfileBucket:
    def test_shape_of_key(self):
        b = profile_bucket(_profile())
        parts = b.split("-")
        assert len(parts) == 5
        assert parts[0].startswith("a")
        assert parts[1] in ("uni", "mid", "wide")
        assert parts[2].startswith("d")
        assert parts[3] in ("tall", "square", "wide", "empty")
        assert parts[4].startswith("m")

    def test_nearby_profiles_share_a_bucket(self):
        a = profile_bucket(_profile(adim=8.0))
        b = profile_bucket(_profile(adim=8.4, nnz=8400))
        assert a == b

    def test_row_decade_splits_buckets(self):
        small = profile_bucket(_profile(m=80))
        large = profile_bucket(_profile(m=8000))
        assert small != large

    def test_variability_class_splits_buckets(self):
        uni = profile_bucket(_profile(vdim=0.0))
        wide = profile_bucket(_profile(vdim=400.0))
        assert uni != wide

    def test_machine_bucket_sentinel(self):
        assert MACHINE_BUCKET == "machine"


class TestProfileFromLengths:
    def test_bucket_matches_full_profile(self):
        # The constructors' lengths-only profile must land in the same
        # bucket as the scheduler's full COO profile — that is the whole
        # point of the shortcut.
        rows, cols, _vals, shape = uniform_rows_matrix(300, 120, 8, seed=3)
        full = profile_from_coo(rows, cols, shape)
        lengths = np.bincount(rows, minlength=shape[0])
        assert profile_bucket(
            profile_from_lengths(lengths, shape)
        ) == profile_bucket(full)

    def test_moment_fields(self):
        lengths = np.array([2, 4, 6])
        p = profile_from_lengths(lengths, (3, 10))
        assert p.nnz == 12
        assert p.adim == 4.0
        assert p.mdim == 6
        assert p.density == 12 / 30

    def test_empty_matrix(self):
        p = profile_from_lengths(np.zeros(0, dtype=np.int64), (0, 5))
        assert p.nnz == 0
        assert p.density == 0.0
