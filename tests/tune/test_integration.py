"""Tuning-cache wiring and determinism guards.

Two contracts under test:

1. **Provenance** — a warm tuning-cache key flips the scheduler's (and
   the serving warm-up's) decision source to ``"tuned"`` and nothing
   else: cold keys, kill-switch runs, candidate-set violations and
   batch-width mismatches all fall back to the analytic path,
   unchanged.
2. **Value preservation** — every knob the cache feeds (SELL slice
   height, reorder window, partition granularity, worker count, SVM
   row-cache budget) only moves *time*.  Warm-cache outputs must be
   bitwise identical to kill-switch outputs.
"""

import numpy as np
import pytest

from repro.core.cost_model import ANALYTIC_FORMATS
from repro.core.scheduler import LayoutScheduler
from repro.data.synthetic import uniform_rows_matrix
from repro.features.extract import profile_from_coo
from repro.formats.csr import CSRMatrix
from repro.formats.reorder import RSELLMatrix
from repro.formats.sell import DEFAULT_CHUNK, SELLMatrix
from repro.obs.audit import audit_log
from repro.parallel.kernels import parallel_matvec
from repro.parallel.pool import WorkerPool
from repro.serve.rescheduler import FormatRescheduler
from repro.svm.kernels import LinearKernel
from repro.svm.smo import smo_train
from repro.tune.cache import reset_tune_cache, tune_cache
from repro.tune.space import FORMAT_FAMILY


@pytest.fixture
def cache_path(tmp_path, monkeypatch):
    path = tmp_path / "tune.json"
    monkeypatch.setenv("REPRO_TUNE_CACHE", str(path))
    reset_tune_cache()
    audit_log().clear()
    yield path
    audit_log().clear()
    reset_tune_cache()


def _coo(seed=7, m=200, n=80, per_row=6):
    return uniform_rows_matrix(m, n, per_row, seed=seed)


def _warm_format(profile, fmt="ell", batch_k=1):
    tune_cache().put(
        FORMAT_FAMILY,
        {"fmt": fmt, "batch_k": batch_k},
        profile=profile,
    )


class TestSchedulerWiring:
    def test_warm_key_decides_with_tuned_provenance(self, cache_path):
        rows, cols, vals, shape = _coo()
        _warm_format(profile_from_coo(rows, cols, shape), fmt="ell")
        sched = LayoutScheduler("cost", candidates=ANALYTIC_FORMATS)
        d = sched.decide_from_coo(rows, cols, vals, shape)
        assert d.fmt == "ELL"
        assert d.source == "tuned"
        assert d.cached
        rec = audit_log().records()[-1]
        assert rec.decision_source == "tuned"
        assert rec.chosen == "ELL"

    def test_cold_key_stays_analytic(self, cache_path):
        rows, cols, vals, shape = _coo()
        d = LayoutScheduler("cost").decide_from_coo(rows, cols, vals, shape)
        assert d.source == "analytic"
        assert audit_log().records()[-1].decision_source == "analytic"

    def test_tuned_fmt_outside_candidates_is_ignored(self, cache_path):
        rows, cols, vals, shape = _coo()
        _warm_format(profile_from_coo(rows, cols, shape), fmt="ell")
        sched = LayoutScheduler("cost", candidates=("CSR",))
        d = sched.decide_from_coo(rows, cols, vals, shape)
        assert d.fmt == "CSR"
        assert d.source == "analytic"

    def test_batch_k_mismatch_is_a_cold_key(self, cache_path):
        rows, cols, vals, shape = _coo()
        _warm_format(profile_from_coo(rows, cols, shape), batch_k=8)
        d = LayoutScheduler("cost").decide_from_coo(rows, cols, vals, shape)
        assert d.source == "analytic"  # scheduler decides at batch_k=1

    def test_kill_switch_restores_analytic_path(
        self, cache_path, monkeypatch
    ):
        rows, cols, vals, shape = _coo()
        _warm_format(profile_from_coo(rows, cols, shape), fmt="ell")
        monkeypatch.setenv("REPRO_TUNE", "0")
        d = LayoutScheduler("cost").decide_from_coo(rows, cols, vals, shape)
        assert d.source == "analytic"

    def test_warm_decisions_identical_across_schedulers(self, cache_path):
        rows, cols, vals, shape = _coo()
        _warm_format(profile_from_coo(rows, cols, shape), fmt="sell")

        def decide():
            return LayoutScheduler(
                "cost", candidates=ANALYTIC_FORMATS
            ).decide_from_coo(rows, cols, vals, shape)

        a, b = decide(), decide()
        assert (a.fmt, a.source) == (b.fmt, b.source) == ("SELL", "tuned")

    def test_default_candidate_universe_excludes_sell(self, cache_path):
        # A warm SELL key must not leak into a scheduler whose default
        # candidate universe is the base FORMAT_NAMES family.
        rows, cols, vals, shape = _coo()
        _warm_format(profile_from_coo(rows, cols, shape), fmt="sell")
        d = LayoutScheduler("cost").decide_from_coo(rows, cols, vals, shape)
        assert d.source == "analytic"
        assert d.fmt != "SELL"

    def test_tuned_path_not_memoised_in_decision_cache(self, cache_path):
        # Provenance contract: the tuning-cache lookup *is* the memo.
        # Re-routing it through the DecisionCache would re-label later
        # hits "analytic".
        rows, cols, vals, shape = _coo()
        profile = profile_from_coo(rows, cols, shape)
        _warm_format(profile, fmt="ell")
        sched = LayoutScheduler("cost")
        sched.decide_from_coo(rows, cols, vals, shape)
        assert sched.cache.get(profile, sched.batch_k) is None


class TestServeWarmup:
    def test_warm_cache_sets_initial_format_and_width(self, cache_path):
        rows, cols, vals, shape = _coo()
        profile = profile_from_coo(rows, cols, shape)
        tune_cache().put("batch_k", {"batch_k": 8}, profile=profile)
        _warm_format(profile, fmt="sell", batch_k=8)
        resched = FormatRescheduler()
        matrix = CSRMatrix.from_coo(rows, cols, vals, shape)
        assert resched.initial_format(matrix) == "SELL"
        assert resched.scheduler.batch_k == 8
        rec = audit_log().records(source="serve")[-1]
        assert rec.decision_source == "tuned"
        assert rec.batch_k == 8

    def test_warm_fmt_outside_serve_family_is_rejected(self, cache_path):
        # DEN is a legal scheduler format but not bitwise-exact under
        # serving swaps; warm-up must fall back to the analytic rank.
        rows, cols, vals, shape = _coo()
        profile = profile_from_coo(rows, cols, shape)
        _warm_format(profile, fmt="den", batch_k=1)
        resched = FormatRescheduler()
        matrix = CSRMatrix.from_coo(rows, cols, vals, shape)
        fmt = resched.initial_format(matrix)
        assert fmt != "DEN"
        assert fmt in resched.scheduler.candidates
        assert audit_log().records(source="serve") == []


class TestDeterminismGuards:
    """Warm-cache outputs are bitwise equal to kill-switch outputs."""

    def test_sell_chunk_only_moves_time(self, cache_path):
        rows, cols, vals, shape = _coo(seed=11)
        tune_cache().put(
            "sell_chunk",
            {"chunk": 32},
            profile=profile_from_coo(rows, cols, shape),
        )
        warm = SELLMatrix.from_coo(rows, cols, vals, shape)
        assert warm.chunk == 32  # the tuned slice height was consulted
        default = SELLMatrix.from_coo(
            rows, cols, vals, shape, chunk=DEFAULT_CHUNK
        )
        x = np.linspace(-1.0, 1.0, shape[1])
        assert np.array_equal(warm.matvec(x), default.matvec(x))

    def test_sigma_only_moves_time(self, cache_path, monkeypatch):
        rows, cols, vals, shape = _coo(seed=12)
        tune_cache().put(
            "sigma",
            {"sigma": 16},
            profile=profile_from_coo(rows, cols, shape),
        )
        warm = RSELLMatrix.from_coo(rows, cols, vals, shape)
        monkeypatch.setenv("REPRO_TUNE", "0")
        cold = RSELLMatrix.from_coo(rows, cols, vals, shape)
        x = np.linspace(-1.0, 1.0, shape[1])
        assert np.array_equal(warm.matvec(x), cold.matvec(x))

    def test_partition_and_workers_only_move_time(self, cache_path):
        rows, cols, vals, shape = _coo(seed=13)
        tune_cache().put("row_blocks", {"min_rows_per_block": 128})
        tune_cache().put("workers", {"workers": 2})
        matrix = CSRMatrix.from_coo(rows, cols, vals, shape)
        x = np.linspace(-1.0, 1.0, shape[1])
        with WorkerPool(2) as pool:
            warm = parallel_matvec(matrix, x, pool=pool)
        assert np.array_equal(warm, matrix.matvec(x))

    def test_row_cache_budget_only_moves_time(
        self, cache_path, monkeypatch
    ):
        rows, cols, vals, shape = _coo(seed=14, m=40, n=12, per_row=4)
        X = CSRMatrix.from_coo(rows, cols, vals, shape)
        y = np.where(np.arange(shape[0]) % 2 == 0, 1.0, -1.0)
        tune_cache().put(
            "row_cache_mb",
            {"row_cache_mb": 1},
            profile=profile_from_coo(rows, cols, shape),
        )
        warm = smo_train(X, y, LinearKernel(), max_iter=500)
        monkeypatch.setenv("REPRO_TUNE", "0")
        cold = smo_train(X, y, LinearKernel(), max_iter=500)
        assert np.array_equal(warm.alpha, cold.alpha)
        assert warm.b == cold.b
        assert warm.iterations == cold.iterations
