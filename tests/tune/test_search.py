"""Search harness tests: incumbent protection, determinism, resume."""

import numpy as np
import pytest

from repro.data.synthetic import uniform_rows_matrix
from repro.tune.search import (
    FamilyResult,
    ProbeContext,
    TuneSearch,
    params_key,
)
from repro.tune.space import space_for


class StubCtx:
    """A fake probe context: cost comes from a table, not a clock."""

    def __init__(self, cost_fn, profile=None):
        self.cost_fn = cost_fn
        self.profile = profile
        self.shape = (16, 16)
        self.calls = 0

    def measurer_for(self, family):
        def measure(config, repeats):
            self.calls += 1
            return self.cost_fn(config)

        return measure


class TestParamsKey:
    def test_canonical_order(self):
        assert params_key({"b": 2, "a": 1}) == params_key({"a": 1, "b": 2})

    def test_distinct_configs_distinct_keys(self):
        assert params_key({"a": 1}) != params_key({"a": 2})


class TestTuneFamily:
    def test_finds_the_measured_argmin(self):
        ctx = StubCtx(lambda c: 0.1 if c["chunk"] == 32 else 1.0)
        r = TuneSearch(seed=0).tune_family("sell_chunk", ctx)
        assert r.best == {"chunk": 32}
        assert r.improved
        assert r.best_seconds <= r.default_seconds
        assert r.speedup == pytest.approx(10.0)

    def test_incumbent_protection_default_wins_ties(self):
        # Every configuration measures identically: the persisted
        # winner must be the analytic default, not an arbitrary rival.
        ctx = StubCtx(lambda c: 1.0)
        r = TuneSearch(seed=0).tune_family("sell_chunk", ctx)
        assert r.best == r.default
        assert not r.improved

    def test_default_never_beaten_by_noise_reversal(self):
        # A rival that wins the cheap rungs but loses the final
        # head-to-head must not be persisted: the final measurement
        # pair decides, and the default is re-raced at full fidelity.
        ctx = StubCtx(lambda c: 1.0)  # flat; protection keeps the default
        r = TuneSearch(seed=0, base_repeats=2, max_repeats=8).tune_family(
            "sell_chunk", ctx
        )
        assert r.best == r.default
        assert r.best_seconds <= r.default_seconds

    def test_deterministic_across_instances(self):
        cost = lambda c: float(c["sigma"] % 7) + 0.5
        r1 = TuneSearch(seed=3).tune_family("sigma", StubCtx(cost))
        r2 = TuneSearch(seed=3).tune_family("sigma", StubCtx(cost))
        assert r1.best == r2.best
        assert r1.best_seconds == r2.best_seconds
        assert r1.fidelity == r2.fidelity

    def test_memoisation_never_remeasures(self):
        ctx = StubCtx(lambda c: float(c["chunk"]))
        search = TuneSearch(seed=0)
        search.tune_family("sell_chunk", ctx)
        calls = ctx.calls
        search.tune_family("sell_chunk", ctx)  # same knobs, same rungs
        assert ctx.calls == calls

    def test_resume_from_prior_measurements(self):
        ctx1 = StubCtx(lambda c: float(c["chunk"]))
        s1 = TuneSearch(seed=0)
        r1 = s1.tune_family("sell_chunk", ctx1)
        # a later process reloads the measurement memo: zero re-timing
        ctx2 = StubCtx(lambda c: float(c["chunk"]))
        s2 = TuneSearch(seed=0, prior=s1.measurements)
        r2 = s2.tune_family("sell_chunk", ctx2)
        assert ctx2.calls == 0
        assert r2.best == r1.best
        assert s2.spent == 0  # cached rungs cost no budget

    def test_budget_exhaustion_still_yields_honest_result(self):
        ctx = StubCtx(lambda c: 0.1 if c["chunk"] == 64 else 1.0)
        r = TuneSearch(seed=0, budget=1).tune_family("sell_chunk", ctx)
        # the final head-to-head always runs, so the pair is measured
        assert r.best_seconds <= r.default_seconds
        assert isinstance(r, FamilyResult)

    def test_trials_recorded(self):
        ctx = StubCtx(lambda c: 1.0)
        r = TuneSearch(seed=0).tune_family("sell_chunk", ctx)
        assert len(r.trials) >= 1
        d = r.as_dict()
        assert d["family"] == "sell_chunk"
        assert d["trials"] == len(r.trials)

    def test_validation(self):
        with pytest.raises(ValueError):
            TuneSearch(base_repeats=0)
        with pytest.raises(ValueError):
            TuneSearch(base_repeats=4, max_repeats=2)
        with pytest.raises(ValueError):
            TuneSearch(budget=0)


class TestProbeContext:
    def test_probe_ids_deterministic_and_in_range(self):
        rows, cols, vals, shape = uniform_rows_matrix(64, 32, 4, seed=1)
        a = ProbeContext(rows, cols, vals, shape, seed=5)
        b = ProbeContext(rows, cols, vals, shape, seed=5)
        assert a.probe_ids == b.probe_ids
        assert len(set(a.probe_ids)) == len(a.probe_ids)
        assert all(0 <= i < shape[0] for i in a.probe_ids)

    def test_tiny_matrix_clamps_probe_count(self):
        rows, cols, vals, shape = uniform_rows_matrix(3, 8, 2, seed=1)
        ctx = ProbeContext(rows, cols, vals, shape, smsv_per_probe=8)
        assert len(ctx.probe_ids) == 3

    def test_empty_matrix_rejected(self):
        e = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError, match="empty"):
            ProbeContext(e, e, np.empty(0), (0, 4))

    def test_unknown_family_has_no_measurer(self):
        rows, cols, vals, shape = uniform_rows_matrix(8, 8, 2, seed=1)
        ctx = ProbeContext(rows, cols, vals, shape)
        with pytest.raises(ValueError, match="no measurer"):
            ctx.measurer_for("nope")

    def test_real_measurers_return_positive_seconds(self):
        rows, cols, vals, shape = uniform_rows_matrix(32, 16, 4, seed=2)
        ctx = ProbeContext(rows, cols, vals, shape, seed=2)
        for family in ("sell_chunk", "sigma", "batch_k", "row_cache_mb"):
            config = space_for(family).default_config(ctx.profile)
            assert ctx.measurer_for(family)(config, 1) > 0.0


class TestEndToEnd:
    def test_search_on_a_real_probe_context(self):
        rows, cols, vals, shape = uniform_rows_matrix(64, 32, 4, seed=4)
        ctx = ProbeContext(rows, cols, vals, shape, seed=4)
        search = TuneSearch(seed=4, base_repeats=1, max_repeats=2, budget=48)
        results = search.tune(ctx, ("sell_chunk", "batch_k"))
        assert set(results) == {"sell_chunk", "batch_k"}
        for family, r in results.items():
            space = space_for(family)
            space.validate(r.best)  # persisted winner is always legal
            assert r.best_seconds <= r.default_seconds
