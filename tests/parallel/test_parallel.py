"""Partitioning and thread-pool tests."""

import numpy as np
import pytest

from repro.parallel import (
    WorkerPool,
    balanced_chunks,
    parallel_map,
    parallel_reduce,
    row_blocks,
)
from repro.parallel.pool import _worker_cap, default_workers


class TestRowBlocks:
    def test_even_split(self):
        assert row_blocks(10, 2) == [(0, 5), (5, 10)]

    def test_uneven_split(self):
        blocks = row_blocks(10, 3)
        assert blocks == [(0, 4), (4, 7), (7, 10)]

    def test_covers_everything_once(self):
        for n, k in [(1, 1), (7, 3), (100, 7), (5, 10)]:
            blocks = row_blocks(n, k)
            covered = [i for s, e in blocks for i in range(s, e)]
            assert covered == list(range(n))

    def test_more_blocks_than_rows(self):
        blocks = row_blocks(3, 10)
        assert len(blocks) == 3  # empties omitted

    def test_zero_rows(self):
        assert row_blocks(0, 4) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            row_blocks(-1, 2)
        with pytest.raises(ValueError):
            row_blocks(5, 0)


class TestBalancedChunks:
    def test_balances_weighted_rows(self):
        blocks = balanced_chunks([1, 1, 1, 9], 2)
        assert blocks == [(0, 3), (3, 4)]

    def test_covers_everything(self):
        rng = np.random.default_rng(0)
        w = rng.random(57)
        blocks = balanced_chunks(w, 5)
        covered = [i for s, e in blocks for i in range(s, e)]
        assert covered == list(range(57))

    def test_weights_roughly_balanced(self):
        rng = np.random.default_rng(1)
        w = rng.random(1000)
        blocks = balanced_chunks(w, 4)
        sums = [w[s:e].sum() for s, e in blocks]
        assert max(sums) / min(sums) < 1.5

    def test_zero_weights_fall_back(self):
        blocks = balanced_chunks(np.zeros(8), 2)
        assert blocks == [(0, 4), (4, 8)]

    def test_empty(self):
        assert balanced_chunks([], 3) == []

    def test_validation(self):
        with pytest.raises(ValueError):
            balanced_chunks([1.0], 0)
        with pytest.raises(ValueError):
            balanced_chunks(np.ones((2, 2)), 2)


class TestWorkerPool:
    def test_map_results_ordered(self):
        with WorkerPool(4) as pool:
            assert pool.map(lambda v: v * 2, list(range(10))) == [
                v * 2 for v in range(10)
            ]

    def test_serial_fast_path(self):
        pool = WorkerPool(1)
        assert pool._executor is None
        assert pool.map(lambda v: v + 1, [1, 2]) == [2, 3]
        assert pool._executor is None  # never created

    def test_run_thunks(self):
        with WorkerPool(2) as pool:
            assert pool.run([lambda: 1, lambda: 2]) == [1, 2]

    def test_validation(self):
        with pytest.raises(ValueError):
            WorkerPool(0)

    def test_parallel_writes_disjoint_slices(self):
        # The usage pattern the format kernels rely on.
        out = np.zeros(100)

        def fill(block):
            s, e = block
            out[s:e] = np.arange(s, e)

        parallel_map(fill, row_blocks(100, 8), n_workers=8)
        assert np.array_equal(out, np.arange(100.0))


class TestParallelReduce:
    def test_sum(self):
        total = parallel_reduce(
            lambda v: v * v, list(range(10)), lambda a, b: a + b, n_workers=4
        )
        assert total == sum(v * v for v in range(10))

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            parallel_reduce(lambda v: v, [], lambda a, b: a + b)


class TestDefaultWorkers:
    def test_unset_falls_back_to_cpu_count(self, monkeypatch):
        monkeypatch.delenv("REPRO_NUM_THREADS", raising=False)
        assert default_workers() >= 1

    def test_blank_value_is_unset(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "   ")
        assert default_workers() >= 1

    def test_valid_value_used_verbatim(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", " 4 ")
        assert default_workers() == 4

    def test_unparsable_warns_and_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "many")
        with pytest.warns(RuntimeWarning, match="not an integer"):
            n = default_workers()
        assert n >= 1

    def test_below_one_warns_and_clamps(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "-3")
        with pytest.warns(RuntimeWarning, match="below 1"):
            assert default_workers() == 1

    def test_absurd_value_warns_and_clamps_to_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "1000000000")
        with pytest.warns(RuntimeWarning, match="sanity cap"):
            n = default_workers()
        assert n == _worker_cap()
        assert n < 10_000  # thread stacks would OOM long before this

    def test_clamped_value_still_builds_a_pool(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "0")
        with pytest.warns(RuntimeWarning):
            pool = WorkerPool()
        assert pool.n_workers == 1
