"""Parallel matvec/SMSV: identical results, disjoint writes."""

import numpy as np
import pytest

from repro.formats import SparseVector, from_dense
from repro.parallel import WorkerPool, parallel_matvec, parallel_smsv
from repro.data.synthetic import matrix_with_vdim
from repro.formats.csr import CSRMatrix


@pytest.fixture
def big_sparse(rng):
    a = (rng.random((2000, 150)) < 0.1) * rng.standard_normal((2000, 150))
    a[7] = 0.0  # an empty row inside a block
    return a


class TestParallelMatvec:
    @pytest.mark.parametrize("fmt", ["DEN", "CSR", "ELL"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial(self, big_sparse, rng, fmt, workers):
        m = from_dense(big_sparse, fmt)
        x = rng.standard_normal(150)
        with WorkerPool(workers) as pool:
            y = parallel_matvec(m, x, pool=pool, min_rows_per_block=100)
        assert np.allclose(y, big_sparse @ x)

    @pytest.mark.parametrize("fmt", ["COO", "DIA"])
    def test_unsupported_formats_fall_back(self, big_sparse, rng, fmt):
        m = from_dense(big_sparse[:100], fmt)
        x = rng.standard_normal(150)
        with WorkerPool(4) as pool:
            y = parallel_matvec(m, x, pool=pool, min_rows_per_block=10)
        assert np.allclose(y, big_sparse[:100] @ x)

    def test_small_matrix_serial_fast_path(self, rng):
        a = rng.standard_normal((50, 10))
        m = from_dense(a, "CSR")
        x = rng.standard_normal(10)
        with WorkerPool(4) as pool:
            y = parallel_matvec(m, x, pool=pool)  # 50 < 256 rows
        assert np.allclose(y, a @ x)

    def test_shape_validation(self, big_sparse, rng):
        m = from_dense(big_sparse, "CSR")
        with pytest.raises(ValueError, match="matvec expects"):
            parallel_matvec(m, rng.standard_normal(3))

    def test_skewed_rows_balanced_csr(self, rng):
        # A matrix with one huge row: the weighted partitioner must
        # still produce the exact result.
        rows, cols, vals, shape = matrix_with_vdim(
            1500, 2000, adim=20, vdim=256.0, seed=0
        )
        m = CSRMatrix.from_coo(rows, cols, vals, shape)
        x = rng.standard_normal(2000)
        with WorkerPool(4) as pool:
            y = parallel_matvec(m, x, pool=pool, min_rows_per_block=100)
        assert np.allclose(y, m.matvec(x))


class TestParallelSMSV:
    def test_matches_serial_smsv(self, big_sparse, rng):
        m = from_dense(big_sparse, "CSR")
        xv = rng.standard_normal(150) * (rng.random(150) < 0.4)
        v = SparseVector.from_dense(xv)
        with WorkerPool(4) as pool:
            y = parallel_smsv(m, v, pool=pool, min_rows_per_block=100)
        assert np.allclose(y, m.smsv(v))


class TestParallelSell:
    """PR 4: SELL row-block kernels + nnz-balanced work accounting."""

    def _sell(self, rng, m=1200, n=300, chunk=8):
        from repro.data.synthetic import powerlaw_rows_matrix
        from repro.formats.sell import SELLMatrix

        rows, cols, vals, shape = powerlaw_rows_matrix(
            m, n, alpha=1.6, min_nnz=2, max_nnz=n // 2, seed=11
        )
        return SELLMatrix.from_coo(rows, cols, vals, shape, chunk=chunk)

    def test_sell_matvec_bitwise_matches_serial(self, rng):
        from repro.parallel import parallel_matvec

        m = self._sell(rng)
        x = rng.standard_normal(300)
        with WorkerPool(4) as pool:
            y = parallel_matvec(m, x, pool=pool, min_rows_per_block=50)
        assert np.array_equal(y, m.matvec(x))

    def test_sell_matmat_bitwise_matches_serial(self, rng):
        from repro.parallel import parallel_matmat

        m = self._sell(rng)
        V = rng.standard_normal((300, 4))
        with WorkerPool(4) as pool:
            Y = parallel_matmat(m, V, pool=pool, min_rows_per_block=50)
        assert np.array_equal(Y, m.matmat(V))

    def test_sell_matvec_bitwise_matches_csr(self, rng):
        from repro.parallel import parallel_matvec

        m = self._sell(rng)
        r, c, v = m.to_coo()
        ref = CSRMatrix.from_coo(r, c, v, m.shape)
        x = rng.standard_normal(300)
        with WorkerPool(3) as pool:
            y = parallel_matvec(m, x, pool=pool, min_rows_per_block=50)
        assert np.array_equal(y, ref.matvec(x))

    def test_counter_reports_nnz_balanced_blocks(self, rng):
        from repro.parallel import parallel_matvec
        from repro.perf.counters import OpCounter

        m = self._sell(rng)
        counter = OpCounter()
        with WorkerPool(4) as pool:
            parallel_matvec(
                m, np.zeros(300), pool=pool,
                min_rows_per_block=50, counter=counter,
            )
        assert counter.parallel_blocks >= 2
        # per-block work sums to the stored (padded) element count...
        assert counter.parallel_work_total == m.padded_elements
        # ...and the nnz-weighted split keeps the largest block well
        # under a naive even-rows split would on this skewed matrix.
        assert (
            counter.parallel_work_max
            < 2 * m.padded_elements / counter.parallel_blocks
        )

    def test_csr_counter_work_is_true_nnz(self, rng):
        from repro.parallel import parallel_matvec
        from repro.perf.counters import OpCounter

        a = (rng.random((1500, 100)) < 0.1) * rng.standard_normal(
            (1500, 100)
        )
        m = from_dense(a, "CSR")
        counter = OpCounter()
        with WorkerPool(4) as pool:
            parallel_matvec(
                m, np.zeros(100), pool=pool,
                min_rows_per_block=50, counter=counter,
            )
        assert counter.parallel_work_total == m.nnz

    def test_fallback_forwards_counter_without_blocks(self, rng):
        from repro.parallel import parallel_matvec
        from repro.perf.counters import OpCounter

        a = (rng.random((400, 60)) < 0.2) * rng.standard_normal((400, 60))
        m = from_dense(a, "COO")  # no row-sliced path
        counter = OpCounter()
        with WorkerPool(2) as pool:
            y = parallel_matvec(
                m, np.zeros(60), pool=pool,
                min_rows_per_block=10, counter=counter,
            )
        assert counter.parallel_blocks == 0
        assert counter.flops > 0  # serial kernel still counted
        assert np.allclose(y, np.zeros(400))

    def test_smsv_multi_forwards_counter(self, rng):
        from repro.parallel import parallel_smsv_multi
        from repro.perf.counters import OpCounter

        m = self._sell(rng)
        vs = [
            SparseVector.from_dense(
                rng.standard_normal(300) * (rng.random(300) < 0.3)
            )
            for _ in range(3)
        ]
        counter = OpCounter()
        with WorkerPool(4) as pool:
            Y = parallel_smsv_multi(
                m, vs, pool=pool, min_rows_per_block=50, counter=counter
            )
        assert np.array_equal(Y, m.smsv_multi(vs))
        assert counter.parallel_blocks >= 2
