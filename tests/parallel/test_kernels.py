"""Parallel matvec/SMSV: identical results, disjoint writes."""

import numpy as np
import pytest

from repro.formats import SparseVector, from_dense
from repro.parallel import WorkerPool, parallel_matvec, parallel_smsv
from repro.data.synthetic import matrix_with_vdim
from repro.formats.csr import CSRMatrix


@pytest.fixture
def big_sparse(rng):
    a = (rng.random((2000, 150)) < 0.1) * rng.standard_normal((2000, 150))
    a[7] = 0.0  # an empty row inside a block
    return a


class TestParallelMatvec:
    @pytest.mark.parametrize("fmt", ["DEN", "CSR", "ELL"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_matches_serial(self, big_sparse, rng, fmt, workers):
        m = from_dense(big_sparse, fmt)
        x = rng.standard_normal(150)
        with WorkerPool(workers) as pool:
            y = parallel_matvec(m, x, pool=pool, min_rows_per_block=100)
        assert np.allclose(y, big_sparse @ x)

    @pytest.mark.parametrize("fmt", ["COO", "DIA"])
    def test_unsupported_formats_fall_back(self, big_sparse, rng, fmt):
        m = from_dense(big_sparse[:100], fmt)
        x = rng.standard_normal(150)
        with WorkerPool(4) as pool:
            y = parallel_matvec(m, x, pool=pool, min_rows_per_block=10)
        assert np.allclose(y, big_sparse[:100] @ x)

    def test_small_matrix_serial_fast_path(self, rng):
        a = rng.standard_normal((50, 10))
        m = from_dense(a, "CSR")
        x = rng.standard_normal(10)
        with WorkerPool(4) as pool:
            y = parallel_matvec(m, x, pool=pool)  # 50 < 256 rows
        assert np.allclose(y, a @ x)

    def test_shape_validation(self, big_sparse, rng):
        m = from_dense(big_sparse, "CSR")
        with pytest.raises(ValueError, match="matvec expects"):
            parallel_matvec(m, rng.standard_normal(3))

    def test_skewed_rows_balanced_csr(self, rng):
        # A matrix with one huge row: the weighted partitioner must
        # still produce the exact result.
        rows, cols, vals, shape = matrix_with_vdim(
            1500, 2000, adim=20, vdim=256.0, seed=0
        )
        m = CSRMatrix.from_coo(rows, cols, vals, shape)
        x = rng.standard_normal(2000)
        with WorkerPool(4) as pool:
            y = parallel_matvec(m, x, pool=pool, min_rows_per_block=100)
        assert np.allclose(y, m.matvec(x))


class TestParallelSMSV:
    def test_matches_serial_smsv(self, big_sparse, rng):
        m = from_dense(big_sparse, "CSR")
        xv = rng.standard_normal(150) * (rng.random(150) < 0.4)
        v = SparseVector.from_dense(xv)
        with WorkerPool(4) as pool:
            y = parallel_smsv(m, v, pool=pool, min_rows_per_block=100)
        assert np.allclose(y, m.smsv(v))
