"""Row-block parallel SpMM: serial identity, serial fast path."""

import numpy as np
import pytest

from repro.formats import SparseVector, from_dense
from repro.parallel import (
    WorkerPool,
    parallel_matmat,
    parallel_smsv_multi,
)


@pytest.fixture
def big_sparse(rng):
    a = (rng.random((2000, 150)) < 0.1) * rng.standard_normal((2000, 150))
    a[7] = 0.0  # an empty row inside a block
    return a


def _sparse_vectors(rng, n, k):
    out = []
    for _ in range(k):
        x = rng.standard_normal(n)
        x[rng.random(n) < 0.6] = 0.0
        out.append(SparseVector.from_dense(x))
    return out


class TestParallelMatmat:
    @pytest.mark.parametrize("fmt", ["DEN", "CSR", "ELL"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_bitwise_identical_to_serial(
        self, big_sparse, rng, fmt, workers
    ):
        m = from_dense(big_sparse, fmt)
        V = rng.standard_normal((150, 3))
        with WorkerPool(workers) as pool:
            Y = parallel_matmat(m, V, pool=pool, min_rows_per_block=100)
        # Blocks run the serial column recipe on contiguous slices, so
        # the result is exactly the serial one — not just close.
        np.testing.assert_array_equal(Y, m.matmat(V))

    @pytest.mark.parametrize("fmt", ["COO", "DIA"])
    def test_unsupported_formats_fall_back(self, big_sparse, rng, fmt):
        m = from_dense(big_sparse[:100], fmt)
        V = rng.standard_normal((150, 2))
        with WorkerPool(4) as pool:
            Y = parallel_matmat(m, V, pool=pool, min_rows_per_block=10)
        np.testing.assert_array_equal(Y, m.matmat(V))

    def test_k_zero_falls_back(self, big_sparse):
        m = from_dense(big_sparse, "CSR")
        with WorkerPool(4) as pool:
            Y = parallel_matmat(
                m, np.zeros((150, 0)), pool=pool, min_rows_per_block=10
            )
        assert Y.shape == (2000, 0)

    def test_shape_validation(self, big_sparse, rng):
        m = from_dense(big_sparse, "CSR")
        with pytest.raises(ValueError, match="matmat expects"):
            parallel_matmat(m, rng.standard_normal((3, 2)))

    def test_single_block_skips_executor(self, rng):
        # Satellite contract: one block (small matrix) must never
        # construct a ThreadPoolExecutor.
        a = rng.standard_normal((50, 10))
        m = from_dense(a, "CSR")
        pool = WorkerPool(4)
        Y = parallel_matmat(m, rng.standard_normal((10, 2)), pool=pool)
        assert not pool.executor_active
        assert Y.shape == (50, 2)
        pool.shutdown()

    def test_single_worker_skips_executor(self, big_sparse, rng):
        m = from_dense(big_sparse, "CSR")
        V = rng.standard_normal((150, 2))
        pool = WorkerPool(1)
        Y = parallel_matmat(m, V, pool=pool, min_rows_per_block=100)
        assert not pool.executor_active
        np.testing.assert_array_equal(Y, m.matmat(V))
        pool.shutdown()


class TestParallelSmsvMulti:
    @pytest.mark.parametrize("fmt", ["DEN", "CSR", "ELL"])
    def test_bitwise_identical_to_serial(self, big_sparse, rng, fmt):
        m = from_dense(big_sparse, fmt)
        vectors = _sparse_vectors(rng, 150, 3)
        with WorkerPool(4) as pool:
            Y = parallel_smsv_multi(
                m, vectors, pool=pool, min_rows_per_block=100
            )
        np.testing.assert_array_equal(Y, m.smsv_multi(vectors))

    def test_length_validation(self, big_sparse):
        m = from_dense(big_sparse, "CSR")
        bad = SparseVector.from_dense(np.ones(7))
        with pytest.raises(ValueError, match="length"):
            parallel_smsv_multi(m, [bad])

    def test_empty_batch(self, big_sparse):
        m = from_dense(big_sparse, "CSR")
        with WorkerPool(2) as pool:
            Y = parallel_smsv_multi(m, [], pool=pool)
        assert Y.shape == (2000, 0)
