"""Thread-safety regression tests for WorkerPool's lazy executor.

``_ensure`` used to be an unlocked check-then-act (the RDL012
pattern): two threads racing the pool's first use could each construct
a ThreadPoolExecutor and one leaked unjoinably with its worker
threads.  The hammer here fails against that version and pins the
fixed behaviour: exactly one executor per pool, ever.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

import repro.parallel.pool as pool_mod
from repro.parallel.pool import (
    WorkerPool,
    _shutdown_shared_pool,
    shared_pool,
)


class CountingExecutor(ThreadPoolExecutor):
    """ThreadPoolExecutor that counts constructions."""

    constructed = 0
    _count_lock = threading.Lock()

    def __init__(self, *args, **kwargs):
        with CountingExecutor._count_lock:
            CountingExecutor.constructed += 1
        super().__init__(*args, **kwargs)


@pytest.fixture
def counting_executor(monkeypatch):
    CountingExecutor.constructed = 0
    monkeypatch.setattr(pool_mod, "ThreadPoolExecutor", CountingExecutor)
    return CountingExecutor


class TestEnsureHammer:
    def test_racing_first_use_builds_one_executor(self, counting_executor):
        pool = WorkerPool(n_workers=2)
        n_threads = 16
        barrier = threading.Barrier(n_threads)
        seen = []
        seen_lock = threading.Lock()

        def slam():
            barrier.wait()
            ex = pool._ensure()
            with seen_lock:
                seen.append(ex)

        threads = [threading.Thread(target=slam) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()

        assert counting_executor.constructed == 1
        assert all(ex is seen[0] for ex in seen)
        pool.shutdown()

    def test_racing_map_calls_share_one_executor(self, counting_executor):
        pool = WorkerPool(n_workers=2)
        barrier = threading.Barrier(8)

        def slam():
            barrier.wait()
            assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]

        threads = [threading.Thread(target=slam) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counting_executor.constructed == 1
        pool.shutdown()


class TestShutdown:
    def test_shutdown_is_idempotent(self):
        pool = WorkerPool(n_workers=2)
        pool.map(lambda x: x, [1, 2])
        assert pool.executor_active
        pool.shutdown()
        assert not pool.executor_active
        pool.shutdown()  # second call is a no-op, not an error
        assert not pool.executor_active

    def test_shutdown_before_first_use_is_safe(self):
        WorkerPool(n_workers=2).shutdown()

    def test_concurrent_shutdowns_join_cleanly(self, counting_executor):
        pool = WorkerPool(n_workers=2)
        pool.map(lambda x: x, [1, 2])
        barrier = threading.Barrier(8)

        def slam():
            barrier.wait()
            pool.shutdown()

        threads = [threading.Thread(target=slam) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not pool.executor_active

    def test_use_after_shutdown_recreates(self, counting_executor):
        pool = WorkerPool(n_workers=2)
        pool.map(lambda x: x, [1, 2])
        pool.shutdown()
        assert pool.map(lambda x: x * 2, [1, 2]) == [2, 4]
        assert counting_executor.constructed == 2
        pool.shutdown()


class TestAtexitHook:
    def test_hook_is_registered_with_atexit(self):
        import atexit

        # atexit offers no public introspection; unregister returning
        # without error after a successful register is the contract we
        # can check — so instead assert the hook exists and is callable,
        # and that registering it again is harmless.
        assert callable(_shutdown_shared_pool)
        atexit.unregister(_shutdown_shared_pool)
        atexit.register(_shutdown_shared_pool)

    def test_hook_joins_the_shared_pool(self, monkeypatch):
        # Pin a multi-worker shared pool: on a single-core box the
        # default pool takes the serial fast path and never constructs
        # an executor for the hook to join.
        pool = WorkerPool(n_workers=2)
        monkeypatch.setattr(pool_mod, "_shared_pool", pool)
        assert shared_pool() is pool
        pool.map(lambda x: x, [1, 2])
        assert pool.executor_active
        _shutdown_shared_pool()
        assert not pool.executor_active
        # lazy use still works after the hook ran
        assert shared_pool().map(lambda x: x, [3, 4]) == [3, 4]
        pool.shutdown()

    def test_hook_is_safe_with_no_pool(self, monkeypatch):
        monkeypatch.setattr(pool_mod, "_shared_pool", None)
        _shutdown_shared_pool()
