"""Unit tests for the REPRO_RACE lockset sanitizer.

Every enabled-mode test builds a *private* :class:`RaceSanitizer` so
the process-wide one (driven by the env var) stays clean — the suite
runs under ``REPRO_RACE=1`` in CI with an autouse fixture asserting no
global reports leak from any test.
"""

import threading

import pytest

from repro.analysis.race import (
    RaceError,
    RaceSanitizer,
    check_disjoint_blocks,
    cls_tracked,
    get_race_sanitizer,
    race_enabled,
    race_reports,
    track_shared,
)


class Box:
    def __init__(self):
        self.value = 0
        self.other = "x"

    def bump(self):
        self.value += 1


def run_in_thread(fn, name):
    t = threading.Thread(target=fn, name=name)
    t.start()
    t.join()


def run_two(fn1, fn2, names=("t1", "t2")):
    """Run ``fn1`` then ``fn2`` on two *simultaneously live* threads.

    Sequential started-and-joined threads can be handed the same
    thread ident (CPython reuses them), which the lockset check would
    correctly treat as one thread.  Keeping the first thread alive
    until the second has run guarantees two distinct idents — the
    shape a real race has.
    """
    first_done = threading.Event()
    release = threading.Event()

    def w1():
        fn1()
        first_done.set()
        release.wait(timeout=10)

    def w2():
        assert first_done.wait(timeout=10)
        fn2()

    t1 = threading.Thread(target=w1, name=names[0])
    t2 = threading.Thread(target=w2, name=names[1])
    t1.start()
    t2.start()
    t2.join()
    release.set()
    t1.join()


# -- the env switch ------------------------------------------------------


class TestEnabledFlag:
    @pytest.mark.parametrize("flag", ["", "0", "false", "No", " OFF "])
    def test_disabled_values(self, monkeypatch, flag):
        monkeypatch.setenv("REPRO_RACE", flag)
        assert race_enabled() is False

    @pytest.mark.parametrize("flag", ["1", "true", "yes", "on"])
    def test_enabled_values(self, monkeypatch, flag):
        monkeypatch.setenv("REPRO_RACE", flag)
        assert race_enabled() is True

    def test_unset_is_disabled(self, monkeypatch):
        monkeypatch.delenv("REPRO_RACE", raising=False)
        assert race_enabled() is False


# -- zero-cost disabled mode ----------------------------------------------


class TestDisabledMode:
    def test_make_lock_returns_plain_lock(self):
        san = RaceSanitizer(enabled=False)
        assert type(san.make_lock("x")) is type(threading.Lock())

    def test_track_is_identity(self):
        san = RaceSanitizer(enabled=False)
        box = Box()
        assert san.track(box, ("value",)) is box
        assert type(box) is Box
        assert cls_tracked(type(box)) == ()
        box.value = 7
        assert box.value == 7
        assert san.reports() == []

    def test_global_helpers_are_inert_when_disabled(self):
        if race_enabled():
            pytest.skip("REPRO_RACE set for this run")
        box = track_shared(Box(), ("value",))
        assert type(box) is Box
        assert get_race_sanitizer().enabled is False


# -- lockset maintenance ----------------------------------------------------


class TestTrackedLock:
    def test_context_manager_maintains_lockset(self):
        san = RaceSanitizer(enabled=True)
        a, b = san.make_lock("a"), san.make_lock("b")
        assert san.current_lockset() == ()
        with a:
            assert san.current_lockset() == ("a",)
            with b:
                assert san.current_lockset() == ("a", "b")
            assert san.current_lockset() == ("a",)
        assert san.current_lockset() == ()

    def test_acquire_release_api(self):
        san = RaceSanitizer(enabled=True)
        lk = san.make_lock("a")
        assert lk.acquire() is True
        assert lk.locked()
        assert san.current_lockset() == ("a",)
        lk.release()
        assert not lk.locked()
        assert san.current_lockset() == ()

    def test_failed_nonblocking_acquire_leaves_lockset(self):
        san = RaceSanitizer(enabled=True)
        lk = san.make_lock("a")
        grabbed = threading.Event()
        release = threading.Event()

        def holder():
            with lk:
                grabbed.set()
                release.wait(timeout=5)

        t = threading.Thread(target=holder)
        t.start()
        grabbed.wait(timeout=5)
        assert lk.acquire(blocking=False) is False
        assert san.current_lockset() == ()
        release.set()
        t.join()

    def test_lockset_is_per_thread(self):
        san = RaceSanitizer(enabled=True)
        lk = san.make_lock("a")
        seen = {}

        def peek():
            seen["other"] = san.current_lockset()

        with lk:
            run_in_thread(peek, "peeker")
        assert seen["other"] == ()


# -- field tracking ----------------------------------------------------------


class TestTrack:
    def test_track_preserves_behaviour(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))
        assert isinstance(box, Box)
        assert box.value == 0
        box.bump()
        assert box.value == 1
        assert box.other == "x"
        assert cls_tracked(type(box)) == ("value",)

    def test_tracked_class_is_cached(self):
        san = RaceSanitizer(enabled=True)
        a = san.track(Box(), ("value",))
        b = san.track(Box(), ("value",))
        assert type(a) is type(b)

    def test_retrack_extends_fields(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))
        box = san.track(box, ("other",))
        assert cls_tracked(type(box)) == ("other", "value")
        assert box.value == 0 and box.other == "x"


# -- the lockset check: true positives and sanctioned patterns --------------


class TestConflictDetection:
    def test_disjoint_locksets_report(self):
        """The deliberately racy fixture: two locks that guard nothing.

        Each thread takes *its own* lock around the write — mutual
        exclusion in name only, exactly the bug pattern Eraser's
        lockset intersection exists to catch.
        """
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))
        a, b = san.make_lock("a"), san.make_lock("b")

        def writer(lock):
            def run():
                with lock:
                    box.value += 1

            return run

        run_two(writer(a), writer(b), names=("wa", "wb"))
        reports = san.reports()
        assert len(reports) == 1
        text = reports[0].render()
        assert "Box.value" in text
        assert "'wa'" in text and "'wb'" in text

    def test_unlocked_write_vs_locked_write_reports(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))
        a = san.make_lock("a")

        def locked():
            with a:
                box.value = 1

        def naked():
            box.value = 2

        run_two(locked, naked, names=("locked", "naked"))
        assert len(san.reports()) == 1
        assert "no locks" in san.reports()[0].render()

    def test_common_lock_is_clean(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))
        a = san.make_lock("a")

        def writer():
            with a:
                box.value += 1

        for i in range(4):
            run_in_thread(writer, f"w{i}")
        assert san.reports() == []

    def test_concurrent_reads_are_clean(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))

        def reader():
            _ = box.value

        run_in_thread(reader, "r1")
        run_in_thread(reader, "r2")
        assert san.reports() == []

    def test_single_thread_never_reports(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))
        box.value = 1
        with san.make_lock("a"):
            box.value = 2
        box.value = 3
        assert san.reports() == []

    def test_one_report_per_field(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))

        def writer():
            box.value += 1

        run_two(writer, writer, names=("w0", "w1"))
        run_two(writer, writer, names=("w2", "w3"))
        assert len(san.reports()) == 1

    def test_assert_clean_raises_with_rendered_report(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))
        run_two(
            lambda: setattr(box, "value", 1),
            lambda: setattr(box, "value", 2),
        )
        with pytest.raises(RaceError, match="Box.value"):
            san.assert_clean()

    def test_clear_resets(self):
        san = RaceSanitizer(enabled=True)
        box = san.track(Box(), ("value",))
        run_two(
            lambda: setattr(box, "value", 1),
            lambda: setattr(box, "value", 2),
        )
        assert san.reports()
        san.clear()
        assert san.reports() == []
        san.assert_clean()

    def test_global_sanitizer_untouched_by_private_ones(self):
        assert race_reports() == []


# -- block-partition runtime check -------------------------------------------


class TestDisjointBlocks:
    def test_valid_partition_passes(self):
        check_disjoint_blocks([(0, 3), (3, 5), (5, 8)], 8)
        check_disjoint_blocks([], 4)
        check_disjoint_blocks([(2, 2)], 4)  # empty block is fine

    def test_overlap_raises(self):
        with pytest.raises(RaceError, match="overlaps"):
            check_disjoint_blocks([(0, 3), (2, 5)], 8)

    def test_out_of_range_raises(self):
        with pytest.raises(RaceError, match="escapes"):
            check_disjoint_blocks([(0, 9)], 8)
        with pytest.raises(RaceError, match="escapes"):
            check_disjoint_blocks([(-1, 2)], 8)


# -- constructor validation ---------------------------------------------------


class TestConstruction:
    def test_history_floor(self):
        with pytest.raises(ValueError):
            RaceSanitizer(history=1)

    def test_max_reports_floor(self):
        with pytest.raises(ValueError):
            RaceSanitizer(max_reports=0)
