"""Per-rule lint tests: one firing and one clean fixture per RDL code.

Fixtures are inline source strings linted under *virtual* paths, since
several rules are path-scoped (RDL001/RDL004 fire only under
``repro/formats/``, RDL005 only under ``repro/core/`` and so on).
Each positive test selects only the rule under test so an intentionally
bad fixture cannot trip a neighbouring rule and blur the assertion.
"""

import textwrap

import pytest

from repro.analysis import (
    explain_rule,
    get_rule,
    iter_rules,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.lint import Finding, suppressed_codes
from repro.analysis.rules import ALL_CODES

FORMATS = "src/repro/formats/fake.py"
DATA = "src/repro/data/fake.py"
CORE = "src/repro/core/fake.py"
NEUTRAL = "src/repro/svm/fake.py"


def lint(src, path, code):
    """Lint dedented ``src`` at ``path`` with only ``code`` enabled."""
    return lint_source(textwrap.dedent(src), path, select=[code])


def codes(findings):
    return [f.code for f in findings]


# -- engine basics -----------------------------------------------------


class TestEngine:
    def test_registry_has_all_twelve_rules(self):
        assert ALL_CODES == tuple(
            f"RDL{i:03d}" for i in range(1, 13)
        )
        assert [r.code for r in iter_rules()] == list(ALL_CODES)

    def test_every_rule_has_name_and_rationale(self):
        for rule in iter_rules():
            assert rule.name
            assert len(rule.rationale.split()) > 10

    def test_get_rule_is_case_insensitive(self):
        assert get_rule("rdl001").code == "RDL001"

    def test_get_rule_unknown_raises_with_catalogue(self):
        with pytest.raises(ValueError, match="RDL001"):
            get_rule("RDL999")

    def test_syntax_error_becomes_rdl000(self):
        findings = lint_source("def broken(:\n", "src/repro/x.py")
        assert codes(findings) == ["RDL000"]
        assert "syntax error" in findings[0].message

    def test_finding_render_format(self):
        f = Finding(path="a/b.py", line=3, col=7, code="RDL001", message="msg")
        assert f.render() == "a/b.py:3:7 RDL001 msg"
        assert f.as_dict()["line"] == 3

    def test_render_text_summary_line(self):
        assert render_text([]) == "no findings"
        f = Finding(path="x.py", line=1, col=0, code="RDL001", message="m")
        out = render_text([f, f])
        assert out.endswith("2 findings")

    def test_render_json_shape(self):
        import json

        f = Finding(path="x.py", line=1, col=0, code="RDL002", message="m")
        blob = json.loads(render_json([f]))
        assert blob["count"] == 1
        assert blob["ok"] is False
        assert blob["findings"][0]["code"] == "RDL002"
        assert json.loads(render_json([]))["ok"] is True

    def test_explain_mirrors_explain_style(self):
        text = explain_rule("RDL003")
        assert text.startswith("RDL003 — parallel-closure-capture")
        assert "suppress with: # repro: noqa RDL003" in text

    def test_ignore_drops_a_rule(self):
        src = "try:\n    pass\nexcept:\n    pass\n"
        assert codes(lint_source(src, NEUTRAL)) == ["RDL006"]
        assert lint_source(src, NEUTRAL, ignore=["RDL006"]) == []


# -- noqa suppression --------------------------------------------------


class TestNoqa:
    SRC = """
    class Fake:
        def matvec(self, x):
            for i in range(3):  {marker}
                x = x + i
            return x
    """

    def _lint_with(self, marker):
        return lint(self.SRC.format(marker=marker), FORMATS, "RDL001")

    def test_fires_without_marker(self):
        assert codes(self._lint_with("")) == ["RDL001"]

    def test_bare_noqa_suppresses_everything(self):
        assert self._lint_with("# repro: noqa") == []

    def test_coded_noqa_suppresses_that_code(self):
        assert self._lint_with("# repro: noqa RDL001 — ndig loop") == []

    def test_wrong_code_does_not_suppress(self):
        assert codes(self._lint_with("# repro: noqa RDL002")) == ["RDL001"]

    def test_plain_flake8_noqa_is_not_ours(self):
        assert codes(self._lint_with("# noqa")) == ["RDL001"]

    def test_suppressed_codes_parsing(self):
        src = "a = 1  # repro: noqa RDL001, RDL004\nb = 2  # repro: noqa\n"
        table = suppressed_codes(src)
        assert table[1] == frozenset({"RDL001", "RDL004"})
        assert table[2] is None


# -- RDL001: hot-path Python loop --------------------------------------


class TestHotPathLoop:
    def test_fires_on_loop_in_kernel_method(self):
        src = """
        class FakeMatrix:
            def matvec(self, x, counter=None):
                y = list(x)
                for i in range(len(y)):
                    y[i] = y[i] * 2.0
                return y
        """
        findings = lint(src, FORMATS, "RDL001")
        assert codes(findings) == ["RDL001"]
        assert "FakeMatrix.matvec" in findings[0].message

    def test_fires_on_while_in_smsv(self):
        src = """
        class FakeMatrix:
            def smsv(self, v):
                i = 0
                while i < 10:
                    i += 1
                return i
        """
        assert codes(lint(src, FORMATS, "RDL001")) == ["RDL001"]

    def test_clean_on_vectorised_kernel(self):
        src = """
        import numpy as np

        class FakeMatrix:
            def matvec(self, x, counter=None):
                return self.data @ x

            def row_norms_sq(self):
                return np.einsum("ij,ij->i", self.data, self.data)
        """
        assert lint(src, FORMATS, "RDL001") == []

    def test_loops_outside_kernel_methods_allowed(self):
        src = """
        class FakeMatrix:
            def to_coo(self):
                for k in range(self.ndig):
                    yield k
        """
        assert lint(src, FORMATS, "RDL001") == []

    def test_out_of_scope_path_ignored(self):
        src = """
        class Model:
            def matvec(self, x):
                for i in range(3):
                    x += i
                return x
        """
        assert lint(src, NEUTRAL, "RDL001") == []


# -- RDL002: raw dtype literal -----------------------------------------


class TestRawDtypeLiteral:
    def test_fires_on_np_float64(self):
        src = """
        import numpy as np

        def build(n):
            return np.zeros(n, dtype=np.float64)
        """
        findings = lint(src, DATA, "RDL002")
        assert codes(findings) == ["RDL002"]
        assert "VALUE_DTYPE" in findings[0].message

    def test_fires_on_np_int32_and_string_dtype(self):
        src = """
        import numpy as np

        def build(rows):
            idx = np.asarray(rows, dtype=np.int32)
            vals = np.asarray(rows, dtype="float64")
            return idx, vals
        """
        findings = lint(src, FORMATS, "RDL002")
        assert codes(findings) == ["RDL002", "RDL002"]
        assert "INDEX_DTYPE" in findings[0].message

    def test_clean_with_canonical_aliases(self):
        src = """
        import numpy as np
        from repro.formats.base import INDEX_DTYPE, VALUE_DTYPE

        def build(rows):
            idx = np.asarray(rows, dtype=INDEX_DTYPE)
            return np.zeros(len(idx), dtype=VALUE_DTYPE)
        """
        assert lint(src, DATA, "RDL002") == []

    def test_int64_pointer_arrays_not_flagged(self):
        src = """
        import numpy as np

        def ptr(n):
            return np.zeros(n + 1, dtype=np.int64)
        """
        assert lint(src, FORMATS, "RDL002") == []

    def test_defining_module_exempt(self):
        src = "import numpy as np\nVALUE_DTYPE = np.float64\n"
        assert lint(src, "src/repro/formats/base.py", "RDL002") == []

    def test_dnn_out_of_scope(self):
        src = "import numpy as np\nX = np.zeros(3, dtype=np.float64)\n"
        assert lint(src, "src/repro/dnn/images.py", "RDL002") == []


# -- RDL003: parallel-closure capture ----------------------------------


class TestParallelClosureCapture:
    def test_fires_on_nonlocal_accumulator(self):
        src = """
        def run(pool, items):
            total = 0.0

            def work(item):
                nonlocal total
                total += item

            pool.map(work, items)
            return total
        """
        findings = lint(src, NEUTRAL, "RDL003")
        assert codes(findings) == ["RDL003"]
        assert "nonlocal" in findings[0].message

    def test_fires_on_append_to_captured_list(self):
        src = """
        def run(pool, items):
            results = []

            def work(item):
                results.append(item * 2)

            pool.map(work, items)
            return results
        """
        findings = lint(src, NEUTRAL, "RDL003")
        assert codes(findings) == ["RDL003"]
        assert "results" in findings[0].message

    def test_fires_on_fixed_index_write(self):
        src = """
        def run(executor, items, out):
            def work(item):
                out[0] = item

            executor.submit(work, items)
        """
        findings = lint(src, NEUTRAL, "RDL003")
        assert codes(findings) == ["RDL003"]
        assert "disjoint" in findings[0].message

    def test_fires_via_parallel_map_lambda(self):
        src = """
        def run(items, acc):
            parallel_map(lambda item: acc.update({item: 1}), items)
        """
        assert codes(lint(src, NEUTRAL, "RDL003")) == ["RDL003"]

    def test_clean_on_disjoint_slice_discipline(self):
        src = """
        def run(pool, blocks, y, kernel):
            def work(block):
                s, e = block
                y[s:e] = kernel(block)

            pool.map(work, blocks)
            return y
        """
        assert lint(src, NEUTRAL, "RDL003") == []

    def test_clean_on_pure_map(self):
        src = """
        def run(pool, items):
            return pool.map(lambda item: item * 2, items)
        """
        assert lint(src, NEUTRAL, "RDL003") == []

    def test_non_pool_receiver_ignored(self):
        src = """
        def run(mapping, items):
            def work(item):
                mapping.bad.append(item)

            mapping.map(work, items)
        """
        # receiver name carries no pool/executor hint -> out of scope
        assert lint(src, NEUTRAL, "RDL003") == []


# -- RDL004: missing OpCounter accounting ------------------------------


class TestMissingOpCounter:
    def test_fires_when_counter_never_reported(self):
        src = """
        class FakeMatrix:
            def matvec(self, x, counter=None):
                return self.data @ x
        """
        findings = lint(src, FORMATS, "RDL004")
        assert codes(findings) == ["RDL004"]
        assert "never reports" in findings[0].message

    def test_clean_when_counter_adds(self):
        src = """
        class FakeMatrix:
            def matvec(self, x, counter=None):
                y = self.data @ x
                if counter is not None:
                    counter.add_flops(2 * self.nnz)
                return y
        """
        assert lint(src, FORMATS, "RDL004") == []

    def test_clean_when_counter_forwarded(self):
        src = """
        class FakeMatrix:
            def smsv(self, v, counter=None):
                return self.matvec(v.to_dense(), counter)
        """
        assert lint(src, FORMATS, "RDL004") == []

    def test_abstract_stub_exempt(self):
        src = """
        import abc

        class Base(abc.ABC):
            @abc.abstractmethod
            def matvec(self, x, counter=None):
                \"\"\"Docstring only.\"\"\"
        """
        assert lint(src, FORMATS, "RDL004") == []

    def test_kernel_without_counter_param_exempt(self):
        src = """
        class FakeMatrix:
            def matvec(self, x):
                return self.data @ x
        """
        assert lint(src, FORMATS, "RDL004") == []


# -- RDL005: scheduler-cache key hygiene -------------------------------


class TestSchedulerCacheKey:
    def test_fires_on_unhashable_key(self):
        src = """
        def remember(cache, profile, fmt):
            cache.put([profile.vdim, profile.density], fmt)
        """
        findings = lint(src, CORE, "RDL005")
        assert codes(findings) == ["RDL005"]
        assert "unhashable" in findings[0].message

    def test_fires_on_unquantised_profile_vector(self):
        src = """
        def remember(self, profile, fmt):
            self._cache[tuple(profile.as_vector())] = fmt
        """
        findings = lint(src, CORE, "RDL005")
        assert codes(findings) == ["RDL005"]
        assert "quantise" in findings[0].message

    def test_fires_on_cache_class_key_method(self):
        src = """
        class DecisionCache:
            def key(self, profile):
                return tuple(profile.as_vector())
        """
        assert codes(lint(src, CORE, "RDL005")) == ["RDL005"]

    def test_clean_when_quantised(self):
        src = """
        class DecisionCache:
            def key(self, profile):
                return tuple(
                    self._quantise(v) for v in profile.as_vector()
                )

        def remember(cache, key, fmt):
            cache.put(key, fmt)
        """
        assert lint(src, CORE, "RDL005") == []

    def test_out_of_scope_path_ignored(self):
        src = """
        def remember(cache, profile, fmt):
            cache.put([profile.vdim], fmt)
        """
        assert lint(src, NEUTRAL, "RDL005") == []


# -- RDL006: swallowed exceptions --------------------------------------


class TestSwallowedException:
    def test_bare_except_fires_everywhere(self):
        src = """
        def risky():
            try:
                return 1
            except:
                return 0
        """
        findings = lint(src, NEUTRAL, "RDL006")
        assert codes(findings) == ["RDL006"]
        assert "KeyboardInterrupt" in findings[0].message

    def test_silent_swallow_fires_in_io_path(self):
        src = """
        def parse(line):
            try:
                return float(line)
            except ValueError:
                pass
        """
        findings = lint(src, DATA, "RDL006")
        assert codes(findings) == ["RDL006"]
        assert "silently swallowed" in findings[0].message

    def test_silent_swallow_allowed_outside_io(self):
        src = """
        def probe(fn):
            try:
                return fn()
            except ValueError:
                pass
        """
        assert lint(src, CORE, "RDL006") == []

    def test_reraise_with_context_clean(self):
        src = """
        def parse(line, path):
            try:
                return float(line)
            except ValueError as exc:
                raise ValueError(f"bad line in {path}") from exc
        """
        assert lint(src, DATA, "RDL006") == []

    def test_warn_is_enough(self):
        src = """
        import warnings

        def parse(line):
            try:
                return float(line)
            except ValueError:
                warnings.warn(f"skipping bad line {line!r}")
                return None
        """
        assert lint(src, DATA, "RDL006") == []


# -- RDL007: missing SpMM OpCounter accounting -------------------------


class TestMissingSpmmCounter:
    def test_fires_on_silent_matmat(self):
        src = """
        class FakeMatrix:
            def matmat(self, V, counter=None):
                return self.data @ V
        """
        findings = lint(src, FORMATS, "RDL007")
        assert codes(findings) == ["RDL007"]
        assert "never reports" in findings[0].message

    def test_fires_on_silent_smsv_multi(self):
        src = """
        class FakeMatrix:
            def smsv_multi(self, vectors, counter=None):
                return self.data @ scatter(vectors)
        """
        assert codes(lint(src, FORMATS, "RDL007")) == ["RDL007"]

    def test_clean_when_add_spmm_called(self):
        src = """
        class FakeMatrix:
            def matmat(self, V, counter=None):
                y = self.data @ V
                if counter is not None:
                    counter.add_spmm(V.shape[1])
                return y
        """
        assert lint(src, FORMATS, "RDL007") == []

    def test_clean_when_counter_forwarded(self):
        src = """
        class FakeMatrix:
            def smsv_multi(self, vectors, counter=None):
                return self.matmat(scatter(vectors), counter)
        """
        assert lint(src, FORMATS, "RDL007") == []

    def test_single_vector_kernels_out_of_scope(self):
        # matvec/smsv belong to RDL004, not RDL007.
        src = """
        class FakeMatrix:
            def matvec(self, x, counter=None):
                return self.data @ x
        """
        assert lint(src, FORMATS, "RDL007") == []

    def test_outside_formats_out_of_scope(self):
        src = """
        class Proxy:
            def matmat(self, V, counter=None):
                return self.inner.matmat(V)
        """
        assert lint(src, NEUTRAL, "RDL007") == []


# -- RDL008: unguarded allocation in span instrumentation --------------


class TestSpanAllocation:
    def test_fires_on_fstring_span_name(self):
        src = """
        def smsv(self, v):
            with tracer.span(f"formats.smsv.{self.name}"):
                return self.data @ v
        """
        findings = lint(src, FORMATS, "RDL008")
        assert codes(findings) == ["RDL008"]
        assert "tracing disabled" in findings[0].message

    def test_fires_on_unguarded_set(self):
        src = """
        def convert(matrix, cls):
            with tracer.span("formats.convert") as sp:
                sp.set("from", matrix.name)
                return cls.from_coo(*matrix.to_coo())
        """
        findings = lint(src, FORMATS, "RDL008")
        assert codes(findings) == ["RDL008"]
        assert "sp.set" in findings[0].message

    def test_clean_when_set_guarded(self):
        src = """
        def convert(matrix, cls):
            with tracer.span("formats.convert") as sp:
                if tracer.enabled:
                    sp.set("from", matrix.name)
                    sp.set("nnz", int(matrix.nnz))
                return cls.from_coo(*matrix.to_coo())
        """
        assert lint(src, FORMATS, "RDL008") == []

    def test_fires_on_dict_literal_span_argument(self):
        src = """
        def smsv(self, v):
            with tracer.span("formats.smsv", {"fmt": self.name}):
                return self.data @ v
        """
        assert codes(lint(src, FORMATS, "RDL008")) == ["RDL008"]

    def test_constant_names_and_bare_spans_clean(self):
        src = """
        def smsv(self, v):
            with tracer.span("formats.smsv"):
                return self.data @ v
        """
        assert lint(src, FORMATS, "RDL008") == []

    def test_nested_guard_blocks_cover_loops(self):
        src = """
        def sweep(self, batches):
            with tracer.span("serve.sweep") as sp:
                if tracer.enabled:
                    for b in batches:
                        sp.set("k", len(b))
                return [self.predict(b) for b in batches]
        """
        assert lint(src, "src/repro/serve/fake.py", "RDL008") == []

    def test_obs_itself_is_in_scope(self):
        # The observability plane runs on serving hot paths (flight
        # recorder, SLO monitor), so repro.obs holds itself to the
        # same allocation discipline.
        src = """
        def report(records):
            with tracer.span(f"obs.report.{len(records)}") as sp:
                sp.set("n", len(records))
        """
        findings = lint(src, "src/repro/obs/fake.py", "RDL008")
        assert len(findings) == 2

    def test_outside_hot_packages_out_of_scope(self):
        # The CLI may pay for convenience.
        src = """
        def report(records):
            with tracer.span(f"obs.report.{len(records)}") as sp:
                sp.set("n", len(records))
        """
        assert lint(src, "src/repro/cli.py", "RDL008") == []

    def test_instrumented_tree_self_check(self):
        # The real instrumented packages must satisfy their own rule.
        import pathlib

        import repro
        from repro.analysis.lint import lint_paths

        pkg = pathlib.Path(repro.__file__).parent
        findings = lint_paths([pkg], select=["RDL008"])
        assert findings == []
