"""CLI surfaces of the linter: ``repro lint`` and ``python -m repro.analysis``.

Also the gate this whole subsystem exists for: the repo's own source
tree must lint clean (every intentional exception carries a noqa).
"""

import json
from pathlib import Path

import pytest

import repro
from repro.analysis.__main__ import main as analysis_main
from repro.cli import main

REPO_ROOT = Path(repro.__file__).resolve().parents[2]

BAD_KERNEL = '''\
class FakeMatrix:
    def matvec(self, x, counter=None):
        y = list(x)
        for i in range(len(y)):
            y[i] = y[i] * 2.0
        return y
'''


@pytest.fixture
def bad_file(tmp_path):
    """A file under a virtual formats/ path with RDL001+RDL004 hits."""
    target = tmp_path / "src" / "repro" / "formats" / "bad.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_KERNEL)
    return target


class TestRepoLintsClean:
    def test_src_and_tests_have_no_findings(self, capsys):
        src = REPO_ROOT / "src"
        tests = REPO_ROOT / "tests"
        assert main(["lint", str(src), str(tests)]) == 0
        assert capsys.readouterr().out.strip().endswith("no findings")


class TestLintCommand:
    def test_findings_fail_with_text_rendering(self, bad_file, capsys):
        assert main(["lint", str(bad_file)]) == 1
        out = capsys.readouterr().out
        assert "RDL001" in out and "RDL004" in out
        # file:line:col prefix on each finding line
        assert f"{bad_file}:4:" in out
        assert out.strip().endswith("2 findings")

    def test_json_mode_for_ci(self, bad_file, capsys):
        assert main(["lint", str(bad_file), "--json"]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False
        assert blob["count"] == 2
        assert sorted(f["code"] for f in blob["findings"]) == [
            "RDL001",
            "RDL004",
        ]
        assert blob["findings"][0]["path"] == str(bad_file)

    def test_select_narrows_to_one_rule(self, bad_file, capsys):
        assert main(["lint", str(bad_file), "--select", "RDL001"]) == 1
        out = capsys.readouterr().out
        assert "RDL001" in out and "RDL004" not in out

    def test_ignore_drops_rules(self, bad_file, capsys):
        assert (
            main(["lint", str(bad_file), "--ignore", "RDL001,RDL004"]) == 0
        )
        assert "no findings" in capsys.readouterr().out

    def test_directory_expansion(self, bad_file, capsys):
        assert main(["lint", str(bad_file.parents[3]), "--json"]) == 1
        assert json.loads(capsys.readouterr().out)["count"] == 2

    def test_nonexistent_path_exits_2(self, capsys):
        # A typo'd path in a CI invocation must fail loudly, not lint
        # zero files and report success.
        assert main(["lint", "no/such/path"]) == 2
        assert "no such file" in capsys.readouterr().err
        assert analysis_main(["no/such/path"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_clean_file_passes(self, tmp_path, capsys):
        ok = tmp_path / "src" / "repro" / "formats" / "ok.py"
        ok.parent.mkdir(parents=True)
        ok.write_text("X = 1\n")
        assert main(["lint", str(ok)]) == 0
        assert "no findings" in capsys.readouterr().out


class TestExplain:
    def test_explain_prints_rationale(self, capsys):
        assert main(["lint", "--explain", "RDL001"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("RDL001 — hot-path-python-loop")
        assert "cost model" in out
        assert "suppress with: # repro: noqa RDL001" in out

    def test_explain_every_registered_rule(self, capsys):
        from repro.analysis.rules import ALL_CODES

        for code in ALL_CODES:
            assert main(["lint", "--explain", code]) == 0
            assert code in capsys.readouterr().out

    def test_explain_unknown_code_exits_2(self, capsys):
        assert main(["lint", "--explain", "RDL999"]) == 2
        err = capsys.readouterr().err
        assert "unknown rule" in err


class TestModuleEntryPoint:
    def test_json_and_exit_status(self, bad_file, capsys):
        assert analysis_main([str(bad_file)]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["count"] == 2

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        ok = tmp_path / "ok.py"
        ok.write_text("X = 1\n")
        assert analysis_main([str(ok)]) == 0
        assert json.loads(capsys.readouterr().out)["ok"] is True


RACY_POOL = '''\
class BlockPool:
    def ensure(self):
        if self._executor is None:
            self._executor = make_executor()
        return self._executor
'''


class TestRaceCommand:
    @pytest.fixture
    def racy_file(self, tmp_path):
        target = tmp_path / "src" / "repro" / "parallel" / "racy.py"
        target.parent.mkdir(parents=True)
        target.write_text(RACY_POOL)
        return target

    def test_src_tree_is_race_clean(self, capsys):
        assert main(["race", str(REPO_ROOT / "src")]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_findings_fail_with_text_rendering(self, racy_file, capsys):
        assert main(["race", str(racy_file)]) == 1
        out = capsys.readouterr().out
        assert "RDL012" in out
        assert f"{racy_file}:3:" in out

    def test_json_mode_for_ci(self, racy_file, capsys):
        assert main(["race", str(racy_file), "--json"]) == 1
        blob = json.loads(capsys.readouterr().out)
        assert blob["ok"] is False
        assert blob["findings"][0]["code"] == "RDL012"

    def test_only_concurrency_rules_run(self, bad_file, capsys):
        # RDL001/RDL004 territory: `repro race` must not report it.
        assert main(["race", str(bad_file)]) == 0
        assert "no findings" in capsys.readouterr().out

    def test_nonexistent_path_exits_2(self, capsys):
        assert main(["race", "no/such/path"]) == 2
        assert "no such file" in capsys.readouterr().err
