"""Per-rule tests for the concurrency family RDL009-RDL012.

Same conventions as ``test_lint_rules.py``: inline fixtures linted
under virtual paths (the concurrency rules are scoped to the packages
that share state across threads), one firing and one clean fixture per
behaviour, and a tree self-check asserting the shipped sources are
race-lint clean.
"""

import pathlib
import textwrap

import repro
from repro.analysis import lint_paths, lint_source
from repro.analysis.concurrency import CONCURRENCY_CODES

SERVE = "src/repro/serve/fake.py"
PARALLEL = "src/repro/parallel/fake.py"
SVM = "src/repro/svm/fake.py"
DATA = "src/repro/data/fake.py"  # outside every concurrency scope


def lint(src, path, code):
    return lint_source(textwrap.dedent(src), path, select=[code])


def codes(findings):
    return [f.code for f in findings]


# -- RDL009: guarded-attribute-unlocked ---------------------------------


class TestGuardedAttribute:
    FIRES = """
    class Engine:
        def convert(self, m):
            with self._lock:
                self._matrix = m

        def peek(self):
            return self._matrix
    """

    def test_unlocked_read_of_guarded_attr_fires(self):
        findings = lint(self.FIRES, SERVE, "RDL009")
        assert codes(findings) == ["RDL009"]
        assert "Engine._matrix" in findings[0].message
        assert "read here without it" in findings[0].message

    def test_unlocked_write_of_guarded_attr_fires(self):
        src = """
        class Engine:
            def convert(self, m):
                with self._lock:
                    self._matrix = m

            def reset(self):
                self._matrix = None
        """
        findings = lint(src, SERVE, "RDL009")
        assert codes(findings) == ["RDL009"]
        assert "written here without it" in findings[0].message

    def test_locked_everywhere_is_clean(self):
        src = """
        class Engine:
            def convert(self, m):
                with self._lock:
                    self._matrix = m

            def peek(self):
                with self._lock:
                    return self._matrix
        """
        assert lint(src, SERVE, "RDL009") == []

    def test_constructor_is_exempt(self):
        src = """
        class Engine:
            def __init__(self):
                self._matrix = None

            def convert(self, m):
                with self._lock:
                    self._matrix = m
        """
        assert lint(src, SERVE, "RDL009") == []

    def test_caller_holds_the_lock_helper_is_clean(self):
        # The _drain pattern: every in-class call site of the helper
        # holds the lock, so the helper inherits the locked context.
        src = """
        class Batcher:
            def add(self, item):
                with self._lock:
                    self._pending.append(item)
                    self._drain()

            def _drain(self):
                self._pending.clear()
        """
        assert lint(src, SERVE, "RDL009") == []

    def test_mutating_call_counts_as_write(self):
        src = """
        class Batcher:
            def add(self, item):
                with self._lock:
                    self._pending.append(item)

            def steal(self):
                return self._pending.pop()
        """
        # Both the mutating .pop() and the bare attribute read are
        # unlocked touches of a guarded attribute.
        findings = lint(src, SERVE, "RDL009")
        assert findings and set(codes(findings)) == {"RDL009"}

    def test_read_only_attr_never_guarded(self):
        # Reads alone never declare an attribute shared: config values
        # read both inside and outside a lock are fine.
        src = """
        class Pool:
            def size(self):
                with self._lock:
                    return self.n_workers

            def describe(self):
                return self.n_workers
        """
        assert lint(src, SERVE, "RDL009") == []

    def test_out_of_scope_package_is_skipped(self):
        assert lint(self.FIRES, DATA, "RDL009") == []


# -- RDL010: executor-closure-escape ------------------------------------


class TestExecutorClosureEscape:
    def test_mutating_call_on_capture_fires(self):
        src = """
        def work(items):
            ex = ThreadPoolExecutor()
            out = []

            def job(i):
                out.append(i)

            ex.map(job, items)
            return out
        """
        findings = lint(src, PARALLEL, "RDL010")
        assert codes(findings) == ["RDL010"]
        assert "'job'" in findings[0].message
        assert "out" in findings[0].message

    def test_untainted_index_write_fires(self):
        src = """
        def work(items):
            workers = WorkerPool(4)
            out = np.zeros(8)
            cursor = 0

            def job(i):
                out[cursor] = i

            workers.map(job, items)
        """
        findings = lint(src, PARALLEL, "RDL010")
        assert codes(findings) == ["RDL010"]
        assert "not derived from the work" in findings[0].message

    def test_disjoint_slice_discipline_is_clean(self):
        # Writing at an index derived from the work item is the
        # sanctioned row-block discipline.
        src = """
        def work(items):
            ex = ThreadPoolExecutor()
            out = np.zeros(8)

            def job(i):
                out[i] = i

            ex.map(job, items)
        """
        assert lint(src, PARALLEL, "RDL010") == []

    def test_lock_guarded_mutation_is_clean(self):
        src = """
        def work(items, lock):
            ex = ThreadPoolExecutor()
            out = []

            def job(i):
                with lock:
                    out.append(i)

            ex.map(job, items)
        """
        assert lint(src, PARALLEL, "RDL010") == []

    def test_pool_hinted_receiver_is_rdl003_territory(self):
        # A receiver whose name says pool/executor is RDL003's beat;
        # RDL010 covers only the names RDL003 cannot see.
        src = """
        def work(items):
            pool = ThreadPoolExecutor()
            out = []

            def job(i):
                out.append(i)

            pool.map(job, items)
        """
        assert lint(src, PARALLEL, "RDL010") == []

    def test_run_thunks_on_hinted_pool_fire(self):
        src = """
        def work(pool):
            acc = {}

            def job():
                acc.update(a=1)

            pool.run([job])
        """
        findings = lint(src, SVM, "RDL010")
        assert codes(findings) == ["RDL010"]

    def test_nonlocal_write_fires(self):
        src = """
        def work(items):
            ex = shared_pool()
            total = 0

            def job(i):
                nonlocal total
                total = total + i

            ex.map(job, items)
        """
        findings = lint(src, PARALLEL, "RDL010")
        assert codes(findings) == ["RDL010"]
        assert "nonlocal" in findings[0].message

    def test_out_of_scope_package_is_skipped(self):
        src = """
        def work(items):
            ex = ThreadPoolExecutor()
            out = []

            def job(i):
                out.append(i)

            ex.map(job, items)
        """
        assert lint(src, DATA, "RDL010") == []


# -- RDL011: inconsistent-lock-order ------------------------------------


class TestLockOrder:
    def test_self_nesting_fires(self):
        src = """
        class Cache:
            def get(self):
                with self._lock:
                    with self._lock:
                        return 1
        """
        findings = lint(src, SERVE, "RDL011")
        assert codes(findings) == ["RDL011"]
        assert "not reentrant" in findings[0].message

    def test_opposite_orders_across_methods_fire(self):
        src = """
        class Pair:
            def a(self):
                with self.alpha_lock:
                    with self.beta_lock:
                        pass

            def b(self):
                with self.beta_lock:
                    with self.alpha_lock:
                        pass
        """
        findings = lint(src, SERVE, "RDL011")
        assert codes(findings) == ["RDL011"]
        assert "opposite orders deadlock" in findings[0].message

    def test_consistent_order_is_clean(self):
        src = """
        class Pair:
            def a(self):
                with self.alpha_lock:
                    with self.beta_lock:
                        pass

            def b(self):
                with self.alpha_lock:
                    with self.beta_lock:
                        pass
        """
        assert lint(src, SERVE, "RDL011") == []

    def test_module_functions_share_one_scope(self):
        src = """
        def f():
            with a_lock:
                with b_lock:
                    pass

        def g():
            with b_lock:
                with a_lock:
                    pass
        """
        findings = lint(src, SERVE, "RDL011")
        assert codes(findings) == ["RDL011"]
        assert "<module>" in findings[0].message

    def test_different_classes_do_not_cross_talk(self):
        # Lock names are compared within one class scope: two classes
        # with private locks of the same attribute names are unrelated.
        src = """
        class A:
            def a(self):
                with self.alpha_lock:
                    with self.beta_lock:
                        pass

        class B:
            def b(self):
                with self.beta_lock:
                    with self.alpha_lock:
                        pass
        """
        assert lint(src, SERVE, "RDL011") == []


# -- RDL012: unlocked-lazy-init ------------------------------------------


class TestDoubleCheckedInit:
    FIRES = """
    class Pool:
        def ensure(self):
            if self._executor is None:
                self._executor = make_executor()
            return self._executor
    """

    def test_unlocked_is_none_check_fires(self):
        findings = lint(self.FIRES, PARALLEL, "RDL012")
        assert codes(findings) == ["RDL012"]
        assert "self._executor" in findings[0].message
        assert "TOCTOU" in findings[0].message

    def test_unlocked_falsy_check_fires(self):
        src = """
        class Sched:
            def profile(self, matrix):
                if not self._profile:
                    self._profile = extract(matrix)
                return self._profile
        """
        findings = lint(src, SERVE, "RDL012")
        assert codes(findings) == ["RDL012"]

    def test_module_global_lazy_init_fires(self):
        src = """
        _shared = None

        def shared():
            global _shared
            if _shared is None:
                _shared = object()
            return _shared
        """
        findings = lint(src, PARALLEL, "RDL012")
        assert codes(findings) == ["RDL012"]
        assert "_shared" in findings[0].message

    def test_check_under_lock_is_clean(self):
        src = """
        class Pool:
            def ensure(self):
                with self._lock:
                    if self._executor is None:
                        self._executor = make_executor()
                    return self._executor
        """
        assert lint(src, PARALLEL, "RDL012") == []

    def test_constructor_is_exempt(self):
        src = """
        class Pool:
            def __init__(self, executor=None):
                if executor is None:
                    executor = make_executor()
                self.executor = executor
        """
        assert lint(src, PARALLEL, "RDL012") == []

    def test_local_variable_is_thread_confined(self):
        src = """
        def compute(cache=None):
            if cache is None:
                cache = {}
            return cache
        """
        assert lint(src, PARALLEL, "RDL012") == []

    def test_lock_inherited_helper_is_clean(self):
        src = """
        class Sched:
            def decide(self, matrix):
                with self._lock:
                    return self._ensure(matrix)

            def _ensure(self, matrix):
                if self._profile is None:
                    self._profile = extract(matrix)
                return self._profile
        """
        assert lint(src, SERVE, "RDL012") == []

    def test_out_of_scope_package_is_skipped(self):
        assert lint(self.FIRES, DATA, "RDL012") == []


# -- the shipped tree is race-lint clean ---------------------------------


def test_repro_tree_is_concurrency_clean():
    """`repro race` over the shipped package reports nothing.

    Mirrors the RDL008 self-check: the concurrency rules run over the
    real sources, so a regression in lock discipline anywhere in
    serve/parallel/obs/core fails this test before it flakes a stress
    test.
    """
    pkg = pathlib.Path(repro.__file__).parent
    findings = lint_paths([pkg], select=list(CONCURRENCY_CODES))
    assert findings == [], "\n".join(f.render() for f in findings)
