"""Sanitizer tests: seeded corruption of every format, caught precisely.

The constructors validate what is cheap at build time; these tests
corrupt the backing arrays *after* construction (the failure mode the
sanitizer exists for) and assert that :func:`check_format` raises a
:class:`FormatInvariantError` naming the broken invariant.
"""

import numpy as np
import pytest

from repro.analysis import (
    FormatInvariantError,
    SanitizedMatrix,
    check_format,
    format_violations,
    sanitize_enabled,
    sanitize_format,
)
from repro.formats import from_dense
from repro.formats.csr import CSRMatrix


@pytest.fixture
def dense(rng):
    a = (rng.random((12, 9)) < 0.4) * rng.standard_normal((12, 9))
    a[3, :] = 0.0  # an empty row, the usual edge case
    return a


# -- healthy matrices --------------------------------------------------


class TestHealthy:
    def test_all_formats_pass_structural_check(self, matrix_in_fmt):
        assert format_violations(matrix_in_fmt) == []
        check_format(matrix_in_fmt)  # does not raise

    def test_all_formats_pass_deep_roundtrip_check(self, matrix_in_fmt):
        assert format_violations(matrix_in_fmt, deep=True) == []


# -- seeded corruptions, one per format --------------------------------


class TestSeededCorruption:
    def test_csr_nonmonotonic_row_ptr(self, dense):
        m = from_dense(dense, "CSR")
        m.row_ptr[2] = m.row_ptr[3] + 4
        with pytest.raises(
            FormatInvariantError,
            match=r"CSR: row_ptr not monotonically non-decreasing at row 2",
        ):
            check_format(m)

    def test_csr_column_index_out_of_range(self, dense):
        m = from_dense(dense, "CSR")
        m.col_idx[-1] = dense.shape[1] + 5
        with pytest.raises(
            FormatInvariantError, match=r"CSR: col_idx out of range"
        ):
            check_format(m)

    def test_coo_duplicate_coordinate(self, dense):
        m = from_dense(dense, "COO")
        m.rows[1] = m.rows[0]
        m.cols[1] = m.cols[0]
        with pytest.raises(
            FormatInvariantError, match=r"COO: duplicate coordinate"
        ):
            check_format(m)

    def test_coo_unsorted_rows(self, dense):
        m = from_dense(dense, "COO")
        m.rows[0] = m.shape[0] - 1  # breaks row-major order
        with pytest.raises(
            FormatInvariantError, match=r"COO: coordinates not row-major"
        ):
            check_format(m)

    def test_ell_nonzero_padding_slot(self, dense):
        m = from_dense(dense, "ELL")
        i = int(np.argmin(m.row_lengths))
        assert m.row_lengths[i] < m.data.shape[1]
        m.data[i, -1] = 7.0
        with pytest.raises(
            FormatInvariantError,
            match=r"ELL: padding slot data\[.*\] holds non-zero",
        ):
            check_format(m)

    def test_ell_row_length_exceeds_width(self, dense):
        m = from_dense(dense, "ELL")
        m.row_lengths[0] = m.data.shape[1] + 3
        with pytest.raises(
            FormatInvariantError, match=r"ELL: row_lengths\[0\].*exceeds"
        ):
            check_format(m)

    def test_dia_offset_out_of_bounds(self, dense):
        m = from_dense(dense, "DIA")
        m.offsets[-1] = m.shape[1] + 10
        with pytest.raises(
            FormatInvariantError,
            match=r"DIA: diagonal offset out of bounds",
        ):
            check_format(m)

    def test_dia_nonzero_out_of_span_slot(self):
        a = np.eye(6)
        a[5, 0] = 2.0  # offset -5: valid span is exactly one slot
        m = from_dense(a, "DIA")
        k = int(np.searchsorted(m.offsets, -5))
        m.data[k, 3] = 9.0  # past the diagonal's true length
        with pytest.raises(
            FormatInvariantError, match=r"DIA: out-of-span slot"
        ):
            check_format(m)

    def test_den_wrong_dtype(self, dense):
        m = from_dense(dense, "DEN")
        m.array = m.array.astype(np.float32)
        with pytest.raises(
            FormatInvariantError, match=r"DEN: array has dtype float32"
        ):
            check_format(m)

    def test_csc_bad_ptr_endpoints(self, dense):
        m = from_dense(dense, "CSC")
        m.col_ptr[-1] = m.nnz + 7
        with pytest.raises(
            FormatInvariantError, match=r"CSC: col_ptr endpoints"
        ):
            check_format(m)

    def test_bcsr_block_col_out_of_range(self, dense):
        m = from_dense(dense, "BCSR")
        m.block_col[0] = 1000
        with pytest.raises(
            FormatInvariantError, match=r"BCSR: block_col out of range"
        ):
            check_format(m)


# -- the SanitizedMatrix proxy -----------------------------------------


class TestSanitizedMatrix:
    def test_wrap_preserves_behaviour(self, dense, rng):
        for name in ("CSR", "COO", "ELL", "DIA", "DEN"):
            s = sanitize_format(from_dense(dense, name))
            x = rng.random(dense.shape[1])
            assert np.allclose(s.matvec(x), dense @ x)
            assert s.name == name  # transparent to name dispatch
            assert s.nnz == np.count_nonzero(dense)

    def test_wrap_rejects_corrupt_matrix_immediately(self, dense):
        m = from_dense(dense, "CSR")
        m.row_ptr[2] = m.row_ptr[3] + 4
        with pytest.raises(FormatInvariantError):
            sanitize_format(m)

    def test_detects_corruption_after_wrap(self, dense, rng):
        m = from_dense(dense, "CSR")
        s = sanitize_format(m)
        x = rng.random(dense.shape[1])
        s.matvec(x)  # healthy
        m.col_idx[-1] = dense.shape[1] + 5  # corrupt in place
        with pytest.raises(FormatInvariantError, match="col_idx"):
            s.matvec(x)

    def test_smsv_and_row_recheck(self, dense):
        m = from_dense(dense, "CSR")
        s = sanitize_format(m)
        assert s.row(0).length == dense.shape[1]
        m.row_ptr[2] = m.row_ptr[3] + 4
        with pytest.raises(FormatInvariantError):
            s.row(0)

    def test_matmat_and_smsv_multi_delegate_and_check(self, dense, rng):
        from repro.formats import SparseVector

        m = from_dense(dense, "CSR")
        s = sanitize_format(m)
        V = rng.standard_normal((dense.shape[1], 3))
        np.testing.assert_array_equal(s.matmat(V), m.matmat(V))
        vecs = [m.row(0), m.row(5)]
        np.testing.assert_array_equal(
            s.smsv_multi(vecs), m.smsv_multi(vecs)
        )
        assert s.smsv_multi(iter(vecs)).shape == (dense.shape[0], 2)
        assert isinstance(vecs[0], SparseVector)
        # corruption after wrap is caught on the SpMM path too
        m.col_idx[-1] = dense.shape[1] + 5
        with pytest.raises(FormatInvariantError, match="col_idx"):
            s.matmat(V)

    def test_double_wrap_unwraps(self, dense):
        m = from_dense(dense, "COO")
        s = sanitize_format(sanitize_format(m))
        assert s.inner is m

    def test_from_coo_refused(self):
        with pytest.raises(TypeError, match="sanitize_format"):
            SanitizedMatrix.from_coo(
                np.array([0]), np.array([0]), np.array([1.0]), (1, 1)
            )

    def test_transpose_stays_sanitized(self, dense):
        s = sanitize_format(from_dense(dense, "CSR"))
        t = s.transpose()
        assert isinstance(t, SanitizedMatrix)
        assert t.shape == (dense.shape[1], dense.shape[0])

    def test_deep_check_catches_duplicate_ell_columns(self, dense):
        m = from_dense(dense, "ELL")
        i = int(np.argmax(m.row_lengths))
        assert m.row_lengths[i] >= 2
        # Duplicate a column inside the valid region: every structural
        # invariant (dtype, range, padding) still holds, but to_coo now
        # emits a duplicate coordinate — only the deep pass sees it.
        m.indices[i, 1] = m.indices[i, 0]
        assert format_violations(m) == []
        assert any(
            "non-canonical" in v for v in format_violations(m, deep=True)
        )
        with pytest.raises(FormatInvariantError, match="non-canonical"):
            sanitize_format(m)  # wrap-time check is deep


# -- the REPRO_SANITIZE construction hook ------------------------------


class TestEnvHook:
    def test_sanitize_enabled_parsing(self, monkeypatch):
        for raw, expect in [
            ("1", True),
            ("true", True),
            ("ON", True),
            ("0", False),
            ("false", False),
            ("no", False),
            ("off", False),
            ("", False),
            ("  ", False),
        ]:
            monkeypatch.setenv("REPRO_SANITIZE", raw)
            assert sanitize_enabled() is expect, raw
        monkeypatch.delenv("REPRO_SANITIZE")
        assert sanitize_enabled() is False

    def test_constructor_hook_catches_unsorted_columns(self, monkeypatch):
        # Columns unsorted within a row: cheap constructor checks pass,
        # the sanitizer's structural pass does not.
        args = (
            np.array([1.0, 2.0]),
            np.array([3, 1]),
            np.array([0, 2]),
            (1, 5),
        )
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        CSRMatrix(*args)  # constructs fine unsanitised
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(
            FormatInvariantError, match="col_idx not strictly increasing"
        ):
            CSRMatrix(*args)

    def test_hook_accepts_all_healthy_formats(self, monkeypatch, dense):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        for name in ("CSR", "COO", "ELL", "DIA", "DEN", "CSC", "BCSR"):
            m = from_dense(dense, name)
            assert format_violations(m) == []
