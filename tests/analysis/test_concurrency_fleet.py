"""Concurrency coverage for the fleet tier: static + runtime positives.

The fleet's genuinely shared-mutable pieces — the shard table the
rebalancer mutates while dispatches read, and per-shard transport
accounting — must stay inside the RDL009-012 static scope and the
``REPRO_RACE`` runtime sanitizer's watch.  These tests pin both
directions: the true-positive fixtures show the checkers *would* fire
on the unguarded versions of exactly those mutations, and the
tree-level checks show the shipped fleet modules are clean.
"""

import pathlib
import textwrap
import threading

import repro
from repro.analysis import lint_paths, lint_source
from repro.analysis.concurrency import CONCURRENCY_CODES
from repro.analysis.race import RaceSanitizer

FLEET = "src/repro/serve/fleet.py"
ROUTER = "src/repro/serve/router.py"


def lint(src, path, code):
    return lint_source(textwrap.dedent(src), path, select=[code])


def codes(findings):
    return [f.code for f in findings]


class TestStaticTruePositives:
    """The unguarded variants of the fleet's real mutations fire."""

    def test_unguarded_shard_table_mutation_fires(self):
        """A rebalancer writing the replica map outside the lock."""
        src = """
        class ShardTable:
            def place(self, model, shard):
                with self._lock:
                    self._replicas.setdefault(model, []).append(shard)

            def rebalance(self, model, shard):
                # the bug the lint exists for: mutating the table
                # while concurrent dispatches read it under the lock
                self._replicas[model] = [shard]
        """
        findings = lint(src, ROUTER, "RDL009")
        assert findings and set(codes(findings)) == {"RDL009"}
        assert "ShardTable._replicas" in findings[0].message

    def test_unguarded_outstanding_counter_fires(self):
        src = """
        class ShardTable:
            def acquire(self, model):
                with self._lock:
                    self._outstanding[0] += 1
                    return 0

            def release(self, shard):
                self._outstanding[shard] -= 1
        """
        findings = lint(src, ROUTER, "RDL009")
        assert findings and set(codes(findings)) == {"RDL009"}
        assert "_outstanding" in findings[0].message

    def test_double_checked_batcher_init_fires(self):
        """Lazy per-shard batcher creation without a lock (RDL012)."""
        src = """
        class Door:
            def batcher_for(self, key):
                if self._batcher is None:
                    self._batcher = object()
                return self._batcher
        """
        findings = lint(src, FLEET, "RDL012")
        assert codes(findings) == ["RDL012"]

    def test_locked_variant_is_clean(self):
        src = """
        class ShardTable:
            def place(self, model, shard):
                with self._lock:
                    self._replicas.setdefault(model, []).append(shard)

            def rebalance(self, model, shard):
                with self._lock:
                    self._replicas[model] = [shard]
        """
        assert lint(src, ROUTER, "RDL009") == []


class TestRuntimeTruePositive:
    """The lockset sanitizer catches an unguarded shard-table race."""

    def run_two(self, fn1, fn2):
        first_done = threading.Event()
        release = threading.Event()

        def w1():
            fn1()
            first_done.set()
            release.wait(timeout=10)

        def w2():
            assert first_done.wait(timeout=10)
            fn2()

        t1 = threading.Thread(target=w1, name="door")
        t2 = threading.Thread(target=w2, name="rebalancer")
        t1.start()
        t2.start()
        t2.join()
        release.set()
        t1.join()

    def test_disjoint_locksets_on_shard_table_report(self):
        san = RaceSanitizer(enabled=True)

        class Table:
            def __init__(self):
                self._replicas = {}

        table = san.track(Table(), ("_replicas",))
        dispatch_lock = san.make_lock("door")
        rebalance_lock = san.make_lock("rebalancer")

        def dispatch():
            with dispatch_lock:
                _ = table._replicas

        def rebalance():
            # Publishing a new replica map while a dispatch reads the
            # old one — each side under a lock, but not the *same* one.
            with rebalance_lock:
                table._replicas = {"m": [0, 1]}

        self.run_two(dispatch, rebalance)
        reports = san.reports()
        assert reports, "disjoint locksets must be reported"
        assert any("_replicas" in r.render() for r in reports)

    def test_common_lock_is_clean(self):
        san = RaceSanitizer(enabled=True)

        class Table:
            def __init__(self):
                self._replicas = {}

        table = san.track(Table(), ("_replicas",))
        lock = san.make_lock("shard_table")

        def dispatch():
            with lock:
                _ = table._replicas

        def rebalance():
            with lock:
                table._replicas = {"m": [0, 1]}

        self.run_two(dispatch, rebalance)
        assert san.reports() == []


class TestShippedFleetModulesAreClean:
    def test_fleet_tier_sources_pass_the_race_lint(self):
        root = pathlib.Path(repro.__file__).resolve().parent / "serve"
        findings = lint_paths(
            [
                str(root / name)
                for name in (
                    "fleet.py", "router.py", "worker.py", "shm.py",
                    "bench_fleet.py",
                )
            ],
            select=list(CONCURRENCY_CODES),
        )
        assert findings == [], [f.render() for f in findings]
