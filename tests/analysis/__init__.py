"""Tests for the static linter and the runtime format sanitizer."""
