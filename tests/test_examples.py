"""Example scripts: each must run cleanly end to end."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str, timeout: int = 300) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


class TestFastExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "AdaptiveSVC" in out
        assert "test acc" in out

    def test_dnn_tuning_modelled(self):
        out = run_example("dnn_tuning.py")
        assert "Tune mu on DGX station" in out
        assert "--measured" in out  # the hint line


@pytest.mark.slow
class TestSlowExamples:
    def test_adaptive_svm_tour(self):
        out = run_example("adaptive_svm_tour.py")
        assert "trefethen" in out

    def test_format_explorer(self):
        out = run_example("format_explorer.py")
        assert "COO wins" in out and "CSR wins" in out

    def test_calibrate_cost_model(self):
        out = run_example("calibrate_cost_model.py")
        assert "fitted calibration" in out

    def test_distributed_training(self):
        out = run_example("distributed_training.py")
        assert "shard layouts" in out
        assert "allreduce" in out

    def test_hardware_analysis(self):
        out = run_example("hardware_analysis.py")
        assert "roofline analysis" in out
        assert "fastest by the SIMD model" in out

    def test_svm_model_selection(self):
        out = run_example("svm_model_selection.py")
        assert "grid search" in out
        assert "predictions identical: True" in out
