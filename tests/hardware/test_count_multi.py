"""Vector-machine SpMM accounting: ``count_multi`` and its speedup."""

import pytest

from repro.data.synthetic import uniform_rows_matrix
from repro.formats import FORMAT_NAMES, from_dense
from repro.formats.convert import convert
from repro.formats.csr import CSRMatrix
from repro.hardware.specs import get_machine
from repro.hardware.vectormachine import VectorMachine


@pytest.fixture
def base_matrix():
    rows, cols, vals, shape = uniform_rows_matrix(300, 120, 10, seed=1)
    return CSRMatrix.from_coo(rows, cols, vals, shape)


@pytest.fixture
def vm():
    return VectorMachine(get_machine("knl"))


class TestCountMulti:
    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_k_one_equals_count_exactly(self, base_matrix, vm, fmt):
        m = convert(base_matrix, fmt)
        single = vm.count(m)
        multi = vm.count_multi(m, 1)
        assert multi.vector_ops == single.vector_ops
        assert multi.startup_ops == single.startup_ops
        assert multi.bytes_moved == single.bytes_moved
        assert multi.seconds == single.seconds

    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_arithmetic_scales_matrix_bytes_do_not(
        self, base_matrix, vm, fmt
    ):
        # k columns issue k times the vector instructions but re-read
        # the matrix streams only once; total bytes therefore grow
        # strictly slower than k-fold (matrix bytes are never zero).
        m = convert(base_matrix, fmt)
        single = vm.count(m)
        k = 6
        multi = vm.count_multi(m, k)
        assert multi.vector_ops == k * single.vector_ops
        assert multi.startup_ops == single.startup_ops
        assert multi.bytes_moved < k * single.bytes_moved
        assert multi.bytes_moved > single.bytes_moved

    def test_k_validation(self, base_matrix, vm):
        with pytest.raises(ValueError, match=">= 1"):
            vm.count_multi(base_matrix, 0)

    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_batched_speedup_at_least_one(self, base_matrix, vm, fmt):
        m = convert(base_matrix, fmt)
        assert vm.batched_speedup(m, 1) == pytest.approx(1.0)
        s = vm.batched_speedup(m, 8)
        assert s >= 1.0

    def test_sparse_speedup_grows_with_k(self, base_matrix, vm):
        # CSR re-reads value + index streams every single sweep; the
        # modelled batched speedup must be monotone in k.
        speeds = [vm.batched_speedup(base_matrix, k) for k in (1, 2, 4, 8)]
        assert speeds == sorted(speeds)
        assert speeds[-1] > speeds[0]
