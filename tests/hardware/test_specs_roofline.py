"""Machine catalog and roofline model tests."""

import pytest

from repro.hardware import (
    DNN_MACHINES,
    MACHINES,
    RooflineModel,
    SVM_MACHINES,
    get_machine,
    roofline_time,
)
from repro.perf import OpCounter


class TestCatalog:
    def test_all_paper_platforms_present(self):
        for name in ("cpu8", "knl", "haswell", "p100", "dgx"):
            assert name in DNN_MACHINES
        for name in ("ivybridge", "knc"):
            assert name in SVM_MACHINES

    def test_table7_prices_verbatim(self):
        assert DNN_MACHINES["cpu8"].price_usd == 1_571
        assert DNN_MACHINES["knl"].price_usd == 4_876
        assert DNN_MACHINES["haswell"].price_usd == 7_400
        assert DNN_MACHINES["p100"].price_usd == 11_571
        assert DNN_MACHINES["dgx"].price_usd == 79_000

    def test_dgx_is_4_accelerators(self):
        assert DNN_MACHINES["dgx"].n_accelerators == 4

    def test_knl_slower_than_haswell_despite_higher_peak(self):
        # The paper's own observation (Section IV-B).
        knl, hw = DNN_MACHINES["knl"], DNN_MACHINES["haswell"]
        assert knl.peak_gflops > hw.peak_gflops
        assert knl.attained_gflops < hw.attained_gflops

    def test_lookup(self):
        assert get_machine("DGX").name == "dgx"
        with pytest.raises(ValueError, match="unknown machine"):
            get_machine("tpu")

    def test_all_machines_keyed_consistently(self):
        for key, spec in MACHINES.items():
            assert spec.name == key


class TestRoofline:
    def test_memory_bound_regime(self):
        m = get_machine("haswell")
        # 1 flop per 100 bytes: deeply memory bound.
        t = roofline_time(1e6, 1e8, m)
        assert t == pytest.approx(1e8 / (m.bandwidth_gbs * 1e9))

    def test_compute_bound_regime(self):
        m = get_machine("haswell")
        t = roofline_time(1e12, 8, m, efficiency=1.0)
        assert t == pytest.approx(1e12 / (m.peak_gflops * 1e9))

    def test_monotone_in_inputs(self):
        m = get_machine("p100")
        assert roofline_time(2e9, 1e6, m) >= roofline_time(1e9, 1e6, m)
        assert roofline_time(1e9, 2e6, m) >= roofline_time(1e9, 1e6, m)

    def test_validation(self):
        m = get_machine("p100")
        with pytest.raises(ValueError):
            roofline_time(-1, 0, m)
        with pytest.raises(ValueError):
            roofline_time(1, 1, m, efficiency=0.0)
        with pytest.raises(ValueError):
            roofline_time(1, 1, m, bandwidth_fraction=2.0)

    def test_model_bound_classification(self):
        model = RooflineModel(get_machine("haswell"), efficiency=1.0)
        c = OpCounter()
        c.add_flops(10**12)
        c.add_read(8)
        assert model.bound(c) == "compute"
        c2 = OpCounter()
        c2.add_flops(1)
        c2.add_read(10**9)
        assert model.bound(c2) == "memory"

    def test_balance_point(self):
        model = RooflineModel(get_machine("haswell"), efficiency=1.0)
        bal = model.arithmetic_balance()
        assert bal == pytest.approx(1200.0 / 100.0)

    def test_time_from_counter(self):
        model = RooflineModel(get_machine("p100"))
        c = OpCounter()
        c.add_flops(1000)
        c.add_read(1000)
        assert model.time(c) > 0
