"""DNN iteration-time model and price-per-speedup benchmark tests."""

import pytest

from repro.hardware import DNNPerfModel, get_machine, iteration_time
from repro.hardware.pricing import (
    PricePoint,
    best_value,
    format_table,
    price_per_speedup_table,
)

#: Table VII measured (batch, iterations, seconds) per platform.
PAPER_ANCHORS = {
    "cpu8": (100, 60_000, 29_427.0),
    "knl": (100, 60_000, 4_922.0),
    "haswell": (100, 60_000, 1_997.0),
    "p100": (100, 60_000, 503.0),
    "dgx": (100, 60_000, 387.0),
}


class TestIterationModel:
    @pytest.mark.parametrize("name", sorted(PAPER_ANCHORS))
    def test_matches_table7_within_3pct(self, name):
        b, iters, seconds = PAPER_ANCHORS[name]
        model = DNNPerfModel(get_machine(name))
        assert model.training_time(iters, b) == pytest.approx(
            seconds, rel=0.03
        )

    def test_dgx_tuned_batch_anchor(self):
        # Table VII "Tune B": 30,000 iterations at B=512 took 361 s.
        model = DNNPerfModel(get_machine("dgx"))
        assert model.training_time(30_000, 512) == pytest.approx(361, rel=0.03)

    def test_throughput_increases_with_batch(self):
        model = DNNPerfModel(get_machine("dgx"))
        ths = [model.throughput(b) for b in (64, 256, 1024, 4096)]
        assert ths == sorted(ths)

    def test_naive_dgx_port_is_13x_over_p100(self):
        # Section IV-B: "the straightforward porting ... only brings
        # 1.3x speedup" at B = 100.
        p100 = DNNPerfModel(get_machine("p100")).iteration_time(100)
        dgx = DNNPerfModel(get_machine("dgx")).iteration_time(100)
        assert p100 / dgx == pytest.approx(1.3, abs=0.1)

    def test_validation(self):
        model = DNNPerfModel(get_machine("dgx"))
        with pytest.raises(ValueError):
            model.iteration_time(0)
        with pytest.raises(ValueError):
            model.training_time(-1, 100)

    def test_convenience_function(self):
        assert iteration_time(get_machine("p100"), 100) > 0


class TestPricing:
    def test_basic_table(self):
        rows = price_per_speedup_table(
            {"a": 100.0, "b": 10.0}, {"a": 1000.0, "b": 5000.0}
        )
        by = {r.method: r for r in rows}
        assert by["a"].speedup == 1.0  # slowest = baseline
        assert by["b"].speedup == 10.0
        assert by["b"].price_per_speedup == 500.0

    def test_explicit_baseline(self):
        rows = price_per_speedup_table(
            {"a": 100.0, "b": 10.0}, {"a": 1.0, "b": 1.0}, baseline="b"
        )
        by = {r.method: r for r in rows}
        assert by["b"].speedup == 1.0
        assert by["a"].speedup == pytest.approx(0.1)

    def test_best_value(self):
        rows = price_per_speedup_table(
            {"a": 100.0, "b": 10.0}, {"a": 1000.0, "b": 5000.0}
        )
        assert best_value(rows).method == "b"
        with pytest.raises(ValueError):
            best_value([])

    def test_validation(self):
        with pytest.raises(ValueError, match="no price"):
            price_per_speedup_table({"a": 1.0}, {})
        with pytest.raises(ValueError, match="non-positive"):
            price_per_speedup_table({"a": 0.0}, {"a": 1.0})
        with pytest.raises(ValueError, match="baseline"):
            price_per_speedup_table({"a": 1.0}, {"a": 1.0}, baseline="z")
        assert price_per_speedup_table({}, {}) == []

    def test_format_table_renders(self):
        rows = price_per_speedup_table(
            {"a": 100.0, "b": 10.0}, {"a": 1000.0, "b": 5000.0}
        )
        text = format_table(rows)
        assert "Method" in text and "a" in text and "10.0x" in text

    def test_sorting_by_efficiency(self):
        rows = sorted(
            price_per_speedup_table(
                {"a": 100.0, "b": 10.0, "c": 50.0},
                {"a": 100.0, "b": 5000.0, "c": 10.0},
            )
        )
        assert rows[0].method == "c"
