"""Roofline report tests."""

import numpy as np
import pytest

from repro.data import load_dataset
from repro.formats import from_dense
from repro.hardware import get_machine
from repro.hardware.report import analyse_matrix, format_report


class TestAnalyseMatrix:
    def test_covers_requested_formats(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        analyses = analyse_matrix(
            m, get_machine("ivybridge"), formats=["CSR", "DEN"]
        )
        assert sorted(a.fmt for a in analyses) == ["CSR", "DEN"]

    def test_sorted_by_simd_seconds(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        analyses = analyse_matrix(m, get_machine("ivybridge"))
        times = [a.simd_seconds for a in analyses]
        assert times == sorted(times)

    def test_counts_are_consistent(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        analyses = analyse_matrix(m, get_machine("ivybridge"))
        for a in analyses:
            assert a.flops > 0
            assert a.bytes_moved > 0
            assert a.arithmetic_intensity == pytest.approx(
                a.flops / a.bytes_moved
            )
            assert a.roofline_seconds > 0
            assert a.bound in ("compute", "memory")

    def test_sparse_smsv_is_memory_bound(self):
        # The paper's Eq. (7) premise: SVM kernels live under the
        # memory roof.
        ds = load_dataset("trefethen", seed=0)
        analyses = analyse_matrix(
            ds.in_format("CSR"), get_machine("ivybridge")
        )
        for a in analyses:
            assert a.bound == "memory", a.fmt

    def test_banded_prefers_dia(self):
        ds = load_dataset("trefethen", seed=0)
        analyses = analyse_matrix(
            ds.in_format("CSR"), get_machine("ivybridge")
        )
        assert analyses[0].fmt == "DIA"

    def test_report_renders(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        machine = get_machine("ivybridge")
        text = format_report(analyse_matrix(m, machine), machine)
        assert "roofline analysis" in text
        assert "bound" in text
        assert "DEN" in text
