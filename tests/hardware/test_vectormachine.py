"""SIMD vector-machine model: the architecture effects of Figs. 2-4."""

import numpy as np
import pytest

from repro.data.synthetic import (
    matrix_with_mdim,
    matrix_with_ndig,
    matrix_with_vdim,
    uniform_rows_matrix,
)
from repro.formats import COOMatrix, CSRMatrix, DIAMatrix, ELLMatrix, from_dense
from repro.hardware import VectorMachine, get_machine


@pytest.fixture
def vm() -> VectorMachine:
    return VectorMachine(get_machine("knc"))  # W = 8


class TestCounting:
    def test_csr_uniform_rows_is_optimal(self, vm):
        # Uniform rows of a multiple of W: exactly nnz / W lane steps.
        rows, cols, vals, shape = uniform_rows_matrix(64, 256, 16, seed=0)
        cost = vm.count(CSRMatrix.from_coo(rows, cols, vals, shape))
        assert cost.vector_ops == 64 * 16 // 8 * 8 // 8 * 8 // 8  # = nnz/W
        assert cost.vector_ops == (64 * 16) // 8

    def test_csr_group_max_rule(self, vm):
        # Two rows per... 8 rows/group: one heavy row charges the group.
        a = np.zeros((8, 64))
        a[0, :64] = 1.0  # dim 64
        a[1:, 0] = 1.0  # dim 1 each
        cost = vm.count(from_dense(a, "CSR"))
        assert cost.vector_ops == 64  # max of the single group

    def test_ell_counts_padding(self, vm):
        rows, cols, vals, shape = matrix_with_mdim(64, 256, 128, 64, seed=0)
        m = ELLMatrix.from_coo(rows, cols, vals, shape)
        cost = vm.count(m)
        assert cost.vector_ops == 64 * (64 // 8)

    def test_dia_counts_padding(self, vm):
        rows, cols, vals, shape = matrix_with_ndig(64, 64, 64, 16, seed=0)
        m = DIAMatrix.from_coo(rows, cols, vals, shape)
        cost = vm.count(m)
        assert cost.vector_ops == 16 * (64 // 8)

    def test_den_cost(self, vm, rng):
        a = rng.random((32, 64))
        cost = vm.count(from_dense(a, "DEN"))
        assert cost.vector_ops == 32 * 8

    def test_coo_flat_stream(self, vm):
        rows, cols, vals, shape = uniform_rows_matrix(64, 256, 16, seed=0)
        cost = vm.count(COOMatrix.from_coo(rows, cols, vals, shape))
        assert cost.vector_ops == int(np.ceil(1.5 * 1024 / 8))

    def test_seconds_positive_and_total(self, vm, small_sparse):
        c = vm.count(from_dense(small_sparse, "CSR"))
        assert c.seconds > 0
        assert c.total_ops == c.vector_ops + c.startup_ops


class TestFig4Shape:
    def test_coo_over_csr_grows_with_vdim(self, vm):
        speedups = []
        for vdim in (0.0, 100.0, 400.0, 1600.0):
            rows, cols, vals, shape = matrix_with_vdim(
                1024, 4096, adim=40, vdim=vdim, seed=3
            )
            tc = vm.count(CSRMatrix.from_coo(rows, cols, vals, shape)).seconds
            to = vm.count(COOMatrix.from_coo(rows, cols, vals, shape)).seconds
            speedups.append(tc / to)
        assert speedups == sorted(speedups)
        assert speedups[0] < 1.0  # CSR wins at vdim = 0 (aloi side)
        assert speedups[-1] > 1.0  # COO wins at high vdim (mnist side)


class TestFig2Fig3Shape:
    def test_dia_seconds_grow_with_ndig(self, vm):
        times = []
        for ndig in (2, 16, 128):
            rows, cols, vals, shape = matrix_with_ndig(
                1024, 1024, 1024, ndig, seed=1
            )
            times.append(
                vm.count(DIAMatrix.from_coo(rows, cols, vals, shape)).seconds
            )
        assert times == sorted(times)
        assert times[-1] / times[0] > 10

    def test_ell_seconds_grow_with_mdim(self, vm):
        times = []
        for mdim in (2, 16, 128):
            rows, cols, vals, shape = matrix_with_mdim(
                1024, 1024, 2048, mdim, seed=1
            )
            times.append(
                vm.count(ELLMatrix.from_coo(rows, cols, vals, shape)).seconds
            )
        assert times == sorted(times)
        # 64x the padding; per-row startup floors the ratio below 64.
        assert times[-1] / times[0] > 5


class TestCompare:
    def test_compare_covers_all_formats(self, vm, small_sparse):
        costs = vm.compare(from_dense(small_sparse, "CSR"))
        assert sorted(costs) == ["COO", "CSR", "DEN", "DIA", "ELL"]

    def test_speedups_normalised(self, vm, small_sparse):
        s = vm.speedups(from_dense(small_sparse, "CSR"))
        assert min(s.values()) == pytest.approx(1.0)

    def test_profile_approximation_tracks_exact(self, vm):
        from repro.features import profile_from_coo

        rows, cols, vals, shape = matrix_with_vdim(
            1024, 4096, adim=40, vdim=400.0, seed=3
        )
        exact = vm.count(CSRMatrix.from_coo(rows, cols, vals, shape)).seconds
        p = profile_from_coo(rows, cols, shape, validated=True)
        approx = vm.csr_cost_from_profile(p)
        assert approx == pytest.approx(exact, rel=0.35)

    def test_validation(self):
        with pytest.raises(ValueError):
            VectorMachine(get_machine("knc"), issue_ghz=0.0)
