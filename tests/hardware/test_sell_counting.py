"""VectorMachine stream counting for SELL and the reordered wrappers."""

import math

import numpy as np
import pytest

from repro.data.synthetic import powerlaw_rows_matrix
from repro.formats.csr import CSRMatrix
from repro.formats.reorder import RCSRMatrix, RELLMatrix, RSELLMatrix
from repro.formats.sell import SELLMatrix
from repro.hardware import VectorMachine, get_machine

_VB, _IB = 8, 4  # value / index stream bytes (mirrors vectormachine)


@pytest.fixture
def machine():
    return VectorMachine(get_machine("knl"))


@pytest.fixture
def triples():
    return powerlaw_rows_matrix(
        300, 120, alpha=1.6, min_nnz=4, max_nnz=96, seed=9
    )


class TestSellStreams:
    @pytest.mark.parametrize("chunk", [1, 4, 8, 32])
    def test_vops_match_hand_formula(self, machine, triples, chunk):
        rows, cols, vals, shape = triples
        sell = SELLMatrix.from_coo(rows, cols, vals, shape, chunk=chunk)
        got = machine.count(sell)
        m = shape[0]
        widths = np.asarray(sell.slice_widths, dtype=np.int64)
        heights = np.minimum(
            chunk, m - chunk * np.arange(widths.shape[0])
        )
        lane_groups = -(-heights // machine.w)
        vops = int((widths * lane_groups).sum())
        assert got.vector_ops == vops
        assert got.startup_ops == int(
            machine.row_startup * sell.n_slices
        )

    def test_bytes_match_padded_stream(self, machine, triples):
        rows, cols, vals, shape = triples
        sell = SELLMatrix.from_coo(rows, cols, vals, shape, chunk=8)
        got = machine.count(sell)
        padded = sell.padded_elements
        matrix_bytes = padded * (_VB + _IB) + (sell.n_slices + 1) * 8
        percol_bytes = padded * _VB
        assert got.bytes_moved == matrix_bytes + percol_bytes

    def test_sorting_reduces_modelled_seconds(self, machine, triples):
        # The SELL-C-sigma pitch in one assertion: sorted slices pad
        # less, so the model must price RSELL below natural-order SELL
        # on a heavy-tailed matrix.
        rows, cols, vals, shape = triples
        sell = SELLMatrix.from_coo(rows, cols, vals, shape, chunk=8)
        rsell = RSELLMatrix.from_coo(rows, cols, vals, shape, chunk=8)
        assert (
            machine.count(rsell).seconds < machine.count(sell).seconds
        )


class TestWrapperStreams:
    def test_rcsr_adds_scatter_on_top_of_stored_csr(
        self, machine, triples
    ):
        rows, cols, vals, shape = triples
        wrapped = RCSRMatrix.from_coo(rows, cols, vals, shape)
        inner = machine.count(wrapped.stored)
        outer = machine.count(wrapped)
        m = shape[0]
        assert outer.vector_ops == inner.vector_ops + math.ceil(
            m / machine.w
        )
        assert outer.startup_ops == inner.startup_ops
        assert (
            outer.bytes_moved
            == inner.bytes_moved + m * 8 + m * _VB
        )

    @pytest.mark.parametrize(
        "cls", [RCSRMatrix, RELLMatrix, RSELLMatrix]
    )
    def test_wrapper_costs_more_than_its_core(
        self, machine, triples, cls
    ):
        rows, cols, vals, shape = triples
        wrapped = cls.from_coo(rows, cols, vals, shape)
        assert (
            machine.count(wrapped).seconds
            >= machine.count(wrapped.stored).seconds
        )


class TestCountMulti:
    @pytest.mark.parametrize(
        "build",
        [
            lambda r, c, v, s: SELLMatrix.from_coo(r, c, v, s, chunk=8),
            RCSRMatrix.from_coo,
            RELLMatrix.from_coo,
            RSELLMatrix.from_coo,
        ],
    )
    def test_k1_degenerates_to_count(self, machine, triples, build):
        rows, cols, vals, shape = triples
        mx = build(rows, cols, vals, shape)
        single = machine.count(mx)
        multi = machine.count_multi(mx, 1)
        assert multi.vector_ops == single.vector_ops
        assert multi.bytes_moved == single.bytes_moved
        assert multi.seconds == single.seconds

    def test_batched_sweep_amortizes_matrix_stream(
        self, machine, triples
    ):
        rows, cols, vals, shape = triples
        mx = RSELLMatrix.from_coo(rows, cols, vals, shape)
        assert machine.batched_speedup(mx, 8) > 1.0

    def test_arithmetic_scales_with_k(self, machine, triples):
        rows, cols, vals, shape = triples
        mx = SELLMatrix.from_coo(rows, cols, vals, shape, chunk=8)
        single = machine.count(mx)
        multi = machine.count_multi(mx, 5)
        assert multi.vector_ops == 5 * single.vector_ops


def test_csr_reference_unchanged(machine, triples):
    """The new branches must not perturb the historical CSR count."""
    rows, cols, vals, shape = triples
    csr = CSRMatrix.from_coo(rows, cols, vals, shape)
    got = machine.count(csr)
    lengths = np.asarray(csr.row_lengths, dtype=np.int64)
    pad = (-lengths.shape[0]) % machine.w
    if pad:
        lengths = np.concatenate(
            [lengths, np.zeros(pad, dtype=np.int64)]
        )
    vops = int(lengths.reshape(-1, machine.w).max(axis=1).sum())
    assert got.vector_ops == vops
