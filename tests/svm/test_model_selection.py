"""Cross-validation, C-paths (warm-started) and grid search."""

import numpy as np
import pytest

from repro.svm import SVC, c_path, cross_val_score, grid_search_cv, kfold_indices
from tests.conftest import make_labels


@pytest.fixture
def problem(rng):
    x = rng.standard_normal((150, 6))
    y = make_labels(rng, x)
    return x, y


class TestKFold:
    def test_partition_properties(self):
        folds = kfold_indices(23, 5, seed=0)
        assert len(folds) == 5
        all_test = np.concatenate([t for _, t in folds])
        assert sorted(all_test.tolist()) == list(range(23))
        for train, test in folds:
            assert len(set(train.tolist()) & set(test.tolist())) == 0
            assert len(train) + len(test) == 23

    def test_fold_sizes_balanced(self):
        folds = kfold_indices(10, 3, seed=1)
        sizes = sorted(len(t) for _, t in folds)
        assert sizes == [3, 3, 4]

    def test_deterministic(self):
        a = kfold_indices(20, 4, seed=7)
        b = kfold_indices(20, 4, seed=7)
        for (ta, sa), (tb, sb) in zip(a, b):
            assert np.array_equal(ta, tb) and np.array_equal(sa, sb)

    def test_validation(self):
        with pytest.raises(ValueError):
            kfold_indices(5, 1)
        with pytest.raises(ValueError):
            kfold_indices(5, 6)


class TestCrossVal:
    def test_scores_reasonable(self, problem):
        x, y = problem
        scores = cross_val_score(
            lambda: SVC("linear", C=1.0, max_iter=5000), x, y, k=4
        )
        assert scores.shape == (4,)
        assert scores.mean() > 0.8

    def test_label_shape_validation(self, problem):
        x, y = problem
        with pytest.raises(ValueError, match="one label per row"):
            cross_val_score(lambda: SVC(), x, y[:-1])


class TestCPath:
    def test_objectives_increase_with_C(self, problem):
        # Larger box -> larger dual feasible set -> larger optimum.
        x, y = problem
        res = c_path(x, y, [0.1, 0.5, 1.0, 2.0], tol=1e-4)
        assert res.objectives == sorted(res.objectives)

    def test_warm_start_cuts_total_iterations(self, problem):
        x, y = problem
        Cs = [0.25, 0.5, 1.0, 2.0, 4.0]
        warm = c_path(x, y, Cs, tol=1e-4, warm_start=True)
        cold = c_path(x, y, Cs, tol=1e-4, warm_start=False)
        # Same optima...
        for a, b in zip(warm.objectives, cold.objectives):
            assert a == pytest.approx(b, rel=1e-3)
        # ...at materially lower total cost.
        assert warm.total_iterations < cold.total_iterations

    def test_unsorted_grid_resorted(self, problem):
        x, y = problem
        res = c_path(x, y, [2.0, 0.5, 1.0])
        assert res.Cs == [0.5, 1.0, 2.0]

    def test_validation(self, problem):
        x, y = problem
        with pytest.raises(ValueError):
            c_path(x, y, [])
        with pytest.raises(ValueError):
            c_path(x, y, [-1.0])


class TestGridSearchCV:
    def test_finds_reasonable_params(self, problem):
        x, y = problem
        res = grid_search_cv(
            x, y, kernel="gaussian", Cs=(0.5, 5.0), gammas=(0.05, 0.5),
            k=3, max_iter=5000,
        )
        assert res.best_score > 0.75
        assert res.best_params["C"] in (0.5, 5.0)
        assert res.best_params["gamma"] in (0.05, 0.5)
        assert len(res.all_scores) == 4

    def test_linear_kernel_ignores_gamma(self, problem):
        x, y = problem
        res = grid_search_cv(
            x, y, kernel="linear", Cs=(1.0, 10.0), k=3, max_iter=5000,
        )
        assert "gamma" not in res.best_params
        assert len(res.all_scores) == 2
