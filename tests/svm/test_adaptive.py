"""AdaptiveSVC: the full adaptive system."""

import numpy as np
import pytest

from repro.core import LayoutScheduler
from repro.data import load_dataset
from repro.formats import from_dense
from repro.svm import SVC, AdaptiveSVC
from tests.conftest import make_labels


class TestAdaptiveSVC:
    def test_records_decision(self, rng):
        x = rng.standard_normal((60, 5))
        y = make_labels(rng, x)
        clf = AdaptiveSVC("linear", C=1.0).fit(x, y)
        assert clf.decision_ is not None
        assert clf.chosen_format == clf.decision_.fmt
        assert clf.convert_seconds_ >= 0.0

    def test_unfitted_chosen_format_raises(self):
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = AdaptiveSVC("linear").chosen_format

    def test_same_predictions_as_plain_svc(self, rng):
        # The layout decision must never change the learned model.
        x = rng.standard_normal((80, 6))
        y = make_labels(rng, x)
        plain = SVC("linear", C=1.0, tol=1e-4).fit(x, y)
        adaptive = AdaptiveSVC(
            "linear", C=1.0, tol=1e-4,
            scheduler=LayoutScheduler("cost"),
        ).fit(x, y)
        # Format-dependent summation order shifts iterates within tol;
        # predictions and objective agree to that tolerance.
        assert np.allclose(
            plain.decision_function(x),
            adaptive.decision_function(x),
            atol=0.05,
        )
        assert plain.result_.objective(y) == pytest.approx(
            adaptive.result_.objective(y), rel=1e-4
        )

    def test_adult_clone_selects_ell(self):
        # The paper's Table VI: adult -> ELL.
        ds = load_dataset("adult", seed=0, m_override=600)
        clf = AdaptiveSVC(
            "linear", C=1.0, max_iter=50,
            scheduler=LayoutScheduler("cost"),
        ).fit(ds.in_format("CSR"), ds.y[:600])
        assert clf.chosen_format == "ELL"

    def test_trains_on_every_table5_clone_shape(self):
        # Fast smoke across structurally diverse datasets.
        for name in ("adult", "aloi", "trefethen"):
            ds = load_dataset(name, seed=0, m_override=200)
            clf = AdaptiveSVC(
                "linear", C=1.0, max_iter=100,
                scheduler=LayoutScheduler("cost"),
            ).fit(ds.in_format("COO"), ds.y[:200])
            assert clf.result_.iterations > 0

    def test_custom_scheduler_strategy(self, rng):
        x = rng.standard_normal((50, 4))
        y = make_labels(rng, x)
        clf = AdaptiveSVC(
            "linear", scheduler=LayoutScheduler("rules")
        ).fit(x, y)
        assert clf.decision_.strategy == "rules"
