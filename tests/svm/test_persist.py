"""Model persistence: save/load must be prediction-identical."""

import numpy as np
import pytest

from repro.formats import from_dense
from repro.svm import SVC, AdaptiveSVC
from repro.svm.kernels import Kernel
from repro.svm.persist import load_svc, save_svc
from tests.conftest import make_labels


@pytest.fixture
def fitted(rng):
    x = rng.standard_normal((120, 7))
    y = make_labels(rng, x)
    clf = SVC("gaussian", gamma=0.4, C=2.0).fit(x, y)
    return clf, x, y


class TestRoundTrip:
    def test_predictions_identical(self, fitted, tmp_path):
        clf, x, y = fitted
        path = tmp_path / "model.npz"
        clf.save(path)
        loaded = SVC.load(path)
        assert np.array_equal(loaded.predict(x), clf.predict(x))
        assert np.allclose(
            loaded.decision_function(x), clf.decision_function(x), atol=1e-12
        )

    def test_metadata_restored(self, fitted, tmp_path):
        clf, _x, _y = fitted
        path = tmp_path / "model.npz"
        clf.save(path)
        loaded = SVC.load(path)
        assert loaded.C == 2.0
        assert loaded.kernel.name == "gaussian"
        assert loaded.kernel.gamma == 0.4
        assert loaded.n_support == clf.n_support
        assert loaded.fitted

    @pytest.mark.parametrize(
        "kernel,params",
        [
            ("linear", {}),
            ("polynomial", dict(a=0.5, r=1.0, degree=2)),
            ("sigmoid", dict(a=0.2, r=-0.3)),
        ],
    )
    def test_all_named_kernels(self, rng, tmp_path, kernel, params):
        x = rng.standard_normal((80, 5))
        y = make_labels(rng, x)
        clf = SVC(kernel, C=1.0, **params).fit(x, y)
        path = tmp_path / "m.npz"
        clf.save(path)
        loaded = SVC.load(path)
        assert np.array_equal(loaded.predict(x), clf.predict(x))

    def test_sparse_input_model(self, tmp_path, rng):
        from repro.data import load_dataset

        ds = load_dataset("aloi", seed=0, m_override=150)
        X = ds.in_format("CSR")
        y = ds.y[:150]
        clf = SVC("linear", C=1.0, max_iter=2000).fit(X, y)
        path = tmp_path / "m.npz"
        clf.save(path)
        loaded = SVC.load(path)
        assert np.array_equal(loaded.predict(X), clf.predict(X))

    def test_adaptive_model_saves_too(self, fitted, tmp_path, rng):
        x = rng.standard_normal((80, 5))
        y = make_labels(rng, x)
        clf = AdaptiveSVC("linear", C=1.0).fit(x, y)
        path = tmp_path / "m.npz"
        clf.save(path)
        loaded = SVC.load(path)
        assert np.array_equal(loaded.predict(x), clf.predict(x))


class TestValidation:
    def test_unfitted_rejected(self, tmp_path):
        with pytest.raises(RuntimeError, match="not fitted"):
            SVC("linear").save(tmp_path / "m.npz")

    def test_custom_kernel_rejected(self, rng, tmp_path):
        class Weird(Kernel):
            name = "weird"

            def row(self, X, v, vn, rn, counter=None):
                return X.smsv(v, counter)

            def _transform_scalar(self, dot, nx, ny):
                return dot

        x = rng.standard_normal((40, 4))
        y = make_labels(rng, x)
        clf = SVC(Weird(), C=1.0).fit(x, y)
        with pytest.raises(ValueError, match="custom kernel"):
            clf.save(tmp_path / "m.npz")

    def test_bad_version_rejected(self, fitted, tmp_path):
        import json

        clf, _x, _y = fitted
        path = tmp_path / "m.npz"
        clf.save(path)
        # tamper with the header version
        data = dict(np.load(path))
        header = json.loads(bytes(data["header"]).decode())
        header["format_version"] = 99
        data["header"] = np.frombuffer(
            json.dumps(header).encode(), dtype=np.uint8
        )
        np.savez_compressed(path, **data)
        with pytest.raises(ValueError, match="version"):
            load_svc(path)
