"""SVC / MulticlassSVC public API tests."""

import numpy as np
import pytest

from repro.formats import from_dense
from repro.svm import SVC, MulticlassSVC
from repro.svm.kernels import GaussianKernel
from tests.conftest import make_labels


@pytest.fixture
def separable(rng):
    x = rng.standard_normal((100, 8))
    y = make_labels(rng, x)
    return x, y


class TestSVC:
    def test_fit_predict_accuracy(self, separable):
        x, y = separable
        clf = SVC("linear", C=10.0).fit(x, y)
        assert clf.score(x, y) >= 0.95
        assert clf.fitted

    def test_accepts_ndarray_and_matrixformat(self, separable):
        # Different formats sum in different orders, so the SMO iterate
        # paths diverge within the duality-gap tolerance; the learned
        # models agree to that tolerance, not to machine epsilon.
        x, y = separable
        c1 = SVC("linear", C=1.0).fit(x, y)
        c2 = SVC("linear", C=1.0).fit(from_dense(x, "ELL"), y)
        assert np.allclose(
            c1.decision_function(x), c2.decision_function(x), atol=0.05
        )
        assert c1.result_.objective(y) == pytest.approx(
            c2.result_.objective(y), rel=1e-4
        )

    def test_predict_labels_are_pm1(self, separable):
        x, y = separable
        preds = SVC("linear", C=1.0).fit(x, y).predict(x)
        assert set(np.unique(preds)) <= {-1.0, 1.0}

    def test_rbf_solves_xor(self, rng):
        x = rng.standard_normal((200, 2))
        y = np.where(x[:, 0] * x[:, 1] > 0, 1.0, -1.0)
        clf = SVC("gaussian", gamma=1.0, C=10.0).fit(x, y)
        assert clf.score(x, y) >= 0.9  # linearly inseparable problem

    def test_kernel_instance(self, separable):
        x, y = separable
        clf = SVC(GaussianKernel(gamma=0.5), C=1.0).fit(x, y)
        assert clf.score(x, y) > 0.8

    def test_kernel_params_with_instance_rejected(self):
        with pytest.raises(ValueError, match="kernel_params"):
            SVC(GaussianKernel(gamma=0.5), gamma=1.0)

    def test_unfitted_raises(self, separable):
        x, _ = separable
        clf = SVC("linear")
        with pytest.raises(RuntimeError, match="not fitted"):
            clf.predict(x)
        with pytest.raises(RuntimeError, match="not fitted"):
            _ = clf.n_support

    def test_n_support_reasonable(self, separable):
        x, y = separable
        clf = SVC("linear", C=10.0).fit(x, y)
        assert 1 <= clf.n_support <= len(y)

    def test_generalisation_on_holdout(self, rng):
        x = rng.standard_normal((300, 5))
        w = rng.standard_normal(5)
        y = np.where(x @ w > 0, 1.0, -1.0)
        clf = SVC("linear", C=10.0).fit(x[:200], y[:200])
        assert clf.score(x[200:], y[200:]) >= 0.9


class TestMulticlass:
    @pytest.fixture
    def three_class(self, rng):
        k = 3
        centers = rng.standard_normal((k, 6)) * 4.0
        y = rng.integers(0, k, 120).astype(float)
        x = centers[y.astype(int)] + rng.standard_normal((120, 6)) * 0.5
        return x, y

    def test_fit_predict(self, three_class):
        x, y = three_class
        clf = MulticlassSVC("linear", C=10.0).fit(x, y)
        assert clf.score(x, y) >= 0.9
        assert len(clf.models_) == 3  # 3 choose 2

    def test_preserves_label_values(self, three_class):
        x, y = three_class
        y = y + 5.0  # arbitrary label values
        clf = MulticlassSVC("linear", C=10.0).fit(x, y)
        assert set(np.unique(clf.predict(x))) <= set(np.unique(y))

    def test_single_class_rejected(self, rng):
        x = rng.standard_normal((10, 3))
        with pytest.raises(ValueError, match="two classes"):
            MulticlassSVC().fit(x, np.zeros(10))

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError, match="not fitted"):
            MulticlassSVC().predict(rng.standard_normal((4, 3)))

    def test_parallel_matches_serial(self, three_class):
        x, y = three_class
        serial = MulticlassSVC("linear", C=1.0, n_workers=1).fit(x, y)
        parallel = MulticlassSVC("linear", C=1.0, n_workers=4).fit(x, y)
        assert np.array_equal(serial.predict(x), parallel.predict(x))


class TestAdaptiveMulticlass:
    @pytest.fixture
    def three_class(self, rng):
        k = 3
        centers = rng.standard_normal((k, 6)) * 4.0
        y = rng.integers(0, k, 120).astype(float)
        x = centers[y.astype(int)] + rng.standard_normal((120, 6)) * 0.5
        return x, y

    def test_adaptive_pairs_get_layout_decisions(self, three_class):
        from repro.core import LayoutScheduler
        from repro.svm.adaptive import AdaptiveSVC

        x, y = three_class
        clf = MulticlassSVC(
            "linear", C=10.0,
            scheduler=LayoutScheduler("cost"),
        ).fit(x, y)
        assert clf.score(x, y) >= 0.9
        for pm in clf.models_:
            assert isinstance(pm.svc, AdaptiveSVC)
            assert pm.svc.decision_ is not None

    def test_adaptive_flag_without_scheduler(self, three_class):
        x, y = three_class
        clf = MulticlassSVC("linear", C=10.0, adaptive=True).fit(x, y)
        assert clf.score(x, y) >= 0.9

    def test_plain_multiclass_unchanged(self, three_class):
        x, y = three_class
        clf = MulticlassSVC("linear", C=10.0).fit(x, y)
        from repro.svm.adaptive import AdaptiveSVC

        assert not any(isinstance(pm.svc, AdaptiveSVC) for pm in clf.models_)
