"""Platt scaling tests."""

import numpy as np
import pytest

from repro.svm import SVC
from repro.svm.probability import PlattScaler, calibrate_svc, fit_platt
from tests.conftest import make_labels


class TestSigmoid:
    def test_probabilities_in_range_and_stable(self):
        s = PlattScaler(A=-2.0, B=0.1)
        f = np.array([-1e6, -10.0, 0.0, 10.0, 1e6])
        p = s.predict_proba(f)
        assert np.all((p >= 0.0) & (p <= 1.0))
        assert np.all(np.isfinite(p))
        # negative A: larger decision value => higher P(+1)
        assert np.all(np.diff(p) >= 0)


class TestFit:
    def _synthetic(self, rng, n=500, a_true=-1.5, b_true=0.3):
        f = rng.standard_normal(n) * 2.0
        p = 1.0 / (1.0 + np.exp(a_true * f + b_true))
        y = np.where(rng.random(n) < p, 1.0, -1.0)
        return f, y

    def test_recovers_generating_sigmoid(self, rng):
        f, y = self._synthetic(rng, n=4000)
        s = fit_platt(f, y)
        assert s.A == pytest.approx(-1.5, abs=0.25)
        assert s.B == pytest.approx(0.3, abs=0.25)

    def test_probabilities_monotone_in_decision_value(self, rng):
        f, y = self._synthetic(rng)
        s = fit_platt(f, y)
        grid = np.linspace(-5, 5, 50)
        p = s.predict_proba(grid)
        assert np.all(np.diff(p) >= 0)

    def test_calibration_quality(self, rng):
        # Among samples given P(+1) ~ 0.8, about 80% should be +1.
        f, y = self._synthetic(rng, n=8000)
        s = fit_platt(f[:4000], y[:4000])
        p = s.predict_proba(f[4000:])
        band = (p > 0.7) & (p < 0.9)
        assert band.sum() > 100
        frac_pos = float(np.mean(y[4000:][band] > 0))
        assert frac_pos == pytest.approx(0.8, abs=0.08)

    def test_validation(self):
        with pytest.raises(ValueError, match="match"):
            fit_platt([1.0, 2.0], [1.0])
        with pytest.raises(ValueError, match="±1|pm1|labels"):
            fit_platt([1.0], [3.0])
        with pytest.raises(ValueError):
            fit_platt([], [])


class TestWithSVC:
    def test_calibrated_svc_probabilities(self, rng):
        x = rng.standard_normal((400, 6))
        y = make_labels(rng, x)
        clf = SVC("linear", C=1.0).fit(x[:250], y[:250])
        scaler = calibrate_svc(clf, x[250:], y[250:])
        p = scaler.predict_proba(clf.decision_function(x[250:]))
        # Thresholding the probabilities reproduces the classifier.
        pred_from_p = np.where(p >= 0.5, 1.0, -1.0)
        agree = float(np.mean(pred_from_p == clf.predict(x[250:])))
        assert agree > 0.95
        # High-margin samples get confident probabilities.
        d = clf.decision_function(x[250:])
        assert p[np.argmax(d)] > 0.9
        assert p[np.argmin(d)] < 0.1
