"""SMO solver correctness: convergence, KKT conditions, invariants."""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, from_dense
from repro.svm.kernels import GaussianKernel, LinearKernel
from repro.svm.smo import smo_train
from tests.conftest import make_labels


@pytest.fixture
def separable(rng):
    x = rng.standard_normal((80, 6))
    y = make_labels(rng, x)
    return x, y


class TestConvergence:
    def test_converges_on_separable(self, separable):
        x, y = separable
        res = smo_train(from_dense(x, "CSR"), y, LinearKernel(), C=10.0)
        assert res.converged
        assert res.b_low <= res.b_high + 2e-3 + 1e-9

    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_same_solution_in_every_format(self, separable, fmt):
        # The layout must not change the mathematics: the dual
        # objective at convergence agrees across formats.
        x, y = separable
        res = smo_train(
            from_dense(x, fmt), y, LinearKernel(), C=1.0, tol=1e-4
        )
        ref = smo_train(
            from_dense(x, "DEN"), y, LinearKernel(), C=1.0, tol=1e-4
        )
        assert res.objective(y) == pytest.approx(
            ref.objective(y), rel=1e-3
        )

    def test_max_iter_caps(self, separable):
        x, y = separable
        res = smo_train(
            from_dense(x, "CSR"), y, LinearKernel(), C=10.0, max_iter=3
        )
        assert res.iterations == 3
        assert not res.converged


class TestInvariants:
    def test_box_constraints(self, separable):
        x, y = separable
        C = 2.5
        res = smo_train(from_dense(x, "CSR"), y, GaussianKernel(0.5), C=C)
        assert np.all(res.alpha >= -1e-12)
        assert np.all(res.alpha <= C + 1e-12)

    def test_equality_constraint(self, separable):
        # sum alpha_i y_i = 0 is preserved exactly by every pair update.
        x, y = separable
        res = smo_train(from_dense(x, "CSR"), y, LinearKernel(), C=1.0)
        assert float(res.alpha @ y) == pytest.approx(0.0, abs=1e-9)

    def test_f_vector_consistency(self, separable):
        # The incrementally maintained f must equal the recomputed
        # definition f_i = sum_j alpha_j y_j K_ij - y_i (Eq. (3)).
        x, y = separable
        res = smo_train(
            from_dense(x, "CSR"), y, GaussianKernel(0.5), C=1.0,
            max_iter=200,
        )
        gamma = 0.5
        d2 = ((x[:, None, :] - x[None, :, :]) ** 2).sum(-1)
        K = np.exp(-gamma * d2)
        f_exact = K @ (res.alpha * y) - y
        assert np.allclose(res.f, f_exact, atol=1e-8)

    def test_positive_dual_objective(self, separable):
        x, y = separable
        res = smo_train(from_dense(x, "CSR"), y, LinearKernel(), C=1.0)
        assert res.objective(y) > 0.0

    def test_kkt_at_convergence(self, separable):
        # At convergence every free alpha has |f_i - b| <= tol-ish.
        x, y = separable
        tol = 1e-4
        res = smo_train(
            from_dense(x, "CSR"), y, GaussianKernel(0.5), C=1.0, tol=tol
        )
        assert res.converged
        free = (res.alpha > 1e-8) & (res.alpha < 1.0 - 1e-8)
        if np.any(free):
            assert np.all(np.abs(res.f[free] - res.b) <= 2 * tol + 1e-8)


class TestCache:
    def test_cache_reduces_kernel_rows(self, separable):
        x, y = separable
        no_cache = smo_train(
            from_dense(x, "CSR"), y, LinearKernel(), C=10.0, cache_rows=0
        )
        cached = smo_train(
            from_dense(x, "CSR"), y, LinearKernel(), C=10.0, cache_rows=256
        )
        assert cached.kernel_rows_computed < no_cache.kernel_rows_computed
        assert cached.kernel_rows_cached > 0
        # identical mathematics
        assert cached.objective(y) == pytest.approx(
            no_cache.objective(y), rel=1e-6
        )


class TestValidation:
    def test_rejects_bad_labels(self, separable):
        x, _ = separable
        m = from_dense(x, "CSR")
        with pytest.raises(ValueError, match="labels"):
            smo_train(m, np.zeros(80), LinearKernel())
        with pytest.raises(ValueError, match="labels"):
            smo_train(m, np.ones(80), LinearKernel())  # single class

    def test_rejects_bad_shapes(self, separable):
        x, y = separable
        with pytest.raises(ValueError, match="length"):
            smo_train(from_dense(x, "CSR"), y[:-1], LinearKernel())

    def test_rejects_bad_params(self, separable):
        x, y = separable
        m = from_dense(x, "CSR")
        with pytest.raises(ValueError, match="C"):
            smo_train(m, y, LinearKernel(), C=0.0)
        with pytest.raises(ValueError, match="tol"):
            smo_train(m, y, LinearKernel(), tol=0.0)

    def test_callback_invoked(self, separable):
        x, y = separable
        calls = []
        smo_train(
            from_dense(x, "CSR"),
            y,
            LinearKernel(),
            C=1.0,
            max_iter=10,
            on_iteration=lambda it, bh, bl: calls.append((it, bh, bl)),
        )
        assert len(calls) == 10
        assert calls[0][0] == 1
