"""Property-based optimality tests for the SMO solver.

The decisive correctness oracle for a QP solver: the returned alpha
must (a) be feasible and (b) dominate every other feasible point we can
construct.  Hypothesis generates random problems and random feasible
competitors; SMO must win every time.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formats import from_dense
from repro.svm.kernels import GaussianKernel, LinearKernel
from repro.svm.smo import smo_train


def _make_problem(seed: int, m: int, d: int):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((m, d))
    w = rng.standard_normal(d)
    s = x @ w
    y = np.where(s > np.median(s), 1.0, -1.0)
    if np.all(y == y[0]):
        y[: m // 2] = -y[0]
    return x, y


def _dual_objective(alpha, y, K):
    return float(alpha.sum() - 0.5 * alpha @ ((y * alpha) * K * y[:, None]).sum(1))


def _project_feasible(raw, y, C, rng):
    """Project arbitrary non-negative numbers onto the SVM feasible set
    {0 <= a <= C, sum a_i y_i = 0} by balancing the two classes."""
    a = np.clip(np.abs(raw), 0.0, C)
    pos, neg = y > 0, y < 0
    sp, sn = float(a[pos].sum()), float(a[neg].sum())
    target = min(sp, sn)
    if sp > 0:
        a[pos] *= target / sp
    if sn > 0:
        a[neg] *= target / sn
    return a


@given(seed=st.integers(0, 2**16), C=st.floats(0.1, 10.0))
@settings(max_examples=25, deadline=None)
def test_smo_dominates_random_feasible_points(seed, C):
    x, y = _make_problem(seed, 40, 5)
    X = from_dense(x, "CSR")
    res = smo_train(X, y, LinearKernel(), C=C, tol=1e-5)
    assert res.converged

    K = x @ x.T
    f_smo = _dual_objective(res.alpha, y, K)

    rng = np.random.default_rng(seed + 1)
    for _ in range(10):
        competitor = _project_feasible(
            rng.random(40) * C, y, C, rng
        )
        f_comp = _dual_objective(competitor, y, K)
        assert f_smo >= f_comp - 1e-5 * max(1.0, abs(f_smo))


@given(seed=st.integers(0, 2**16), C=st.floats(0.1, 10.0))
@settings(max_examples=25, deadline=None)
def test_smo_solution_is_feasible(seed, C):
    x, y = _make_problem(seed, 30, 4)
    X = from_dense(x, "CSR")
    res = smo_train(X, y, GaussianKernel(0.5), C=C, tol=1e-4)
    assert np.all(res.alpha >= -1e-10)
    assert np.all(res.alpha <= C + 1e-10)
    assert float(res.alpha @ y) == pytest.approx(0.0, abs=1e-8)


@given(
    seed=st.integers(0, 2**16),
    working_set=st.sampled_from(["first", "second"]),
    shrink=st.sampled_from([0, 25]),
)
@settings(max_examples=20, deadline=None)
def test_all_variants_reach_same_objective(seed, working_set, shrink):
    """Selection rule and shrinking are performance knobs, never
    solution knobs."""
    x, y = _make_problem(seed, 50, 5)
    X = from_dense(x, "CSR")
    K = x @ x.T
    ref = smo_train(X, y, LinearKernel(), C=1.0, tol=1e-5)
    var = smo_train(
        X, y, LinearKernel(), C=1.0, tol=1e-5,
        working_set=working_set, shrink_every=shrink,
    )
    assert var.converged
    f_ref = _dual_objective(ref.alpha, y, K)
    f_var = _dual_objective(var.alpha, y, K)
    assert f_var == pytest.approx(f_ref, rel=1e-3, abs=1e-6)
