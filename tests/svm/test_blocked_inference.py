"""Blocked (SpMM) inference in SVC / MulticlassSVC.

The contract: routing multi-row inputs through the PR 2 ``smsv_multi``
path in blocks of ``sv_block`` support vectors is bitwise identical to
the historical per-vector loop, for every kernel and any block size.
"""

import numpy as np
import pytest

from repro.perf.counters import OpCounter
from repro.svm import SVC, MulticlassSVC
from tests.conftest import make_labels


def _sequential_df(clf, X):
    """The model's own sequential path (sv_block=1), restored after."""
    saved = clf.sv_block
    clf.sv_block = 1
    try:
        return clf.decision_function(X)
    finally:
        clf.sv_block = saved


@pytest.fixture(scope="module")
def data():
    rng = np.random.default_rng(51)
    x = rng.standard_normal((110, 8))
    y = make_labels(rng, x)
    x_test = rng.standard_normal((37, 8))
    return x, y, x_test


KERNEL_CONFIGS = [
    ("linear", {}),
    ("gaussian", {"gamma": 0.4}),
    ("polynomial", {"a": 0.7, "r": 1.0, "degree": 3}),
    ("sigmoid", {"a": 0.05, "r": -0.2}),
]


class TestBitwiseIdentity:
    @pytest.mark.parametrize(
        "kernel,params", KERNEL_CONFIGS, ids=[k for k, _ in KERNEL_CONFIGS]
    )
    def test_blocked_equals_sequential(self, data, kernel, params):
        x, y, x_test = data
        clf = SVC(kernel, C=1.5, **params).fit(x, y)
        blocked = clf.decision_function(x_test)
        sequential = _sequential_df(clf, x_test)
        assert np.array_equal(blocked, sequential)

    @pytest.mark.parametrize("sv_block", [2, 3, 7, 32, 1000])
    def test_any_block_size(self, data, sv_block):
        x, y, x_test = data
        clf = SVC("gaussian", gamma=0.3, sv_block=sv_block).fit(x, y)
        assert np.array_equal(
            clf.decision_function(x_test), _sequential_df(clf, x_test)
        )

    def test_predictions_identical(self, data):
        x, y, x_test = data
        clf = SVC("gaussian", gamma=0.3).fit(x, y)
        blocked = clf.predict(x_test)
        clf.sv_block = 1
        assert np.array_equal(blocked, clf.predict(x_test))


class TestSpmmRouting:
    def test_blocked_path_issues_spmm(self, data):
        x, y, x_test = data
        clf = SVC("gaussian", gamma=0.3, sv_block=16).fit(x, y)
        counter = OpCounter()
        clf.decision_function(x_test, counter=counter)
        n_sv = clf.n_support
        assert counter.spmm_calls == -(-n_sv // 16)  # ceil division
        assert counter.spmm_columns == n_sv

    def test_sequential_path_issues_no_spmm(self, data):
        x, y, x_test = data
        clf = SVC("gaussian", gamma=0.3, sv_block=1).fit(x, y)
        counter = OpCounter()
        clf.decision_function(x_test, counter=counter)
        assert counter.spmm_calls == 0
        assert counter.flops > 0  # but the SMSVs were counted

    def test_multiclass_predict_forwards_counter(self):
        rng = np.random.default_rng(52)
        x = np.vstack(
            [rng.standard_normal((25, 4)) + c for c in ([2, 0, 0, 0],
                                                        [0, 2, 0, 0],
                                                        [0, 0, 2, 0])]
        )
        y = np.repeat([0.0, 1.0, 2.0], 25)
        clf = MulticlassSVC("gaussian", gamma=0.5).fit(x, y)
        counter = OpCounter()
        clf.predict(x[:10], counter=counter)
        assert counter.spmm_calls >= len(clf.models_)
        assert counter.spmm_columns == sum(
            pm.svc.n_support for pm in clf.models_
        )


class TestValidation:
    def test_sv_block_must_be_positive(self):
        with pytest.raises(ValueError, match="sv_block"):
            SVC(sv_block=0)
