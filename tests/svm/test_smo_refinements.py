"""Second-order working-set selection and shrinking (SMO refinements).

These are the serial techniques the paper's related-work section lists
as standard in LIBSVM (Fan-Chen-Lin second-order selection; Joachims
shrinking); the invariants: they never change the solution, and they
improve the relevant cost metric.
"""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, from_dense
from repro.svm import SVC, AdaptiveSVC
from repro.svm.kernels import GaussianKernel, LinearKernel
from repro.svm.smo import smo_train
from tests.conftest import make_labels


@pytest.fixture
def problem(rng):
    x = rng.standard_normal((250, 8))
    y = make_labels(rng, x)
    return from_dense(x, "CSR"), y


class TestSecondOrder:
    def test_same_objective_as_first_order(self, problem):
        X, y = problem
        kw = dict(C=1.0, tol=1e-4)
        r1 = smo_train(X, y, GaussianKernel(0.5), working_set="first", **kw)
        r2 = smo_train(X, y, GaussianKernel(0.5), working_set="second", **kw)
        assert r1.converged and r2.converged
        assert r2.objective(y) == pytest.approx(r1.objective(y), rel=1e-4)

    def test_fewer_or_equal_iterations(self, problem):
        # The point of the second-order rule: greater guaranteed gain
        # per step.  Allow a small slack for ties on easy problems.
        X, y = problem
        kw = dict(C=1.0, tol=1e-4)
        r1 = smo_train(X, y, GaussianKernel(0.5), working_set="first", **kw)
        r2 = smo_train(X, y, GaussianKernel(0.5), working_set="second", **kw)
        assert r2.iterations <= r1.iterations * 1.1

    def test_f_consistency_maintained(self, problem):
        X, y = problem
        r = smo_train(
            X, y, LinearKernel(), C=1.0, working_set="second",
            max_iter=300,
        )
        dense = X.to_dense()
        K = dense @ dense.T
        assert np.allclose(r.f, K @ (r.alpha * y) - y, atol=1e-8)

    def test_unknown_rule_rejected(self, problem):
        X, y = problem
        with pytest.raises(ValueError, match="working_set"):
            smo_train(X, y, LinearKernel(), working_set="third")

    def test_kernel_diagonal_shortcuts(self, rng):
        from repro.svm.kernels import (
            PolynomialKernel,
            SigmoidKernel,
        )

        norms = rng.random(10) * 3.0
        assert np.allclose(LinearKernel().diagonal(norms), norms)
        assert np.allclose(GaussianKernel(2.0).diagonal(norms), 1.0)
        k = PolynomialKernel(a=0.5, r=1.0, degree=2)
        assert np.allclose(k.diagonal(norms), (0.5 * norms + 1.0) ** 2)
        s = SigmoidKernel(a=0.3, r=-0.1)
        assert np.allclose(s.diagonal(norms), np.tanh(0.3 * norms - 0.1))


class TestShrinking:
    def test_same_objective_with_shrinking(self, problem):
        X, y = problem
        kw = dict(C=1.0, tol=1e-4)
        base = smo_train(X, y, GaussianKernel(0.5), shrink_every=0, **kw)
        shrunk = smo_train(X, y, GaussianKernel(0.5), shrink_every=40, **kw)
        assert base.converged and shrunk.converged
        assert shrunk.objective(y) == pytest.approx(
            base.objective(y), rel=1e-4
        )

    def test_active_set_actually_shrinks(self, problem):
        X, y = problem
        r = smo_train(
            X, y, GaussianKernel(0.5), C=1.0, tol=1e-4, shrink_every=40
        )
        assert r.shrink_events > 0
        assert r.min_active < X.shape[0]

    def test_unshrink_verifies_full_problem(self, problem):
        # Convergence must be declared on the FULL problem: f is
        # reconstructed and optimality re-checked.
        X, y = problem
        r = smo_train(
            X, y, GaussianKernel(0.5), C=1.0, tol=1e-4, shrink_every=40
        )
        if r.shrink_events:
            assert r.unshrink_events >= 1
        # final f is exact for every sample, active or not
        dense = X.to_dense()
        d2 = ((dense[:, None, :] - dense[None, :, :]) ** 2).sum(-1)
        K = np.exp(-0.5 * d2)
        assert np.allclose(r.f, K @ (r.alpha * y) - y, atol=1e-6)

    def test_final_kkt_holds_globally(self, problem):
        X, y = problem
        tol = 1e-4
        r = smo_train(
            X, y, GaussianKernel(0.5), C=1.0, tol=tol, shrink_every=40
        )
        assert r.converged
        assert r.b_low <= r.b_high + 2 * tol + 1e-9

    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_shrinking_rebuilds_every_format(self, problem, fmt):
        # The rebuild path must work in whatever layout the scheduler
        # chose.
        from repro.formats import convert

        X, y = problem
        Xf = convert(X, fmt)
        r = smo_train(
            Xf, y, LinearKernel(), C=1.0, tol=1e-3, shrink_every=30,
            max_iter=2000,
        )
        assert r.converged

    def test_negative_shrink_every_rejected(self, problem):
        X, y = problem
        with pytest.raises(ValueError, match="shrink_every"):
            smo_train(X, y, LinearKernel(), shrink_every=-1)


class TestSVCIntegration:
    def test_svc_options_forwarded(self, rng):
        x = rng.standard_normal((150, 6))
        y = make_labels(rng, x)
        clf = SVC(
            "gaussian", gamma=0.5, C=1.0, working_set="second",
            shrink_every=30,
        ).fit(x, y)
        assert clf.score(x, y) > 0.9

    def test_adaptive_svc_options_forwarded(self, rng):
        x = rng.standard_normal((150, 6))
        y = make_labels(rng, x)
        clf = AdaptiveSVC(
            "linear", C=1.0, working_set="second", shrink_every=30
        ).fit(x, y)
        assert clf.score(x, y) > 0.9
        assert clf.working_set == "second"
