"""Divide-and-conquer SVM (CA-SVM + layout scheduling) tests."""

import numpy as np
import pytest

from repro.core import LayoutScheduler
from repro.formats import from_dense
from repro.svm import SVC, DivideAndConquerSVC
from repro.svm.dcsvm import kmeans, random_projection_sketch


@pytest.fixture
def clustered(rng):
    """Four well-separated clusters; the label plane (x_3 = 0) cuts
    through *every* cluster, so each shard is a genuine two-class
    problem."""
    centers = np.array(
        [[6, 0, 0], [-6, 0, 0], [0, 6, 0], [0, -6, 0]], dtype=float
    )
    n_per = 60
    xs = []
    for c in centers:
        xs.append(c + rng.standard_normal((n_per, 3)))
    x = np.vstack(xs)
    y = np.where(x[:, 2] > 0, 1.0, -1.0)
    # keep a margin around the separating plane
    x[:, 2] += y * 0.5
    perm = rng.permutation(len(y))
    return x[perm], y[perm]


class TestKMeans:
    def test_recovers_separated_clusters(self, rng):
        pts = np.vstack(
            [
                rng.standard_normal((40, 2)) + [10, 0],
                rng.standard_normal((40, 2)) - [10, 0],
            ]
        )
        labels, cents = kmeans(pts, 2, seed=0)
        # all points of each blob share a label
        assert len(set(labels[:40].tolist())) == 1
        assert len(set(labels[40:].tolist())) == 1
        assert labels[0] != labels[40]
        assert cents.shape == (2, 2)

    def test_k_equals_m(self, rng):
        pts = rng.standard_normal((5, 2))
        labels, _ = kmeans(pts, 5, seed=0)
        assert sorted(labels.tolist()) == [0, 1, 2, 3, 4]

    def test_no_empty_clusters(self, rng):
        pts = rng.standard_normal((50, 3))
        labels, _ = kmeans(pts, 8, seed=1)
        assert len(np.unique(labels)) == 8

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            kmeans(rng.standard_normal((3, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(rng.standard_normal((3, 2)), 4)


class TestSketch:
    def test_shape_and_determinism(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        s1 = random_projection_sketch(m, 8, seed=3)
        s2 = random_projection_sketch(m, 8, seed=3)
        assert s1.shape == (40, 8)
        assert np.array_equal(s1, s2)

    def test_dim_capped_at_n(self, small_sparse):
        m = from_dense(small_sparse, "CSR")
        assert random_projection_sketch(m, 100, seed=0).shape == (40, 30)

    def test_preserves_relative_distances(self, rng):
        # JL sanity: far pairs stay farther than near pairs.
        a = rng.standard_normal((3, 50))
        a[2] = a[0] + 0.01 * rng.standard_normal(50)  # near-duplicate
        m = from_dense(a, "DEN")
        s = random_projection_sketch(m, 16, seed=0)
        near = np.linalg.norm(s[0] - s[2])
        far = np.linalg.norm(s[0] - s[1])
        assert near < far

    def test_validation(self, small_sparse):
        with pytest.raises(ValueError):
            random_projection_sketch(from_dense(small_sparse, "CSR"), 0)


class TestDivideAndConquer:
    def test_accuracy_on_clustered_data(self, clustered):
        x, y = clustered
        clf = DivideAndConquerSVC(
            "linear", n_partitions=4, C=10.0, seed=0
        ).fit(x, y)
        assert clf.score(x, y) >= 0.95

    def test_approximates_global_svm(self, clustered):
        x, y = clustered
        global_svm = SVC("linear", C=10.0).fit(x, y)
        dc = DivideAndConquerSVC(
            "linear", n_partitions=4, C=10.0, seed=0
        ).fit(x, y)
        agree = float(np.mean(global_svm.predict(x) == dc.predict(x)))
        assert agree >= 0.9

    def test_per_partition_layout_decisions(self, clustered):
        x, y = clustered
        clf = DivideAndConquerSVC(
            "linear",
            n_partitions=4,
            C=10.0,
            scheduler=LayoutScheduler("cost"),
            seed=0,
        ).fit(x, y)
        layouts = clf.layouts_
        assert len(layouts) == 4
        assert all(l is not None for l in layouts)

    def test_shards_cover_all_samples(self, clustered):
        x, y = clustered
        clf = DivideAndConquerSVC(
            "linear", n_partitions=4, C=10.0, seed=0
        ).fit(x, y)
        assert sum(clf.shard_sizes_) == len(y)

    def test_single_partition_equals_global(self, clustered):
        x, y = clustered
        dc = DivideAndConquerSVC(
            "linear", n_partitions=1, C=10.0, seed=0
        ).fit(x, y)
        global_svm = SVC("linear", C=10.0).fit(x, y)
        assert np.array_equal(dc.predict(x), global_svm.predict(x))

    def test_random_partitioner(self, clustered):
        x, y = clustered
        clf = DivideAndConquerSVC(
            "linear", n_partitions=3, partitioner="random", C=10.0, seed=0
        ).fit(x, y)
        # random striping still trains and predicts something sensible
        assert clf.score(x, y) >= 0.7

    def test_single_class_shard_handled(self, rng):
        # Force tiny shards: some will be single-class.
        x = rng.standard_normal((30, 3)) + np.array([8.0, 0, 0])
        x[:15] -= np.array([16.0, 0, 0])
        y = np.concatenate([np.ones(15), -np.ones(15)])
        clf = DivideAndConquerSVC(
            "linear", n_partitions=2, C=10.0, seed=0
        ).fit(x, y)
        assert clf.score(x, y) >= 0.9  # each shard is one class here

    def test_unfitted_raises(self, rng):
        with pytest.raises(RuntimeError, match="not fitted"):
            DivideAndConquerSVC().predict(rng.standard_normal((3, 2)))

    def test_validation(self):
        with pytest.raises(ValueError):
            DivideAndConquerSVC(n_partitions=0)
        with pytest.raises(ValueError):
            DivideAndConquerSVC(partitioner="hashing")

    def test_parallel_matches_serial(self, clustered):
        x, y = clustered
        a = DivideAndConquerSVC(
            "linear", n_partitions=4, C=10.0, seed=0, n_workers=1
        ).fit(x, y)
        b = DivideAndConquerSVC(
            "linear", n_partitions=4, C=10.0, seed=0, n_workers=4
        ).fit(x, y)
        assert np.array_equal(a.predict(x), b.predict(x))
