"""Warm-started SMO: correctness and the convergence speedup."""

import numpy as np
import pytest

from repro.formats import from_dense
from repro.svm.kernels import GaussianKernel, LinearKernel
from repro.svm.smo import smo_train
from tests.conftest import make_labels


@pytest.fixture
def problem(rng):
    x = rng.standard_normal((200, 6))
    y = make_labels(rng, x)
    return from_dense(x, "CSR"), y


class TestWarmStart:
    def test_resume_from_own_solution_converges_instantly(self, problem):
        X, y = problem
        cold = smo_train(X, y, GaussianKernel(0.5), C=1.0, tol=1e-4)
        warm = smo_train(
            X, y, GaussianKernel(0.5), C=1.0, tol=1e-4,
            initial_alpha=cold.alpha,
        )
        assert warm.converged
        assert warm.iterations <= max(5, cold.iterations // 20)
        assert warm.objective(y) == pytest.approx(
            cold.objective(y), rel=1e-6
        )

    def test_warm_start_across_nearby_C(self, problem):
        # The classic use: trace a C path. Warm starting from the
        # previous C's solution must (a) reach the same optimum the
        # cold start reaches and (b) do so in fewer iterations.
        X, y = problem
        sol_c1 = smo_train(X, y, LinearKernel(), C=1.0, tol=1e-4)
        cold_c2 = smo_train(X, y, LinearKernel(), C=1.2, tol=1e-4)
        warm_c2 = smo_train(
            X, y, LinearKernel(), C=1.2, tol=1e-4,
            initial_alpha=sol_c1.alpha,
        )
        assert warm_c2.converged
        assert warm_c2.objective(y) == pytest.approx(
            cold_c2.objective(y), rel=1e-3
        )
        assert warm_c2.iterations < cold_c2.iterations

    def test_rebuilt_f_is_exact(self, problem):
        X, y = problem
        sol = smo_train(X, y, LinearKernel(), C=1.0, tol=1e-4)
        warm = smo_train(
            X, y, LinearKernel(), C=1.0, tol=1e-4,
            initial_alpha=sol.alpha, max_iter=1,
        )
        dense = X.to_dense()
        K = dense @ dense.T
        # After 1 iteration from the warm start, f must satisfy the
        # maintained-exactly invariant.
        assert np.allclose(
            warm.f, K @ (warm.alpha * y) - y, atol=1e-8
        )

    def test_validation(self, problem):
        X, y = problem
        with pytest.raises(ValueError, match="length M"):
            smo_train(
                X, y, LinearKernel(), initial_alpha=np.zeros(3)
            )
        with pytest.raises(ValueError, match="box"):
            smo_train(
                X, y, LinearKernel(), C=1.0,
                initial_alpha=np.full(X.shape[0], 2.0),
            )
        bad = np.zeros(X.shape[0])
        bad[np.argmax(y > 0)] = 0.5  # breaks sum alpha y = 0
        with pytest.raises(ValueError, match="equality"):
            smo_train(X, y, LinearKernel(), C=1.0, initial_alpha=bad)

    def test_zero_warm_start_equals_cold(self, problem):
        X, y = problem
        cold = smo_train(X, y, LinearKernel(), C=1.0, tol=1e-4)
        warm = smo_train(
            X, y, LinearKernel(), C=1.0, tol=1e-4,
            initial_alpha=np.zeros(X.shape[0]),
        )
        assert warm.iterations == cold.iterations
        assert np.allclose(warm.alpha, cold.alpha)
