"""MulticlassSVC persistence: round-trip and kernel-config fidelity."""

import numpy as np
import pytest

from repro.svm import SVC, MulticlassSVC
from repro.svm.kernels import Kernel
from repro.svm.persist import (
    load_model,
    load_multiclass,
    load_svc,
    read_kind,
    save_multiclass,
)
from tests.conftest import make_labels


def _three_class_data(seed=61, per_class=28, n=5):
    rng = np.random.default_rng(seed)
    centers = np.zeros((3, n))
    for i in range(3):
        centers[i, i] = 2.5
    x = np.vstack(
        [rng.standard_normal((per_class, n)) * 0.7 + c for c in centers]
    )
    y = np.repeat([0.0, 1.0, 2.0], per_class)
    return x, y


@pytest.fixture(scope="module")
def fitted():
    x, y = _three_class_data()
    clf = MulticlassSVC("gaussian", gamma=0.45, C=1.8, tol=5e-4).fit(x, y)
    return clf, x, y


class TestRoundTrip:
    def test_predictions_identical(self, fitted, tmp_path):
        clf, x, _y = fitted
        path = tmp_path / "mc.npz"
        clf.save(path)
        loaded = MulticlassSVC.load(path)
        assert np.array_equal(loaded.predict(x), clf.predict(x))

    def test_pairwise_decision_values_identical(self, fitted, tmp_path):
        clf, x, _y = fitted
        path = tmp_path / "mc.npz"
        clf.save(path)
        loaded = load_multiclass(path)
        for pm_a, pm_b in zip(clf.models_, loaded.models_):
            assert pm_a.classes == pm_b.classes
            assert np.allclose(
                pm_a.svc.decision_function(x),
                pm_b.svc.decision_function(x),
                atol=1e-12,
            )

    def test_kernel_config_fidelity(self, fitted, tmp_path):
        clf, _x, _y = fitted
        path = tmp_path / "mc.npz"
        save_multiclass(clf, path)
        loaded = load_multiclass(path)
        for pm in loaded.models_:
            assert pm.svc.kernel.name == "gaussian"
            assert pm.svc.kernel.gamma == 0.45
            assert pm.svc.C == 1.8
            assert pm.svc.tol == 5e-4

    @pytest.mark.parametrize(
        "kernel,params,attrs",
        [
            ("linear", {}, {}),
            (
                "polynomial",
                {"a": 0.6, "r": 0.5, "degree": 2},
                {"a": 0.6, "r": 0.5, "degree": 2},
            ),
            ("sigmoid", {"a": 0.04, "r": -0.1}, {"a": 0.04, "r": -0.1}),
        ],
    )
    def test_every_named_kernel_round_trips(
        self, tmp_path, kernel, params, attrs
    ):
        x, y = _three_class_data(seed=62, per_class=18, n=4)
        clf = MulticlassSVC(kernel, C=1.0, **params).fit(x, y)
        path = tmp_path / "mc.npz"
        clf.save(path)
        loaded = MulticlassSVC.load(path)
        assert np.array_equal(loaded.predict(x), clf.predict(x))
        for name, value in attrs.items():
            assert getattr(loaded.models_[0].svc.kernel, name) == value

    def test_classes_and_pair_structure_restored(self, fitted, tmp_path):
        clf, _x, _y = fitted
        path = tmp_path / "mc.npz"
        clf.save(path)
        loaded = load_multiclass(path)
        assert np.array_equal(loaded.classes_, clf.classes_)
        assert len(loaded.models_) == len(clf.models_)
        for pm_a, pm_b in zip(clf.models_, loaded.models_):
            assert pm_b.svc.n_support == pm_a.svc.n_support
            assert pm_b.svc.result_.b == pm_a.svc.result_.b


class TestKindDispatch:
    def test_read_kind(self, fitted, tmp_path):
        clf, _x, _y = fitted
        mc_path = tmp_path / "mc.npz"
        clf.save(mc_path)
        assert read_kind(mc_path) == "multiclass"

        rng = np.random.default_rng(63)
        xb = rng.standard_normal((60, 4))
        yb = make_labels(rng, xb)
        svc = SVC("linear").fit(xb, yb)
        svc_path = tmp_path / "svc.npz"
        svc.save(svc_path)
        assert read_kind(svc_path) == "svc"

    def test_load_model_dispatches(self, fitted, tmp_path):
        clf, x, _y = fitted
        path = tmp_path / "mc.npz"
        clf.save(path)
        loaded = load_model(path)
        assert isinstance(loaded, MulticlassSVC)
        assert np.array_equal(loaded.predict(x), clf.predict(x))

    def test_wrong_loader_rejects_kind(self, fitted, tmp_path):
        clf, _x, _y = fitted
        mc_path = tmp_path / "mc.npz"
        clf.save(mc_path)
        with pytest.raises(ValueError, match="expected a binary SVC"):
            load_svc(mc_path)

        rng = np.random.default_rng(64)
        xb = rng.standard_normal((60, 4))
        yb = make_labels(rng, xb)
        svc_path = tmp_path / "svc.npz"
        SVC("linear").fit(xb, yb).save(svc_path)
        with pytest.raises(ValueError, match="expected a multiclass"):
            load_multiclass(svc_path)


class TestErrors:
    def test_unfitted_save_raises(self, tmp_path):
        with pytest.raises(RuntimeError, match="not fitted"):
            save_multiclass(MulticlassSVC(), tmp_path / "x.npz")

    def test_custom_kernel_rejected(self, tmp_path):
        class Odd(Kernel):
            name = "odd"

            def row(self, X, v, v_norm_sq, row_norms_sq, counter=None):
                return X.smsv(v, counter)

            def _transform_scalar(self, dot, nx, ny):
                return dot

        x, y = _three_class_data(seed=65, per_class=15, n=4)
        clf = MulticlassSVC(Odd()).fit(x, y)
        with pytest.raises(ValueError, match="custom kernel"):
            save_multiclass(clf, tmp_path / "x.npz")
