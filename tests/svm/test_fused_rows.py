"""Fused dual-row kernel path: identity with the single-row path.

Two layers of equivalence, both required by the PR's acceptance
criterion:

- ``Kernel.rows`` must be column-for-column bitwise identical to
  stacked ``Kernel.row`` calls, for all four Mercer kernels;
- ``smo_train(fuse_rows=True)`` must reproduce the *exact* training
  run of ``fuse_rows=False``: same iteration count, same support set,
  same bias and f vector bitwise.

Cache hit/miss statistics are deliberately NOT compared: eviction
timing can differ by one row between the two paths, and the contract
is about the solution trajectory, not the cache diagnostics.
"""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, from_dense
from repro.svm.kernels import make_kernel
from repro.svm.smo import _RowCache, smo_train
from tests.conftest import make_labels

KERNEL_PARAMS = {
    "linear": {},
    "polynomial": {"a": 1.0, "r": 1.0, "degree": 2},
    "gaussian": {"gamma": 0.5},
    "sigmoid": {"a": 0.1, "r": 0.0},
}


@pytest.fixture
def problem(rng):
    x = rng.standard_normal((60, 8))
    x[rng.random((60, 8)) < 0.4] = 0.0
    y = make_labels(rng, x)
    return x, y


class TestKernelRowsIdentity:
    @pytest.mark.parametrize("name", sorted(KERNEL_PARAMS))
    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_rows_bitwise_equal_stacked_row(self, problem, name, fmt):
        x, _y = problem
        X = from_dense(x, fmt)
        kernel = make_kernel(name, **KERNEL_PARAMS[name])
        norms = X.row_norms_sq()
        vi, vj = X.row(5), X.row(17)
        v_norms = np.array([float(norms[5]), float(norms[17])])
        block = kernel.rows(X, (vi, vj), v_norms, norms)
        assert block.shape == (60, 2)
        np.testing.assert_array_equal(
            block[:, 0], kernel.row(X, vi, v_norms[0], norms)
        )
        np.testing.assert_array_equal(
            block[:, 1], kernel.row(X, vj, v_norms[1], norms)
        )

    def test_rows_empty_batch(self, problem):
        x, _y = problem
        X = from_dense(x, "CSR")
        kernel = make_kernel("gaussian", gamma=0.5)
        block = kernel.rows(X, [], np.zeros(0), X.row_norms_sq())
        assert block.shape == (60, 0)

    def test_rows_norm_length_mismatch(self, problem):
        x, _y = problem
        X = from_dense(x, "CSR")
        kernel = make_kernel("gaussian", gamma=0.5)
        with pytest.raises(ValueError, match="one entry per vector"):
            kernel.rows(X, [X.row(0)], np.zeros(2), X.row_norms_sq())


class TestFusedSmoIdentity:
    @pytest.mark.parametrize("name", sorted(KERNEL_PARAMS))
    def test_same_trajectory_all_kernels(self, problem, name):
        x, y = problem
        X = from_dense(x, "CSR")
        kernel = make_kernel(name, **KERNEL_PARAMS[name])
        runs = [
            smo_train(
                X, y, kernel, C=1.0, max_iter=2_000, fuse_rows=fused
            )
            for fused in (False, True)
        ]
        a, b = runs
        assert a.iterations == b.iterations
        assert a.converged == b.converged
        np.testing.assert_array_equal(a.alpha, b.alpha)
        np.testing.assert_array_equal(a.f, b.f)
        assert a.b == b.b

    @pytest.mark.parametrize("working_set", ["first", "second"])
    @pytest.mark.parametrize("shrink_every", [0, 25])
    def test_same_trajectory_refinements(
        self, problem, working_set, shrink_every
    ):
        x, y = problem
        X = from_dense(x, "CSR")
        kernel = make_kernel("gaussian", gamma=0.5)
        runs = [
            smo_train(
                X,
                y,
                kernel,
                C=1.0,
                max_iter=2_000,
                working_set=working_set,
                shrink_every=shrink_every,
                fuse_rows=fused,
            )
            for fused in (False, True)
        ]
        a, b = runs
        assert a.iterations == b.iterations
        np.testing.assert_array_equal(a.alpha, b.alpha)
        assert a.b == b.b

    @pytest.mark.parametrize("cache_rows", [0, 8])
    def test_same_trajectory_cache_sizes(self, problem, cache_rows):
        # cache_rows=0 forces a double miss every iteration — the fused
        # path runs a dual-row SpMM on every single step.
        x, y = problem
        X = from_dense(x, "CSR")
        kernel = make_kernel("linear")
        runs = [
            smo_train(
                X,
                y,
                kernel,
                C=1.0,
                max_iter=2_000,
                cache_rows=cache_rows,
                fuse_rows=fused,
            )
            for fused in (False, True)
        ]
        a, b = runs
        assert a.iterations == b.iterations
        np.testing.assert_array_equal(a.alpha, b.alpha)

    def test_rows_computed_matches_unfused(self, problem):
        # The fused path computes the same number of rows — it batches
        # them, it does not skip or duplicate work.
        x, y = problem
        X = from_dense(x, "CSR")
        kernel = make_kernel("linear")
        a = smo_train(X, y, kernel, C=1.0, cache_rows=0, fuse_rows=False)
        b = smo_train(X, y, kernel, C=1.0, cache_rows=0, fuse_rows=True)
        assert a.kernel_rows_computed == b.kernel_rows_computed


class TestRowCache:
    def test_from_budget_mb_row_count(self):
        # 1 MB buys floor(2^20 / row_bytes) rows.
        cache = _RowCache.from_budget_mb(1.0, 8 * 1024)
        assert cache.capacity == 128

    def test_budget_too_small_disables(self):
        cache = _RowCache.from_budget_mb(0.001, 8 * 1_000_000)
        assert cache.capacity == 0
        cache.put(3, np.zeros(4))
        assert cache.get(3) is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match=">= 0"):
            _RowCache.from_budget_mb(-1.0, 8)

    def test_get_refreshes_recency(self):
        # True LRU: touching row 0 keeps it resident while the
        # untouched row 1 ages out.
        cache = _RowCache(2)
        cache.put(0, np.array([0.0]))
        cache.put(1, np.array([1.0]))
        assert cache.get(0) is not None  # refresh 0
        cache.put(2, np.array([2.0]))  # evicts 1, not 0
        assert cache.get(1) is None
        assert cache.get(0) is not None
        assert cache.get(2) is not None

    def test_smo_cache_mb_same_solution(self, problem):
        # Sizing by MB is a capacity knob only — the solution is
        # untouched.
        x, y = problem
        X = from_dense(x, "CSR")
        kernel = make_kernel("linear")
        by_rows = smo_train(X, y, kernel, C=1.0, cache_rows=64)
        by_mb = smo_train(X, y, kernel, C=1.0, cache_mb=1.0)
        assert by_rows.iterations == by_mb.iterations
        np.testing.assert_array_equal(by_rows.alpha, by_mb.alpha)

    def test_smo_cache_mb_zero_disables(self, problem):
        x, y = problem
        X = from_dense(x, "CSR")
        res = smo_train(
            X, y, make_kernel("linear"), C=1.0, cache_mb=0.0
        )
        assert res.kernel_rows_cached == 0
        assert res.converged
