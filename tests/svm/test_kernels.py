"""Kernel function tests against dense NumPy references (Table I)."""

import numpy as np
import pytest

from repro.formats import FORMAT_NAMES, SparseVector, from_dense
from repro.svm.kernels import (
    GaussianKernel,
    LinearKernel,
    PolynomialKernel,
    SigmoidKernel,
    make_kernel,
)


@pytest.fixture
def data(rng):
    a = (rng.random((20, 15)) < 0.5) * rng.standard_normal((20, 15))
    return a


def _row_reference(kernel_fn, a, i):
    return np.array([kernel_fn(a[j], a[i]) for j in range(a.shape[0])])


class TestKernelRows:
    @pytest.mark.parametrize("fmt", FORMAT_NAMES)
    def test_linear(self, data, fmt):
        m = from_dense(data, fmt)
        k = LinearKernel()
        v = m.row(3)
        row = k.row(m, v, v.norm_sq(), m.row_norms_sq())
        assert np.allclose(row, data @ data[3])

    def test_polynomial(self, data):
        m = from_dense(data, "CSR")
        k = PolynomialKernel(a=0.5, r=1.0, degree=3)
        v = m.row(5)
        expected = (0.5 * data @ data[5] + 1.0) ** 3
        assert np.allclose(
            k.row(m, v, v.norm_sq(), m.row_norms_sq()), expected
        )

    def test_gaussian(self, data):
        m = from_dense(data, "CSR")
        gamma = 0.3
        k = GaussianKernel(gamma=gamma)
        v = m.row(2)
        d2 = ((data - data[2]) ** 2).sum(axis=1)
        assert np.allclose(
            k.row(m, v, v.norm_sq(), m.row_norms_sq()),
            np.exp(-gamma * d2),
        )

    def test_gaussian_self_kernel_is_one(self, data):
        m = from_dense(data, "COO")
        k = GaussianKernel(gamma=1.0)
        v = m.row(4)
        row = k.row(m, v, v.norm_sq(), m.row_norms_sq())
        assert row[4] == pytest.approx(1.0)
        assert np.all(row <= 1.0 + 1e-12)
        assert np.all(row > 0.0)

    def test_sigmoid(self, data):
        m = from_dense(data, "ELL")
        k = SigmoidKernel(a=0.2, r=-0.5)
        v = m.row(0)
        expected = np.tanh(0.2 * data @ data[0] - 0.5)
        assert np.allclose(
            k.row(m, v, v.norm_sq(), m.row_norms_sq()), expected
        )


class TestSingle:
    def test_single_matches_row(self, data):
        m = from_dense(data, "CSR")
        for k in (
            LinearKernel(),
            PolynomialKernel(degree=2),
            GaussianKernel(gamma=0.7),
            SigmoidKernel(a=0.1),
        ):
            vi, vj = m.row(1), m.row(6)
            row = k.row(m, vj, vj.norm_sq(), m.row_norms_sq())
            assert k.single(vi, vj) == pytest.approx(row[1])


class TestFactory:
    def test_make_by_name(self):
        assert make_kernel("linear").name == "linear"
        assert make_kernel("rbf", gamma=2.0).gamma == 2.0
        assert make_kernel("GAUSSIAN").name == "gaussian"
        assert make_kernel("polynomial", degree=5).degree == 5

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="unknown kernel"):
            make_kernel("quantum")

    def test_param_validation(self):
        with pytest.raises(ValueError):
            GaussianKernel(gamma=0.0)
        with pytest.raises(ValueError):
            PolynomialKernel(degree=0)
