"""Profile extraction correctness on known structures."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import extract_profile, profile_from_coo, profile_from_dense
from repro.formats import FORMAT_NAMES, from_dense


class TestKnownStructures:
    def test_identity(self):
        p = profile_from_dense(np.eye(8))
        assert p.m == p.n == 8
        assert p.nnz == 8
        assert p.ndig == 1
        assert p.dnnz == 8.0
        assert p.mdim == 1
        assert p.adim == 1.0
        assert p.vdim == 0.0
        assert p.density == pytest.approx(1 / 8)

    def test_full_dense(self):
        p = profile_from_dense(np.ones((4, 6)))
        assert p.nnz == 24
        assert p.ndig == 4 + 6 - 1
        assert p.mdim == 6
        assert p.adim == 6.0
        assert p.vdim == 0.0
        assert p.density == 1.0

    def test_empty(self):
        p = profile_from_dense(np.zeros((5, 5)))
        assert p.nnz == 0 and p.ndig == 0 and p.vdim == 0.0

    def test_single_heavy_row(self):
        a = np.zeros((4, 8))
        a[2] = 1.0
        p = profile_from_dense(a)
        assert p.mdim == 8
        assert p.adim == 2.0
        # variance of (0,0,8,0): mean 2, sum sq dev = 4+4+36+4 = 48 / 4
        assert p.vdim == pytest.approx(12.0)

    def test_vdim_formula_matches_numpy(self, rng):
        a = (rng.random((30, 20)) < 0.3) * 1.0
        p = profile_from_dense(a)
        dim = a.sum(axis=1)
        assert p.vdim == pytest.approx(float(np.var(dim)))
        assert p.adim == pytest.approx(float(np.mean(dim)))


class TestFormatIndependence:
    def test_same_profile_from_every_format(self, small_sparse):
        profiles = [
            extract_profile(from_dense(small_sparse, f)) for f in FORMAT_NAMES
        ]
        first = profiles[0]
        for p in profiles[1:]:
            assert p == first


@given(seed=st.integers(0, 2**16), density=st.floats(0.05, 0.9))
@settings(max_examples=50, deadline=None)
def test_extraction_consistency(seed, density):
    """nnz == sum of row lengths == density * M * N identity, and
    dnnz * ndig == nnz for any random matrix."""
    rng = np.random.default_rng(seed)
    a = (rng.random((15, 12)) < density) * 1.0
    p = profile_from_dense(a)
    assert p.nnz == int(a.sum())
    assert p.adim * p.m == pytest.approx(p.nnz)
    assert p.density == pytest.approx(p.nnz / (15 * 12))
    if p.ndig:
        assert p.dnnz * p.ndig == pytest.approx(p.nnz)
    assert 0 <= p.mdim <= p.n
    assert p.vdim >= 0.0


def test_coo_path_unvalidated_matches_validated(small_sparse):
    rows, cols = np.nonzero(small_sparse)
    p1 = profile_from_coo(rows, cols, small_sparse.shape)
    p2 = profile_from_coo(rows, cols, small_sparse.shape, validated=True)
    assert p1 == p2
