"""Streaming profiler: chunked extraction equals batch extraction."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.features import StreamingProfiler, profile_from_coo
from repro.data.synthetic import variable_rows_matrix


def assert_profiles_equal(a, b):
    """Integer fields exact; float fields to within summation-order
    rounding (different accumulation orders differ in the last ULPs)."""
    assert (a.m, a.n, a.nnz, a.ndig, a.mdim) == (b.m, b.n, b.nnz, b.ndig, b.mdim)
    for attr in ("dnnz", "adim", "vdim", "density"):
        assert getattr(a, attr) == pytest.approx(
            getattr(b, attr), rel=1e-12, abs=1e-12
        ), attr


class TestStreaming:
    def test_matches_batch_extraction(self, small_sparse):
        rows, cols = np.nonzero(small_sparse)
        batch = profile_from_coo(rows, cols, small_sparse.shape)
        prof = StreamingProfiler(n_rows=40, n_cols=30)
        for start in range(0, len(rows), 7):  # odd chunk size
            prof.update(rows[start : start + 7], cols[start : start + 7])
        assert_profiles_equal(prof.finalize(), batch)

    def test_chunks_splitting_rows(self):
        # A row's nnz spread across chunks must still count once.
        rows = np.array([0, 0, 0, 1])
        cols = np.array([0, 1, 2, 0])
        prof = StreamingProfiler(n_rows=2, n_cols=3)
        prof.update(rows[:2], cols[:2])
        prof.update(rows[2:], cols[2:])
        p = prof.finalize()
        assert p.mdim == 3 and p.adim == 2.0

    def test_empty_rows_in_moments(self):
        # 4 declared rows, only one occupied: vdim must account for the
        # empty rows.
        prof = StreamingProfiler(n_rows=4, n_cols=4)
        prof.update(np.array([2, 2]), np.array([0, 1]))
        p = prof.finalize()
        assert p.adim == 0.5
        # dims (0, 0, 2, 0): var = E[d^2] - E[d]^2 = 1 - 0.25
        assert p.vdim == pytest.approx(0.75)

    def test_inferred_shape(self):
        prof = StreamingProfiler()
        prof.update(np.array([0, 5]), np.array([3, 9]))
        p = prof.finalize()
        assert (p.m, p.n) == (6, 10)

    def test_empty_stream(self):
        p = StreamingProfiler(n_rows=3, n_cols=4).finalize()
        assert p.nnz == 0 and p.ndig == 0

    def test_declared_shape_too_small(self):
        prof = StreamingProfiler(n_rows=2, n_cols=2)
        prof.update(np.array([5]), np.array([0]))
        with pytest.raises(ValueError, match="declared shape"):
            prof.finalize()

    def test_update_after_finalize_rejected(self):
        prof = StreamingProfiler(n_rows=2, n_cols=2)
        prof.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            prof.update(np.array([0]), np.array([0]))

    def test_bad_input(self):
        prof = StreamingProfiler()
        with pytest.raises(ValueError, match="equal length"):
            prof.update(np.array([0]), np.array([0, 1]))
        with pytest.raises(ValueError, match="negative"):
            prof.update(np.array([-1]), np.array([0]))


@given(
    seed=st.integers(0, 2**16),
    chunk=st.integers(1, 50),
    m=st.integers(2, 25),
    n=st.integers(2, 25),
)
@settings(max_examples=60, deadline=None)
def test_streaming_chunk_invariance(seed, chunk, m, n):
    """Any chunking yields exactly the batch profile."""
    rng = np.random.default_rng(seed)
    lengths = rng.integers(0, n + 1, size=m)
    rows, cols, _v, shape = variable_rows_matrix(m, n, lengths, seed=seed)
    batch = profile_from_coo(rows, cols, shape, validated=True)
    prof = StreamingProfiler(n_rows=m, n_cols=n)
    for start in range(0, len(rows), chunk):
        prof.update(rows[start : start + chunk], cols[start : start + chunk])
    assert_profiles_equal(prof.finalize(), batch)
