"""DatasetProfile invariants and Table IV sign-table checks."""

import math

import pytest

from repro.features import (
    PARAMETER_NAMES,
    CorrelationSign,
    DatasetProfile,
    TABLE_IV_SIGNS,
)


def make(**kw) -> DatasetProfile:
    base = dict(
        m=10, n=8, nnz=20, ndig=5, dnnz=4.0, mdim=4, adim=2.0,
        vdim=1.0, density=0.25,
    )
    base.update(kw)
    return DatasetProfile(**base)


class TestValidation:
    def test_valid_profile(self):
        p = make()
        assert p.m == 10 and p.nnz == 20

    def test_nnz_cannot_exceed_mn(self):
        with pytest.raises(ValueError, match="nnz"):
            make(nnz=100)

    def test_mdim_cannot_exceed_n(self):
        with pytest.raises(ValueError, match="mdim"):
            make(mdim=9)

    def test_density_bounds(self):
        with pytest.raises(ValueError, match="density"):
            make(density=1.5)

    def test_negative_dims(self):
        with pytest.raises(ValueError):
            make(m=-1)


class TestDerived:
    def test_balance(self):
        assert make(adim=4.0, mdim=4).balance == 1.0
        assert make(adim=2.0, mdim=4).balance == 0.5
        assert make(mdim=0, nnz=0, adim=0.0, dnnz=0.0, ndig=0, vdim=0.0, density=0.0).balance == 1.0

    def test_diag_fill(self):
        p = make(dnnz=4.0)  # min(10, 8) = 8
        assert p.diag_fill == pytest.approx(0.5)

    def test_cv_dim(self):
        p = make(adim=2.0, vdim=4.0)
        assert p.cv_dim == pytest.approx(1.0)
        assert make(adim=0.0, nnz=0, density=0.0).cv_dim == 0.0

    def test_as_vector_order(self):
        v = make().as_vector()
        assert len(v) == len(PARAMETER_NAMES) == 9
        d = make().as_dict()
        assert v == tuple(float(d[k]) for k in PARAMETER_NAMES)


class TestTableIVSigns:
    def test_full_coverage(self):
        # 9 parameters x 5 formats, all filled.
        assert set(TABLE_IV_SIGNS) == set(PARAMETER_NAMES)
        for param, row in TABLE_IV_SIGNS.items():
            assert set(row) == {"ELL", "CSR", "COO", "DEN", "DIA"}, param

    def test_key_cells_verbatim(self):
        # Spot-check the cells the scheduler logic depends on.
        P, N, X = (
            CorrelationSign.POSITIVE,
            CorrelationSign.NEGATIVE,
            CorrelationSign.UNCORRELATED,
        )
        assert TABLE_IV_SIGNS["mdim"]["ELL"] is N
        assert TABLE_IV_SIGNS["vdim"]["COO"] is P
        assert TABLE_IV_SIGNS["vdim"]["CSR"] is N
        assert TABLE_IV_SIGNS["ndig"]["DIA"] is N
        assert TABLE_IV_SIGNS["density"]["DEN"] is P
        assert TABLE_IV_SIGNS["n"]["DEN"] is N
        assert TABLE_IV_SIGNS["ndig"]["CSR"] is X
