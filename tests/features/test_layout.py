"""Layout features: padding ratios that drive the SELL scheduler."""

import numpy as np
import pytest

from repro.data.synthetic import powerlaw_rows_matrix
from repro.features import layout_features, layout_features_from_matrix
from repro.formats import from_dense
from repro.formats.sell import SELLMatrix, sell_storage_elements


class TestLayoutFeatures:
    def test_uniform_rows_pad_nothing(self):
        f = layout_features(np.full(64, 7, dtype=np.int64), chunk=8)
        assert f.row_nnz_variance == 0.0
        assert f.row_nnz_cv == 0.0
        assert f.ell_padding_ratio == 1.0
        assert f.sell_padding_ratio == 1.0
        assert f.sell_sorted_padding_ratio == 1.0

    def test_all_zero_rows_are_degenerate_but_finite(self):
        f = layout_features(np.zeros(10, dtype=np.int64))
        assert f.ell_padding_ratio == 1.0
        assert f.sell_padding_ratio == 1.0
        assert f.sell_sorted_padding_ratio == 1.0

    def test_empty_length_vector(self):
        f = layout_features(np.zeros(0, dtype=np.int64))
        assert f.row_nnz_variance == 0.0
        assert f.sell_padding_ratio == 1.0

    def test_ell_ratio_is_m_mdim_over_nnz(self):
        lengths = np.array([1, 2, 10, 3], dtype=np.int64)
        f = layout_features(lengths, chunk=2)
        assert f.ell_padding_ratio == pytest.approx(4 * 10 / 16)

    def test_sell_between_one_and_ell(self):
        rows, cols, _v, shape = powerlaw_rows_matrix(
            400, 100, alpha=1.5, min_nnz=2, max_nnz=80, seed=3
        )
        lengths = np.bincount(rows, minlength=shape[0]).astype(np.int64)
        f = layout_features(lengths, chunk=8)
        assert 1.0 <= f.sell_padding_ratio <= f.ell_padding_ratio

    def test_sorting_never_hurts(self):
        rows, _c, _v, shape = powerlaw_rows_matrix(
            600, 120, alpha=1.4, min_nnz=1, max_nnz=100, seed=5
        )
        lengths = np.bincount(rows, minlength=shape[0]).astype(np.int64)
        for sigma in (None, 8, 64):
            f = layout_features(lengths, chunk=8, sigma=sigma)
            assert f.sell_sorted_padding_ratio <= f.sell_padding_ratio

    def test_global_sigma_at_least_as_good_as_windows(self):
        rows, _c, _v, shape = powerlaw_rows_matrix(
            600, 120, alpha=1.4, min_nnz=1, max_nnz=100, seed=5
        )
        lengths = np.bincount(rows, minlength=shape[0]).astype(np.int64)
        g = layout_features(lengths, chunk=8, sigma=None)
        w = layout_features(lengths, chunk=8, sigma=16)
        assert (
            g.sell_sorted_padding_ratio <= w.sell_sorted_padding_ratio
        )

    def test_ratio_matches_built_sell_matrix(self):
        rows, cols, vals, shape = powerlaw_rows_matrix(
            300, 80, alpha=1.6, min_nnz=2, max_nnz=60, seed=7
        )
        sell = SELLMatrix.from_coo(rows, cols, vals, shape, chunk=8)
        lengths = np.bincount(rows, minlength=shape[0]).astype(np.int64)
        f = layout_features(lengths, chunk=8)
        assert f.sell_padding_ratio == pytest.approx(
            sell.padded_elements / sell.nnz
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="non-negative"):
            layout_features(np.array([1, -2]))
        with pytest.raises(ValueError, match="chunk"):
            layout_features(np.array([1, 2]), chunk=0)
        with pytest.raises(ValueError, match="sigma"):
            layout_features(np.array([1, 2]), sigma=0)


class TestFromMatrix:
    def test_any_format_yields_same_features(self, rng):
        a = (rng.random((50, 30)) < 0.3) * rng.standard_normal((50, 30))
        ref = layout_features_from_matrix(from_dense(a, "CSR"))
        for fmt in ("COO", "ELL", "SELL", "RCSR"):
            got = layout_features_from_matrix(from_dense(a, fmt))
            assert got == ref

    def test_storage_helper_agrees_with_padding_ratio(self):
        lengths = np.array([3, 0, 5, 2, 2, 9], dtype=np.int64)
        f = layout_features(lengths, chunk=2)
        storage = sell_storage_elements(lengths, 2)
        m, nnz = lengths.shape[0], int(lengths.sum())
        n_slices = -(-m // 2)
        padded = (storage - (n_slices + 1) - m) // 2
        assert f.sell_padding_ratio == pytest.approx(padded / nnz)
