"""DecisionCache thread-safety: the serving layer shares one scheduler
(and its cache) across concurrent request threads.

Regression context: the pre-lock cache did check-then-evict on a bare
dict.  Two threads observing a full store could both evict; on a small
cache the second ``pop(next(iter(...)))`` hits an emptied dict and
raises ``StopIteration``, and interleaved put/iterate pairs can raise
``RuntimeError: dictionary changed size during iteration``.
"""

import threading

import numpy as np
import pytest

from repro.core import LayoutScheduler
from repro.core.scheduler import DecisionCache
from repro.features import profile_from_coo


def _rand_coords(rng, m, n):
    """Duplicate-free COO coordinates via a boolean occupancy mask."""
    mask = rng.random((m, n)) < rng.uniform(0.02, 0.5)
    if not mask.any():
        mask[0, 0] = True
    return np.nonzero(mask)


def _profiles(count, seed=0):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(count):
        m = int(rng.integers(4, 120))
        n = int(rng.integers(4, 120))
        rows, cols = _rand_coords(rng, m, n)
        out.append(profile_from_coo(rows, cols, (m, n)))
    return out


class TestConcurrentAccess:
    @pytest.mark.parametrize("maxsize", [1, 2, 8])
    def test_hammering_put_get_never_raises(self, maxsize):
        cache = DecisionCache(maxsize=maxsize)
        profiles = _profiles(24, seed=maxsize)
        errors = []
        start = threading.Barrier(8)

        def worker(wid):
            try:
                start.wait()
                rng = np.random.default_rng(wid)
                for _ in range(400):
                    p = profiles[int(rng.integers(len(profiles)))]
                    k = int(rng.integers(1, 4))
                    cache.put(p, "CSR", batch_k=k)
                    cache.get(p, batch_k=k)
                    len(cache)
            except BaseException as exc:  # capture across the thread edge
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert len(cache) <= maxsize

    def test_eviction_keeps_bound_under_contention(self):
        cache = DecisionCache(maxsize=4)
        profiles = _profiles(40, seed=7)

        def worker(chunk):
            for p in chunk:
                cache.put(p, "ELL")

        threads = [
            threading.Thread(target=worker, args=(profiles[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(cache) <= 4

    def test_shared_scheduler_concurrent_decides(self):
        """The end-to-end shape: one scheduler, many request threads."""
        sched = LayoutScheduler("cost", cache=DecisionCache(maxsize=2))
        rng = np.random.default_rng(3)
        matrices = []
        for _ in range(6):
            m, n = int(rng.integers(8, 40)), int(rng.integers(8, 40))
            rows, cols = _rand_coords(rng, m, n)
            matrices.append(
                (rows, cols, rng.random(len(rows)), (m, n))
            )
        errors = []

        def worker(wid):
            try:
                for i in range(60):
                    r, c, v, shape = matrices[(wid + i) % len(matrices)]
                    d = sched.decide_from_coo(r, c, v, shape)
                    assert d.fmt
            except BaseException as exc:
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []


class TestSingleThreadSemantics:
    def test_fifo_eviction_order(self):
        cache = DecisionCache(maxsize=2)
        p1, p2, p3 = _profiles(3, seed=11)
        cache.put(p1, "CSR")
        cache.put(p2, "ELL")
        cache.put(p3, "COO")  # evicts p1
        assert cache.get(p1) is None
        assert cache.get(p2) == "ELL"
        assert cache.get(p3) == "COO"

    def test_update_existing_key_does_not_evict(self):
        cache = DecisionCache(maxsize=2)
        p1, p2 = _profiles(2, seed=12)
        cache.put(p1, "CSR")
        cache.put(p2, "ELL")
        cache.put(p1, "DIA")  # overwrite, no eviction
        assert cache.get(p1) == "DIA"
        assert cache.get(p2) == "ELL"

    def test_clear(self):
        cache = DecisionCache()
        (p,) = _profiles(1, seed=13)
        cache.put(p, "CSR")
        cache.clear()
        assert len(cache) == 0
