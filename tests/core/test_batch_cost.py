"""The ``batch_k`` knob: amortised per-column cost in the cost model,
the scheduler, and the decision cache."""

import numpy as np
import pytest

from repro.core.cost_model import CostModel
from repro.core.scheduler import DecisionCache, LayoutScheduler
from repro.data.synthetic import uniform_rows_matrix
from repro.features import profile_from_coo
from repro.formats import FORMAT_NAMES


@pytest.fixture
def profile():
    rows, cols, _vals, shape = uniform_rows_matrix(400, 200, 12, seed=3)
    return profile_from_coo(rows, cols, shape, validated=True)


class TestBatchedCost:
    def test_batch_k_one_is_the_legacy_model(self, profile):
        model = CostModel()
        for fmt in FORMAT_NAMES:
            legacy = model.cost(fmt, profile)
            batched = model.cost(fmt, profile, batch_k=1)
            assert batched.cost == pytest.approx(legacy.cost, rel=1e-12)

    def test_sparse_formats_amortise(self, profile):
        # One k-wide sweep must be cheaper than k single sweeps for any
        # format with a traversal component (index streams to re-read).
        model = CostModel()
        k = 8
        for fmt in ("CSR", "COO", "ELL", "DIA"):
            single = model.cost(fmt, profile).cost
            batched = model.cost(fmt, profile, batch_k=k).cost
            assert batched < k * single

    def test_dense_has_no_amortisation(self, profile):
        # DEN has no index stream: a k-wide sweep is exactly k times
        # one sweep (minus nothing), so batching buys no traversal.
        model = CostModel()
        single = model.cost("DEN", profile)
        batched = model.cost("DEN", profile, batch_k=4)
        assert batched.cost == pytest.approx(
            4 * (single.cost - single.overhead) + single.overhead,
            rel=1e-12,
        )

    def test_batch_k_validation(self, profile):
        model = CostModel()
        with pytest.raises(ValueError, match="batch_k"):
            model.cost("CSR", profile, batch_k=0)

    def test_rank_is_batch_aware(self, profile):
        model = CostModel()
        ranked = model.rank(profile, batch_k=4)
        assert sorted(c.fmt for c in ranked) == sorted(FORMAT_NAMES)
        assert ranked == sorted(ranked)

    def test_worthwhile_batched_fewer_sweeps(self, profile):
        # With batch_k=2, an iteration pays one sweep instead of two —
        # the amortised saving per iteration shrinks, so a conversion
        # that barely paid at batch_k=1 may no longer pay.
        model = CostModel()
        iters_where_it_flips = None
        for iters in (1, 10, 100, 1000, 10000):
            single = model.worthwhile(
                profile, "ELL", "CSR", iterations=iters
            )
            batched = model.worthwhile(
                profile, "ELL", "CSR", iterations=iters, batch_k=2
            )
            if single != batched:
                iters_where_it_flips = iters
                assert single and not batched
        # Monotonicity sanity: batching never makes conversion *more*
        # attractive (it can only reduce per-iteration savings).
        del iters_where_it_flips


class TestDecisionCacheBatchKey:
    def test_key_carries_batch_k(self, profile):
        assert DecisionCache.key(profile, 1) != DecisionCache.key(
            profile, 2
        )

    def test_entries_are_batch_scoped(self, profile):
        cache = DecisionCache()
        cache.put(profile, "CSR", 1)
        cache.put(profile, "COO", 4)
        assert cache.get(profile, 1) == "CSR"
        assert cache.get(profile, 4) == "COO"
        assert cache.get(profile, 2) is None


class TestSchedulerBatchK:
    def test_default_is_one(self):
        assert LayoutScheduler("cost").batch_k == 1

    def test_validation(self):
        with pytest.raises(ValueError, match="batch_k"):
            LayoutScheduler("cost", batch_k=0)

    def test_cost_strategy_uses_batch_k(self):
        rows, cols, vals, shape = uniform_rows_matrix(
            400, 200, 12, seed=3
        )
        for batch_k in (1, 2, 8):
            sched = LayoutScheduler("cost", batch_k=batch_k)
            decision = sched.decide_from_coo(rows, cols, vals, shape)
            # The decision must agree with a direct batched ranking.
            model = CostModel()
            expected = model.best(decision.profile, batch_k=batch_k)
            assert decision.fmt == expected

    def test_cache_isolated_between_batch_widths(self):
        rows, cols, vals, shape = uniform_rows_matrix(
            400, 200, 12, seed=3
        )
        s1 = LayoutScheduler("cost", batch_k=1)
        s2 = LayoutScheduler("cost", batch_k=2)
        s2.cache = s1.cache  # shared cache, different widths
        d1 = s1.decide_from_coo(rows, cols, vals, shape)
        d2 = s2.decide_from_coo(rows, cols, vals, shape)
        # d2 must not have been served from d1's entry.
        assert s1.cache.get(d1.profile, 1) == d1.fmt
        assert s1.cache.get(d2.profile, 2) == d2.fmt
