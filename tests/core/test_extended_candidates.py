"""Extended candidate formats (CSC/BCSR) in the scheduler."""

import numpy as np
import pytest

from repro.core import AutoTuner, LayoutScheduler
from repro.formats import from_dense


class TestExtendedCandidates:
    def test_probe_accepts_extended(self, small_sparse):
        sched = LayoutScheduler(
            "probe",
            candidates=("CSR", "COO", "CSC", "BCSR"),
            tuner=AutoTuner(repeats=1, smsv_per_probe=1),
        )
        d = sched.decide(from_dense(small_sparse, "CSR"))
        assert d.fmt in ("CSR", "COO", "CSC", "BCSR")

    def test_hybrid_probes_extended_alongside_shortlist(self, small_sparse):
        sched = LayoutScheduler(
            "hybrid",
            candidates=("BCSR",),
            tuner=AutoTuner(repeats=1, smsv_per_probe=1),
        )
        d = sched.decide(from_dense(small_sparse, "CSR"))
        assert d.fmt is not None

    def test_profile_strategies_reject_extended(self):
        for strategy in ("rules", "cost"):
            with pytest.raises(ValueError, match="probe or hybrid"):
                LayoutScheduler(strategy, candidates=("CSC",))

    def test_invalid_candidate_rejected(self):
        with pytest.raises(ValueError, match="unknown format"):
            LayoutScheduler("probe", candidates=("JDS",))
        with pytest.raises(ValueError, match="non-empty"):
            LayoutScheduler("probe", candidates=())

    def test_csc_loses_the_smo_probe(self, small_sparse):
        # CSC's O(nnz) row extraction makes it uncompetitive for SMO's
        # access pattern — the probe (which times row + SMSV) must not
        # pick it over CSR on generic data.
        tuner = AutoTuner(repeats=3, smsv_per_probe=4)
        rows, cols = np.nonzero(small_sparse)
        results = tuner.probe(
            rows,
            cols,
            small_sparse[rows, cols],
            small_sparse.shape,
            candidates=["CSR", "CSC"],
        )
        assert results[0].fmt == "CSR"

    def test_conversion_roundtrip_via_scheduler(self, small_sparse):
        sched = LayoutScheduler(
            "probe",
            candidates=("CSC", "CSR"),
            tuner=AutoTuner(repeats=1, smsv_per_probe=1),
        )
        m, d = sched.apply(from_dense(small_sparse, "DEN"))
        assert m.name == d.fmt
        assert np.allclose(m.to_dense(), small_sparse)
