"""Cost model + scheduler coverage for SELL and the reordered layouts."""

import numpy as np
import pytest

from repro.core import LayoutScheduler
from repro.core.cost_model import ANALYTIC_FORMATS, CostModel
from repro.data.synthetic import powerlaw_rows_matrix, uniform_rows_matrix
from repro.features import profile_from_coo
from repro.formats.csr import CSRMatrix


def _profile(triples):
    rows, cols, _v, shape = triples
    return profile_from_coo(rows, cols, shape, validated=True)


@pytest.fixture
def highvar_profile():
    return _profile(
        powerlaw_rows_matrix(
            2048, 1024, alpha=1.6, min_nnz=32, max_nnz=512, seed=7
        )
    )


@pytest.fixture
def uniform_profile():
    return _profile(uniform_rows_matrix(512, 256, 24, seed=0))


class TestCostModel:
    def test_analytic_formats_all_price(self, highvar_profile):
        model = CostModel()
        for fmt in ANALYTIC_FORMATS:
            c = model.cost(fmt, highvar_profile)
            assert np.isfinite(c.cost) and c.cost > 0

    def test_sorted_layouts_win_on_high_variance(self, highvar_profile):
        model = CostModel()
        ranked = model.rank(highvar_profile, ANALYTIC_FORMATS)
        sparse_unordered = {"CSR", "COO", "ELL", "DIA"}
        best_sorted = min(
            c.cost for c in ranked if c.fmt in ("RCSR", "RSELL")
        )
        best_fixed = min(
            c.cost for c in ranked if c.fmt in sparse_unordered
        )
        assert best_sorted < best_fixed

    def test_reordering_does_not_pay_on_uniform_rows(
        self, uniform_profile
    ):
        model = CostModel()
        # vdim = 0: sorting buys nothing but still costs the scatter.
        assert (
            model.cost("RCSR", uniform_profile).cost
            > model.cost("CSR", uniform_profile).cost
        )
        assert (
            model.cost("RSELL", uniform_profile).cost
            > model.cost("SELL", uniform_profile).cost
        )

    def test_rell_never_beats_ell(self, highvar_profile, uniform_profile):
        model = CostModel()
        for p in (highvar_profile, uniform_profile):
            assert (
                model.cost("RELL", p).cost > model.cost("ELL", p).cost
            )

    def test_sell_elements_between_nnz_and_ell(self, highvar_profile):
        model = CostModel()
        p = highvar_profile
        sell = model.effective_elements("SELL", p)
        ell = model.effective_elements("ELL", p)
        assert p.nnz <= sell <= ell

    def test_reordered_conversion_carries_sort_surcharge(
        self, highvar_profile
    ):
        import math

        model = CostModel()
        p = highvar_profile
        # Strip the (format-dependent) write cost; the remaining build
        # cost must differ by exactly the sort + gather surcharge.
        build_rcsr = model.conversion_cost(
            p, "RCSR"
        ) - model.effective_elements("RCSR", p)
        build_csr = model.conversion_cost(
            p, "CSR"
        ) - model.effective_elements("CSR", p)
        surcharge = p.m * math.log2(max(p.m, 2)) + p.nnz
        assert build_rcsr == pytest.approx(build_csr + surcharge)

    def test_worthwhile_amortizes_reorder_conversion(
        self, highvar_profile
    ):
        model = CostModel()
        # a few iterations cannot amortise the sort+gather...
        assert not model.worthwhile(highvar_profile, "CSR", "RCSR", 1)
        # ...an SMO-scale run can
        assert model.worthwhile(highvar_profile, "CSR", "RCSR", 10_000)


class TestScheduler:
    def test_cost_strategy_accepts_reordered_candidates(
        self, highvar_profile
    ):
        sched = LayoutScheduler("cost", candidates=ANALYTIC_FORMATS)
        rows, cols, vals, shape = powerlaw_rows_matrix(
            2048, 1024, alpha=1.6, min_nnz=32, max_nnz=512, seed=7
        )
        d = sched.decide_from_coo(rows, cols, vals, shape)
        assert d.fmt in ANALYTIC_FORMATS

    def test_cost_strategy_rejects_extended_candidates(self):
        with pytest.raises(ValueError, match="probe"):
            LayoutScheduler("cost", candidates=("SELL", "CSC"))

    def test_hybrid_fast_path_with_analytic_candidates(self):
        rows, cols, vals, shape = powerlaw_rows_matrix(
            512, 256, alpha=1.6, min_nnz=8, max_nnz=128, seed=3
        )
        sched = LayoutScheduler(
            "hybrid", candidates=("CSR", "RCSR", "RSELL"), shortlist=2
        )
        d = sched.decide_from_coo(rows, cols, vals, shape)
        assert d.fmt in ("CSR", "RCSR", "RSELL")

    def test_apply_converts_into_reordered_layout(self):
        rows, cols, vals, shape = powerlaw_rows_matrix(
            1024, 512, alpha=1.5, min_nnz=32, max_nnz=256, seed=5
        )
        base = CSRMatrix.from_coo(rows, cols, vals, shape)
        sched = LayoutScheduler(
            "cost", candidates=("CSR", "RCSR", "RSELL")
        )
        converted, decision = sched.apply(base, iterations_hint=50_000)
        assert converted.name == decision.fmt
        assert decision.fmt in ("RCSR", "RSELL")
        # conversion preserved the logical matrix bitwise
        r2, c2, v2 = converted.to_coo()
        assert np.array_equal(v2, vals)

    def test_apply_tiny_iteration_hint_stays_put(self):
        rows, cols, vals, shape = powerlaw_rows_matrix(
            1024, 512, alpha=1.5, min_nnz=32, max_nnz=256, seed=5
        )
        base = CSRMatrix.from_coo(rows, cols, vals, shape)
        sched = LayoutScheduler(
            "cost", candidates=("CSR", "RCSR", "RSELL")
        )
        converted, _ = sched.apply(base, iterations_hint=1)
        assert converted.name == "CSR"
