"""Hypothesis property tests for the scheduler stack.

Invariants:

1. The profile (and therefore every profile-based decision) is
   invariant under row and column permutations of the matrix.
2. The cost model ranks are deterministic and complete.
3. The decision is scale-consistent: uniformly duplicating rows (which
   preserves density, balance and cv) keeps rules-based decisions
   stable.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import CostModel
from repro.core.rules import rule_based_choice
from repro.features import profile_from_coo
from repro.formats.base import FORMAT_NAMES


@st.composite
def coo_matrices(draw):
    m = draw(st.integers(2, 20))
    n = draw(st.integers(2, 20))
    seed = draw(st.integers(0, 2**16))
    density = draw(st.floats(0.05, 0.8))
    rng = np.random.default_rng(seed)
    a = rng.random((m, n)) < density
    a[rng.integers(m), rng.integers(n)] = True  # at least one nnz
    rows, cols = np.nonzero(a)
    return rows, cols, (m, n), seed


@given(data=coo_matrices())
@settings(max_examples=80, deadline=None)
def test_profile_invariant_under_row_permutation(data):
    rows, cols, shape, seed = data
    p1 = profile_from_coo(rows, cols, shape)
    rng = np.random.default_rng(seed)
    perm = rng.permutation(shape[0])
    p2 = profile_from_coo(perm[rows], cols, shape)
    # Row permutation changes diagonals (ndig/dnnz) but none of the
    # row-statistics the ELL/CSR/COO/DEN decisions use.
    assert (p1.m, p1.n, p1.nnz, p1.mdim) == (p2.m, p2.n, p2.nnz, p2.mdim)
    assert p1.adim == p2.adim
    assert abs(p1.vdim - p2.vdim) < 1e-9
    assert p1.density == p2.density


@given(data=coo_matrices())
@settings(max_examples=80, deadline=None)
def test_profile_invariant_under_column_permutation(data):
    rows, cols, shape, seed = data
    p1 = profile_from_coo(rows, cols, shape)
    rng = np.random.default_rng(seed + 1)
    perm = rng.permutation(shape[1])
    p2 = profile_from_coo(rows, perm[cols], shape)
    assert (p1.m, p1.n, p1.nnz, p1.mdim) == (p2.m, p2.n, p2.nnz, p2.mdim)
    assert p1.adim == p2.adim
    assert abs(p1.vdim - p2.vdim) < 1e-9


@given(data=coo_matrices())
@settings(max_examples=60, deadline=None)
def test_cost_model_rank_is_complete_and_positive(data):
    rows, cols, shape, _ = data
    p = profile_from_coo(rows, cols, shape)
    ranked = CostModel().rank(p)
    assert sorted(c.fmt for c in ranked) == sorted(FORMAT_NAMES)
    assert all(c.cost > 0 for c in ranked)
    costs = [c.cost for c in ranked]
    assert costs == sorted(costs)


@given(data=coo_matrices(), k=st.integers(2, 4))
@settings(max_examples=50, deadline=None)
def test_rules_stable_under_row_replication(data, k):
    """Stacking k copies of the matrix preserves density / balance /
    vdim, so the rule-based decision must not change — except through
    ndig, which replication scrambles; skip DIA-influenced cases."""
    rows, cols, shape, _ = data
    p1 = profile_from_coo(rows, cols, shape)
    m = shape[0]
    big_rows = np.concatenate([rows + j * m for j in range(k)])
    big_cols = np.concatenate([cols] * k)
    p2 = profile_from_coo(big_rows, big_cols, (m * k, shape[1]))
    d1 = rule_based_choice(p1)
    d2 = rule_based_choice(p2)
    if "banded" in (d1.rule, d2.rule):
        return  # diagonal structure is legitimately scale-dependent
    assert d1.fmt == d2.fmt
