"""LayoutScheduler facade and DecisionCache tests."""

import numpy as np
import pytest

from repro.core import DecisionCache, LayoutScheduler, schedule_layout
from repro.core.scheduler import STRATEGIES
from repro.features import profile_from_dense
from repro.formats import from_dense


class TestCache:
    def test_put_get(self, small_sparse):
        p = profile_from_dense(small_sparse)
        c = DecisionCache()
        assert c.get(p) is None
        c.put(p, "ELL")
        assert c.get(p) == "ELL"
        assert len(c) == 1

    def test_similar_profiles_share_entries(self, small_sparse):
        # Perturbing one value within quantisation tolerance (away from
        # a rounding boundary) hits the same cache slot.
        p1 = profile_from_dense(small_sparse)
        import dataclasses

        p1 = dataclasses.replace(p1, vdim=1.0)
        p2 = dataclasses.replace(p1, vdim=1.04)
        c = DecisionCache()
        c.put(p1, "CSR")
        assert c.get(p2) == "CSR"

    def test_different_profiles_distinct(self, small_sparse, banded):
        c = DecisionCache()
        c.put(profile_from_dense(small_sparse), "CSR")
        assert c.get(profile_from_dense(banded)) is None

    def test_eviction(self):
        import dataclasses

        c = DecisionCache(maxsize=2)
        base = profile_from_dense(np.eye(4))
        ps = [dataclasses.replace(base, m=m * 100) for m in (1, 2, 3)]
        for p in ps:
            c.put(p, "CSR")
        assert len(c) == 2
        assert c.get(ps[0]) is None  # FIFO evicted
        assert c.get(ps[2]) == "CSR"

    def test_clear(self, small_sparse):
        c = DecisionCache()
        c.put(profile_from_dense(small_sparse), "CSR")
        c.clear()
        assert len(c) == 0

    def test_maxsize_validation(self):
        with pytest.raises(ValueError):
            DecisionCache(maxsize=0)


class TestScheduler:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_strategy_decides(self, strategy, small_sparse):
        sched = LayoutScheduler(strategy)
        d = sched.decide(from_dense(small_sparse, "CSR"))
        assert d.fmt in ("DEN", "CSR", "COO", "ELL", "DIA")
        assert d.strategy == strategy
        assert d.reason
        assert not d.cached

    def test_unknown_strategy(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            LayoutScheduler("magic")

    def test_shortlist_validation(self):
        with pytest.raises(ValueError):
            LayoutScheduler(shortlist=0)

    def test_second_decision_is_cached(self, small_sparse):
        sched = LayoutScheduler("cost")
        m = from_dense(small_sparse, "CSR")
        d1 = sched.decide(m)
        d2 = sched.decide(m)
        assert d2.cached and d2.fmt == d1.fmt

    def test_apply_converts(self, small_sparse):
        sched = LayoutScheduler("cost")
        m, d = sched.apply(from_dense(small_sparse, "DEN"))
        assert m.name == d.fmt
        assert np.allclose(m.to_dense(), small_sparse)

    def test_apply_coo(self, small_sparse):
        sched = LayoutScheduler("rules")
        rows, cols = np.nonzero(small_sparse)
        m, d = sched.apply_coo(
            rows, cols, small_sparse[rows, cols], small_sparse.shape
        )
        assert m.name == d.fmt
        assert np.allclose(m.to_dense(), small_sparse)

    def test_hybrid_probes_shortlist_only(self, small_sparse):
        sched = LayoutScheduler("hybrid", shortlist=2)
        d = sched.decide(from_dense(small_sparse, "CSR"))
        assert "shortlist" in d.reason

    def test_hybrid_shortlist_of_one_skips_probe(self, small_sparse):
        sched = LayoutScheduler("hybrid", shortlist=1)
        d = sched.decide(from_dense(small_sparse, "CSR"))
        # shortlist-of-one means pure model decision (no probe text)
        assert d.fmt == sched.cost_model.best(d.profile)

    def test_shared_cache_across_schedulers(self, small_sparse):
        cache = DecisionCache()
        m = from_dense(small_sparse, "CSR")
        LayoutScheduler("cost", cache=cache).decide(m)
        d = LayoutScheduler("rules", cache=cache).decide(m)
        assert d.cached

    def test_convenience_function(self, small_sparse):
        m, d = schedule_layout(from_dense(small_sparse, "DEN"), "cost")
        assert m.name == d.fmt


class TestStructureDecisions:
    """Scheduler picks sensible formats for canonical structures."""

    def test_banded_gets_diagonal_friendly_format(self):
        # A small tridiagonal: DIA and ELL store the same element count
        # (mdim == ndig == 3), so either is a correct pick.
        big = np.zeros((400, 400))
        for o in (-1, 0, 1):
            idx = np.arange(max(0, -o), min(400, 400 - o))
            big[idx, idx + o] = 1.0
        d = LayoutScheduler("cost").decide(from_dense(big, "CSR"))
        assert d.fmt in ("DIA", "ELL")

    def test_trefethen_scale_band_gets_dia(self):
        # At trefethen scale (wider band, larger m) DIA's index-free
        # streaming wins outright, as in the paper's Table VI.
        from repro.data import load_dataset

        ds = load_dataset("trefethen", seed=0)
        sched = LayoutScheduler("cost")
        d = sched.decide_from_coo(ds.rows, ds.cols, ds.values, ds.shape)
        assert d.fmt == "DIA"

    def test_dense_gets_den(self, rng):
        a = rng.random((100, 50)) + 1.0
        d = LayoutScheduler("cost").decide(from_dense(a, "CSR"))
        assert d.fmt == "DEN"

    def test_uniform_sparse_gets_ell(self):
        from repro.data.synthetic import uniform_rows_matrix

        rows, cols, vals, shape = uniform_rows_matrix(300, 1000, 10, seed=1)
        sched = LayoutScheduler("cost")
        d = sched.decide_from_coo(rows, cols, vals, shape)
        assert d.fmt == "ELL"


class TestConversionAmortisation:
    def test_zero_iterations_never_converts(self, small_sparse):
        sched = LayoutScheduler("cost")
        src = from_dense(small_sparse, "CSR")
        m, d = sched.apply(src, iterations_hint=0)
        assert m is src
        assert d.fmt == "CSR"
        assert "amortise" in d.reason

    def test_long_runs_convert(self, small_sparse):
        sched = LayoutScheduler("cost")
        src = from_dense(small_sparse, "DIA")  # a poor layout here
        m, d = sched.apply(src, iterations_hint=100_000)
        assert m.name == d.fmt
        assert d.fmt != "DIA"

    def test_no_hint_always_converts(self, small_sparse):
        sched = LayoutScheduler("cost")
        src = from_dense(small_sparse, "DIA")
        m, d = sched.apply(src)
        assert m.name == d.fmt

    def test_already_optimal_is_noop(self, small_sparse):
        sched = LayoutScheduler("cost")
        best = sched.decide(from_dense(small_sparse, "CSR")).fmt
        src = from_dense(small_sparse, best)
        m, d = sched.apply(src, iterations_hint=1)
        assert m is src

    def test_adaptive_svc_respects_hint(self, small_sparse, rng):
        from repro.svm import AdaptiveSVC
        from tests.conftest import make_labels

        y = make_labels(rng, small_sparse)
        src = from_dense(small_sparse, "CSR")
        clf = AdaptiveSVC(
            "linear", C=1.0, max_iter=100,
            scheduler=LayoutScheduler("cost"),
            iterations_hint=0,
        ).fit(src, y)
        # with a zero-iteration hint, the input layout is kept
        assert clf.chosen_format == "CSR"
