"""Cost-model behaviour: monotonicities and paper-dataset decisions."""

import pytest

from repro.core import ArchCalibration, CostModel
from repro.features import extract_profile, profile_from_dense
from repro.formats import from_dense
import numpy as np


@pytest.fixture
def cm() -> CostModel:
    return CostModel()


def profile(**kw):
    from repro.features import DatasetProfile

    base = dict(
        m=1000, n=500, nnz=50000, ndig=900, dnnz=55.6, mdim=80,
        adim=50.0, vdim=100.0, density=0.1,
    )
    base.update(kw)
    return DatasetProfile(**base)


class TestEffectiveElements:
    def test_den_is_mn(self, cm):
        assert cm.effective_elements("DEN", profile()) == 1000 * 500

    def test_ell_is_m_mdim(self, cm):
        assert cm.effective_elements("ELL", profile()) == 1000 * 80

    def test_dia_is_ndig_minmn(self, cm):
        assert cm.effective_elements("DIA", profile()) == 900 * 500

    def test_coo_is_nnz(self, cm):
        assert cm.effective_elements("COO", profile()) == 50000

    def test_csr_at_least_nnz(self, cm):
        assert cm.effective_elements("CSR", profile()) >= 50000

    def test_csr_uniform_exact_padding(self, cm):
        # vdim=0, adim=8 divisible by W=8: no padding waste at all.
        p = profile(adim=8.0, vdim=0.0, nnz=8000, mdim=8)
        assert cm.effective_elements("CSR", p) == 8000

    def test_unknown_format(self, cm):
        with pytest.raises(ValueError):
            cm.effective_elements("XXX", profile())


class TestMonotonicity:
    """The Table IV correlation signs, asserted on the model."""

    def test_csr_cost_increases_with_vdim(self, cm):
        costs = [
            cm.cost("CSR", profile(vdim=v)).cost for v in (0.0, 50.0, 500.0)
        ]
        assert costs == sorted(costs)
        assert costs[0] < costs[-1]

    def test_coo_cost_independent_of_vdim(self, cm):
        assert (
            cm.cost("COO", profile(vdim=0.0)).cost
            == cm.cost("COO", profile(vdim=500.0)).cost
        )

    def test_ell_cost_increases_with_mdim(self, cm):
        assert (
            cm.cost("ELL", profile(mdim=40)).cost
            < cm.cost("ELL", profile(mdim=400)).cost
        )

    def test_dia_cost_increases_with_ndig(self, cm):
        assert (
            cm.cost("DIA", profile(ndig=10)).cost
            < cm.cost("DIA", profile(ndig=1000)).cost
        )

    def test_den_cost_increases_with_n(self, cm):
        assert (
            cm.cost("DEN", profile(n=500)).cost
            < cm.cost("DEN", profile(n=5000, ndig=900)).cost
        )


class TestRanking:
    def test_rank_sorted(self, cm):
        ranked = cm.rank(profile())
        costs = [c.cost for c in ranked]
        assert costs == sorted(costs)

    def test_shortlist_prefix_of_rank(self, cm):
        p = profile()
        assert cm.shortlist(p, 2) == [c.fmt for c in cm.rank(p)[:2]]

    def test_shortlist_validates_k(self, cm):
        with pytest.raises(ValueError):
            cm.shortlist(profile(), 0)

    def test_best_on_structures(self, cm, banded):
        # banded 50x50, 5 diagonals -> DIA wins on a big enough version
        big = np.kron(np.eye(20), banded[:10, :10])  # 200x200 banded
        p = profile_from_dense(big)
        assert cm.best(p) in ("DIA", "ELL")
        # fully dense -> DEN
        assert cm.best(profile_from_dense(np.ones((64, 64)))) == "DEN"


class TestConversionAccounting:
    def test_worthwhile_for_long_runs(self, cm):
        p = profile()
        best = cm.best(p)
        worst = cm.rank(p)[-1].fmt
        assert cm.worthwhile(p, worst, best, iterations=10_000)

    def test_not_worthwhile_for_zero_iterations(self, cm):
        p = profile()
        best = cm.best(p)
        worst = cm.rank(p)[-1].fmt
        assert not cm.worthwhile(p, worst, best, iterations=0)

    def test_negative_iterations_rejected(self, cm):
        with pytest.raises(ValueError):
            cm.worthwhile(profile(), "CSR", "COO", iterations=-1)


class TestCalibration:
    def test_simd_width_override(self):
        cal = ArchCalibration().with_simd_width(16)
        assert cal.simd_width == 16
        with pytest.raises(ValueError):
            ArchCalibration().with_simd_width(0)

    def test_wider_simd_increases_csr_padding(self):
        p = profile(adim=5.0, vdim=10.0)
        narrow = CostModel(ArchCalibration().with_simd_width(4))
        wide = CostModel(ArchCalibration().with_simd_width(16))
        assert wide.effective_elements("CSR", p) > narrow.effective_elements(
            "CSR", p
        )
