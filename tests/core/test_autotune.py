"""Empirical probing autotuner tests."""

import numpy as np
import pytest

from repro.core import AutoTuner
from repro.data.synthetic import uniform_rows_matrix
from repro.formats import FORMAT_NAMES, from_dense


@pytest.fixture
def tuner() -> AutoTuner:
    return AutoTuner(probe_rows=128, repeats=2, warmup=1, smsv_per_probe=2)


class TestProbe:
    def test_probes_all_candidates(self, tuner, small_sparse):
        rows, cols = np.nonzero(small_sparse)
        results = tuner.probe(
            rows, cols, small_sparse[rows, cols], small_sparse.shape
        )
        assert sorted(r.fmt for r in results) == sorted(FORMAT_NAMES)
        # sorted fastest-first
        times = [r.median_seconds for r in results]
        assert times == sorted(times)
        assert all(t > 0 for t in times)

    def test_candidate_subset(self, tuner, small_sparse):
        rows, cols = np.nonzero(small_sparse)
        results = tuner.probe(
            rows,
            cols,
            small_sparse[rows, cols],
            small_sparse.shape,
            candidates=["CSR", "COO"],
        )
        assert sorted(r.fmt for r in results) == ["COO", "CSR"]

    def test_probe_matrix_entrypoint(self, tuner, small_sparse):
        m = from_dense(small_sparse, "CSR")
        results = tuner.probe_matrix(m, candidates=["CSR", "DEN"])
        assert len(results) == 2

    def test_empty_matrix_rejected(self, tuner):
        e = np.empty(0, dtype=np.int64)
        with pytest.raises(ValueError, match="empty"):
            tuner.probe(e, e, np.empty(0), (0, 5))

    def test_sampling_caps_rows(self, small_sparse):
        tuner = AutoTuner(probe_rows=8, repeats=1, smsv_per_probe=1)
        rows, cols = np.nonzero(small_sparse)
        results = tuner.probe(
            rows, cols, small_sparse[rows, cols], small_sparse.shape,
            candidates=["CSR"],
        )
        assert results[0].probe_rows == 8

    def test_no_sampling_when_small(self, tuner, small_sparse):
        rows, cols = np.nonzero(small_sparse)
        results = tuner.probe(
            rows, cols, small_sparse[rows, cols], small_sparse.shape,
            candidates=["CSR"],
        )
        assert results[0].probe_rows == small_sparse.shape[0]

    def test_deterministic_sampling(self, small_sparse):
        rows, cols = np.nonzero(small_sparse)
        vals = small_sparse[rows, cols]
        t1 = AutoTuner(probe_rows=8, seed=7, repeats=1, smsv_per_probe=1)
        t2 = AutoTuner(probe_rows=8, seed=7, repeats=1, smsv_per_probe=1)
        s1 = t1._sample(rows, cols, vals, small_sparse.shape)
        s2 = t2._sample(rows, cols, vals, small_sparse.shape)
        assert np.array_equal(s1[0], s2[0])
        assert np.array_equal(s1[1], s2[1])

    def test_validation(self):
        with pytest.raises(ValueError):
            AutoTuner(probe_rows=0)
        with pytest.raises(ValueError):
            AutoTuner(smsv_per_probe=0)


class TestDecisionQuality:
    def test_picks_a_fast_format_for_huge_dense_gap(self):
        # 500 uniform sparse rows: DEN does 50x the work of CSR/ELL/COO.
        rows, cols, vals, shape = uniform_rows_matrix(500, 1000, 20, seed=0)
        tuner = AutoTuner(probe_rows=None, repeats=3, smsv_per_probe=2)
        best = tuner.best(rows, cols, vals, shape)
        assert best != "DIA"  # scattered columns: DIA is pathological

    def test_speedup_table_normalised_to_worst(self, tuner, small_sparse):
        rows, cols = np.nonzero(small_sparse)
        results = tuner.probe(
            rows, cols, small_sparse[rows, cols], small_sparse.shape
        )
        table = AutoTuner.speedup_table(results)
        assert min(table.values()) == pytest.approx(1.0)
        assert all(v >= 1.0 for v in table.values())

    def test_speedup_table_empty(self):
        assert AutoTuner.speedup_table([]) == {}


class TestProbeFidelity:
    """Regressions for tiny matrices and failing candidate builds."""

    def test_tiny_matrix_clamps_probe_count(self):
        # m=2 < smsv_per_probe: the probe must time 2 distinct rows and
        # divide by 2, not time a repeated row and divide by 4 (which
        # under-reported per-SMSV cost on tiny matrices).
        rows, cols, vals, shape = uniform_rows_matrix(2, 8, 3, seed=1)
        tuner = AutoTuner(repeats=1, smsv_per_probe=4)
        results = tuner.probe(rows, cols, vals, shape, candidates=["CSR"])
        assert results[0].probe_rows == 2
        assert results[0].median_seconds > 0.0

    def test_failing_build_forfeits_not_aborts(self, monkeypatch, tuner):
        import repro.core.autotune as autotune_mod

        class Exploding:
            @classmethod
            def from_coo(cls, *a, **k):
                raise RuntimeError("cannot represent this matrix")

        real = autotune_mod.format_class

        def patched(name):
            return Exploding if name == "ELL" else real(name)

        monkeypatch.setattr(autotune_mod, "format_class", patched)
        rows, cols, vals, shape = uniform_rows_matrix(16, 8, 3, seed=2)
        results = tuner.probe(
            rows, cols, vals, shape, candidates=["CSR", "ELL"]
        )
        # ELL lost by forfeit; the rest of the race still ran.
        assert [r.fmt for r in results] == ["CSR"]

    def test_all_candidates_failing_raises(self, monkeypatch, tuner):
        import repro.core.autotune as autotune_mod

        class Exploding:
            @classmethod
            def from_coo(cls, *a, **k):
                raise RuntimeError("boom")

        monkeypatch.setattr(
            autotune_mod, "format_class", lambda name: Exploding
        )
        rows, cols, vals, shape = uniform_rows_matrix(16, 8, 3, seed=2)
        with pytest.raises(ValueError, match="failed to build"):
            tuner.probe(rows, cols, vals, shape, candidates=["CSR", "ELL"])
