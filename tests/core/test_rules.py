"""Rule-based decision-list tests, including Table VI agreement."""

import numpy as np
import pytest

from repro.core.rules import RuleThresholds, rule_based_choice
from repro.data import load_dataset
from repro.features import DatasetProfile, profile_from_dense


def profile(**kw):
    base = dict(
        m=1000, n=500, nnz=50000, ndig=900, dnnz=55.6, mdim=80,
        adim=50.0, vdim=100.0, density=0.1,
    )
    base.update(kw)
    return DatasetProfile(**base)


class TestRules:
    def test_dense_rule(self):
        d = rule_based_choice(profile(density=0.9))
        assert d.fmt == "DEN" and d.rule == "dense"

    def test_banded_rule(self):
        d = rule_based_choice(
            profile(ndig=5, dnnz=10000.0, density=0.1)
        )
        assert d.fmt == "DIA" and d.rule == "banded"

    def test_uniform_rows_rule(self):
        d = rule_based_choice(
            profile(mdim=52, adim=50.0, vdim=0.5)
        )
        assert d.fmt == "ELL" and d.rule == "uniform-rows"

    def test_high_variation_rule(self):
        d = rule_based_choice(profile(vdim=2000.0, mdim=400))
        assert d.fmt == "COO" and d.rule == "high-variation"

    def test_default_rule(self):
        d = rule_based_choice(profile(vdim=100.0))
        assert d.fmt == "CSR" and d.rule == "default"

    def test_empty_matrix(self):
        d = rule_based_choice(
            profile(nnz=0, adim=0.0, vdim=0.0, mdim=0, ndig=0, dnnz=0.0, density=0.0)
        )
        assert d.fmt == "CSR" and d.rule == "empty"

    def test_reason_is_informative(self):
        d = rule_based_choice(profile(density=0.9))
        assert "density" in d.reason

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            RuleThresholds(dense_density=0.0)
        with pytest.raises(ValueError):
            RuleThresholds(ell_min_balance=1.5)

    def test_custom_thresholds(self):
        # lowering the dense threshold flips a 30%-dense matrix to DEN
        p = profile(density=0.3)
        assert rule_based_choice(p).fmt != "DEN"
        assert (
            rule_based_choice(p, RuleThresholds(dense_density=0.25)).fmt
            == "DEN"
        )


class TestTableVIAgreement:
    """The decision list on Table V clones vs the paper's selections.

    breast_cancer and leukemia have identical published statistics but
    different published selections (CSR vs DEN) — a contradiction no
    deterministic profile-based system can satisfy, so they are scored
    as one dataset (we match leukemia).  connect-4 (uniform rows at
    density 0.336) is the one genuine disagreement: the rules pick ELL
    (defensible: zero padding), the paper measured DEN fastest.
    """

    PAPER_SELECTIONS = {
        "adult": "ELL",
        "aloi": "CSR",
        "gisette": "DEN",
        "mnist": "COO",
        "sector": "COO",
        "leukemia": "DEN",
        "trefethen": "DIA",
    }

    @pytest.mark.parametrize("name,expected", sorted(PAPER_SELECTIONS.items()))
    def test_matches_paper_selection(self, name, expected):
        ds = load_dataset(name, seed=0)
        assert rule_based_choice(ds.profile).fmt == expected

    def test_identity_matrix_is_dia_or_ell(self):
        d = rule_based_choice(profile_from_dense(np.eye(100)))
        assert d.fmt == "DIA"
