"""Parametric matrix generators: do they hit their targets?"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.synthetic import (
    attach_labels,
    banded_matrix,
    matrix_with_mdim,
    matrix_with_ndig,
    matrix_with_vdim,
    powerlaw_rows_matrix,
    row_lengths_for,
    uniform_rows_matrix,
    variable_rows_matrix,
)
from repro.features import profile_from_coo


def profile(triples):
    rows, cols, _v, shape = triples
    return profile_from_coo(rows, cols, shape, validated=True)


class TestUniformRows:
    def test_exact_structure(self):
        p = profile(uniform_rows_matrix(50, 100, 7, seed=0))
        assert p.adim == 7.0
        assert p.mdim == 7
        assert p.vdim == 0.0
        assert p.nnz == 350

    def test_full_width(self):
        p = profile(uniform_rows_matrix(10, 20, 20, seed=0))
        assert p.density == 1.0

    def test_no_duplicate_columns_in_row(self):
        rows, cols, _v, _ = uniform_rows_matrix(30, 10, 9, seed=1)
        for i in range(30):
            c = cols[rows == i]
            assert len(set(c.tolist())) == len(c)


class TestVariableRows:
    def test_prescribed_lengths(self):
        lengths = np.array([0, 3, 1, 5])
        rows, cols, _v, shape = variable_rows_matrix(4, 8, lengths, seed=0)
        got = np.bincount(rows, minlength=4)
        assert np.array_equal(got, lengths)

    def test_validation(self):
        with pytest.raises(ValueError, match="length m"):
            variable_rows_matrix(3, 5, [1, 2])
        with pytest.raises(ValueError, match="exceeds n"):
            variable_rows_matrix(2, 5, [1, 6])
        with pytest.raises(ValueError, match="non-negative"):
            variable_rows_matrix(2, 5, [1, -1])


class TestNdig:
    @pytest.mark.parametrize("ndig", [2, 4, 16, 100])
    def test_hits_target_ndig_and_nnz(self, ndig):
        p = profile(matrix_with_ndig(128, 128, 240, ndig, seed=0))
        assert p.ndig == ndig
        assert p.nnz == 240

    def test_carry_over_when_diagonal_short(self):
        # One diagonal cannot hold nnz/ndig: deficit spills over.
        p = profile(matrix_with_ndig(128, 128, 250, 2, seed=0))
        assert p.ndig == 2 and p.nnz == 250

    def test_validation(self):
        with pytest.raises(ValueError):
            matrix_with_ndig(10, 10, 5, 0)
        with pytest.raises(ValueError):
            matrix_with_ndig(10, 10, 5, 100)
        with pytest.raises(ValueError, match="exceeds"):
            matrix_with_ndig(128, 128, 512, 1)  # 1 diagonal, 128 slots


class TestMdim:
    @pytest.mark.parametrize("mdim", [2, 8, 64, 256])
    def test_hits_target(self, mdim):
        p = profile(matrix_with_mdim(256, 256, 512, mdim, seed=0))
        assert p.mdim == mdim
        assert p.nnz == 512

    def test_higher_mdim_higher_vdim(self):
        # The Fig. 3 commentary: skew raises both mdim and vdim.
        p2 = profile(matrix_with_mdim(256, 256, 512, 2, seed=0))
        p64 = profile(matrix_with_mdim(256, 256, 512, 64, seed=0))
        assert p64.vdim > p2.vdim

    def test_validation(self):
        with pytest.raises(ValueError, match="infeasible"):
            matrix_with_mdim(10, 100, 100, 5)  # needs some row >= 10
        with pytest.raises(ValueError, match="nnz >= m"):
            matrix_with_mdim(10, 10, 5, 4)


class TestVdim:
    @pytest.mark.parametrize("vdim", [0.0, 25.0, 100.0])
    def test_hits_target(self, vdim):
        p = profile(matrix_with_vdim(200, 300, adim=20, vdim=vdim, seed=0))
        assert p.adim == pytest.approx(20.0, abs=0.2)
        assert p.vdim == pytest.approx(vdim, rel=0.05, abs=0.5)

    def test_validation(self):
        with pytest.raises(ValueError, match="too large"):
            matrix_with_vdim(10, 100, adim=3, vdim=100.0)
        with pytest.raises(ValueError, match="exceeds n"):
            matrix_with_vdim(10, 10, adim=8, vdim=16.0)


class TestBanded:
    def test_full_band(self):
        p = profile(banded_matrix(50, 50, [0, 1, -1], seed=0))
        assert p.ndig == 3
        assert p.nnz == 50 + 49 + 49

    def test_fill_thins_but_keeps_diagonals(self):
        p = profile(banded_matrix(100, 100, [0, 2, -5], fill=0.5, seed=0))
        assert p.ndig == 3
        assert p.nnz < 300

    def test_fill_validation(self):
        with pytest.raises(ValueError):
            banded_matrix(10, 10, [0], fill=0.0)


class TestLabels:
    def test_both_classes_present(self):
        triples = uniform_rows_matrix(100, 50, 5, seed=0)
        y = attach_labels(triples, seed=0)
        assert set(np.unique(y)) == {-1.0, 1.0}

    def test_noise_flips_labels(self):
        triples = uniform_rows_matrix(500, 50, 5, seed=0)
        clean = attach_labels(triples, seed=0)
        noisy = attach_labels(triples, seed=0, noise=0.3)
        assert 0.1 < float(np.mean(clean != noisy)) < 0.5

    def test_deterministic(self):
        triples = uniform_rows_matrix(50, 20, 3, seed=2)
        assert np.array_equal(
            attach_labels(triples, seed=5), attach_labels(triples, seed=5)
        )


@given(
    m=st.integers(2, 40),
    n=st.integers(2, 40),
    seed=st.integers(0, 1000),
)
@settings(max_examples=40, deadline=None)
def test_generators_produce_valid_coo(m, n, seed):
    """Every generator output builds in every format without error."""
    from repro.formats import format_class

    k = min(3, n)
    rows, cols, vals, shape = uniform_rows_matrix(m, n, k, seed=seed)
    for fmt in ("CSR", "DIA", "ELL"):
        mx = format_class(fmt).from_coo(rows, cols, vals, shape)
        assert mx.nnz == m * k


class TestPowerlawRows:
    def test_deterministic_given_seed(self):
        a = powerlaw_rows_matrix(100, 60, alpha=1.8, seed=4)
        b = powerlaw_rows_matrix(100, 60, alpha=1.8, seed=4)
        for x, y in zip(a[:3], b[:3]):
            assert np.array_equal(x, y)

    def test_heavy_tail_inflates_mdim(self):
        p = profile(
            powerlaw_rows_matrix(
                2000, 500, alpha=1.5, min_nnz=4, max_nnz=400, seed=1
            )
        )
        # the whole point of the shape: max row far above the mean
        assert p.mdim > 5 * p.adim
        assert p.vdim > p.adim**2

    def test_respects_bounds(self):
        rows, cols, _v, shape = powerlaw_rows_matrix(
            300, 50, alpha=2.0, min_nnz=3, max_nnz=20, seed=2
        )
        lengths = np.bincount(rows, minlength=shape[0])
        assert lengths.min() >= 3 and lengths.max() <= 20

    def test_smaller_alpha_heavier_tail(self):
        kw = dict(min_nnz=2, max_nnz=400, seed=0)
        heavy = profile(powerlaw_rows_matrix(2000, 500, alpha=1.4, **kw))
        light = profile(powerlaw_rows_matrix(2000, 500, alpha=2.5, **kw))
        assert heavy.adim > light.adim
        assert heavy.vdim > light.vdim

    def test_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            powerlaw_rows_matrix(10, 10, alpha=1.0)
        with pytest.raises(ValueError, match="min_nnz"):
            powerlaw_rows_matrix(10, 10, min_nnz=0)
        with pytest.raises(ValueError, match="max_nnz"):
            powerlaw_rows_matrix(10, 10, min_nnz=5, max_nnz=3)

    def test_zero_rows(self):
        rows, cols, vals, shape = powerlaw_rows_matrix(0, 8, seed=0)
        assert rows.size == 0 and shape == (0, 8)
