"""Synthetic CIFAR-10 stand-in tests."""

import numpy as np
import pytest

from repro.data import CIFAR_SHAPE, synthetic_cifar10


class TestGeneration:
    def test_shapes_and_types(self):
        d = synthetic_cifar10(100, 40, seed=0)
        assert d.x_train.shape == (100, *CIFAR_SHAPE)
        assert d.x_test.shape == (40, *CIFAR_SHAPE)
        assert d.y_train.shape == (100,)
        assert d.n_train == 100 and d.n_test == 40
        assert d.n_classes == 10
        assert d.y_train.min() >= 0 and d.y_train.max() < 10

    def test_deterministic(self):
        a = synthetic_cifar10(50, 10, seed=7)
        b = synthetic_cifar10(50, 10, seed=7)
        assert np.array_equal(a.x_train, b.x_train)
        assert np.array_equal(a.y_test, b.y_test)

    def test_seeds_differ(self):
        a = synthetic_cifar10(50, 10, seed=1)
        b = synthetic_cifar10(50, 10, seed=2)
        assert not np.array_equal(a.x_train, b.x_train)

    def test_classes_separable_by_polarity_invariant_prototype(self):
        # Nearest-prototype classification by |correlation| (polarity-
        # invariant, like a CNN filter pair) should beat chance by a
        # wide margin — the property that lets a small CNN reach 0.8.
        d = synthetic_cifar10(600, 150, seed=0, flip_prob=0.0)
        protos = np.stack(
            [
                d.x_train[d.y_train == k].mean(axis=0)
                for k in range(d.n_classes)
            ]
        )
        flipped = synthetic_cifar10(600, 150, seed=0)  # default flips
        flat_test = flipped.x_test.reshape(flipped.n_test, -1)
        flat_protos = protos.reshape(d.n_classes, -1)
        corr = np.abs(flat_test @ flat_protos.T)
        acc = float(np.mean(np.argmax(corr, axis=1) == flipped.y_test))
        assert acc > 0.5  # chance = 0.1

    def test_linear_score_degraded_by_polarity_flips(self):
        # The anti-linear property itself: plain (signed) correlation
        # classification must do clearly worse than |correlation|.
        d = synthetic_cifar10(600, 150, seed=0)
        protos = np.stack(
            [
                d.x_train[d.y_train == k].mean(axis=0)
                for k in range(d.n_classes)
            ]
        )
        flat_test = d.x_test.reshape(d.n_test, -1)
        flat_protos = protos.reshape(d.n_classes, -1)
        signed = flat_test @ flat_protos.T
        acc_signed = float(np.mean(np.argmax(signed, 1) == d.y_test))
        acc_abs = float(np.mean(np.argmax(np.abs(signed), 1) == d.y_test))
        assert acc_abs > acc_signed

    def test_validation(self):
        with pytest.raises(ValueError, match="two classes"):
            synthetic_cifar10(10, 5, n_classes=1)
        with pytest.raises(ValueError, match="flip_prob"):
            synthetic_cifar10(10, 5, flip_prob=1.5)


class TestBatches:
    def test_covers_epoch(self):
        d = synthetic_cifar10(105, 10, seed=0)
        seen = 0
        for xb, yb in d.batches(32, seed=0):
            assert xb.shape[0] == yb.shape[0]
            seen += xb.shape[0]
        assert seen == 105

    def test_shuffled_per_seed(self):
        d = synthetic_cifar10(64, 10, seed=0)
        b1 = next(iter(d.batches(16, seed=1)))[1]
        b2 = next(iter(d.batches(16, seed=2)))[1]
        assert not np.array_equal(b1, b2)

    def test_batch_size_validation(self):
        d = synthetic_cifar10(10, 5, seed=0)
        with pytest.raises(ValueError):
            next(d.batches(0))
