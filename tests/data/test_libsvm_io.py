"""LIBSVM text format reader/writer tests."""

import io

import numpy as np
import pytest

from repro.data import read_libsvm, write_libsvm
from repro.data.synthetic import uniform_rows_matrix


class TestRead:
    def test_basic(self):
        text = "+1 1:0.5 3:1.5\n-1 2:2.0\n"
        (rows, cols, vals, shape), y = read_libsvm(io.StringIO(text))
        assert shape == (2, 3)
        assert list(y) == [1.0, -1.0]
        assert list(rows) == [0, 0, 1]
        assert list(cols) == [0, 2, 1]
        assert list(vals) == [0.5, 1.5, 2.0]

    def test_skips_blank_and_comment_lines(self):
        text = "# header\n\n+1 1:1\n"
        (_r, _c, _v, shape), y = read_libsvm(io.StringIO(text))
        assert shape == (1, 1) and list(y) == [1.0]

    def test_n_features_override(self):
        (_r, _c, _v, shape), _ = read_libsvm(
            io.StringIO("1 1:1\n"), n_features=10
        )
        assert shape == (1, 10)

    def test_n_features_too_small(self):
        with pytest.raises(ValueError, match="smaller than"):
            read_libsvm(io.StringIO("1 5:1\n"), n_features=2)

    def test_explicit_zeros_dropped(self):
        (rows, _c, _v, _s), _ = read_libsvm(io.StringIO("1 1:0 2:3\n"))
        assert len(rows) == 1

    def test_malformed_label(self):
        with pytest.raises(ValueError, match="label"):
            read_libsvm(io.StringIO("abc 1:1\n"))

    def test_malformed_token(self):
        with pytest.raises(ValueError, match="malformed"):
            read_libsvm(io.StringIO("1 1-2\n"))

    def test_zero_index_rejected(self):
        with pytest.raises(ValueError, match=">= 1"):
            read_libsvm(io.StringIO("1 0:5\n"))

    def test_non_increasing_indices_rejected(self):
        with pytest.raises(ValueError, match="increasing"):
            read_libsvm(io.StringIO("1 3:1 2:1\n"))


class TestRoundTrip:
    def test_write_read_roundtrip(self, tmp_path):
        triples = uniform_rows_matrix(20, 15, 4, seed=0)
        y = np.where(np.arange(20) % 2 == 0, 1.0, -1.0)
        path = tmp_path / "data.libsvm"
        write_libsvm(path, triples, y)
        (rows, cols, vals, shape), y2 = read_libsvm(path, n_features=15)
        assert shape == (20, 15)
        assert np.array_equal(y2, y)
        assert np.array_equal(rows, triples[0])
        assert np.array_equal(cols, triples[1])
        assert np.allclose(vals, triples[2])

    def test_float_labels_roundtrip(self):
        triples = uniform_rows_matrix(3, 4, 2, seed=0)
        y = np.array([0.5, -1.25, 2.0])
        buf = io.StringIO()
        write_libsvm(buf, triples, y)
        buf.seek(0)
        _, y2 = read_libsvm(buf)
        assert np.allclose(y2, y)

    def test_label_shape_validation(self):
        triples = uniform_rows_matrix(3, 4, 2, seed=0)
        with pytest.raises(ValueError, match="one entry per row"):
            write_libsvm(io.StringIO(), triples, np.ones(5))
