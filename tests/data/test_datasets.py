"""Table V dataset clones: statistics fidelity against the paper."""

import numpy as np
import pytest

from repro.data import DATASET_SPECS, dataset_names, load_dataset


class TestSpecs:
    def test_all_eleven_datasets_present(self):
        # Table V lists 11 datasets.
        assert len(dataset_names()) == 11
        for name in (
            "adult", "breast_cancer", "aloi", "gisette", "mnist",
            "sector", "epsilon", "leukemia", "connect-4", "trefethen",
            "dna",
        ):
            assert name in DATASET_SPECS

    def test_paper_stats_verbatim(self):
        # Spot-check Table V rows.
        p = DATASET_SPECS["adult"].paper
        assert (p.m, p.n, p.nnz, p.mdim) == (2265, 119, 31404, 14)
        p = DATASET_SPECS["trefethen"].paper
        assert (p.ndig, p.mdim) == (12, 12)
        p = DATASET_SPECS["epsilon"].paper
        assert p.density == 1.0

    def test_scaled_flags(self):
        assert not DATASET_SPECS["adult"].scaled
        assert DATASET_SPECS["gisette"].scaled
        assert DATASET_SPECS["dna"].scaled


@pytest.mark.parametrize("name", dataset_names())
class TestCloneFidelity:
    def test_density_matches_paper(self, name):
        ds = load_dataset(name, seed=0)
        assert ds.profile.density == pytest.approx(
            ds.spec.paper.density, rel=0.08, abs=0.005
        )

    def test_balance_matches_paper(self, name):
        # adim/mdim (row uniformity) is scale-invariant and drives the
        # ELL decision; it must survive any scaling.
        ds = load_dataset(name, seed=0)
        paper = ds.spec.paper
        if paper.mdim == 0:
            return
        assert ds.profile.balance == pytest.approx(
            paper.balance, rel=0.15
        )

    def test_deterministic(self, name):
        a = load_dataset(name, seed=3)
        b = load_dataset(name, seed=3)
        assert np.array_equal(a.rows, b.rows)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.y, b.y)

    def test_labels_valid(self, name):
        ds = load_dataset(name, seed=0)
        assert ds.y.shape == (ds.shape[0],)
        assert set(np.unique(ds.y)) == {-1.0, 1.0}


class TestUnscaledExact:
    @pytest.mark.parametrize(
        "name", [n for n, s in DATASET_SPECS.items() if not s.scaled]
    )
    def test_m_n_exact(self, name):
        ds = load_dataset(name, seed=0)
        assert ds.shape == (ds.spec.paper.m, ds.spec.paper.n)

    def test_adult_nnz_close(self):
        ds = load_dataset("adult", seed=0)
        assert ds.profile.nnz == pytest.approx(31404, rel=0.01)

    def test_trefethen_structure(self):
        ds = load_dataset("trefethen", seed=0)
        p = ds.profile
        assert p.ndig == 12
        assert p.nnz == pytest.approx(21953, rel=0.03)


class TestAPI:
    def test_unknown_dataset(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("imagenet")

    def test_m_override(self):
        ds = load_dataset("adult", seed=0, m_override=100)
        assert ds.shape[0] == 100
        assert ds.y.shape == (100,)

    def test_in_format(self):
        ds = load_dataset("aloi", seed=0, m_override=50)
        for fmt in ("CSR", "DEN", "ELL"):
            m = ds.in_format(fmt)
            assert m.name == fmt
            assert m.shape == ds.shape

    def test_split(self):
        ds = load_dataset("adult", seed=0, m_override=100)
        tr, te = ds.split(0.8, seed=1)
        assert len(tr) == 80 and len(te) == 20
        assert len(set(tr.tolist()) & set(te.tolist())) == 0
        with pytest.raises(ValueError):
            ds.split(1.5)

    def test_label_noise(self):
        clean = load_dataset("adult", seed=0, m_override=500)
        noisy = load_dataset("adult", seed=0, m_override=500, label_noise=0.2)
        assert float(np.mean(clean.y != noisy.y)) > 0.05
