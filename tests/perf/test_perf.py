"""Counters, timers and bandwidth estimation."""

import time

import pytest

from repro.perf import (
    BandwidthEstimator,
    BenchmarkResult,
    OpCounter,
    Timer,
    benchmark,
    counting,
    effective_bandwidth,
    global_counter,
)
from repro.perf.timers import rank_by_median


class TestOpCounter:
    def test_accumulation(self):
        c = OpCounter()
        c.add_flops(10)
        c.add_read(100)
        c.add_write(50)
        c.add_vector_ops(3)
        assert c.flops == 10
        assert c.bytes_total == 150
        assert c.vector_ops == 3

    def test_reset(self):
        c = OpCounter()
        c.add_flops(5)
        c.reset()
        assert c.flops == 0 and c.bytes_total == 0

    def test_snapshot_is_independent(self):
        c = OpCounter()
        c.add_flops(5)
        s = c.snapshot()
        c.add_flops(5)
        assert s.flops == 5 and c.flops == 10

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add_flops(3)
        b.add_flops(4)
        b.add_read(8)
        a.merge(b)
        assert a.flops == 7 and a.bytes_read == 8

    def test_arithmetic_intensity(self):
        c = OpCounter()
        assert c.arithmetic_intensity() == 0.0
        c.add_flops(16)
        c.add_read(8)
        assert c.arithmetic_intensity() == pytest.approx(2.0)

    def test_thread_safety(self):
        import threading

        c = OpCounter()

        def work():
            for _ in range(1000):
                c.add_flops(1)

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.flops == 8000

    def test_counting_context(self):
        with counting() as c:
            c.add_flops(3)
        assert c.flops == 3

    def test_global_counter_is_singleton(self):
        assert global_counter() is global_counter()


class TestOpCounterFieldCoverage:
    """Exhaustive over ``dataclasses.fields``: adding a counter field
    without snapshot/merge/reset/as_dict support fails here, not in a
    downstream report that silently drops the new column.
    """

    def _filled(self, base=1):
        c = OpCounter()
        for i, name in enumerate(OpCounter.field_names()):
            setattr(c, name, base + i)
        return c

    def test_field_names_cover_every_public_field(self):
        import dataclasses

        public = [
            f.name
            for f in dataclasses.fields(OpCounter)
            if not f.name.startswith("_")
        ]
        assert list(OpCounter.field_names()) == public
        assert public  # the dataclass actually has counter fields

    def test_max_fields_is_a_subset_of_field_names(self):
        assert OpCounter._MAX_FIELDS <= frozenset(
            OpCounter.field_names()
        )

    def test_snapshot_copies_every_field(self):
        c = self._filled()
        s = c.snapshot()
        for name in OpCounter.field_names():
            assert getattr(s, name) == getattr(c, name)
        c.add_flops(1)
        assert s.flops != c.flops  # snapshot is detached

    def test_reset_zeroes_every_field(self):
        c = self._filled()
        c.reset()
        for name in OpCounter.field_names():
            assert getattr(c, name) == 0

    def test_as_dict_contains_every_field(self):
        c = self._filled()
        d = c.as_dict()
        assert set(d) == set(OpCounter.field_names())
        for name in OpCounter.field_names():
            assert d[name] == getattr(c, name)

    def test_merge_folds_every_field(self):
        a, b = self._filled(1), self._filled(10)
        expect = {
            name: (
                max(getattr(a, name), getattr(b, name))
                if name in OpCounter._MAX_FIELDS
                else getattr(a, name) + getattr(b, name)
            )
            for name in OpCounter.field_names()
        }
        a.merge(b)
        for name, want in expect.items():
            assert getattr(a, name) == want, name

    def test_parallel_work_max_merges_by_max(self):
        a, b = OpCounter(), OpCounter()
        a.add_parallel_blocks([5, 3])
        b.add_parallel_blocks([4, 4])
        a.merge(b)
        assert a.parallel_blocks == 4
        assert a.parallel_work_total == 16
        assert a.parallel_work_max == 5  # a max, not 5 + 4


class TestTimer:
    def test_basic_timing(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        assert t.elapsed >= 0.009

    def test_accumulates(self):
        t = Timer()
        with t:
            pass
        first = t.elapsed
        with t:
            pass
        assert t.elapsed >= first

    def test_double_start_rejected(self):
        t = Timer()
        t.start()
        with pytest.raises(RuntimeError):
            t.start()
        t.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0


class TestBenchmark:
    def test_returns_samples(self):
        r = benchmark(lambda: sum(range(100)), repeats=4)
        assert len(r.samples) == 4
        assert r.median > 0
        assert r.best <= r.median <= max(r.samples)

    def test_min_time_extends_repeats(self):
        r = benchmark(lambda: None, repeats=1, min_time=0.01)
        assert len(r.samples) > 1

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            benchmark(lambda: None, repeats=0)

    def test_stats_on_known_samples(self):
        r = BenchmarkResult(samples=[3.0, 1.0, 2.0])
        assert r.median == 2.0
        assert r.best == 1.0
        assert r.mean == pytest.approx(2.0)
        assert r.stddev == pytest.approx(1.0)

    def test_even_sample_median(self):
        r = BenchmarkResult(samples=[1.0, 2.0, 3.0, 4.0])
        assert r.median == 2.5

    def test_rank_by_median(self):
        slow = lambda: time.sleep(0.002)
        fast = lambda: None
        order = rank_by_median([slow, fast], repeats=2)
        assert order[0] == 1


class TestBandwidth:
    def test_effective_bandwidth(self):
        assert effective_bandwidth(1000, 1.0) == 1000.0
        assert effective_bandwidth(1000, 0.0) == 0.0

    def test_estimator(self):
        e = BandwidthEstimator()
        c = OpCounter()
        c.add_read(500)
        c.add_write(500)
        e.record(c, 0.001)
        e.record_raw(1000, 0.001)
        assert e.samples == 2
        assert e.bytes_per_s == pytest.approx(1e6)
        assert e.gb_per_s == pytest.approx(1e-3)
