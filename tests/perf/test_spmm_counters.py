"""SpMM counter fields and the ``bench smsv`` harness."""

import json

import numpy as np

from repro.formats import from_dense
from repro.perf import OpCounter
from repro.perf.bench_smsv import (
    HEADLINE_CRITERION,
    render_summary,
    run_suite,
    write_report,
)


class TestSpmmCounterFields:
    def test_add_spmm_accumulates(self):
        c = OpCounter()
        c.add_spmm(4)
        c.add_spmm(2)
        assert c.spmm_calls == 2
        assert c.spmm_columns == 6

    def test_reset_clears_spmm(self):
        c = OpCounter()
        c.add_spmm(3)
        c.reset()
        assert c.spmm_calls == 0
        assert c.spmm_columns == 0

    def test_snapshot_copies_spmm(self):
        c = OpCounter()
        c.add_spmm(5)
        snap = c.snapshot()
        c.add_spmm(1)
        assert snap.spmm_calls == 1
        assert snap.spmm_columns == 5

    def test_merge_folds_spmm(self):
        a, b = OpCounter(), OpCounter()
        a.add_spmm(2)
        b.add_spmm(3)
        a.merge(b)
        assert a.spmm_calls == 2
        assert a.spmm_columns == 5

    def test_single_vector_kernels_do_not_count(self, small_sparse, rng):
        m = from_dense(small_sparse, "CSR")
        c = OpCounter()
        m.matvec(rng.standard_normal(30), c)
        assert c.spmm_calls == 0


class TestBenchHarness:
    def test_quick_suite_payload_shape(self, tmp_path):
        payload = run_suite(quick=True, repeats=1)
        assert payload["meta"]["quick"] is True
        assert payload["trajectory"], "trajectory records missing"
        assert payload["dual_row"], "dual-row records missing"
        head = payload["headline"]
        assert head["criterion"] == HEADLINE_CRITERION
        assert head["dual_row_speedup"] > 0
        assert isinstance(head["pass"], bool)
        # every record carries its config and a finite speedup
        for r in payload["trajectory"]:
            assert r["fmt"] and r["k"] >= 1
            assert np.isfinite(r["speedup"])
        for r in payload["dual_row"]:
            assert r["kernel"] in ("gaussian", "linear")
            assert np.isfinite(r["speedup"])

        out = tmp_path / "BENCH_smsv.json"
        write_report(payload, str(out))
        blob = json.loads(out.read_text())
        assert blob["headline"]["criterion"] == HEADLINE_CRITERION

        text = render_summary(payload)
        assert "dual-row fused speedup" in text
        assert "best batched-sweep speedup" in text
