"""repro bench sell: headline harness, trajectory sweep, SMO gate."""

import json

import pytest

from repro.data.synthetic import powerlaw_rows_matrix
from repro.perf.bench_sell import (
    FIXED_BASELINES,
    SPARSE_CANDIDATES,
    render_summary,
    run_headline,
    run_smo_gate,
    run_suite,
    run_trajectory,
    write_report,
)


@pytest.fixture(scope="module")
def tiny_suite():
    return [
        (
            "tiny-powerlaw",
            powerlaw_rows_matrix(
                256, 128, alpha=1.6, min_nnz=8, max_nnz=96, seed=17
            ),
        )
    ]


class TestHeadline:
    def test_records_are_complete(self, tiny_suite):
        recs = run_headline(tiny_suite, samples=2)
        assert len(recs) == 1
        r = recs[0]
        assert r["picked_fmt"] in SPARSE_CANDIDATES
        assert r["best_fixed_fmt"] in FIXED_BASELINES
        assert set(r["fixed_seconds"]) == set(FIXED_BASELINES)
        assert r["modelled_speedup"] == pytest.approx(
            r["best_fixed_seconds"] / r["picked_seconds"]
        )
        assert r["picked_seconds"] > 0
        assert r["wallclock_ratio"] > 0

    def test_deterministic_modelled_side(self, tiny_suite):
        a = run_headline(tiny_suite, samples=1)[0]
        b = run_headline(tiny_suite, samples=1)[0]
        # wall-clock fields jitter; the modelled verdict must not
        for key in (
            "picked_fmt",
            "picked_seconds",
            "best_fixed_fmt",
            "modelled_speedup",
        ):
            assert a[key] == b[key]


class TestTrajectory:
    def test_sweep_covers_grid(self, tiny_suite):
        _, triples = tiny_suite[0]
        recs = run_trajectory(
            triples, sigmas=(None, 16), chunks=(4, 8)
        )
        assert len(recs) == 4
        assert {(r["chunk"], r["sigma"]) for r in recs} == {
            (4, None),
            (4, 16),
            (8, None),
            (8, 16),
        }

    def test_sorted_padding_never_worse(self, tiny_suite):
        _, triples = tiny_suite[0]
        for r in run_trajectory(triples, sigmas=(None, 8), chunks=(8,)):
            assert (
                r["padding_ratio_sorted"]
                <= r["padding_ratio_natural"] + 1e-12
            )
            assert r["modelled_seconds"] > 0


class TestSmoGate:
    def test_bitwise_gate_passes(self):
        gate = run_smo_gate(max_iter=120)
        assert gate["pass"], gate["checks"]
        assert all(gate["checks"].values())


class TestSuitePlumbing:
    def test_quick_suite_report_roundtrip(self, tmp_path):
        payload = run_suite(quick=True, samples=1)
        path = tmp_path / "BENCH_sell.json"
        write_report(payload, str(path))
        loaded = json.loads(path.read_text())
        assert loaded["headline"]["criterion"] == 1.4
        assert "pass" in loaded["headline"]
        assert loaded["smo_gate"]["pass"] is True
        assert loaded["trajectory"]

    def test_summary_renders(self):
        payload = run_suite(quick=True, samples=1)
        text = render_summary(payload)
        assert "SMO" in text
        assert "speedup" in text.lower()
