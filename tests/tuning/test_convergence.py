"""Convergence model: the four Table VII anchors must be exact."""

import math

import pytest

from repro.tuning import ConvergenceModel


@pytest.fixture
def model() -> ConvergenceModel:
    return ConvergenceModel()


class TestAnchors:
    """The measured (B, eta, mu) -> epochs/iterations anchor rows."""

    def test_reference_point(self, model):
        assert model.epochs_to_target(100, 0.001, 0.90) == pytest.approx(120)
        assert model.point(100, 0.001, 0.90).iterations == 60_000

    def test_tuned_batch_row(self, model):
        e = model.epochs_to_target(512, 0.001, 0.90)
        assert e == pytest.approx(307, rel=0.01)
        assert model.point(512, 0.001, 0.90).iterations == pytest.approx(
            30_000, rel=0.01
        )

    def test_tuned_lr_row(self, model):
        e = model.epochs_to_target(512, 0.003, 0.90)
        assert e == pytest.approx(123, rel=0.01)
        assert model.point(512, 0.003, 0.90).iterations == pytest.approx(
            12_000, rel=0.01
        )

    def test_tuned_momentum_row(self, model):
        e = model.epochs_to_target(512, 0.003, 0.95)
        assert e == pytest.approx(72, rel=0.01)
        assert model.point(512, 0.003, 0.95).iterations == pytest.approx(
            7_000, rel=0.01
        )


class TestShape:
    def test_lr_opt_grows_with_batch(self, model):
        assert model.lr_opt(512) == pytest.approx(0.003, rel=0.01)
        assert model.lr_opt(100) == 0.001
        assert model.lr_opt(2048) > model.lr_opt(512)

    def test_sharp_minima_penalty_above_crit(self, model):
        # Above B_crit = 512 epochs grow steeply even at optimal lr.
        e512 = model.epochs_to_target(512, model.lr_opt(512), 0.90)
        e2048 = model.epochs_to_target(2048, model.lr_opt(2048), 0.90)
        assert e2048 / e512 > 1.5

    def test_divergence_at_huge_lr(self, model):
        assert model.epochs_to_target(100, 0.016, 0.90) is None
        p = model.point(100, 0.016, 0.90)
        assert not p.converges and p.epochs == math.inf

    def test_momentum_sweet_spot(self, model):
        factors = {
            mu: model.momentum_factor(mu) for mu in (0.90, 0.95, 0.99)
        }
        assert factors[0.95] < factors[0.90]
        assert factors[0.99] > factors[0.95]  # too much momentum hurts

    def test_momentum_validation(self, model):
        assert model.momentum_factor(1.0) is None
        assert model.momentum_factor(-0.1) is None

    def test_lr_penalty_continuous_at_optimum(self, model):
        below = model.lr_penalty(0.0029999, 512)
        above = model.lr_penalty(0.0030001, 512)
        assert below == pytest.approx(above, rel=1e-3)

    def test_overshoot_penalised(self, model):
        assert model.lr_penalty(0.006, 512) > 1.0

    def test_validation(self, model):
        with pytest.raises(ValueError):
            model.lr_opt(0)
        with pytest.raises(ValueError):
            model.lr_penalty(0.0, 100)
        with pytest.raises(ValueError):
            ConvergenceModel(base_epochs=0)
