"""Grid search and the Table VII reproduction pipeline."""

import math

import pytest

from repro.hardware import DNN_MACHINES
from repro.tuning import (
    BATCH_SPACE,
    LR_SPACE,
    MOMENTUM_SPACE,
    GridSearch,
    ModelObjective,
    reproduce_table7,
)
from repro.tuning.search import Candidate
from repro.tuning.table7 import as_price_points, format_rows


class TestSpaces:
    def test_paper_spaces_verbatim(self):
        assert BATCH_SPACE == (64, 100, 128, 256, 512, 1024, 2048, 4096, 8192)
        assert LR_SPACE[0] == 0.001 and LR_SPACE[-1] == 0.016
        assert len(LR_SPACE) == 16
        assert MOMENTUM_SPACE == tuple(
            round(0.90 + 0.01 * k, 2) for k in range(10)
        )


class TestGridSearch:
    @pytest.fixture
    def objective(self):
        return ModelObjective(DNN_MACHINES["dgx"])

    def test_staged_reproduces_paper_choices(self, objective):
        result = GridSearch(objective).staged()
        assert result.best.batch_size == 512
        assert result.best.lr == pytest.approx(0.003)
        assert result.best.momentum in (0.95, 0.96)
        assert result.best_point.converges
        # staged search = 9 + 16 + 10 evaluations
        assert result.n_evaluated == len(BATCH_SPACE) + len(LR_SPACE) + len(
            MOMENTUM_SPACE
        )

    def test_exhaustive_at_least_as_good_as_staged(self, objective):
        gs = GridSearch(objective)
        staged = gs.staged()
        exhaustive = gs.exhaustive()
        assert exhaustive.best_seconds <= staged.best_seconds + 1e-9
        assert exhaustive.n_evaluated == 9 * 16 * 10

    def test_diverging_candidates_score_inf(self, objective):
        assert objective(Candidate(100, 0.016, 0.90)) == math.inf

    def test_empty_space_rejected(self, objective):
        with pytest.raises(ValueError):
            GridSearch(objective, batch_space=[])


class TestTable7:
    @pytest.fixture(scope="class")
    def rows(self):
        return reproduce_table7()

    def test_eight_rows(self, rows):
        assert len(rows) == 8

    def test_baseline_is_cpu8(self, rows):
        assert rows[0].machine == "cpu8"
        assert rows[0].speedup == pytest.approx(1.0)

    def test_platform_speedups_match_paper_shape(self, rows):
        by = {r.machine: r for r in rows[:5]}
        # Paper: KNL 6x, Haswell 15x, P100 59x, DGX 76x.
        assert by["knl"].speedup == pytest.approx(6, rel=0.15)
        assert by["haswell"].speedup == pytest.approx(15, rel=0.15)
        assert by["p100"].speedup == pytest.approx(59, rel=0.15)
        assert by["dgx"].speedup == pytest.approx(76, rel=0.15)

    def test_tuning_rows_match_paper(self, rows):
        tune_b, tune_lr, tune_mu = rows[5], rows[6], rows[7]
        assert tune_b.batch_size == 512
        assert tune_b.iterations == pytest.approx(30_000, rel=0.01)
        assert tune_lr.lr == pytest.approx(0.003)
        assert tune_lr.iterations == pytest.approx(12_000, rel=0.01)
        assert tune_mu.momentum == pytest.approx(0.95, abs=0.011)
        assert tune_mu.iterations == pytest.approx(7_000, rel=0.01)

    def test_final_speedup_order_of_paper(self, rows):
        # Paper: 355x; the model reproduces the order of magnitude and
        # strict monotone improvement across tuning stages.
        assert rows[7].speedup == pytest.approx(355, rel=0.1)
        speeds = [r.speedup for r in rows[4:]]
        assert speeds == sorted(speeds)

    def test_headline_claim_8hours_to_a_minute(self, rows):
        # "we reduce the time from 8.2 hours to roughly 1 minute"
        assert rows[0].seconds == pytest.approx(8.2 * 3600, rel=0.03)
        assert rows[7].seconds < 120

    def test_price_per_speedup_winner_is_p100(self, rows):
        # Paper Section V-C: P100 most efficient, 8-core CPU least.
        points = sorted(as_price_points(rows))
        assert "P100" in points[0].method
        platform_points = [
            p for p in points if "Tune" not in p.method
        ]
        assert "8-core" in max(
            platform_points, key=lambda p: p.price_per_speedup
        ).method

    def test_format_rows_renders(self, rows):
        text = format_rows(rows)
        assert "Tune B" in text and "Speedup" in text
