"""MeasuredObjective: the real-training side of the tuning harness."""

import math

import pytest

from repro.data import synthetic_cifar10
from repro.dnn import cifar10_small
from repro.tuning import GridSearch, MeasuredObjective
from repro.tuning.search import Candidate


@pytest.fixture(scope="module")
def objective():
    data = synthetic_cifar10(250, 80, seed=0, flip_prob=0.0)
    return MeasuredObjective(
        lambda: cifar10_small(seed=0),
        data,
        target_accuracy=0.6,
        max_epochs=5,
        seed=0,
    )


class TestMeasuredObjective:
    def test_reachable_candidate_scores_finite(self, objective):
        t = objective(Candidate(50, 0.01, 0.9))
        assert math.isfinite(t) and t > 0

    def test_unreachable_candidate_scores_inf(self, objective):
        # A pathologically hot rate diverges within the epoch cap.
        assert objective(Candidate(50, 5.0, 0.99)) == math.inf

    def test_deterministic(self, objective):
        # Identical seeds: the convergence epoch is identical (wall
        # time differs; compare via a fresh run's epoch count instead).
        from repro.dnn import Trainer

        runs = []
        for _ in range(2):
            run = Trainer(
                cifar10_small(seed=0), batch_size=50, lr=0.01,
                momentum=0.9, target_accuracy=0.6, max_epochs=5, seed=0,
            ).fit(objective.data)
            runs.append(run.epochs_to_target)
        assert runs[0] == runs[1]


@pytest.mark.slow
class TestMeasuredStagedSearch:
    def test_tiny_staged_search_finds_working_setting(self):
        data = synthetic_cifar10(400, 120, seed=0, flip_prob=0.0)
        objective = MeasuredObjective(
            lambda: cifar10_small(seed=0),
            data,
            target_accuracy=0.7,
            max_epochs=8,
            seed=0,
        )
        gs = GridSearch(
            objective,
            batch_space=(25, 100),
            lr_space=(0.002, 0.01),
            momentum_space=(0.0, 0.9),
        )
        result = gs.staged(ref_lr=0.01, ref_momentum=0.9)
        assert math.isfinite(result.best_seconds)
        assert result.best.batch_size in (25, 100)
        assert result.n_evaluated == 2 + 2 + 2
