"""Metric helper tests."""

import numpy as np
import pytest

from repro.dnn.metrics import (
    accuracy,
    confusion_matrix,
    epochs_to_threshold,
    learning_curve,
    per_class_accuracy,
    top_k_accuracy,
)


class TestConfusion:
    def test_basic(self):
        cm = confusion_matrix([0, 0, 1, 2], [0, 1, 1, 2])
        assert cm.tolist() == [[1, 1, 0], [0, 1, 0], [0, 0, 1]]
        assert cm.sum() == 4

    def test_n_classes_override(self):
        cm = confusion_matrix([0], [0], n_classes=4)
        assert cm.shape == (4, 4)

    def test_validation(self):
        with pytest.raises(ValueError, match="equal length"):
            confusion_matrix([0, 1], [0])
        with pytest.raises(ValueError, match="empty"):
            confusion_matrix([], [])
        with pytest.raises(ValueError, match="exceeds"):
            confusion_matrix([5], [0], n_classes=2)
        with pytest.raises(ValueError, match="non-negative"):
            confusion_matrix([-1], [0])


class TestAccuracy:
    def test_accuracy(self):
        assert accuracy([1, 2, 3], [1, 2, 4]) == pytest.approx(2 / 3)
        with pytest.raises(ValueError):
            accuracy([], [])

    def test_per_class(self):
        pca = per_class_accuracy([0, 0, 1, 1], [0, 1, 1, 1])
        assert pca[0] == 0.5 and pca[1] == 1.0

    def test_per_class_absent_is_nan(self):
        pca = per_class_accuracy([0, 0], [0, 0], n_classes=3)
        assert np.isnan(pca[2])


class TestTopK:
    def test_top1_equals_accuracy(self, rng):
        logits = rng.standard_normal((50, 6))
        y = rng.integers(0, 6, 50)
        assert top_k_accuracy(logits, y, k=1) == pytest.approx(
            accuracy(y, np.argmax(logits, axis=1))
        )

    def test_topk_monotone_in_k(self, rng):
        logits = rng.standard_normal((80, 5))
        y = rng.integers(0, 5, 80)
        accs = [top_k_accuracy(logits, y, k=k) for k in range(1, 6)]
        assert accs == sorted(accs)
        assert accs[-1] == 1.0  # k = n_classes

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            top_k_accuracy(rng.standard_normal((4, 3)), np.zeros(4), k=0)
        with pytest.raises(ValueError):
            top_k_accuracy(rng.standard_normal(4), np.zeros(4))


class TestCurves:
    def test_epochs_to_threshold(self):
        assert epochs_to_threshold([0.2, 0.5, 0.8, 0.9], 0.8) == 3
        assert epochs_to_threshold([0.2, 0.3], 0.8) is None
        with pytest.raises(ValueError):
            epochs_to_threshold([0.5], 0.0)

    def test_learning_curve_from_run(self):
        from repro.data import synthetic_cifar10
        from repro.dnn import Trainer, linear_probe

        data = synthetic_cifar10(60, 20, seed=0, flip_prob=0.0)
        run = Trainer(
            linear_probe(seed=0), batch_size=30, lr=0.01,
            target_accuracy=0.999, max_epochs=2,
        ).fit(data)
        curve = learning_curve(run.history)
        assert len(curve) == 2
        assert all(0.0 <= a <= 1.0 for a in curve)
        assert epochs_to_threshold(curve, 0.999) is None
