"""im2col / col2im correctness against direct convolution."""

import numpy as np
import pytest

from repro.dnn.im2col import col2im, conv_out_size, im2col


def direct_conv(x, w, b, field, pad, stride):
    """Naive reference convolution (slow, obviously correct)."""
    n, c, h, ww = x.shape
    oc = w.shape[0]
    oh = conv_out_size(h, field, pad, stride)
    ow = conv_out_size(ww, field, pad, stride)
    xp = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    out = np.zeros((n, oc, oh, ow))
    wk = w.reshape(oc, c, field, field)
    for i in range(oh):
        for j in range(ow):
            patch = xp[:, :, i * stride : i * stride + field,
                       j * stride : j * stride + field]
            out[:, :, i, j] = (
                patch.reshape(n, -1) @ wk.reshape(oc, -1).T + b
            )
    return out


class TestConvOutSize:
    def test_basic(self):
        assert conv_out_size(32, 5, 2, 1) == 32
        assert conv_out_size(32, 2, 0, 2) == 16
        assert conv_out_size(5, 3, 0, 1) == 3

    def test_too_small_rejected(self):
        with pytest.raises(ValueError, match="does not fit"):
            conv_out_size(2, 5, 0, 1)


class TestIm2col:
    @pytest.mark.parametrize(
        "field,pad,stride", [(3, 0, 1), (3, 1, 1), (5, 2, 1), (3, 0, 2)]
    )
    def test_matches_direct_convolution(self, rng, field, pad, stride):
        x = rng.standard_normal((2, 3, 8, 8))
        oc = 4
        w = rng.standard_normal((oc, 3 * field * field))
        b = rng.standard_normal(oc)
        cols, oh, ow = im2col(x, field, pad, stride)
        out = (cols @ w.T + b).reshape(2, oh, ow, oc).transpose(0, 3, 1, 2)
        ref = direct_conv(x, w, b, field, pad, stride)
        assert np.allclose(out, ref)

    def test_column_count(self, rng):
        x = rng.standard_normal((2, 3, 6, 6))
        cols, oh, ow = im2col(x, 3, 0, 1)
        assert cols.shape == (2 * 4 * 4, 3 * 9)
        assert (oh, ow) == (4, 4)


class TestCol2im:
    @pytest.mark.parametrize(
        "field,pad,stride", [(3, 0, 1), (3, 1, 1), (5, 2, 1), (2, 0, 2)]
    )
    def test_adjoint_property(self, rng, field, pad, stride):
        # <im2col(x), g> == <x, col2im(g)> for all x, g — the defining
        # property of the backward pass.
        x = rng.standard_normal((2, 3, 8, 8))
        cols, oh, ow = im2col(x, field, pad, stride)
        g = rng.standard_normal(cols.shape)
        lhs = float((cols * g).sum())
        back = col2im(g, x.shape, field, pad, stride)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-10)

    def test_overlapping_windows_accumulate(self):
        x_shape = (1, 1, 3, 3)
        cols = np.ones((4, 4))  # 2x2 output of 2x2 fields, all ones
        back = col2im(cols, x_shape, 2, 0, 1)
        # centre pixel is covered by all 4 windows
        assert back[0, 0, 1, 1] == 4.0
        assert back[0, 0, 0, 0] == 1.0
