"""FFT convolution and learning-rate schedules."""

import numpy as np
import pytest

from repro.data import synthetic_cifar10
from repro.dnn import (
    ConstantLR,
    Conv2d,
    Conv2dFFT,
    Flatten,
    Linear,
    MomentumSGD,
    Sequential,
    SoftmaxCrossEntropy,
    StepDecayLR,
    Trainer,
    WarmupLR,
    cifar10_small,
)


class TestConv2dFFT:
    @pytest.mark.parametrize("pad", [0, 1, 2])
    @pytest.mark.parametrize("field", [1, 3, 5])
    def test_forward_matches_gemm(self, rng, pad, field):
        gemm = Conv2d(3, 4, field, pad=pad, seed=7)
        fft = Conv2dFFT(3, 4, field, pad=pad, seed=7)
        # identical initialisation by construction (same seed); force
        # exact same weights anyway
        fft.params["W"][:] = gemm.params["W"]
        fft.params["b"][:] = gemm.params["b"]
        x = rng.standard_normal((2, 3, 8, 8))
        assert np.allclose(
            fft.forward(x, training=False),
            gemm.forward(x, training=False),
            atol=1e-10,
        )

    def test_backward_matches_gemm(self, rng):
        gemm = Conv2d(2, 3, 3, pad=1, seed=1)
        fft = Conv2dFFT(2, 3, 3, pad=1, seed=1)
        fft.params["W"][:] = gemm.params["W"]
        fft.params["b"][:] = gemm.params["b"]
        x = rng.standard_normal((2, 2, 6, 6))
        g = rng.standard_normal((2, 3, 6, 6))
        gemm.forward(x, training=True)
        fft.forward(x, training=True)
        gx_gemm = gemm.backward(g)
        gx_fft = fft.backward(g)
        assert np.allclose(gx_fft, gx_gemm, atol=1e-10)
        assert np.allclose(fft.grads["W"], gemm.grads["W"], atol=1e-10)
        assert np.allclose(fft.grads["b"], gemm.grads["b"], atol=1e-10)

    def test_trains_in_a_network(self, rng):
        net = Sequential(
            [Conv2dFFT(1, 4, 3, pad=1, seed=0), Flatten(),
             Linear(4 * 6 * 6, 3, seed=1)]
        )
        lf = SoftmaxCrossEntropy()
        opt = MomentumSGD(0.05, 0.9)
        x = rng.standard_normal((16, 1, 6, 6))
        y = rng.integers(0, 3, 16)
        first = None
        for _ in range(25):
            logits = net.forward(x, training=True)
            loss, g = lf(logits, y)
            if first is None:
                first = loss
            net.backward(g)
            opt.step(net)
        assert loss < first * 0.5

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Conv2dFFT(1, 1, 3).backward(np.zeros((1, 1, 3, 3)))

    def test_field_too_large(self, rng):
        with pytest.raises(ValueError, match="does not fit"):
            Conv2dFFT(1, 1, 9).forward(rng.standard_normal((1, 1, 4, 4)))


class TestSchedules:
    def test_constant(self):
        s = ConstantLR(0.01)
        assert s(1) == s(100) == 0.01
        with pytest.raises(ValueError):
            ConstantLR(0.0)
        with pytest.raises(ValueError):
            s(0)

    def test_step_decay(self):
        s = StepDecayLR(1.0, drop_every=5, factor=0.1)
        assert s(1) == 1.0
        assert s(5) == 1.0
        assert s(6) == pytest.approx(0.1)
        assert s(11) == pytest.approx(0.01)
        with pytest.raises(ValueError):
            StepDecayLR(1.0, drop_every=0)
        with pytest.raises(ValueError):
            StepDecayLR(1.0, factor=0.0)

    def test_warmup(self):
        s = WarmupLR(0.1, base_lr=0.01, warmup_epochs=4)
        assert s(1) == pytest.approx(0.01)
        assert s(4) == pytest.approx(0.1)
        assert s(10) == pytest.approx(0.1)
        assert s(2) < s(3) < s(4)
        with pytest.raises(ValueError):
            WarmupLR(0.1, base_lr=0.2)
        with pytest.raises(ValueError):
            WarmupLR(0.0)

    def test_warmup_default_base(self):
        s = WarmupLR(0.1)
        assert s(1) == pytest.approx(0.01)

    def test_trainer_applies_schedule(self):
        data = synthetic_cifar10(60, 20, seed=0, flip_prob=0.0)
        net = cifar10_small(seed=0)
        schedule = StepDecayLR(0.01, drop_every=1, factor=0.5)
        tr = Trainer(
            net, batch_size=30, lr=999.0,  # overridden by the schedule
            lr_schedule=schedule, target_accuracy=0.999, max_epochs=2,
        )
        tr.fit(data)
        # after epoch 2 the optimiser carries the decayed rate
        assert tr.optimizer.lr == pytest.approx(0.005)

    def test_warmup_rescues_large_lr(self):
        # A rate that diverges cold can be reached safely via warmup —
        # the standard large-batch trick.
        data = synthetic_cifar10(300, 100, seed=0, flip_prob=0.0)
        lr = 0.2  # hot enough to diverge from a cold start here
        cold = Trainer(
            cifar10_small(seed=0), batch_size=100, lr=lr,
            target_accuracy=0.999, max_epochs=4, seed=0,
        ).fit(data)
        warm = Trainer(
            cifar10_small(seed=0), batch_size=100, lr=lr,
            lr_schedule=WarmupLR(lr, base_lr=0.01, warmup_epochs=3),
            target_accuracy=0.999, max_epochs=4, seed=0,
        ).fit(data)
        assert warm.final_accuracy >= cold.final_accuracy
