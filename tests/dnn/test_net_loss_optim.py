"""Sequential container, loss and optimiser tests."""

import numpy as np
import pytest

from repro.dnn import (
    SGD,
    Flatten,
    Linear,
    MomentumSGD,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
    linear_probe,
)


class TestSequential:
    def test_needs_layers(self):
        with pytest.raises(ValueError):
            Sequential([])

    def test_n_params(self):
        net = Sequential([Linear(4, 3, seed=0)])
        assert net.n_params == 4 * 3 + 3

    def test_named_params_keys(self):
        net = Sequential([Linear(4, 3, seed=0), ReLU(), Linear(3, 2, seed=1)])
        keys = [k for k, _ in net.named_params()]
        assert (0, "W") in keys and (2, "b") in keys
        assert len(keys) == 4

    def test_predict_batched_matches_unbatched(self, rng):
        net = linear_probe(n_classes=4, in_channels=1, size=4, seed=0)
        x = rng.standard_normal((37, 1, 4, 4))
        a = net.predict(x, batch_size=8)
        b = net.predict(x, batch_size=1000)
        assert np.array_equal(a, b)

    def test_accuracy_range(self, rng):
        net = linear_probe(n_classes=3, in_channels=1, size=2, seed=0)
        x = rng.standard_normal((20, 1, 2, 2))
        y = rng.integers(0, 3, 20)
        assert 0.0 <= net.accuracy(x, y) <= 1.0


class TestSoftmaxCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
        loss, _ = SoftmaxCrossEntropy()(logits, np.array([0, 1]))
        assert loss < 1e-6

    def test_uniform_logits_loss_is_log_k(self):
        k = 7
        loss, _ = SoftmaxCrossEntropy()(np.zeros((3, k)), np.zeros(3, dtype=int))
        assert loss == pytest.approx(np.log(k))

    def test_gradient_sums_to_zero_per_row(self, rng):
        logits = rng.standard_normal((5, 4))
        _, g = SoftmaxCrossEntropy()(logits, rng.integers(0, 4, 5))
        assert np.allclose(g.sum(axis=1), 0.0, atol=1e-12)

    def test_gradient_finite_difference(self, rng):
        logits = rng.standard_normal((3, 4))
        y = rng.integers(0, 4, 3)
        lf = SoftmaxCrossEntropy()
        _, g = lf(logits.copy(), y)
        eps = 1e-6
        for idx in [(0, 0), (1, 3), (2, 2)]:
            lp = lf(logits + eps * _one(logits.shape, idx), y)[0]
            lm = lf(logits - eps * _one(logits.shape, idx), y)[0]
            assert g[idx] == pytest.approx((lp - lm) / (2 * eps), rel=1e-5)

    def test_numerical_stability_huge_logits(self):
        logits = np.array([[1e4, -1e4]])
        loss, g = SoftmaxCrossEntropy()(logits, np.array([0]))
        assert np.isfinite(loss) and np.all(np.isfinite(g))

    def test_validation(self):
        lf = SoftmaxCrossEntropy()
        with pytest.raises(ValueError, match="label out of range"):
            lf(np.zeros((2, 3)), np.array([0, 3]))
        with pytest.raises(ValueError, match="one entry"):
            lf(np.zeros((2, 3)), np.array([0]))
        with pytest.raises(ValueError, match="\\(N, K\\)"):
            lf(np.zeros(3), np.array([0]))


def _one(shape, idx):
    e = np.zeros(shape)
    e[idx] = 1.0
    return e


class TestOptimisers:
    def _loss_after_steps(self, opt, steps, rng_seed=0):
        rng = np.random.default_rng(rng_seed)
        net = Sequential([Linear(6, 4, seed=1), ReLU(), Linear(4, 3, seed=2)])
        x = rng.standard_normal((30, 6))
        y = rng.integers(0, 3, 30)
        lf = SoftmaxCrossEntropy()
        loss = None
        for _ in range(steps):
            logits = net.forward(x)
            loss, g = lf(logits, y)
            net.backward(g)
            opt.step(net)
        return loss

    def test_sgd_decreases_loss(self):
        first = self._loss_after_steps(SGD(0.1), 1)
        last = self._loss_after_steps(SGD(0.1), 50)
        assert last < first

    def test_momentum_beats_sgd_here(self):
        sgd = self._loss_after_steps(SGD(0.05), 40)
        mom = self._loss_after_steps(MomentumSGD(0.05, 0.9), 40)
        assert mom < sgd

    def test_momentum_zero_equals_sgd(self):
        a = self._loss_after_steps(SGD(0.05), 20)
        b = self._loss_after_steps(MomentumSGD(0.05, 0.0), 20)
        assert a == pytest.approx(b, rel=1e-12)

    def test_momentum_update_rule_exact(self):
        # One parameter, one step: V1 = -lr*g; W1 = W0 + V1;
        # second step with same g: V2 = mu*V1 - lr*g.
        net = Sequential([Linear(1, 1, seed=0)])
        w0 = float(net.layers[0].params["W"][0, 0])
        net.layers[0].grads["W"] = np.array([[2.0]])
        net.layers[0].grads["b"] = np.array([0.0])
        opt = MomentumSGD(0.1, 0.5)
        opt.step(net)
        w1 = float(net.layers[0].params["W"][0, 0])
        assert w1 == pytest.approx(w0 - 0.2)
        opt.step(net)  # same grads still stored
        w2 = float(net.layers[0].params["W"][0, 0])
        # V2 = 0.5*(-0.2) - 0.2 = -0.3
        assert w2 == pytest.approx(w1 - 0.3)

    def test_reset_clears_velocity(self):
        net = Sequential([Linear(1, 1, seed=0)])
        net.layers[0].grads["W"] = np.array([[1.0]])
        net.layers[0].grads["b"] = np.array([0.0])
        opt = MomentumSGD(0.1, 0.9)
        opt.step(net)
        opt.reset()
        assert opt._velocity == {}

    def test_validation(self):
        with pytest.raises(ValueError):
            SGD(0.0)
        with pytest.raises(ValueError):
            MomentumSGD(0.1, 1.0)
        with pytest.raises(ValueError):
            MomentumSGD(-0.1, 0.5)
