"""Trainer and model-zoo tests, including the measured batch-size effect."""

import numpy as np
import pytest

from repro.data import synthetic_cifar10
from repro.dnn import (
    Trainer,
    cifar10_full,
    cifar10_small,
    linear_probe,
)


@pytest.fixture(scope="module")
def tiny_data():
    return synthetic_cifar10(300, 100, seed=0)


@pytest.fixture(scope="module")
def easy_data():
    """No polarity flips: converges in very few epochs (fast tests)."""
    return synthetic_cifar10(300, 100, seed=0, flip_prob=0.0)


class TestModels:
    def test_cifar10_full_shapes(self, rng):
        net = cifar10_full(seed=0)
        out = net.forward(rng.standard_normal((2, 3, 32, 32)), training=False)
        assert out.shape == (2, 10)

    def test_cifar10_small_shapes(self, rng):
        net = cifar10_small(seed=0)
        out = net.forward(rng.standard_normal((2, 3, 32, 32)), training=False)
        assert out.shape == (2, 10)
        assert net.n_params < cifar10_full(seed=0).n_params

    def test_linear_probe(self, rng):
        net = linear_probe(seed=0)
        out = net.forward(rng.standard_normal((2, 3, 32, 32)), training=False)
        assert out.shape == (2, 10)


class TestTrainer:
    def test_reaches_target_on_easy_data(self, easy_data):
        net = cifar10_small(seed=0)
        run = Trainer(
            net, batch_size=50, lr=0.01, momentum=0.9,
            target_accuracy=0.7, max_epochs=8,
        ).fit(easy_data)
        assert run.reached_target
        assert run.epochs_to_target <= 8
        assert run.seconds_to_target > 0
        assert run.iterations_to_target == run.epochs_to_target * 6

    def test_history_recorded(self, tiny_data):
        net = cifar10_small(seed=1)
        run = Trainer(
            net, batch_size=100, lr=0.01, target_accuracy=0.999,
            max_epochs=2,
        ).fit(tiny_data)
        assert len(run.history) == 2
        assert not run.reached_target
        assert run.total_iterations == 2 * 3
        assert all(s.seconds > 0 for s in run.history)

    def test_cnn_beats_linear_probe(self, tiny_data):
        # The synthetic task must be non-trivial: the CNN should clearly
        # beat a linear model at equal epochs.
        cnn_run = Trainer(
            cifar10_small(seed=0), batch_size=50, lr=0.01,
            target_accuracy=0.99, max_epochs=7,
        ).fit(tiny_data)
        lin_run = Trainer(
            linear_probe(seed=0), batch_size=50, lr=0.01,
            target_accuracy=0.99, max_epochs=7,
        ).fit(tiny_data)
        assert cnn_run.final_accuracy > lin_run.final_accuracy

    def test_validation(self, tiny_data):
        net = cifar10_small(seed=0)
        with pytest.raises(ValueError):
            Trainer(net, batch_size=0)
        with pytest.raises(ValueError):
            Trainer(net, target_accuracy=0.0)
        with pytest.raises(ValueError):
            Trainer(net, max_epochs=0)


@pytest.mark.slow
class TestBatchSizeEffect:
    """The measured counterpart of the Keskar large-batch effect: at a
    fixed learning rate, a larger batch needs more epochs to hit the
    same accuracy (fewer, less noisy updates per epoch)."""

    def test_large_batch_needs_more_epochs(self):
        data = synthetic_cifar10(1000, 300, seed=1)
        epochs_at = {}
        for batch in (25, 400):
            run = Trainer(
                cifar10_small(seed=0),
                batch_size=batch,
                lr=0.005,
                momentum=0.9,
                target_accuracy=0.75,
                max_epochs=30,
                seed=0,
            ).fit(data)
            assert run.reached_target, f"B={batch} never reached target"
            epochs_at[batch] = run.epochs_to_target
        assert epochs_at[400] > epochs_at[25]
