"""Data-parallel training (Section IV-B): math identity + comm model."""

import numpy as np
import pytest

from repro.data import synthetic_cifar10
from repro.dnn import (
    DataParallelTrainer,
    SGD,
    Trainer,
    cifar10_small,
    linear_probe,
    replicate_net,
)
from repro.dnn.net import Sequential
from repro.dnn.layers import Dropout, Linear, ReLU


class TestReplication:
    def test_parameters_are_shared(self):
        net = Sequential([Linear(4, 3, seed=0), ReLU(), Linear(3, 2, seed=1)])
        replicas = replicate_net(net, 3)
        assert len(replicas) == 3
        for rep in replicas[1:]:
            for (k1, p1), (k2, p2) in zip(
                net.named_params(), rep.named_params()
            ):
                assert k1 == k2
                assert p1 is p2  # literal aliasing

    def test_caches_are_private(self, rng):
        net = Sequential([Linear(4, 3, seed=0), ReLU()])
        rep = replicate_net(net, 2)[1]
        net.forward(rng.standard_normal((2, 4)), training=True)
        # the replica never ran forward: its backward must fail
        with pytest.raises(RuntimeError):
            rep.backward(np.zeros((2, 3)))

    def test_dropout_replicas_get_fresh_streams(self, rng):
        net = Sequential([Dropout(0.5, seed=0)])
        rep = replicate_net(net, 2)[1]
        x = np.ones((64, 64))
        a = net.forward(x, training=True)
        b = rep.forward(x, training=True)
        assert not np.array_equal(a, b)

    def test_validation(self):
        net = Sequential([Linear(2, 2, seed=0)])
        with pytest.raises(ValueError):
            replicate_net(net, 0)


class TestGradientIdentity:
    """P-worker steps must equal serial full-batch steps exactly."""

    def _data(self, rng, n=32):
        x = rng.standard_normal((n, 1, 4, 4))
        y = rng.integers(0, 3, n)
        return x, y

    @pytest.mark.parametrize("p", [1, 2, 4])
    def test_one_step_matches_serial(self, rng, p):
        x, y = self._data(rng)
        serial = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        par_net = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)

        # serial reference step
        from repro.dnn.loss import SoftmaxCrossEntropy

        lf = SoftmaxCrossEntropy()
        logits = serial.forward(x, training=True)
        _, g = lf(logits, y)
        serial.backward(g)
        SGD(0.1).step(serial)

        dp = DataParallelTrainer(
            par_net, n_replicas=p, batch_size=32, optimizer=SGD(0.1)
        )
        dp.step(x, y)

        for (k1, p1), (k2, p2) in zip(
            serial.named_params(), par_net.named_params()
        ):
            assert np.allclose(p1, p2, atol=1e-12), k1

    def test_unequal_shards_still_exact(self, rng):
        # 10 samples over 4 workers: shards of 3/3/2/2.
        x, y = self._data(rng, n=10)
        serial = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        par_net = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        from repro.dnn.loss import SoftmaxCrossEntropy

        lf = SoftmaxCrossEntropy()
        logits = serial.forward(x, training=True)
        loss_serial, g = lf(logits, y)
        serial.backward(g)
        SGD(0.1).step(serial)
        dp = DataParallelTrainer(
            par_net, n_replicas=4, batch_size=10, optimizer=SGD(0.1)
        )
        loss_par = dp.step(x, y)
        assert loss_par == pytest.approx(loss_serial, rel=1e-12)
        for (_, p1), (_, p2) in zip(
            serial.named_params(), par_net.named_params()
        ):
            assert np.allclose(p1, p2, atol=1e-12)

    def test_concurrent_matches_serial_workers(self, rng):
        x, y = self._data(rng)
        a = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        b = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        DataParallelTrainer(
            a, n_replicas=4, batch_size=32, optimizer=SGD(0.1),
            concurrent=False,
        ).step(x, y)
        DataParallelTrainer(
            b, n_replicas=4, batch_size=32, optimizer=SGD(0.1),
            concurrent=True,
        ).step(x, y)
        for (_, p1), (_, p2) in zip(a.named_params(), b.named_params()):
            assert np.allclose(p1, p2, atol=1e-9)


class TestCommAccounting:
    def test_ring_allreduce_bytes(self):
        net = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        param_bytes = sum(p.nbytes for _, p in net.named_params())
        dp = DataParallelTrainer(net, n_replicas=4, batch_size=8)
        rng = np.random.default_rng(0)
        dp.step(rng.standard_normal((8, 1, 4, 4)), rng.integers(0, 3, 8))
        assert dp.comm.bytes_per_step == int(2 * 3 / 4 * param_bytes)
        assert dp.comm.total_bytes == dp.comm.bytes_per_step
        assert dp.comm.steps == 1

    def test_single_worker_no_comm(self, rng):
        net = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        dp = DataParallelTrainer(net, n_replicas=1, batch_size=8)
        dp.step(rng.standard_normal((8, 1, 4, 4)), rng.integers(0, 3, 8))
        assert dp.comm.total_bytes == 0

    def test_modelled_comm_seconds(self, rng):
        net = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        dp = DataParallelTrainer(net, n_replicas=4, batch_size=8)
        dp.step(rng.standard_normal((8, 1, 4, 4)), rng.integers(0, 3, 8))
        t = dp.modelled_comm_seconds(80.0)  # NVLink-ish
        assert t == pytest.approx(dp.comm.total_bytes / 80e9)
        with pytest.raises(ValueError):
            dp.modelled_comm_seconds(0.0)


class TestEndToEnd:
    def test_trains_cnn_like_serial_trainer(self):
        data = synthetic_cifar10(200, 60, seed=0, flip_prob=0.0)
        net = cifar10_small(seed=0)
        dp = DataParallelTrainer(
            net, n_replicas=4, batch_size=40, lr=0.01, momentum=0.9
        )
        acc0 = net.accuracy(data.x_test.astype(np.float64), data.y_test)
        for epoch in range(3):
            dp.train_epoch(data, epoch)
        acc1 = net.accuracy(data.x_test.astype(np.float64), data.y_test)
        assert acc1 > acc0 + 0.2

    def test_validation(self, rng):
        net = linear_probe(n_classes=3, in_channels=1, size=4, seed=0)
        with pytest.raises(ValueError):
            DataParallelTrainer(net, n_replicas=0)
        with pytest.raises(ValueError):
            DataParallelTrainer(net, n_replicas=8, batch_size=4)
        dp = DataParallelTrainer(net, n_replicas=4, batch_size=8)
        with pytest.raises(ValueError, match="batch smaller"):
            dp.step(rng.standard_normal((2, 1, 4, 4)), np.zeros(2, dtype=int))
