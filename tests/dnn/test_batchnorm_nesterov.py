"""BatchNorm2d and Nesterov momentum tests."""

import numpy as np
import pytest

from repro.dnn import (
    BatchNorm2d,
    Conv2d,
    Flatten,
    Linear,
    MomentumSGD,
    ReLU,
    Sequential,
)
from tests.dnn.test_layers import numeric_grad


def _check_grads_training_mode(net, x, y, n_checks=6, seed=0):
    """Finite-difference check with *training-mode* forwards: BatchNorm
    differentiates through the batch statistics, so the numeric loss
    must use them too (the shared helper uses inference mode, which is
    right for dropout but wrong for BN)."""
    from repro.dnn import SoftmaxCrossEntropy

    lf = SoftmaxCrossEntropy()

    def full_loss():
        return lf(net.forward(x, training=True), y)[0]

    logits = net.forward(x, training=True)
    _, g = lf(logits, y)
    gin = net.backward(g)
    rng = np.random.default_rng(seed)
    for key, param in net.named_params():
        grads = net.named_grads()[key]
        flat, gflat = param.reshape(-1), grads.reshape(-1)
        for _ in range(n_checks):
            i = int(rng.integers(flat.size))
            num = numeric_grad(full_loss, flat, i)
            assert gflat[i] == pytest.approx(num, rel=1e-4, abs=1e-7), key
    flat, gin_flat = x.reshape(-1), gin.reshape(-1)
    for _ in range(n_checks):
        i = int(rng.integers(flat.size))
        num = numeric_grad(full_loss, flat, i)
        assert gin_flat[i] == pytest.approx(num, rel=1e-4, abs=1e-7)


class TestBatchNorm:
    def test_normalises_per_channel(self, rng):
        bn = BatchNorm2d(3)
        x = rng.standard_normal((8, 3, 4, 4)) * 5.0 + 2.0
        out = bn.forward(x, training=True)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-10)
        assert np.allclose(out.var(axis=(0, 2, 3)), 1.0, atol=1e-4)

    def test_gamma_beta_applied(self, rng):
        bn = BatchNorm2d(2)
        bn.params["gamma"][:] = [2.0, 3.0]
        bn.params["beta"][:] = [1.0, -1.0]
        x = rng.standard_normal((4, 2, 3, 3))
        out = bn.forward(x, training=True)
        assert out.mean(axis=(0, 2, 3)) == pytest.approx([1.0, -1.0], abs=1e-10)

    def test_running_stats_used_at_inference(self, rng):
        bn = BatchNorm2d(2, momentum=1.0)  # running = last batch
        x = rng.standard_normal((16, 2, 4, 4)) * 3.0 + 1.0
        bn.forward(x, training=True)
        out = bn.forward(x, training=False)
        # with momentum 1.0 the running stats equal the batch stats,
        # so inference normalises (nearly) perfectly too
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-6)

    def test_inference_is_deterministic_elementwise(self, rng):
        bn = BatchNorm2d(2)
        bn.forward(rng.standard_normal((8, 2, 4, 4)), training=True)
        x1 = rng.standard_normal((1, 2, 4, 4))
        a = bn.forward(x1, training=False)
        b = bn.forward(x1, training=False)
        assert np.array_equal(a, b)

    def test_gradients(self, rng):
        net = Sequential(
            [
                Conv2d(1, 2, 3, pad=1, seed=0),
                BatchNorm2d(2),
                ReLU(),
                Flatten(),
                Linear(2 * 4 * 4, 3, seed=1),
            ]
        )
        x = rng.standard_normal((5, 1, 4, 4))
        y = rng.integers(0, 3, 5)
        _check_grads_training_mode(net, x, y)

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            BatchNorm2d(0)
        with pytest.raises(ValueError):
            BatchNorm2d(2, momentum=0.0)
        with pytest.raises(ValueError):
            BatchNorm2d(2, eps=0.0)
        with pytest.raises(ValueError, match="expected"):
            BatchNorm2d(2).forward(rng.standard_normal((2, 3, 4, 4)))
        with pytest.raises(RuntimeError):
            BatchNorm2d(2).backward(np.zeros((1, 2, 2, 2)))

    def test_replication_shares_running_stats(self, rng):
        from repro.dnn import replicate_net

        net = Sequential([BatchNorm2d(2)])
        rep = replicate_net(net, 2)[1]
        assert rep.layers[0].running_mean is net.layers[0].running_mean


class TestNesterov:
    def _loss_path(self, opt, steps=40, seed=3):
        from repro.dnn import SoftmaxCrossEntropy

        rng = np.random.default_rng(seed)
        net = Sequential([Linear(6, 4, seed=1), ReLU(), Linear(4, 3, seed=2)])
        x = rng.standard_normal((30, 6))
        y = rng.integers(0, 3, 30)
        lf = SoftmaxCrossEntropy()
        losses = []
        for _ in range(steps):
            logits = net.forward(x)
            loss, g = lf(logits, y)
            net.backward(g)
            opt.step(net)
            losses.append(loss)
        return losses

    def test_differs_from_classical(self):
        a = self._loss_path(MomentumSGD(0.05, 0.9, nesterov=False))
        b = self._loss_path(MomentumSGD(0.05, 0.9, nesterov=True))
        assert a != b

    def test_converges(self):
        losses = self._loss_path(MomentumSGD(0.05, 0.9, nesterov=True))
        assert losses[-1] < losses[0] * 0.5

    def test_zero_momentum_equals_sgd_lookahead_or_not(self):
        # With mu = 0 the look-ahead form is W -= 2*eta*g per step
        # relative history... actually V = -eta g, and nesterov adds
        # another -eta g: assert it still optimises.
        losses = self._loss_path(MomentumSGD(0.05, 0.0, nesterov=True))
        assert losses[-1] < losses[0]
