"""Layer forward/backward tests with finite-difference gradient checks."""

import numpy as np
import pytest

from repro.dnn import (
    Conv2d,
    Dropout,
    Flatten,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
    SoftmaxCrossEntropy,
)


def numeric_grad(f, arr, idx, eps=1e-6):
    arr[idx] += eps
    lp = f()
    arr[idx] -= 2 * eps
    lm = f()
    arr[idx] += eps
    return (lp - lm) / (2 * eps)


def check_param_grads(net, x, y, n_checks=6, seed=0):
    """Compare analytic parameter gradients to central differences."""
    loss_fn = SoftmaxCrossEntropy()

    def full_loss():
        return loss_fn(net.forward(x, training=False), y)[0]

    logits = net.forward(x, training=True)
    _, g = loss_fn(logits, y)
    net.backward(g)
    rng = np.random.default_rng(seed)
    for key, param in net.named_params():
        grads = net.named_grads()[key]
        flat = param.reshape(-1)
        gflat = grads.reshape(-1)
        for _ in range(n_checks):
            i = int(rng.integers(flat.size))
            num = numeric_grad(full_loss, flat, i)
            assert gflat[i] == pytest.approx(num, rel=1e-4, abs=1e-7), key


def check_input_grads(net, x, y, n_checks=6, seed=0):
    loss_fn = SoftmaxCrossEntropy()

    def full_loss():
        return loss_fn(net.forward(x, training=False), y)[0]

    logits = net.forward(x, training=True)
    _, g = loss_fn(logits, y)
    gin = net.backward(g)
    rng = np.random.default_rng(seed)
    flat = x.reshape(-1)
    gin_flat = gin.reshape(-1)
    for _ in range(n_checks):
        i = int(rng.integers(flat.size))
        num = numeric_grad(full_loss, flat, i)
        assert gin_flat[i] == pytest.approx(num, rel=1e-4, abs=1e-7)


class TestConv2d:
    def test_output_shape(self, rng):
        conv = Conv2d(3, 8, 5, pad=2, seed=0)
        out = conv.forward(rng.standard_normal((4, 3, 16, 16)))
        assert out.shape == (4, 8, 16, 16)

    def test_stride(self, rng):
        conv = Conv2d(1, 2, 3, stride=2, seed=0)
        out = conv.forward(rng.standard_normal((1, 1, 9, 9)))
        assert out.shape == (1, 2, 4, 4)

    def test_gradients(self, rng):
        net = Sequential([Conv2d(2, 3, 3, pad=1, seed=1), Flatten(),
                          Linear(3 * 5 * 5, 3, seed=2)])
        x = rng.standard_normal((3, 2, 5, 5))
        y = rng.integers(0, 3, 3)
        check_param_grads(net, x, y)
        check_input_grads(net, x, y)

    def test_channel_mismatch(self, rng):
        with pytest.raises(ValueError, match="channels"):
            Conv2d(3, 4, 3).forward(rng.standard_normal((1, 2, 5, 5)))

    def test_backward_before_forward(self):
        with pytest.raises(RuntimeError):
            Conv2d(1, 1, 3).backward(np.zeros((1, 1, 3, 3)))

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            Conv2d(0, 1, 3)
        with pytest.raises(ValueError):
            Conv2d(1, 1, 3, pad=-1)


class TestMaxPool:
    def test_forward_values(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        out = MaxPool2d(2).forward(x)
        assert np.array_equal(out[0, 0], [[5.0, 7.0], [13.0, 15.0]])

    def test_gradient_routes_to_max(self):
        x = np.arange(16.0).reshape(1, 1, 4, 4)
        pool = MaxPool2d(2)
        pool.forward(x)
        g = pool.backward(np.ones((1, 1, 2, 2)))
        assert g.sum() == 4.0
        assert g[0, 0, 1, 1] == 1.0  # position of 5
        assert g[0, 0, 0, 0] == 0.0

    def test_tie_breaking_single_winner(self):
        x = np.zeros((1, 1, 2, 2))  # all equal: exactly one gets grad
        pool = MaxPool2d(2)
        pool.forward(x)
        g = pool.backward(np.ones((1, 1, 1, 1)))
        assert g.sum() == 1.0

    def test_indivisible_rejected(self, rng):
        with pytest.raises(ValueError, match="divisible"):
            MaxPool2d(3).forward(rng.standard_normal((1, 1, 4, 4)))

    def test_gradients(self, rng):
        net = Sequential([Conv2d(1, 2, 3, pad=1, seed=0), MaxPool2d(2),
                          Flatten(), Linear(2 * 3 * 3, 2, seed=1)])
        x = rng.standard_normal((2, 1, 6, 6))
        y = rng.integers(0, 2, 2)
        check_param_grads(net, x, y)


class TestReLUFlattenLinear:
    def test_relu(self):
        r = ReLU()
        out = r.forward(np.array([-1.0, 0.0, 2.0]))
        assert np.array_equal(out, [0.0, 0.0, 2.0])
        g = r.backward(np.ones(3))
        assert np.array_equal(g, [0.0, 0.0, 1.0])

    def test_flatten_roundtrip(self, rng):
        f = Flatten()
        x = rng.standard_normal((2, 3, 4, 5))
        out = f.forward(x)
        assert out.shape == (2, 60)
        assert f.backward(out).shape == x.shape

    def test_linear_gradients(self, rng):
        net = Sequential([Linear(7, 5, seed=0), ReLU(), Linear(5, 3, seed=1)])
        x = rng.standard_normal((4, 7))
        y = rng.integers(0, 3, 4)
        check_param_grads(net, x, y)
        check_input_grads(net, x, y)

    def test_linear_validation(self):
        with pytest.raises(ValueError):
            Linear(0, 5)


class TestDropout:
    def test_inactive_at_inference(self, rng):
        d = Dropout(0.5, seed=0)
        x = rng.standard_normal((10, 10))
        assert np.array_equal(d.forward(x, training=False), x)

    def test_inverted_scaling_preserves_mean(self, rng):
        d = Dropout(0.5, seed=0)
        x = np.ones((200, 200))
        out = d.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self, rng):
        d = Dropout(0.5, seed=0)
        x = np.ones((50, 50))
        out = d.forward(x, training=True)
        g = d.backward(np.ones_like(x))
        assert np.array_equal(g, out)  # identical mask on ones

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            Dropout(1.0)

    def test_zero_rate_is_identity(self, rng):
        d = Dropout(0.0)
        x = rng.standard_normal((4, 4))
        assert np.array_equal(d.forward(x, training=True), x)
        assert np.array_equal(d.backward(x), x)
