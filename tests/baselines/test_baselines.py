"""Fixed-format and LIBSVM-style baseline tests."""

import numpy as np
import pytest

from repro.baselines import (
    FixedFormatSVC,
    GPUSVMStyleSVC,
    LibSVMStyleSVC,
    rowloop_csr_matvec,
)
from repro.formats import from_dense
from repro.formats.csr import CSRMatrix
from repro.svm import SVC
from tests.conftest import make_labels


@pytest.fixture
def separable(rng):
    x = rng.standard_normal((80, 6))
    y = make_labels(rng, x)
    return x, y


class TestRowloopKernel:
    def test_matches_vectorised_csr(self, small_sparse, rng):
        m = from_dense(small_sparse, "CSR")
        assert isinstance(m, CSRMatrix)
        x = rng.standard_normal(small_sparse.shape[1])
        for block in (1, 3, 8, 64):
            assert np.allclose(
                rowloop_csr_matvec(m, x, block=block), small_sparse @ x
            )

    def test_empty_rows(self):
        a = np.zeros((6, 4))
        a[2, 1] = 5.0
        m = from_dense(a, "CSR")
        y = rowloop_csr_matvec(m, np.ones(4), block=4)
        assert np.allclose(y, a @ np.ones(4))

    def test_block_validation(self, small_sparse, rng):
        m = from_dense(small_sparse, "CSR")
        with pytest.raises(ValueError):
            rowloop_csr_matvec(m, rng.standard_normal(30), block=0)

    def test_counter(self, small_sparse, rng):
        from repro.perf import OpCounter

        m = from_dense(small_sparse, "CSR")
        c = OpCounter()
        rowloop_csr_matvec(m, rng.standard_normal(30), counter=c)
        assert c.flops == 2 * m.nnz


class TestFixedFormatSVC:
    @pytest.mark.parametrize("fmt", ["DEN", "CSR", "COO", "ELL", "DIA"])
    def test_all_formats_train(self, separable, fmt):
        x, y = separable
        clf = FixedFormatSVC(fmt, "linear", C=1.0).fit(x, y)
        assert clf.score(x, y) >= 0.9

    def test_bad_format_fails_eagerly(self):
        with pytest.raises(ValueError, match="unknown format"):
            FixedFormatSVC("BSR")

    def test_gpusvm_is_fixed_den(self, separable):
        x, y = separable
        clf = GPUSVMStyleSVC("linear", C=1.0)
        assert clf.fmt == "DEN"
        clf.fit(x, y)
        assert clf.score(x, y) >= 0.9


class TestLibSVMStyle:
    def test_same_model_as_vectorised(self, separable):
        # The emulated baseline is slower, never different.
        x, y = separable
        fast = SVC("linear", C=1.0, tol=1e-4).fit(x, y)
        slow = LibSVMStyleSVC("linear", C=1.0, tol=1e-4).fit(x, y)
        assert np.allclose(
            fast.decision_function(x), slow.decision_function(x), atol=1e-5
        )

    def test_is_measurably_slower_per_smsv(self, rng):
        # On a big enough matrix the block loop costs real time.
        import time

        a = (rng.random((3000, 200)) < 0.1) * 1.0
        m = from_dense(a, "CSR")
        x = rng.standard_normal(200)
        t0 = time.perf_counter()
        for _ in range(5):
            m.matvec(x)
        fast = time.perf_counter() - t0
        t0 = time.perf_counter()
        for _ in range(5):
            rowloop_csr_matvec(m, x, block=8)
        slow = time.perf_counter() - t0
        assert slow > fast  # the baseline's emulated inefficiency

    def test_no_cache(self, separable):
        x, y = separable
        clf = LibSVMStyleSVC("linear", C=1.0).fit(x, y)
        assert clf.result_.kernel_rows_cached == 0

    def test_block_validation(self):
        with pytest.raises(ValueError):
            LibSVMStyleSVC(block=0)
