"""Exporter round trips: JSON-lines, Prometheus text, chrome trace."""

from __future__ import annotations

import json

import pytest

from repro.obs.audit import DecisionRecord
from repro.obs.export import (
    audit_to_jsonl,
    read_audit_jsonl,
    read_spans_jsonl,
    registry_to_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
    validate_chrome_trace,
    write_audit_jsonl,
    write_chrome_trace,
    write_spans_jsonl,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import SpanRecord, Tracer, span_tree


def _make_spans():
    tracer = Tracer(enabled=True)
    with tracer.span("outer") as sp:
        sp.set("fmt", "ELL")
        sp.set("n", 42)
        sp.set("ratio", 0.30000000000000004)  # float repr round-trip
        with tracer.span("inner"):
            pass
    with tracer.span("sibling"):
        pass
    return tracer.spans()


class TestSpansJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        spans = _make_spans()
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(spans, path)
        assert read_spans_jsonl(path) == spans

    def test_round_trip_preserves_span_tree(self, tmp_path):
        spans = _make_spans()
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(spans, path)
        reloaded = read_spans_jsonl(path)
        original = [n.as_dict() for n in span_tree(spans)]
        again = [n.as_dict() for n in span_tree(reloaded)]
        assert original == again

    def test_one_line_per_span(self):
        spans = _make_spans()
        assert len(spans_to_jsonl(spans).splitlines()) == len(spans)

    def test_empty_list_round_trips(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        write_spans_jsonl([], path)
        assert read_spans_jsonl(path) == []


class TestAuditJsonl:
    def test_round_trip(self, tmp_path):
        records = [
            DecisionRecord(
                source="schedule", dataset="d", strategy="cost",
                batch_k=2, chosen="CSR", reason="r", cached=False,
                features={"m": 1.0}, predicted={"CSR": 0.5},
                measured={"CSR": 1e-6},
            ),
            DecisionRecord(
                source="serve", dataset="", strategy="cost",
                batch_k=8, chosen="DEN", reason="flip", cached=False,
            ),
        ]
        path = tmp_path / "audit.jsonl"
        write_audit_jsonl(records, path)
        assert read_audit_jsonl(path) == records
        assert len(audit_to_jsonl(records).splitlines()) == 2


class TestPrometheus:
    def test_counter_gauge_histogram_rendering(self):
        reg = MetricsRegistry()
        reg.counter("repro.ops", help="operations").inc(3)
        reg.gauge("width").set(2.5)
        h = reg.histogram("lat", buckets=(0.1, 1.0))
        h.observe(0.05)
        h.observe(0.5)
        text = registry_to_prometheus(reg)
        assert "# TYPE lat histogram" in text
        assert '# HELP repro_ops operations' in text
        assert "repro_ops 3.0" in text
        assert "width 2.5" in text
        assert 'lat_bucket{le="0.1"} 1' in text
        assert 'lat_bucket{le="1.0"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
        assert "lat_count 2" in text

    def test_names_sanitised_to_grammar(self):
        reg = MetricsRegistry()
        reg.counter("serve.batch-width/mean").inc()
        text = registry_to_prometheus(reg)
        assert "serve_batch_width_mean 1.0" in text

    def test_empty_registry_renders_empty(self):
        assert registry_to_prometheus(MetricsRegistry()) == ""


class TestChromeTrace:
    def test_events_carry_hierarchy_and_microseconds(self):
        spans = _make_spans()
        payload = spans_to_chrome_trace(spans)
        validate_chrome_trace(payload)
        events = payload["traceEvents"]
        assert len(events) == len(spans)
        by_name = {e["name"]: e for e in events}
        outer = by_name["outer"]
        inner = by_name["inner"]
        assert inner["args"]["parent_id"] == outer["args"]["span_id"]
        assert outer["cat"] == "outer"
        rec = [s for s in spans if s.name == "outer"][0]
        assert outer["ts"] == pytest.approx(rec.start * 1e6)

    def test_write_validates_and_is_loadable(self, tmp_path):
        path = tmp_path / "trace.json"
        write_chrome_trace(_make_spans(), path)
        payload = json.loads(path.read_text())
        validate_chrome_trace(payload)

    @pytest.mark.parametrize(
        "payload, message",
        [
            ([], "object form"),
            ({"traceEvents": {}}, "must be a list"),
            ({"traceEvents": [[]]}, "not an object"),
            (
                {"traceEvents": [{"ph": "X"}]},
                "missing required key",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "name": "x", "ph": "B", "ts": 0,
                            "pid": 1, "tid": 1,
                        }
                    ]
                },
                "unsupported phase",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "name": "x", "ph": "X", "ts": -1.0,
                            "pid": 1, "tid": 1, "dur": 0,
                        }
                    ]
                },
                "invalid ts",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "name": "x", "ph": "X", "ts": 0.0,
                            "pid": 1, "tid": 1,
                        }
                    ]
                },
                "missing 'dur'",
            ),
            (
                {
                    "traceEvents": [
                        {
                            "name": "x", "ph": "X", "ts": 0.0,
                            "pid": 1.5, "tid": 1, "dur": 0,
                        }
                    ]
                },
                "non-integer",
            ),
        ],
    )
    def test_schema_violations_rejected(self, payload, message):
        with pytest.raises(ValueError, match=message):
            validate_chrome_trace(payload)

    def test_negative_duration_clamped_not_rejected(self):
        rec = SpanRecord(
            span_id=1, parent_id=None, name="x", start=2.0, end=1.0
        )
        payload = spans_to_chrome_trace([rec])
        validate_chrome_trace(payload)
        assert payload["traceEvents"][0]["dur"] == 0.0


class TestJsonlDroppedMeta:
    def test_int_meta_line_round_trips(self, tmp_path):
        spans = _make_spans()
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(spans, path, dropped=5)
        from repro.obs.export import read_spans_meta

        assert read_spans_meta(path) == {"dropped": 5}
        # Old readers skip the meta line entirely.
        assert read_spans_jsonl(path) == spans

    def test_per_lane_dict_meta(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl([], path, dropped={"0": 0, "1": 3})
        from repro.obs.export import read_spans_meta

        assert read_spans_meta(path) == {"dropped": {"0": 0, "1": 3}}

    def test_no_meta_line_without_dropped(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        write_spans_jsonl(_make_spans(), path)
        from repro.obs.export import read_spans_meta

        assert read_spans_meta(path) == {}
        first = json.loads(path.read_text().splitlines()[0])
        assert "span_id" in first


class TestChromeInstantEvents:
    def test_instant_spans_export_as_i_phase(self):
        from repro.obs.trace import Tracer

        tracer = Tracer(enabled=True)
        tracer.instant("fleet.hotspot", {"model": "alpha"})
        payload = spans_to_chrome_trace(tracer.spans())
        validate_chrome_trace(payload)
        (event,) = payload["traceEvents"]
        assert event["ph"] == "i"
        assert event["s"] == "p"
        assert "dur" not in event
        assert event["args"]["model"] == "alpha"
        # The marker attribute itself is not re-exported as an arg.
        assert "instant" not in event["args"]
