"""Decision audit log: regret math, dataset labels, dedupe keys."""

from __future__ import annotations

import pytest

from repro.obs.audit import (
    AuditLog,
    DecisionRecord,
    audit_dataset,
    current_dataset,
    regret_rows,
    render_regret_table,
)


def _record(**overrides):
    base = dict(
        source="schedule",
        dataset="synthetic",
        strategy="cost",
        batch_k=1,
        chosen="ELL",
        reason="test",
        cached=False,
        features={"m": 10.0},
        predicted={"ELL": 1.0, "CSR": 2.0},
        measured={"ELL": 2e-6, "CSR": 1e-6},
    )
    base.update(overrides)
    return DecisionRecord(**base)


class TestRegretMath:
    def test_bests(self):
        r = _record()
        assert r.predicted_best == "ELL"
        assert r.measured_best == "CSR"

    def test_regret_penalty(self):
        # model picked ELL (2us) where CSR (1us) measured best: +100 %
        assert _record().regret() == pytest.approx(1.0)

    def test_zero_regret_on_agreement(self):
        r = _record(measured={"ELL": 1e-6, "CSR": 2e-6})
        assert r.regret() == 0.0

    def test_no_measurement_means_no_regret(self):
        assert _record(measured={}).regret() is None
        assert _record(measured={}).measured_best is None

    def test_no_prediction_means_no_regret(self):
        r = _record(predicted={})
        assert r.predicted_best is None
        assert r.regret() is None

    def test_predicted_best_missing_from_measured(self):
        r = _record(measured={"CSR": 1e-6})
        assert r.regret() is None

    def test_zero_best_cost_guard(self):
        r = _record(measured={"ELL": 0.0, "CSR": 0.0})
        assert r.regret() == 0.0

    def test_dict_round_trip(self):
        r = _record()
        assert DecisionRecord.from_dict(r.as_dict()) == r


class TestDatasetLabel:
    def test_default_is_empty(self):
        assert current_dataset() == ""

    def test_context_sets_and_restores(self):
        with audit_dataset("webspam"):
            assert current_dataset() == "webspam"
            with audit_dataset("inner"):
                assert current_dataset() == "inner"
            assert current_dataset() == "webspam"
        assert current_dataset() == ""


class TestAuditLog:
    def test_record_and_filter_by_source(self):
        log = AuditLog()
        log.record(_record(source="schedule"))
        log.record(_record(source="serve"))
        assert len(log) == 2
        assert [r.source for r in log.records("serve")] == ["serve"]

    def test_bounded(self):
        log = AuditLog(maxlen=2)
        for i in range(4):
            log.record(_record(reason=str(i)))
        assert [r.reason for r in log.records()] == ["2", "3"]

    def test_rejects_bad_maxlen(self):
        with pytest.raises(ValueError):
            AuditLog(maxlen=0)

    def test_measurement_dedupe_keys(self):
        log = AuditLog()
        key = (("m", 10.0), 1)
        assert not log.seen_measurement(key)
        log.mark_measured(key)
        assert log.seen_measurement(key)
        log.clear()
        assert not log.seen_measurement(key)
        assert len(log) == 0


class TestRegretTable:
    def test_rows_follow_records(self):
        rows = regret_rows([_record(), _record(dataset="")])
        assert rows[0].dataset == "synthetic"
        assert rows[1].dataset == "<unlabelled>"
        assert rows[0].regret == pytest.approx(1.0)

    def test_render_contains_all_rows(self):
        rows = regret_rows(
            [_record(), _record(measured={}, dataset="nomeas")]
        )
        text = render_regret_table(rows)
        assert "synthetic" in text
        assert "nomeas" in text
        assert "100.0%" in text
        assert "--" in text  # the unmeasured row renders a placeholder
