"""End-to-end instrumentation: real pipelines produce real span trees.

Every test runs the actual subsystem (SMO solver, scheduler, format
conversion, parallel kernels, serving loop) under the enabled global
tracer and asserts on the recorded spans, audit records, and shard-
merged metrics — the contract the exporters and the regret report
stand on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.scheduler import LayoutScheduler
from repro.data.synthetic import uniform_rows_matrix
from repro.formats.convert import convert, from_dense
from repro.obs.audit import audit_dataset, audit_log
from repro.obs.trace import span_tree
from repro.parallel.kernels import parallel_matvec
from repro.parallel.pool import WorkerPool
from repro.serve.bench import CLASSIC_SERVE_FORMATS, flip_model
from repro.serve.engine import InferenceEngine
from repro.serve.loadgen import open_loop, query_sampler, simulate
from repro.serve.rescheduler import FormatRescheduler
from repro.svm.kernels import LinearKernel
from repro.svm.smo import smo_train


def _spans(tracer, name):
    return [s for s in tracer.spans() if s.name == name]


def _toy_problem(seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((24, 6))
    y = np.where(x[:, 0] + x[:, 1] > 0, 1.0, -1.0)
    return from_dense(x, "CSR"), y


class TestSmoInstrumentation:
    def test_train_span_parents_every_iteration(self, global_tracer):
        X, y = _toy_problem()
        res = smo_train(X, y, LinearKernel(), C=1.0)
        trains = _spans(global_tracer, "smo.train")
        assert len(trains) == 1
        train = trains[0]
        assert dict(train.attrs)["iterations"] == res.iterations
        iters = _spans(global_tracer, "smo.iteration")
        assert len(iters) == res.iterations
        assert all(s.parent_id == train.span_id for s in iters)

    def test_tracing_does_not_change_the_solution(self, global_tracer):
        X, y = _toy_problem()
        traced = smo_train(X, y, LinearKernel(), C=1.0)
        global_tracer.disable()
        bare = smo_train(X, y, LinearKernel(), C=1.0)
        assert traced.iterations == bare.iterations
        assert np.array_equal(traced.alpha, bare.alpha)
        assert traced.b == bare.b


class TestSchedulerInstrumentation:
    def _coo(self, seed=0):
        return uniform_rows_matrix(128, 64, 8, seed=seed)

    def test_decide_records_span_and_audit(self, global_tracer):
        rows, cols, values, shape = self._coo()
        sched = LayoutScheduler("cost")
        with audit_dataset("toy"):
            decision = sched.decide_from_coo(rows, cols, values, shape)
        decides = _spans(global_tracer, "schedule.decide")
        assert len(decides) == 1
        attrs = dict(decides[0].attrs)
        assert attrs["fmt"] == decision.fmt
        assert attrs["cached"] is False
        records = audit_log().records("schedule")
        assert len(records) == 1
        rec = records[0]
        assert rec.dataset == "toy"
        assert rec.chosen == decision.fmt
        assert rec.predicted  # analytic costs always present
        assert rec.features["m"] == 128.0

    def test_traced_decide_measures_once_per_profile(
        self, global_tracer
    ):
        rows, cols, values, shape = self._coo()
        sched = LayoutScheduler("cost")
        sched.decide_from_coo(rows, cols, values, shape)
        first = audit_log().records("schedule")[-1]
        assert first.measured  # tracing bought a measurement
        assert first.regret() is not None
        # An identical matrix hits the decision cache AND the
        # measurement-dedupe key: no second schedule.measure span.
        sched.cache.clear()  # force a re-decide, keep the measure key
        sched.decide_from_coo(rows, cols, values, shape)
        assert len(_spans(global_tracer, "schedule.measure")) == 1


class TestConvertInstrumentation:
    def test_convert_span_carries_endpoints(self, global_tracer):
        rows, cols, values, shape = uniform_rows_matrix(
            64, 32, 4, seed=1
        )
        from repro.formats.csr import CSRMatrix

        matrix = CSRMatrix.from_coo(rows, cols, values, shape)
        out = convert(matrix, "ELL")
        assert out.name == "ELL"
        convs = _spans(global_tracer, "formats.convert")
        assert len(convs) == 1
        attrs = dict(convs[0].attrs)
        assert attrs["from"] == "CSR"
        assert attrs["to"] == "ELL"
        assert attrs["nnz"] == matrix.nnz

    def test_noop_conversion_records_nothing(self, global_tracer):
        rows, cols, values, shape = uniform_rows_matrix(
            64, 32, 4, seed=1
        )
        from repro.formats.csr import CSRMatrix

        matrix = CSRMatrix.from_coo(rows, cols, values, shape)
        assert convert(matrix, "CSR") is matrix
        assert _spans(global_tracer, "formats.convert") == []


class TestParallelInstrumentation:
    def test_parallel_region_span_and_shard_merged_metrics(
        self, global_tracer, global_registry
    ):
        rows, cols, values, shape = uniform_rows_matrix(
            2048, 64, 8, seed=2
        )
        from repro.formats.csr import CSRMatrix

        matrix = CSRMatrix.from_coo(rows, cols, values, shape)
        x = np.ones(shape[1])
        with WorkerPool(2) as pool:
            y = parallel_matvec(matrix, x, pool=pool)
        assert np.allclose(y, matrix.matvec(x))
        regions = _spans(global_tracer, "parallel.matvec")
        assert len(regions) == 1
        attrs = dict(regions[0].attrs)
        assert attrs["fmt"] == "CSR"
        assert attrs["n_blocks"] == 2
        blocks = global_registry.get("repro_parallel.blocks")
        seconds = global_registry.get("repro_parallel.block_seconds")
        assert blocks.value == 2.0
        assert seconds.count == 2
        assert seconds.percentile(50.0) >= 0.0


class TestServeInstrumentation:
    def test_simulate_span_tree_and_serve_audit(self, global_tracer):
        model = flip_model(seed=0)
        resch = FormatRescheduler(
            window=16,
            check_every=4,
            min_gain=0.0,
            candidates=CLASSIC_SERVE_FORMATS,
        )
        engine = InferenceEngine(model)
        engine.convert_to(resch.initial_format(model.matrix))
        sampler = query_sampler(model.n_features, 10)
        workload = open_loop(48, 20_000.0, sampler, seed=4)
        with audit_dataset("flip-demo"):
            report = simulate(
                engine, workload, max_batch=8, max_wait_ms=2.0,
                rescheduler=resch,
            )
        sims = _spans(global_tracer, "serve.simulate")
        assert len(sims) == 1
        sim = sims[0]
        assert dict(sim.attrs)["n"] == 48
        # admits and batches hang off the simulate root
        roots = span_tree(global_tracer.spans())
        sim_node = [
            n for n in roots if n.record.name == "serve.simulate"
        ][0]
        child_names = {c.record.name for c in sim_node.children}
        assert "serve.admit" in child_names
        assert len(_spans(global_tracer, "serve.batch")) > 0
        # the fast open-loop stream coalesces wide batches, so the
        # rescheduler flips off the batch_k=1 format and audits it
        assert report.events, "expected at least one runtime flip"
        assert len(_spans(global_tracer, "serve.reschedule")) >= 1
        serve_records = audit_log().records("serve")
        assert len(serve_records) == len(report.events)
        rec = serve_records[0]
        assert rec.dataset == "flip-demo"
        assert rec.chosen == report.events[0].to_fmt
        assert rec.batch_k == report.events[0].effective_k
        assert rec.predicted

    def test_simulation_identical_with_tracing_off(self, global_tracer):
        model = flip_model(seed=1)
        sampler = query_sampler(model.n_features, 10)
        workload = open_loop(24, 50.0, sampler, seed=5)
        traced = simulate(
            InferenceEngine(model.clone()), workload
        ).responses
        global_tracer.disable()
        bare = simulate(
            InferenceEngine(model.clone()), workload
        ).responses
        assert traced == bare
