"""The regret report suite — including the known-correct dense pin."""

from __future__ import annotations

import pytest

from repro.formats.base import FORMAT_NAMES
from repro.obs.report import (
    REPORT_DATASET_NAMES,
    render_report,
    report_payload,
    run_report,
)


@pytest.fixture(scope="module")
def quick_records():
    """One quick suite run shared across the module (probe-heavy)."""
    return run_report(quick=True, repeats=1, seed=0)


class TestRunReport:
    def test_one_record_per_dataset(self, quick_records):
        assert [r.dataset for r in quick_records] == list(
            REPORT_DATASET_NAMES
        )
        assert len(quick_records) == 5

    def test_records_carry_full_evidence(self, quick_records):
        for r in quick_records:
            assert r.source == "schedule"
            assert set(r.predicted) == set(FORMAT_NAMES)
            assert set(r.measured) == set(FORMAT_NAMES)
            assert r.features["m"] > 0
            assert r.chosen == r.predicted_best

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_report(repeats=0)

    def test_dense_dataset_has_zero_regret(self, quick_records):
        """Acceptance-criteria pin: on the known-correct dense dataset
        the model and the machine agree (DEN), so regret is exactly 0.
        """
        dense = [r for r in quick_records if r.dataset == "dense"][0]
        assert dense.predicted_best == "DEN"
        assert dense.measured_best == "DEN"
        assert dense.regret() == 0.0


class TestReportPayload:
    def test_aggregate_fields(self, quick_records):
        payload = report_payload(quick_records)
        assert payload["n_datasets"] == 5
        assert 0 <= payload["n_agreements"] <= 5
        assert payload["mean_regret"] is not None
        assert payload["mean_regret"] >= 0.0
        assert payload["max_regret"] >= payload["mean_regret"] or (
            payload["max_regret"] == payload["mean_regret"]
        )
        assert len(payload["rows"]) == 5
        assert len(payload["records"]) == 5

    def test_payload_handles_unmeasured_records(self, quick_records):
        bare = [
            type(r).from_dict({**r.as_dict(), "measured": {}})
            for r in quick_records
        ]
        payload = report_payload(bare)
        assert payload["mean_regret"] is None
        assert payload["max_regret"] is None


class TestRenderReport:
    def test_table_and_summary_line(self, quick_records):
        text = render_report(quick_records)
        for name in REPORT_DATASET_NAMES:
            assert name in text
        assert "prediction matched measurement on" in text
        assert "mean regret" in text
