"""SLO monitor: burn-rate math, hysteresis, breach side effects."""

from __future__ import annotations

import pytest

from repro.obs.flight import FlightRecorder, read_flight_dump
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import (
    SLOMonitor,
    SLOSpec,
    default_slos,
    render_slo,
)
from repro.obs.trace import Tracer


def latency_spec(**overrides):
    kwargs = dict(
        name="lat",
        kind="latency",
        objective=0.9,  # 10 % error budget: burn = bad_ratio * 10
        threshold_ms=10.0,
        long_window_s=10.0,
        short_window_s=10.0,
        burn_factor=2.0,
        min_events=4,
    )
    kwargs.update(overrides)
    return SLOSpec(**kwargs)


class TestSLOSpec:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            SLOSpec("x", "nope")
        with pytest.raises(ValueError):
            SLOSpec("x", "latency", objective=1.0)
        with pytest.raises(ValueError):
            SLOSpec(
                "x", "latency", long_window_s=1.0, short_window_s=2.0
            )

    def test_bad_event_semantics_per_kind(self):
        lat = latency_spec()
        assert lat.bad(11.0) and not lat.bad(9.0)
        dl = SLOSpec("d", "deadline")
        assert dl.bad(1.0) and not dl.bad(0.0)

    def test_error_budget_is_objective_complement(self):
        assert latency_spec().error_budget == pytest.approx(0.1)

    def test_default_slos_cover_all_kinds(self):
        kinds = {s.kind for s in default_slos()}
        assert kinds == {
            "latency", "deadline", "rejection", "saturation"
        }


class TestBurnRateMath:
    def test_burn_is_bad_ratio_over_budget(self):
        monitor = SLOMonitor([latency_spec()], check_every=10_000)
        # 2 bad of 8 in-window: bad_ratio 0.25, burn 2.5 over the
        # 10 % budget.
        for i in range(6):
            monitor.observe_latency(float(i) * 0.1, 0.001)
        monitor.observe_latency(0.8, 0.020)
        monitor.observe_latency(0.9, 0.020)
        (status,) = monitor.evaluate(1.0)
        assert status.events_long == 8
        assert status.bad_long == 2
        assert status.burn_long == pytest.approx(2.5)
        assert status.breached

    def test_min_events_guards_early_noise(self):
        monitor = SLOMonitor(
            [latency_spec(min_events=16)], check_every=10_000
        )
        for i in range(4):
            monitor.observe_latency(float(i) * 0.01, 0.020)
        (status,) = monitor.evaluate(0.1)
        assert status.burn_long > 2.0
        assert not status.breached  # 4 events < min 16

    def test_short_window_must_also_burn(self):
        # Bad events only in the old part of the long window: long
        # burns, short (recent) does not — no page for a recovered
        # incident.
        spec = latency_spec(short_window_s=1.0, min_events=4)
        monitor = SLOMonitor([spec], check_every=10_000)
        for i in range(6):
            monitor.observe_latency(float(i) * 0.1, 0.020)  # bad, old
        for i in range(12):
            monitor.observe_latency(9.2 + i * 0.05, 0.001)  # good, new
        (status,) = monitor.evaluate(9.9)
        assert status.burn_long >= 2.0
        assert status.burn_short < 2.0
        assert not status.breached

    def test_events_outside_long_window_age_out(self):
        monitor = SLOMonitor([latency_spec()], check_every=10_000)
        monitor.observe_latency(0.0, 0.020)
        for i in range(8):
            monitor.observe_latency(20.0 + i * 0.1, 0.001)
        (status,) = monitor.evaluate(21.0)
        assert status.bad_long == 0
        assert not status.breached


class TestBreachLifecycle:
    def test_fires_once_per_episode_with_hysteresis(self):
        monitor = SLOMonitor([latency_spec()], check_every=10_000)
        for i in range(8):
            monitor.observe_latency(float(i) * 0.01, 0.020)
        monitor.evaluate(0.1)
        monitor.evaluate(0.11)  # still breached: no second alert
        assert len(monitor.breaches) == 1
        # Recovery: the window drains, burn falls under the factor,
        # the spec re-arms, a fresh episode fires a second alert.
        for i in range(32):
            monitor.observe_latency(11.0 + i * 0.01, 0.001)
        monitor.evaluate(12.0)
        assert len(monitor.breaches) == 1
        for i in range(16):
            monitor.observe_latency(30.0 + i * 0.01, 0.020)
        monitor.evaluate(30.5)
        assert len(monitor.breaches) == 2

    def test_self_evaluates_every_check_every(self):
        monitor = SLOMonitor([latency_spec()], check_every=8)
        for i in range(8):
            monitor.observe_latency(float(i) * 0.01, 0.020)
        assert len(monitor.breaches) == 1  # no explicit evaluate()

    def test_breach_emits_instant_flight_and_gauges(self):
        tracer = Tracer(enabled=True)
        flight = FlightRecorder(enabled=True)
        registry = MetricsRegistry()
        monitor = SLOMonitor(
            [latency_spec()],
            tracer=tracer,
            flight=flight,
            registry=registry,
            check_every=10_000,
        )
        for i in range(8):
            monitor.observe_latency(float(i) * 0.01, 0.020)
        monitor.evaluate(0.1)
        instants = [
            s for s in tracer.spans() if s.name == "slo.breach"
        ]
        assert len(instants) == 1
        assert dict(instants[0].attrs)["slo"] == "lat"
        assert [e["kind"] for e in flight.events()] == ["slo_breach"]
        as_dict = registry.as_dict()
        assert as_dict["repro_slo.lat.burn_long"] >= 2.0

    def test_breach_with_dump_path_writes_flight_dump(self, tmp_path):
        path = tmp_path / "slo-flight.jsonl"
        flight = FlightRecorder(enabled=True)
        monitor = SLOMonitor(
            [latency_spec()],
            flight=flight,
            dump_path=path,
            check_every=10_000,
        )
        for i in range(8):
            monitor.observe_latency(float(i) * 0.01, 0.020)
        monitor.evaluate(0.1)
        dump = read_flight_dump(path)
        assert dump["header"]["reason"] == "slo_breach:lat"
        assert any(
            e["kind"] == "slo_breach" for e in dump["events"]
        )

    def test_shard_observation_sets_backlog_gauge(self):
        registry = MetricsRegistry()
        monitor = SLOMonitor(
            default_slos(), registry=registry, check_every=10_000
        )
        monitor.observe_shard(1.0, 2, 0.005)
        assert registry.as_dict()[
            "repro_slo.shard2.backlog_ms"
        ] == pytest.approx(5.0)


class TestReporting:
    def test_payload_and_render(self):
        monitor = SLOMonitor([latency_spec()], check_every=10_000)
        for i in range(8):
            monitor.observe_latency(float(i) * 0.01, 0.020)
        monitor.evaluate(0.1)
        payload = monitor.payload()
        assert payload["specs"][0]["name"] == "lat"
        assert payload["statuses"][0]["breached"] is True
        assert len(payload["breaches"]) == 1
        text = render_slo(monitor)
        assert "lat" in text and "BREACHED" in text

    def test_monitor_rejects_bad_construction(self):
        with pytest.raises(ValueError):
            SLOMonitor([latency_spec()], check_every=0)
        with pytest.raises(ValueError):
            SLOMonitor([latency_spec(), latency_spec()])
