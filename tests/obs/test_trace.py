"""Tracer core: no-op contract, nesting, ring buffer, span trees."""

from __future__ import annotations

import threading

import pytest

from repro.obs.trace import (
    NOOP_SPAN,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span_tree,
    trace_enabled,
)


class FakeClock:
    """A deterministic clock ticking one unit per read."""

    def __init__(self) -> None:
        self.t = 0.0

    def __call__(self) -> float:
        self.t += 1.0
        return self.t


class TestDisabledMode:
    def test_span_is_the_noop_singleton(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NOOP_SPAN
        assert tracer.span("a") is tracer.span("b")

    def test_noop_span_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x") as sp:
            sp.set("key", "value")
        assert len(tracer) == 0
        assert tracer.spans() == []
        assert tracer.dropped == 0

    def test_noop_span_has_no_instance_dict(self):
        # __slots__ = () means a no-op span cannot accumulate state —
        # the zero-allocation claim, checked structurally.
        assert not hasattr(NOOP_SPAN, "__dict__")


class TestEnabledMode:
    def test_records_one_span(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, clock=clock)
        with tracer.span("work") as sp:
            sp.set("n", 3)
        spans = tracer.spans()
        assert len(spans) == 1
        rec = spans[0]
        assert rec.name == "work"
        assert rec.parent_id is None
        assert rec.attrs == (("n", 3),)
        assert rec.start == 1.0 and rec.end == 2.0
        assert rec.duration == 1.0

    def test_nesting_sets_parent_ids(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("outer") as outer:
            with tracer.span("inner"):
                pass
            with tracer.span("inner"):
                pass
        spans = {  # noqa: F841 - readability
            (s.name, s.parent_id) for s in tracer.spans()
        }
        outer_rec = [s for s in tracer.spans() if s.name == "outer"][0]
        inners = [s for s in tracer.spans() if s.name == "inner"]
        assert outer_rec.parent_id is None
        assert all(s.parent_id == outer_rec.span_id for s in inners)
        assert outer.span_id == outer_rec.span_id

    def test_children_close_before_parents(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        names = [s.name for s in tracer.spans()]
        assert names == ["inner", "outer"]

    def test_sibling_spans_share_parent_none(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert [s.parent_id for s in tracer.spans()] == [None, None]

    def test_attrs_are_sorted_tuples(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with tracer.span("x") as sp:
            sp.set("zeta", 1)
            sp.set("alpha", 2)
        assert tracer.spans()[0].attrs == (("alpha", 2), ("zeta", 1))

    def test_exceptions_propagate_and_span_still_records(self):
        tracer = Tracer(enabled=True, clock=FakeClock())
        with pytest.raises(RuntimeError):
            with tracer.span("failing"):
                raise RuntimeError("boom")
        assert [s.name for s in tracer.spans()] == ["failing"]


class TestRingBuffer:
    def test_oldest_spans_dropped_and_counted(self):
        tracer = Tracer(enabled=True, max_spans=3, clock=FakeClock())
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer) == 3
        assert tracer.dropped == 2
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_clear_resets_buffer_and_drop_count(self):
        tracer = Tracer(enabled=True, max_spans=1, clock=FakeClock())
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        assert tracer.dropped == 1
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            Tracer(max_spans=0)


class TestThreadSafety:
    def test_concurrent_spans_all_recorded(self):
        tracer = Tracer(enabled=True)

        def work():
            for _ in range(50):
                with tracer.span("t"):
                    pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(tracer) == 200


class TestSpanTree:
    def _rec(self, sid, parent, name, start):
        return SpanRecord(
            span_id=sid, parent_id=parent, name=name,
            start=start, end=start + 1.0,
        )

    def test_forest_reconstruction(self):
        records = [
            self._rec(1, None, "root", 0.0),
            self._rec(2, 1, "child-b", 2.0),
            self._rec(3, 1, "child-a", 1.0),
            self._rec(4, 3, "grandchild", 1.5),
        ]
        roots = span_tree(records)
        assert len(roots) == 1
        root = roots[0]
        assert root.record.name == "root"
        # children ordered by start time, not record order
        assert [c.record.name for c in root.children] == [
            "child-a", "child-b",
        ]
        assert root.children[0].children[0].record.name == "grandchild"

    def test_missing_parent_becomes_root(self):
        records = [self._rec(7, 99, "orphan", 0.0)]
        roots = span_tree(records)
        assert len(roots) == 1
        assert roots[0].record.name == "orphan"

    def test_as_dict_shape(self):
        roots = span_tree([self._rec(1, None, "only", 0.0)])
        d = roots[0].as_dict()
        assert d["name"] == "only"
        assert d["children"] == []


class TestGlobalTracer:
    def test_enable_disable_round_trip(self):
        tracer = get_tracer()
        prev = tracer.enabled
        try:
            enable_tracing()
            assert trace_enabled()
            assert get_tracer() is tracer
            disable_tracing()
            assert not trace_enabled()
            assert tracer.span("x") is NOOP_SPAN
        finally:
            tracer.enabled = prev


class TestInstantEvents:
    def test_instant_records_zero_duration_marker(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, clock=clock)
        tracer.instant("fleet.hotspot", {"model": "alpha"})
        (rec,) = tracer.spans()
        assert rec.start == rec.end
        attrs = dict(rec.attrs)
        assert attrs["instant"] is True
        assert attrs["model"] == "alpha"

    def test_instant_nests_under_the_open_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as sp:
            tracer.instant("marker")
        marker = next(
            s for s in tracer.spans() if s.name == "marker"
        )
        assert marker.parent_id == sp.span_id

    def test_disabled_instant_is_free(self):
        clock = FakeClock()
        tracer = Tracer(enabled=False, clock=clock)
        before = clock.t
        tracer.instant("marker", {"never": "computed"})
        assert len(tracer) == 0
        assert clock.t == before  # clock untouched


class TestTraceContext:
    def test_now_reads_the_injected_clock(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, clock=clock)
        first = tracer.now()
        assert tracer.now() > first

    def test_trace_ids_are_unique_and_increasing(self):
        from repro.obs.trace import TraceContext, new_trace_id

        a, b = new_trace_id(), new_trace_id()
        assert b > a
        ctx = TraceContext(trace_id=a, span_id=7)
        assert ctx.lane == 0  # door lane by default
