"""The tracing-overhead gate: deterministic checks plus the ratio."""

from __future__ import annotations

import pytest

from repro.obs.bench import (
    OVERHEAD_THRESHOLD,
    render_summary,
    run_overhead_bench,
    run_suite,
    write_report,
)


@pytest.fixture(scope="module")
def quick_payload():
    """One quick bench run shared across the module."""
    return run_overhead_bench(quick=True, rounds=3, calls=16)


class TestDeterministicGates:
    def test_noop_singleton_and_nothing_recorded(self, quick_payload):
        # The structural half of the <2 % claim: disabled-mode spans
        # are one shared immutable object and leave zero state behind.
        assert quick_payload["noop_singleton"] is True
        assert quick_payload["nothing_recorded"] is True

    def test_race_disabled_mode_is_structurally_free(self, quick_payload):
        # The race sanitizer's half of the same bargain: a disabled
        # make_lock is the exact built-in lock type and a disabled
        # track is the identity.
        assert quick_payload["race_plain_lock"] is True
        assert quick_payload["race_track_identity"] is True

    def test_headline_pass_requires_structural_gates(self, quick_payload):
        assert quick_payload["headline"]["pass"] in (True, False)
        if quick_payload["headline"]["pass"]:
            assert quick_payload["noop_singleton"]
            assert quick_payload["nothing_recorded"]
            assert quick_payload["race_plain_lock"]
            assert quick_payload["race_track_identity"]


class TestPayloadShape:
    def test_fields(self, quick_payload):
        p = quick_payload
        assert p["suite"] == "obs-overhead"
        assert p["quick"] is True
        assert p["rounds"] == 3
        assert p["calls_per_round"] == 16
        assert p["span_iters"] == 20_000
        assert p["threshold"] == OVERHEAD_THRESHOLD
        assert p["span_cost_s"] > 0.0
        assert p["smsv_cost_s"] > 0.0
        assert p["overhead_fraction"] == pytest.approx(
            p["span_cost_s"] / p["smsv_cost_s"]
        )
        assert p["headline"]["overhead_pct"] == pytest.approx(
            p["overhead_fraction"] * 100.0
        )
        assert p["race_guard_cost_s"] > 0.0
        assert p["race_overhead_fraction"] == pytest.approx(
            p["race_guard_cost_s"] / p["smsv_cost_s"]
        )
        assert p["headline"]["race_overhead_pct"] == pytest.approx(
            p["race_overhead_fraction"] * 100.0
        )

    def test_disabled_span_is_cheaper_than_a_kernel_call(
        self, quick_payload
    ):
        # The design point: one disabled span() costs far less than one
        # SMSV call, so instrumenting the hot loop is free in practice.
        assert quick_payload["span_cost_s"] < quick_payload["smsv_cost_s"]

    def test_disabled_race_guard_is_cheaper_than_a_kernel_call(
        self, quick_payload
    ):
        assert (
            quick_payload["race_guard_cost_s"]
            < quick_payload["smsv_cost_s"]
        )

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            run_overhead_bench(rounds=0)
        with pytest.raises(ValueError):
            run_overhead_bench(calls=0)


class TestSuiteAndRendering:
    def test_run_suite_maps_repeats_to_rounds(self):
        payload = run_suite(quick=True, repeats=2)
        assert payload["rounds"] == 2

    def test_render_summary_mentions_the_gate(self, quick_payload):
        text = render_summary(quick_payload)
        assert "overhead" in text
        assert "span" in text

    def test_write_report_is_json(self, tmp_path, quick_payload):
        import json

        path = tmp_path / "BENCH_obs.json"
        write_report(quick_payload, path)
        reloaded = json.loads(path.read_text())
        assert reloaded["suite"] == "obs-overhead"
