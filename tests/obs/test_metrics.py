"""Metrics registry: counters, gauges, NaN-free histograms, shards."""

from __future__ import annotations

import math
import threading

import numpy as np
import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SUMMARY_PERCENTILES,
    opcounter_view,
)
from repro.perf.counters import OpCounter


class TestCounter:
    def test_monotonic(self):
        c = Counter("c")
        c.inc()
        c.inc(4)
        assert c.value == 5.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("c").inc(-1)

    def test_merge_sums(self):
        a, b = Counter("c"), Counter("c")
        a.inc(2)
        b.inc(3)
        a.merge(b)
        assert a.value == 5.0


class TestGauge:
    def test_settable(self):
        g = Gauge("g")
        g.set(3.5)
        assert g.value == 3.5

    def test_callback_backed_is_live(self):
        box = {"v": 1.0}
        g = Gauge("g", fn=lambda: box["v"])
        assert g.value == 1.0
        box["v"] = 7.0
        assert g.value == 7.0

    def test_set_on_callback_gauge_rejected(self):
        g = Gauge("g", fn=lambda: 0.0)
        with pytest.raises(ValueError):
            g.set(1.0)

    def test_merge_last_write_wins(self):
        a, b = Gauge("g"), Gauge("g")
        a.set(1.0)
        b.set(9.0)
        a.merge(b)
        assert a.value == 9.0


class TestHistogramQuantiles:
    """The satellite fix: empty/one-sample windows are NaN-free."""

    def test_empty_window_is_all_zeros_never_nan(self):
        h = Histogram("h")
        s = h.summary()
        assert s == {
            "count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
            "mean": 0.0, "max": 0.0,
        }
        assert not any(
            isinstance(v, float) and math.isnan(v) for v in s.values()
        )
        assert h.percentile(99.0) == 0.0
        assert h.mean() == 0.0 and h.max() == 0.0

    def test_one_sample_reports_that_sample_everywhere(self):
        h = Histogram("h")
        h.observe(0.125)
        s = h.summary()
        for q in ("p50", "p95", "p99", "mean", "max"):
            assert s[q] == 0.125
        assert s["count"] == 1
        for q in (0.0, 50.0, 99.0, 100.0):
            assert h.percentile(q) == 0.125

    def test_percentiles_are_observed_samples(self):
        h = Histogram("h")
        samples = [0.001 * (i + 1) for i in range(17)]
        h.observe_many(samples)
        for q in SUMMARY_PERCENTILES:
            assert h.percentile(q) in samples

    def test_lower_method_matches_numpy(self):
        h = Histogram("h")
        h.observe_many([3.0, 1.0, 2.0, 4.0])
        arr = np.asarray([3.0, 1.0, 2.0, 4.0])
        assert h.percentile(50.0) == float(
            np.percentile(arr, 50.0, method="lower")
        )

    def test_percentile_range_validated(self):
        with pytest.raises(ValueError):
            Histogram("h").percentile(101.0)

    def test_bucket_counts_cumulative_with_inf(self):
        h = Histogram("h", buckets=(0.1, 1.0))
        h.observe_many([0.05, 0.5, 5.0])
        assert h.bucket_counts() == [
            (0.1, 1), (1.0, 2), (float("inf"), 3),
        ]

    def test_empty_bucket_counts(self):
        h = Histogram("h", buckets=(1.0,))
        assert h.bucket_counts() == [(1.0, 0), (float("inf"), 0)]

    def test_merge_concatenates_samples(self):
        a, b = Histogram("h"), Histogram("h")
        a.observe(1.0)
        b.observe(2.0)
        a.merge(b)
        assert a.count == 2
        assert a.total == 3.0


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")

    def test_kind_collision_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_collect_is_name_sorted(self):
        reg = MetricsRegistry()
        reg.counter("zz")
        reg.counter("aa")
        assert [m.name for m in reg.collect()] == ["aa", "zz"]

    def test_as_dict_snapshot(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(0.25)
        d = reg.as_dict()
        assert d["c"] == 2.0
        assert d["g"] == 1.5
        assert d["h"]["count"] == 1 and d["h"]["p50"] == 0.25

    def test_clear_and_len(self):
        reg = MetricsRegistry()
        reg.counter("c")
        assert len(reg) == 1
        reg.clear()
        assert len(reg) == 0
        assert reg.get("c") is None


class TestShards:
    def test_shard_fills_lock_free_and_merges_once(self):
        reg = MetricsRegistry()
        reg.counter("blocks").inc(1)
        shard = reg.shard()
        shard.counter("blocks").inc(2)
        shard.histogram("seconds").observe(0.5)
        shard.gauge("width").set(8.0)
        reg.merge(shard)
        assert reg.get("blocks").value == 3.0
        assert reg.get("seconds").count == 1
        assert reg.get("width").value == 8.0

    def test_parallel_workers_one_shard_each(self):
        reg = MetricsRegistry()
        shards = [reg.shard() for _ in range(4)]

        def work(shard, n):
            for _ in range(n):
                shard.counter("ops").inc()
                shard.histogram("t").observe(0.001)

        threads = [
            threading.Thread(target=work, args=(s, 25)) for s in shards
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for s in shards:
            reg.merge(s)
        assert reg.get("ops").value == 100.0
        assert reg.get("t").count == 100


class TestOpCounterView:
    def test_gauges_are_live_views_over_every_field(self):
        reg = MetricsRegistry()
        counter = OpCounter()
        gauges = opcounter_view(reg, counter, prefix="ops")
        assert {g.name for g in gauges} == {
            f"ops.{name}" for name in OpCounter.field_names()
        }
        counter.add_flops(42)
        counter.add_spmm(8)
        assert reg.get("ops.flops").value == 42.0
        assert reg.get("ops.spmm_calls").value == 1.0
        assert reg.get("ops.spmm_columns").value == 8.0
        counter.reset()
        assert reg.get("ops.flops").value == 0.0
