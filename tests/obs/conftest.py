"""Fixtures managing the process-wide observability singletons.

Tests must leave the global tracer/audit-log/registry exactly as they
found them so the suite passes identically with and without
``REPRO_TRACE=1`` in the environment (the ``traced-tests`` CI job runs
everything under it).
"""

from __future__ import annotations

import pytest

from repro.obs.audit import audit_log
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer


@pytest.fixture
def global_tracer():
    """The global tracer: cleared and enabled, prior state restored."""
    tracer = get_tracer()
    prev = tracer.enabled
    tracer.clear()
    audit_log().clear()
    tracer.enable()
    yield tracer
    tracer.clear()
    audit_log().clear()
    tracer.enabled = prev


@pytest.fixture
def global_registry():
    """The global registry, emptied for the test and after it."""
    registry = get_registry()
    registry.clear()
    yield registry
    registry.clear()
