"""The ``repro bench obs --fleet`` gate: deterministic criteria."""

from __future__ import annotations

import json

import pytest

from repro.obs.bench_fleet import (
    render_summary,
    run_fleet_trace_gate,
    run_slo_flight_gate,
    run_suite,
    write_report,
)
from repro.obs.trace import get_tracer


@pytest.fixture(scope="module")
def trace_gate():
    """One smoke trace gate shared across the module (spawns a fleet
    twice — traced and untraced)."""
    return run_fleet_trace_gate(smoke=True, workers=2)


class TestFleetTraceGate:
    def test_traced_outputs_bitwise_identical(self, trace_gate):
        assert trace_gate["labels_identical"] is True
        assert trace_gate["decisions_identical"] is True

    def test_every_worker_lane_present_with_valid_parents(
        self, trace_gate
    ):
        assert trace_gate["worker_lanes"] == [1, 2]
        assert trace_gate["lanes_complete"] is True
        assert trace_gate["cross_boundary_spans"] > 0
        assert trace_gate["bad_parents"] == 0
        assert trace_gate["unresolved"] == 0

    def test_chrome_export_validates(self, trace_gate):
        assert trace_gate["chrome_valid"] is True
        assert trace_gate["chrome_events"] >= trace_gate["n_spans"]

    def test_gate_passes_and_restores_tracer(self, trace_gate):
        assert trace_gate["pass"] is True
        # The gate flips the global tracer around its two sessions;
        # whatever state the suite started in must survive.
        assert len(get_tracer()) == 0 or get_tracer().enabled


class TestSLOFlightGate:
    def test_breach_and_dump_are_deterministic(self, tmp_path):
        result = run_slo_flight_gate(smoke=True, workdir=tmp_path)
        assert result["breaches"] >= 1
        assert result["dump_written"] is True
        assert result["dump_reason"] == "slo_breach:latency_impossible"
        assert result["dump_parses"] is True
        assert result["pass"] is True
        assert (tmp_path / "flight-slo-breach.jsonl").exists()


class TestSuite:
    def test_suite_combines_all_three_gates(self, tmp_path):
        payload = run_suite(quick=True, repeats=2, workers=2)
        assert payload["suite"] == "obs-fleet"
        assert set(payload) >= {
            "overhead", "fleet_trace", "slo_flight", "headline"
        }
        if payload["headline"]["pass"]:
            assert payload["fleet_trace"]["pass"]
            assert payload["slo_flight"]["pass"]
            assert payload["overhead"]["headline"]["pass"]
        text = render_summary(payload)
        assert "bitwise" in text and "slo breach" in text
        out = tmp_path / "BENCH_obs.json"
        write_report(payload, out)
        assert json.loads(out.read_text())["suite"] == "obs-fleet"
