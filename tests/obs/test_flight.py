"""Flight recorder: free when disabled, bounded, dump round trips."""

from __future__ import annotations

import json
import os
import signal
import threading

import pytest

from repro.obs.flight import (
    FlightRecorder,
    disable_flight,
    enable_flight,
    flight_recorder,
    install_signal_dump,
    read_flight_dump,
    render_flight,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


class TestDisabledIsFree:
    def test_record_on_disabled_ring_keeps_nothing(self):
        clock_calls = []

        def clock():
            clock_calls.append(1)
            return 0.0

        rec = FlightRecorder(enabled=False, clock=clock)
        rec.record("anything", detail="ignored")
        assert len(rec) == 0
        assert rec.dropped == 0
        assert not clock_calls  # the clock was never read

    def test_global_recorder_toggles(self):
        rec = flight_recorder()
        prev = rec.enabled
        try:
            assert enable_flight() is rec and rec.enabled
            assert disable_flight() is rec and not rec.enabled
        finally:
            rec.enabled = prev


class TestRing:
    def test_bounded_with_drop_counter(self):
        rec = FlightRecorder(capacity=3, enabled=True)
        for i in range(5):
            rec.record("e", i=i)
        assert len(rec) == 3
        assert rec.dropped == 2
        assert [e["i"] for e in rec.events()] == [2, 3, 4]

    def test_clear_resets_everything(self):
        rec = FlightRecorder(capacity=2, enabled=True)
        for i in range(4):
            rec.record("e", i=i)
        rec.clear()
        assert len(rec) == 0 and rec.dropped == 0

    def test_rejects_zero_capacity(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_events_carry_clock_and_kind(self):
        t = [0.0]

        def clock():
            t[0] += 1.0
            return t[0]

        rec = FlightRecorder(enabled=True, clock=clock)
        rec.record("rebalance", model="alpha")
        (event,) = rec.events()
        assert event["kind"] == "rebalance"
        assert event["t"] == 1.0
        assert event["model"] == "alpha"


class TestDumpRoundTrip:
    def test_dump_and_read(self, tmp_path):
        rec = FlightRecorder(enabled=True)
        rec.record("worker_error", worker=2, error="boom")
        tracer = Tracer(enabled=True)
        with tracer.span("serve.batch"):
            pass
        registry = MetricsRegistry()
        registry.gauge("g", "help").set(4.0)
        path = tmp_path / "flight.jsonl"
        out = rec.dump(
            path, reason="test", tracer=tracer, registry=registry
        )
        assert out == path
        dump = read_flight_dump(path)
        assert dump["header"]["reason"] == "test"
        assert dump["header"]["pid"] == os.getpid()
        assert dump["header"]["n_events"] == 1
        assert dump["events"][0]["error"] == "boom"
        assert [s["name"] for s in dump["spans"]] == ["serve.batch"]
        assert dump["metrics"]["g"] == 4.0

    def test_span_tail_limits_spans(self, tmp_path):
        rec = FlightRecorder(enabled=True)
        tracer = Tracer(enabled=True)
        for _ in range(10):
            with tracer.span("s"):
                pass
        path = rec.dump(
            tmp_path / "f.jsonl",
            tracer=tracer,
            registry=MetricsRegistry(),
            span_tail=3,
        )
        assert read_flight_dump(path)["header"]["n_spans"] == 3

    def test_disabled_recorder_still_dumps_header(self, tmp_path):
        rec = FlightRecorder(enabled=False)
        path = rec.dump(
            tmp_path / "f.jsonl",
            reason="manual",
            tracer=Tracer(enabled=False),
            registry=MetricsRegistry(),
        )
        dump = read_flight_dump(path)
        assert dump["header"]["n_events"] == 0
        assert dump["events"] == []

    def test_default_path_honors_flight_dir(
        self, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        rec = FlightRecorder(enabled=True)
        out = rec.dump(
            tracer=Tracer(enabled=False), registry=MetricsRegistry()
        )
        assert out.parent == tmp_path
        assert out.name.startswith("flight-")

    def test_read_rejects_non_dump_file(self, tmp_path):
        path = tmp_path / "not-a-dump.jsonl"
        path.write_text(json.dumps({"event": {"kind": "x"}}) + "\n")
        with pytest.raises(ValueError):
            read_flight_dump(path)

    def test_render_mentions_reason_and_events(self, tmp_path):
        rec = FlightRecorder(enabled=True)
        rec.record("slo_breach", slo="lat")
        path = rec.dump(
            tmp_path / "f.jsonl",
            reason="slo_breach:lat",
            tracer=Tracer(enabled=False),
            registry=MetricsRegistry(),
        )
        text = render_flight(read_flight_dump(path))
        assert "slo_breach:lat" in text
        assert "slo=lat" in text


class TestSignalDump:
    def test_installs_and_dumps_on_signal(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_FLIGHT_DIR", str(tmp_path))
        rec = FlightRecorder(enabled=True)
        rec.record("before_signal")
        prev = signal.getsignal(signal.SIGUSR1)
        try:
            assert install_signal_dump(recorder=rec) is True
            os.kill(os.getpid(), signal.SIGUSR1)
            dumps = sorted(tmp_path.glob("flight-*.jsonl"))
            assert dumps
            parsed = read_flight_dump(dumps[-1])
            assert parsed["header"]["reason"].startswith("signal")
            assert parsed["events"][0]["kind"] == "before_signal"
        finally:
            signal.signal(signal.SIGUSR1, prev)

    def test_install_fails_gracefully_off_main_thread(self):
        results = []
        t = threading.Thread(
            target=lambda: results.append(install_signal_dump())
        )
        t.start()
        t.join()
        assert results == [False]
