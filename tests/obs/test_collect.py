"""Fleet trace merging: re-identification, re-parenting, lanes.

These tests drive :func:`repro.obs.collect.merge_fleet_trace` and the
chrome exporter with hand-built rings — no processes — so every edge
(id collisions, clock offsets, killed workers, unresolvable parents)
is pinned deterministically.  The end-to-end process-fleet path is
covered in ``tests/serve/test_fleet_trace.py``.
"""

from __future__ import annotations

import json

import pytest

from repro.obs.audit import AuditLog, DecisionRecord
from repro.obs.collect import (
    MergedTrace,
    WorkerTraceBuffer,
    clear_fleet_trace,
    fold_worker_audits,
    last_fleet_trace,
    merge_fleet_trace,
    mount_tracer_health,
    publish_fleet_trace,
)
from repro.obs.export import (
    merged_to_chrome_trace,
    validate_chrome_trace,
    write_merged_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    CTX_PARENT_LANE,
    CTX_PARENT_SPAN,
    CTX_TRACE_ID,
    DOOR_LANE,
    SpanRecord,
    TraceContext,
    Tracer,
    new_trace_id,
)


def _span(span_id, name, start, end, parent_id=None, attrs=()):
    return SpanRecord(
        span_id=span_id,
        parent_id=parent_id,
        name=name,
        start=start,
        end=end,
        attrs=tuple(sorted(attrs)),
    )


def _worker_span(span_id, name, start, end, door_span, **extra):
    """A worker-side span carrying a cross-process parent link."""
    attrs = [
        (CTX_TRACE_ID, 1),
        (CTX_PARENT_SPAN, door_span),
        (CTX_PARENT_LANE, DOOR_LANE),
    ] + list(extra.items())
    return _span(span_id, name, start, end, attrs=attrs)


def two_worker_fixture():
    """Door with two requests, two workers each serving one of them.

    Every ring numbers its spans from 1 — the id-collision case the
    merge exists to solve.
    """
    door = [
        _span(1, "fleet.request", 0.0, 5.0),
        _span(2, "fleet.request", 1.0, 6.0),
        _span(3, "door.internal", 2.0, 3.0, parent_id=1),
    ]
    buffers = [
        WorkerTraceBuffer(
            worker_id=0,
            pid=100,
            spans=(
                _worker_span(1, "fleet.worker.predict", 0.5, 4.5, 1),
                _span(2, "serve.batch", 1.0, 2.0, parent_id=1),
            ),
        ),
        WorkerTraceBuffer(
            worker_id=1,
            pid=101,
            spans=(
                _worker_span(1, "fleet.worker.predict", 1.5, 5.5, 2),
            ),
            dropped=3,
        ),
    ]
    return door, buffers


class TestMergeFleetTrace:
    def test_reids_into_one_namespace(self):
        door, buffers = two_worker_fixture()
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        ids = [s.span_id for s in merged.spans]
        assert len(ids) == len(set(ids)) == 6
        assert sorted(merged.lanes[i] for i in ids) == [0, 0, 0, 1, 1, 2]

    def test_cross_boundary_parents_resolve_to_door_spans(self):
        door, buffers = two_worker_fixture()
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        by_id = {s.span_id: s for s in merged.spans}
        workers = [
            s for s in merged.spans
            if s.name == "fleet.worker.predict"
        ]
        assert len(workers) == 2
        for w in workers:
            parent = by_id[w.parent_id]
            assert parent.name == "fleet.request"
            assert merged.lanes[parent.span_id] == DOOR_LANE
        assert merged.unresolved == 0

    def test_local_parents_stay_within_their_lane(self):
        door, buffers = two_worker_fixture()
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        batch = next(
            s for s in merged.spans if s.name == "serve.batch"
        )
        parent_lane = merged.lanes[batch.parent_id]
        assert parent_lane == merged.lanes[batch.span_id] == 1
        internal = next(
            s for s in merged.spans if s.name == "door.internal"
        )
        assert merged.lanes[internal.parent_id] == DOOR_LANE

    def test_lane_metadata_and_drop_counts(self):
        door, buffers = two_worker_fixture()
        merged = merge_fleet_trace(
            door, buffers, door_pid=99, door_dropped=7
        )
        assert merged.names[DOOR_LANE] == "door (pid 99)"
        assert merged.names[1] == "worker 0 (pid 100)"
        assert merged.names[2] == "worker 1 (pid 101)"
        assert merged.pids == {0: 99, 1: 100, 2: 101}
        assert merged.dropped == {0: 7, 1: 0, 2: 3}
        assert merged.worker_lanes() == [1, 2]

    def test_clock_offset_rebases_worker_timestamps(self):
        door = [_span(1, "fleet.request", 0.0, 5.0)]
        buffers = [
            WorkerTraceBuffer(
                worker_id=0,
                pid=100,
                spans=(
                    _worker_span(
                        1, "fleet.worker.predict", 1000.5, 1004.5, 1
                    ),
                ),
                clock_offset=1000.0,
            )
        ]
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        w = next(
            s for s in merged.spans
            if s.name == "fleet.worker.predict"
        )
        assert w.start == pytest.approx(0.5)
        assert w.end == pytest.approx(4.5)

    def test_killed_worker_partial_buffer_keeps_merge_total(self):
        # Worker 1 died before collection: its buffer is simply
        # absent.  Worker 0's spans referencing a door span that was
        # itself evicted become roots, counted as unresolved.
        door = [_span(5, "fleet.request", 1.0, 2.0)]
        buffers = [
            WorkerTraceBuffer(
                worker_id=0,
                pid=100,
                spans=(
                    _worker_span(1, "fleet.worker.predict", 1.1, 1.9, 5),
                    # Parent span 4 was dropped from the door's ring.
                    _worker_span(2, "fleet.worker.predict", 0.2, 0.9, 4),
                ),
            ),
        ]
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        assert len(merged.spans) == 3
        assert merged.worker_lanes() == [1]
        orphan = next(s for s in merged.spans if s.start == 0.2)
        assert orphan.parent_id is None
        assert merged.unresolved == 1
        resolved = next(s for s in merged.spans if s.start == 1.1)
        assert resolved.parent_id is not None

    def test_spans_sorted_by_rebased_start(self):
        door, buffers = two_worker_fixture()
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        starts = [s.start for s in merged.spans]
        assert starts == sorted(starts)

    def test_round_trips_through_real_tracer_context(self):
        # The constants and TraceContext as the serving tier uses
        # them: a door tracer opens the request span, the worker
        # tracer records the ctx triplet under its own guard.
        door_tracer = Tracer(enabled=True)
        with door_tracer.span("fleet.request") as sp:
            ctx = TraceContext(new_trace_id(), sp.span_id, DOOR_LANE)
        worker_tracer = Tracer(enabled=True)
        with worker_tracer.span("fleet.worker.predict") as sp:
            sp.set(CTX_TRACE_ID, ctx.trace_id)
            sp.set(CTX_PARENT_SPAN, ctx.span_id)
            sp.set(CTX_PARENT_LANE, ctx.lane)
        merged = merge_fleet_trace(
            door_tracer.spans(),
            [
                WorkerTraceBuffer(
                    worker_id=0, pid=1, spans=tuple(worker_tracer.spans())
                )
            ],
            door_pid=0,
        )
        by_id = {s.span_id: s for s in merged.spans}
        w = next(
            s for s in merged.spans
            if s.name == "fleet.worker.predict"
        )
        assert by_id[w.parent_id].name == "fleet.request"
        assert merged.unresolved == 0


class TestChromeFleetExport:
    def test_schema_validates(self):
        door, buffers = two_worker_fixture()
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        payload = merged_to_chrome_trace(merged)
        validate_chrome_trace(payload)  # must not raise

    def test_one_pid_per_lane_with_unique_names(self):
        door, buffers = two_worker_fixture()
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        payload = merged_to_chrome_trace(merged)
        events = payload["traceEvents"]
        meta = [e for e in events if e["ph"] == "M"]
        meta_pids = [e["pid"] for e in meta]
        assert sorted(meta_pids) == [0, 1, 2]
        assert len(set(e["args"]["name"] for e in meta)) == 3
        span_events = [e for e in events if e["ph"] != "M"]
        assert {e["pid"] for e in span_events} == {0, 1, 2}
        assert all(e["tid"] == 1 for e in span_events)

    def test_timestamps_rebased_non_negative(self):
        door = [_span(1, "fleet.request", 100.0, 105.0)]
        merged = merge_fleet_trace(door, [], door_pid=99)
        payload = merged_to_chrome_trace(merged)
        xs = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert xs[0]["ts"] == pytest.approx(0.0)
        assert all(e["ts"] >= 0.0 for e in xs)

    def test_killed_worker_trace_still_exports(self, tmp_path):
        door = [_span(5, "fleet.request", 1.0, 2.0)]
        buffers = [
            WorkerTraceBuffer(
                worker_id=0,
                pid=100,
                spans=(
                    _worker_span(2, "fleet.worker.predict", 0.2, 0.9, 4),
                ),
            ),
        ]
        merged = merge_fleet_trace(door, buffers, door_pid=99)
        path = tmp_path / "chrome.json"
        write_merged_chrome_trace(merged, path)
        reloaded = json.loads(path.read_text())
        validate_chrome_trace(reloaded)
        assert {e["pid"] for e in reloaded["traceEvents"]} == {0, 1}


class TestFoldWorkerAudits:
    def _record(self, dataset=""):
        return DecisionRecord(
            source="serve",
            dataset=dataset,
            strategy="measured",
            batch_k=8,
            chosen="SELL",
            reason="test",
            cached=False,
        )

    def test_folds_into_given_log_in_worker_order(self):
        log = AuditLog()
        buffers = [
            WorkerTraceBuffer(
                worker_id=1, pid=2, spans=(),
                audit=(self._record("alpha"),),
            ),
            WorkerTraceBuffer(
                worker_id=0, pid=1, spans=(),
                audit=(self._record("beta"),),
            ),
        ]
        n = fold_worker_audits(buffers, log)
        assert n == 2
        assert [r.dataset for r in log.records()] == ["beta", "alpha"]

    def test_unlabelled_records_get_worker_dataset(self):
        log = AuditLog()
        buffers = [
            WorkerTraceBuffer(
                worker_id=3, pid=1, spans=(), audit=(self._record(),)
            )
        ]
        fold_worker_audits(buffers, log)
        assert log.records()[0].dataset == "worker-3"


class TestTracerHealthGauges:
    def test_mounted_gauges_track_the_ring_live(self):
        tracer = Tracer(enabled=True, max_spans=2)
        registry = MetricsRegistry()
        mount_tracer_health(registry, tracer)
        as_dict = registry.as_dict()
        assert as_dict["repro_obs.tracer_spans"] == 0.0
        for _ in range(3):
            with tracer.span("s"):
                pass
        as_dict = registry.as_dict()
        assert as_dict["repro_obs.tracer_spans"] == 2.0
        assert as_dict["repro_obs.tracer_dropped_spans"] == 1.0


class TestFleetTraceSlot:
    def test_publish_read_clear(self):
        clear_fleet_trace()
        assert last_fleet_trace() is None
        merged = MergedTrace(spans=[], lanes={})
        publish_fleet_trace(merged)
        assert last_fleet_trace() is merged
        clear_fleet_trace()
        assert last_fleet_trace() is None
