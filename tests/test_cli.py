"""CLI tests (invoked in-process via repro.cli.main)."""

import numpy as np
import pytest

from repro.cli import main
from repro.data import load_dataset, write_libsvm


@pytest.fixture
def libsvm_file(tmp_path):
    ds = load_dataset("aloi", seed=0, m_override=150)
    path = tmp_path / "aloi.libsvm"
    write_libsvm(path, (ds.rows, ds.cols, ds.values, ds.shape), ds.y)
    return str(path), ds.shape[1]


class TestCLI:
    def test_profile(self, libsvm_file, capsys):
        path, n = libsvm_file
        assert main(["profile", path, "--n-features", str(n)]) == 0
        out = capsys.readouterr().out
        assert "DatasetProfile" in out
        assert "vdim" in out

    def test_schedule(self, libsvm_file, capsys):
        path, n = libsvm_file
        assert (
            main(
                [
                    "schedule", path, "--n-features", str(n),
                    "--strategy", "cost",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "format" in out and "reason" in out

    def test_train(self, libsvm_file, capsys):
        path, n = libsvm_file
        assert (
            main(
                [
                    "train", path, "--n-features", str(n),
                    "--strategy", "cost", "--max-iter", "500",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "train acc" in out
        acc = float(
            [l for l in out.splitlines() if "train acc" in l][0].split(":")[1]
        )
        assert acc > 0.8

    def test_train_sanitize(self, libsvm_file, capsys, monkeypatch):
        # setenv records the pre-test state so the flag the command
        # writes into os.environ is rolled back after the test.
        monkeypatch.setenv("REPRO_SANITIZE", "")
        path, n = libsvm_file
        assert (
            main(
                [
                    "train", path, "--n-features", str(n),
                    "--strategy", "cost", "--max-iter", "500",
                    "--sanitize",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "train acc" in out

    def test_train_rejects_multiclass(self, tmp_path, capsys):
        ds = load_dataset("aloi", seed=0, m_override=50)
        y = np.arange(50, dtype=float) % 3  # three classes
        path = tmp_path / "multi.libsvm"
        write_libsvm(path, (ds.rows, ds.cols, ds.values, ds.shape), y)
        assert main(["train", str(path)]) == 2
        assert "binary" in capsys.readouterr().err

    def test_train_cache_mb(self, libsvm_file, capsys):
        path, n = libsvm_file
        assert (
            main(
                [
                    "train", path, "--n-features", str(n),
                    "--strategy", "cost", "--max-iter", "500",
                    "--cache-mb", "1",
                ]
            )
            == 0
        )
        assert "train acc" in capsys.readouterr().out

    def test_bench_smsv_quick(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_smsv.json"
        assert (
            main(
                [
                    "bench", "smsv", "--quick", "--repeats", "1",
                    "--out", str(out),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "dual-row fused speedup" in stdout
        blob = json.loads(out.read_text())
        assert blob["meta"]["quick"] is True
        assert blob["headline"]["criterion"] == 1.4

    def test_bench_rejects_unknown_suite(self):
        with pytest.raises(SystemExit):
            main(["bench", "nosuch"])

    def test_datasets(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "trefethen" in out and "gisette" in out

    def test_table7(self, capsys):
        assert main(["table7"]) == 0
        out = capsys.readouterr().out
        assert "Tune B on DGX station" in out

    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        assert "dgx" in out and "79,000" in out

    def test_no_command_exits(self):
        with pytest.raises(SystemExit):
            main([])

    def test_module_invocation(self, libsvm_file):
        import subprocess
        import sys

        path, n = libsvm_file
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "profile", path],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "DatasetProfile" in proc.stdout


class TestExplain:
    def test_schedule_explain(self, libsvm_file, capsys):
        path, n = libsvm_file
        assert (
            main(
                [
                    "schedule", path, "--n-features", str(n),
                    "--strategy", "cost", "--explain",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "influencing parameters" in out
        assert "rule-based decision" in out
        assert "cost model ranking" in out

    def test_explain_function_directly(self):
        from repro.core import explain
        from repro.data import load_dataset

        p = load_dataset("trefethen", seed=0).profile
        text = explain(p)
        assert "banded" in text  # the rule that fires for trefethen
        assert "DIA" in text


class TestObservabilityCLI:
    @pytest.fixture(autouse=True)
    def _restore_tracer(self):
        from repro.obs.audit import audit_log
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        prev = tracer.enabled
        tracer.clear()
        audit_log().clear()
        yield
        tracer.clear()
        audit_log().clear()
        tracer.enabled = prev

    def test_train_trace_flag(self, libsvm_file, capsys):
        from repro.obs.trace import get_tracer

        path, n = libsvm_file
        assert (
            main(
                [
                    "train", path, "--n-features", str(n),
                    "--strategy", "cost", "--max-iter", "500",
                    "--trace",
                ]
            )
            == 0
        )
        names = {s.name for s in get_tracer().spans()}
        assert "smo.train" in names
        assert "schedule.decide" in names

    def test_trace_verb_exports_all_artifacts(
        self, libsvm_file, tmp_path, capsys
    ):
        import json

        path, n = libsvm_file
        spans = tmp_path / "spans.jsonl"
        chrome = tmp_path / "trace.json"
        audit = tmp_path / "audit.jsonl"
        assert (
            main(
                [
                    "trace",
                    "--trace-out", str(spans),
                    "--chrome", str(chrome),
                    "--audit-out", str(audit),
                    "train", path, "--n-features", str(n),
                    "--strategy", "cost", "--max-iter", "500",
                ]
            )
            == 0
        )
        from repro.obs.export import (
            read_audit_jsonl,
            read_spans_jsonl,
            validate_chrome_trace,
        )
        from repro.obs.trace import span_tree

        reloaded = read_spans_jsonl(spans)
        assert reloaded
        roots = {n_.record.name for n_ in span_tree(reloaded)}
        assert "smo.train" in roots
        validate_chrome_trace(json.loads(chrome.read_text()))
        records = read_audit_jsonl(audit)
        assert [r.source for r in records] == ["schedule"]
        assert records[0].dataset == path
        err = capsys.readouterr().err
        assert "spans" in err and "audited decisions" in err

    def test_trace_rejects_misplaced_options(self, libsvm_file, capsys):
        path, _ = libsvm_file
        assert main(["trace", "train", path, "--trace-out", "x"]) == 2
        assert "before the wrapped command" in capsys.readouterr().err

    def test_trace_rejects_empty_and_recursive(self, capsys):
        assert main(["trace"]) == 2
        assert main(["trace", "trace", "datasets"]) == 2

    def test_bench_obs_quick(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_obs.json"
        assert (
            main(
                [
                    "bench", "obs", "--quick", "--repeats", "3",
                    "--out", str(out),
                ]
            )
            == 0
        )
        stdout = capsys.readouterr().out
        assert "overhead" in stdout
        blob = json.loads(out.read_text())
        assert blob["suite"] == "obs-overhead"
        assert blob["noop_singleton"] is True
        assert blob["headline"]["pass"] is True

    def test_obs_report_quick(self, capsys):
        assert main(["obs", "report", "--quick", "--repeats", "1"]) == 0
        out = capsys.readouterr().out
        assert "dense" in out
        assert "prediction matched measurement" in out

    def test_obs_report_json(self, capsys):
        import json

        assert (
            main(
                ["obs", "report", "--quick", "--repeats", "1", "--json"]
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["n_datasets"] == 5
        rows = {r["dataset"]: r for r in payload["rows"]}
        assert rows["dense"]["regret"] == 0.0


class TestFleetObservabilityCLI:
    @pytest.fixture(autouse=True)
    def _restore_obs_state(self):
        from repro.obs.audit import audit_log
        from repro.obs.collect import clear_fleet_trace
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        prev = tracer.enabled
        tracer.clear()
        audit_log().clear()
        clear_fleet_trace()
        yield
        tracer.clear()
        audit_log().clear()
        clear_fleet_trace()
        tracer.enabled = prev

    def test_trace_serve_fleet_exports_merged_timeline(
        self, tmp_path, capsys
    ):
        import json

        spans = tmp_path / "spans.jsonl"
        chrome = tmp_path / "chrome.json"
        metrics = tmp_path / "metrics.prom"
        assert (
            main(
                [
                    "trace",
                    "--trace-out", str(spans),
                    "--chrome", str(chrome),
                    "--metrics-out", str(metrics),
                    "serve", "--workers", "2", "--backend", "process",
                ]
            )
            == 0
        )
        from repro.obs.export import (
            read_spans_meta,
            validate_chrome_trace,
        )

        payload = json.loads(chrome.read_text())
        validate_chrome_trace(payload)
        pids = {e["pid"] for e in payload["traceEvents"]}
        assert pids == {0, 1, 2}  # door lane + one per worker
        meta = read_spans_meta(spans)
        assert set(meta["dropped"]) == {"0", "1", "2"}
        prom = metrics.read_text()
        assert "repro_obs_tracer_spans" in prom
        assert "repro_fleet_served" in prom
        err = capsys.readouterr().err
        assert "3 processes" in err

    def test_obs_slo_reports_breaches(self, tmp_path, capsys):
        dump = tmp_path / "flight.jsonl"
        assert (
            main(
                [
                    "obs", "slo", "--latency-ms", "0.0001",
                    "--dump", str(dump),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "BREACHED" in out
        assert "latency_p99" in out
        assert dump.exists()

    def test_obs_slo_json_payload(self, capsys):
        import json

        assert main(["obs", "slo", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {s["name"] for s in payload["specs"]} == {
            "latency_p99", "deadline_miss", "rejection",
            "shard_saturation",
        }
        assert payload["served"] > 0

    def test_obs_dump_renders_flight_file(self, tmp_path, capsys):
        from repro.obs.flight import FlightRecorder

        rec = FlightRecorder(enabled=True)
        rec.record("rebalance", model="alpha")
        path = tmp_path / "flight.jsonl"
        rec.dump(path, reason="manual")
        assert main(["obs", "dump", str(path)]) == 0
        out = capsys.readouterr().out
        assert "manual" in out and "rebalance" in out

    def test_obs_dump_rejects_bad_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert main(["obs", "dump", str(missing)]) == 2
        assert "error" in capsys.readouterr().err

    def test_bench_obs_fleet_smoke(self, tmp_path, capsys):
        import json

        out = tmp_path / "BENCH_obs.json"
        assert (
            main(
                [
                    "bench", "obs", "--fleet", "--smoke",
                    "--repeats", "3", "--out", str(out),
                ]
            )
            == 0
        )
        blob = json.loads(out.read_text())
        assert blob["suite"] == "obs-fleet"
        assert blob["headline"]["pass"] is True
        assert blob["fleet_trace"]["labels_identical"] is True
        stdout = capsys.readouterr().out
        assert "bitwise" in stdout
