#!/usr/bin/env python
"""Production SVM workflow: CV, warm-started C-path, calibration, save.

The library features a downstream user needs beyond the paper's
experiments, demonstrated end to end on a Table V clone:

1. cross-validated grid search over (C, gamma);
2. a warm-started regularisation path (each C resumes from the
   previous solution — compare total iterations against cold starts);
3. Platt-scaled probability outputs, calibrated on held-out data;
4. model persistence to one .npz file.

Run::

    python examples/svm_model_selection.py
"""

import numpy as np

from repro.data import load_dataset
from repro.svm import (
    SVC,
    c_path,
    calibrate_svc,
    grid_search_cv,
)


def main() -> None:
    ds = load_dataset("aloi", seed=0, m_override=600)
    X = ds.in_format("CSR")
    y = ds.y[:600]
    train, test = np.arange(0, 450), np.arange(450, 600)

    rows, cols, values = X.to_coo()

    def subset(idx):
        lookup = np.full(X.shape[0], -1, dtype=np.int64)
        lookup[idx] = np.arange(len(idx))
        keep = lookup[rows] >= 0
        return type(X).from_coo(
            lookup[rows[keep]], cols[keep], values[keep],
            (len(idx), X.shape[1]),
        )

    X_train, X_test = subset(train), subset(test)
    y_train, y_test = y[train], y[test]

    # 1. grid search -----------------------------------------------------
    print("1. cross-validated grid search over (C, gamma)")
    res = grid_search_cv(
        X_train, y_train, kernel="gaussian",
        Cs=(0.5, 2.0), gammas=(0.02, 0.1), k=3, max_iter=4000,
    )
    for (C, gamma), score in sorted(res.all_scores.items()):
        print(f"   C={C:4.1f} gamma={gamma:5.2f} -> CV acc {score:.3f}")
    print(f"   best: {res.best_params} (CV acc {res.best_score:.3f})\n")

    # 2. warm-started C-path ----------------------------------------------
    print("2. regularisation path, warm vs cold starts")
    Cs = [0.25, 0.5, 1.0, 2.0, 4.0]
    warm = c_path(X_train, y_train, Cs, kernel="linear", warm_start=True)
    cold = c_path(X_train, y_train, Cs, kernel="linear", warm_start=False)
    print(f"   warm-start total iterations: {warm.total_iterations}")
    print(f"   cold-start total iterations: {cold.total_iterations}")
    print(
        f"   saving: "
        f"{1 - warm.total_iterations / cold.total_iterations:.0%}\n"
    )

    # 3. final model + calibration ----------------------------------------
    print("3. final model with Platt-scaled probabilities")
    clf = SVC(
        "gaussian",
        C=res.best_params["C"],
        gamma=res.best_params["gamma"],
        max_iter=8000,
    ).fit(X_train, y_train)
    scaler = calibrate_svc(clf, X_test, y_test)
    p = scaler.predict_proba(clf.decision_function(X_test))
    acc = clf.score(X_test, y_test)
    conf = np.abs(p - 0.5).mean() * 2
    print(f"   test acc {acc:.3f}; mean confidence {conf:.2f}")
    print(f"   sigmoid: A={scaler.A:.3f} B={scaler.B:.3f}\n")

    # 4. persistence --------------------------------------------------------
    import tempfile
    from pathlib import Path

    print("4. persistence round trip")
    path = Path(tempfile.gettempdir()) / "repro_svm_model.npz"
    clf.save(path)
    loaded = SVC.load(path)
    same = np.array_equal(loaded.predict(X_test), clf.predict(X_test))
    print(f"   saved to {path} ({path.stat().st_size / 1024:.1f} KiB); "
          f"predictions identical: {same}")


if __name__ == "__main__":
    main()
