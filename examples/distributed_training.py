#!/usr/bin/env python
"""Distributed training, both halves of the paper in one script.

1. **Divide-and-conquer SVM** (CA-SVM + this paper's scheduler): the
   training set is k-means partitioned, every shard gets its *own*
   layout decision, shards train in parallel, prediction routes by
   nearest centroid.
2. **Data-parallel DNN** (Section IV-B): a 4-worker replica group
   trains the CNN with gradient allreduce; the script reports the
   communication volume the allreduce would cost — the term that
   limited the naive DGX port to 1.3x.

Run::

    python examples/distributed_training.py
"""

import time

import numpy as np

from repro.core import LayoutScheduler
from repro.data import load_dataset, synthetic_cifar10
from repro.dnn import DataParallelTrainer, Trainer, cifar10_small
from repro.svm import SVC, DivideAndConquerSVC


def dc_svm() -> None:
    print("=" * 68)
    print("Divide-and-conquer SVM with per-shard layout scheduling")
    print("=" * 68)
    ds = load_dataset("adult", seed=0)
    X = ds.in_format("CSR")
    y = ds.y

    t0 = time.perf_counter()
    global_svm = SVC("linear", C=1.0, max_iter=4000).fit(X, y)
    t_global = time.perf_counter() - t0
    acc_global = global_svm.score(X, y)

    t0 = time.perf_counter()
    dc = DivideAndConquerSVC(
        "linear",
        n_partitions=4,
        C=1.0,
        max_iter=4000,
        scheduler=LayoutScheduler("cost"),
        n_workers=4,
        seed=0,
    ).fit(X, y)
    t_dc = time.perf_counter() - t0
    acc_dc = dc.score(X, y)

    print(f"global SVM : acc={acc_global:.3f}  time={t_global:.2f}s")
    print(f"DC-SVM (P=4): acc={acc_dc:.3f}  time={t_dc:.2f}s")
    print(f"shard sizes : {dc.shard_sizes_}")
    print(f"shard layouts (independent decisions): {dc.layouts_}")
    print()


def data_parallel_dnn() -> None:
    print("=" * 68)
    print("Data-parallel DNN training (divide the data, replicate W)")
    print("=" * 68)
    data = synthetic_cifar10(600, 150, seed=0, flip_prob=0.0)

    serial_net = cifar10_small(seed=0)
    t0 = time.perf_counter()
    Trainer(
        serial_net, batch_size=100, lr=0.01, momentum=0.9,
        target_accuracy=0.999, max_epochs=3,
    ).fit(data)
    t_serial = time.perf_counter() - t0
    acc_serial = serial_net.accuracy(
        data.x_test.astype(np.float64), data.y_test
    )

    par_net = cifar10_small(seed=0)
    dp = DataParallelTrainer(
        par_net, n_replicas=4, batch_size=100, lr=0.01, momentum=0.9,
        concurrent=True,
    )
    t0 = time.perf_counter()
    for epoch in range(1, 4):
        dp.train_epoch(data, epoch)
    t_par = time.perf_counter() - t0
    acc_par = par_net.accuracy(data.x_test.astype(np.float64), data.y_test)

    print(f"serial      : acc={acc_serial:.3f}  time={t_serial:.2f}s")
    print(f"4 workers   : acc={acc_par:.3f}  time={t_par:.2f}s")
    print(
        f"allreduce   : {dp.comm.total_bytes / 1e6:.2f} MB over "
        f"{dp.comm.steps} steps "
        f"({dp.comm.bytes_per_step / 1e3:.1f} KB/step)"
    )
    print(
        f"  at NVLink 80 GB/s that costs "
        f"{dp.modelled_comm_seconds(80.0) * 1e3:.2f} ms total — the "
        f"overhead term behind the DGX's 5.2 ms iteration overhead."
    )


def main() -> None:
    dc_svm()
    data_parallel_dnn()


if __name__ == "__main__":
    main()
