#!/usr/bin/env python
"""DNN auto-tuning, two ways (the paper's Section IV).

1. *Modelled*: the calibrated convergence x hardware models regenerate
   Table VII — the full 8-row table with the DGX1/2/3 tuning stages.
2. *Measured*: the same staged tuning procedure, run for real on the
   NumPy CNN and the synthetic CIFAR-10 (small spaces so it finishes in
   a couple of minutes), showing the identical trade-offs live:
   batch size vs throughput, learning rate vs convergence.

Run::

    python examples/dnn_tuning.py            # modelled only (seconds)
    python examples/dnn_tuning.py --measured # + real training (minutes)
"""

import sys

from repro.data import synthetic_cifar10
from repro.dnn import Trainer, cifar10_small
from repro.tuning import reproduce_table7
from repro.tuning.table7 import format_rows


def modelled() -> None:
    print("=" * 70)
    print("Table VII regenerated from the calibrated models")
    print("=" * 70)
    print(format_rows(reproduce_table7()))
    print()


def measured() -> None:
    print("=" * 70)
    print("Measured staged tuning on the synthetic CIFAR-10 (mini-scale)")
    print("=" * 70)
    data = synthetic_cifar10(1200, 300, seed=0)
    target = 0.75

    def time_to_target(batch, lr, momentum):
        run = Trainer(
            cifar10_small(seed=0),
            batch_size=batch,
            lr=lr,
            momentum=momentum,
            target_accuracy=target,
            max_epochs=25,
            seed=0,
        ).fit(data)
        secs = run.seconds_to_target if run.reached_target else float("inf")
        return secs, run

    # Stage 1: batch size at default lr/momentum.
    stage1 = {}
    for batch in (25, 50, 150):
        secs, run = time_to_target(batch, 0.005, 0.90)
        stage1[batch] = secs
        print(
            f"  B={batch:4d} eta=0.005 mu=0.90 -> "
            f"{'%.1fs' % secs if secs != float('inf') else 'no convergence'}"
            f" (epochs={run.epochs_to_target})"
        )
    best_b = min(stage1, key=stage1.get)
    print(f"  stage 1 picks B={best_b}\n")

    # Stage 2: learning rate at the chosen batch.
    stage2 = {}
    for lr in (0.002, 0.005, 0.01):
        secs, run = time_to_target(best_b, lr, 0.90)
        stage2[lr] = secs
        print(
            f"  B={best_b:4d} eta={lr:.3f} mu=0.90 -> "
            f"{'%.1fs' % secs if secs != float('inf') else 'no convergence'}"
        )
    best_lr = min(stage2, key=stage2.get)
    print(f"  stage 2 picks eta={best_lr}\n")

    # Stage 3: momentum.
    stage3 = {}
    for mu in (0.0, 0.90, 0.95):
        secs, run = time_to_target(best_b, best_lr, mu)
        stage3[mu] = secs
        print(
            f"  B={best_b:4d} eta={best_lr:.3f} mu={mu:.2f} -> "
            f"{'%.1fs' % secs if secs != float('inf') else 'no convergence'}"
        )
    best_mu = min(stage3, key=stage3.get)
    print(
        f"  stage 3 picks mu={best_mu}; total measured speedup "
        f"{stage1[max(stage1, key=stage1.get)] / stage3[best_mu]:.1f}x "
        f"over the worst stage-1 setting"
    )


def main() -> None:
    modelled()
    if "--measured" in sys.argv:
        measured()
    else:
        print("(pass --measured to also run the real mini-scale tuning)")


if __name__ == "__main__":
    main()
