#!/usr/bin/env python
"""Roofline analysis: where would SMSV time go, format by format?

Analyses two contrasting Table V clones (trefethen, banded; mnist,
irregular-sparse) on the paper's Ivy Bridge and Xeon Phi platforms,
showing counted work, the binding roof, and the SIMD model's lane
accounting — the quantitative story behind every scheduler decision.

Run::

    python examples/hardware_analysis.py
"""

from repro.data import load_dataset
from repro.hardware import get_machine
from repro.hardware.report import analyse_matrix, format_report


def main() -> None:
    for dataset in ("trefethen", "mnist"):
        ds = load_dataset(dataset, seed=0)
        matrix = ds.in_format("CSR")
        for machine_name in ("ivybridge", "knc"):
            machine = get_machine(machine_name)
            print(f"\n### {dataset} on {machine_name}\n")
            analyses = analyse_matrix(matrix, machine)
            print(format_report(analyses, machine))
            print(
                f"-> fastest by the SIMD model: {analyses[0].fmt} "
                f"({analyses[0].simd_seconds * 1e6:.1f} us/SMSV)"
            )


if __name__ == "__main__":
    main()
