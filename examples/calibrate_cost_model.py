#!/usr/bin/env python
"""Re-fit the analytic cost model's constants on the running machine.

The scheduler's cost model predicts per-format SMSV cost from the nine
profile parameters using per-format calibration constants
(:class:`repro.core.cost_model.ArchCalibration`).  The shipped defaults
were fitted on this library's NumPy kernels; this script shows the
refit procedure for a new machine:

1. generate probe matrices spanning the structural space,
2. measure every format's SMSV on each,
3. least-squares fit the per-element costs (overheads held at their
   structural defaults),
4. report prediction quality before/after.

Run::

    python examples/calibrate_cost_model.py
"""

import numpy as np

from repro.core.cost_model import ArchCalibration, CostModel
from repro.data.synthetic import (
    matrix_with_mdim,
    matrix_with_ndig,
    matrix_with_vdim,
    uniform_rows_matrix,
)
from repro.features import profile_from_coo
from repro.formats import FORMAT_NAMES, format_class
from repro.perf.timers import benchmark


def probe_suite():
    """A structurally diverse set of probe matrices."""
    suite = [
        uniform_rows_matrix(1024, 2048, 16, seed=1),
        uniform_rows_matrix(512, 256, 128, seed=2),  # fairly dense
        matrix_with_vdim(1024, 2048, adim=30, vdim=400.0, seed=3),
        matrix_with_mdim(1024, 2048, 4096, 256, seed=4),
        matrix_with_ndig(1024, 1024, 4096, 8, seed=5),
        matrix_with_ndig(1024, 1024, 4096, 256, seed=6),
    ]
    return suite


def measure(triples):
    rows, cols, vals, shape = triples
    profile = profile_from_coo(rows, cols, shape, validated=True)
    times = {}
    for fmt in FORMAT_NAMES:
        m = format_class(fmt).from_coo(rows, cols, vals, shape)
        v = m.row(0)
        times[fmt] = benchmark(lambda: m.smsv(v), repeats=3, warmup=1).median
    return profile, times


def fit(measurements):
    """Per-format least squares: time ~ c_fmt * effective_elements."""
    base = CostModel(ArchCalibration())
    fitted = {}
    for fmt in FORMAT_NAMES:
        xs = np.array(
            [base.effective_elements(fmt, p) for p, _ in measurements]
        )
        ys = np.array([t[fmt] for _, t in measurements])
        # closed-form 1-D least squares through the origin
        fitted[fmt] = float((xs @ ys) / (xs @ xs))
    # normalise so CSR = 1.0 (relative costs are what the ranking uses)
    ref = fitted["CSR"]
    return {k: v / ref for k, v in fitted.items()}


def regret(model: CostModel, measurements) -> float:
    """Geomean time-ratio of the model's pick vs the measured best."""
    g = 1.0
    for p, times in measurements:
        pick = model.best(p)
        g *= times[pick] / min(times.values())
    return g ** (1.0 / len(measurements))


def main() -> None:
    print("Measuring probe suite (a few seconds)...")
    measurements = [measure(t) for t in probe_suite()]

    default_model = CostModel(ArchCalibration())
    print(
        f"default calibration: geomean regret "
        f"{regret(default_model, measurements):.3f}x"
    )

    fitted_costs = fit(measurements)
    print("fitted per-element costs (relative to CSR):")
    for fmt, c in fitted_costs.items():
        print(f"  {fmt:4s} {c:7.3f}")

    cal = ArchCalibration(cost_per_element=fitted_costs)
    fitted_model = CostModel(cal)
    print(
        f"fitted calibration:  geomean regret "
        f"{regret(fitted_model, measurements):.3f}x"
    )
    print(
        "\nPass the fitted ArchCalibration to LayoutScheduler("
        "calibration=...) to use it."
    )


if __name__ == "__main__":
    main()
