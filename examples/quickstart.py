#!/usr/bin/env python
"""Quickstart: train an SVM with runtime layout scheduling.

Runs in a few seconds::

    python examples/quickstart.py

Demonstrates the three layers of the public API:

1. build a matrix and extract its nine influencing parameters,
2. ask the scheduler which storage format to use (and why),
3. train an :class:`repro.AdaptiveSVC` that does both automatically.
"""

import numpy as np

from repro import AdaptiveSVC, extract_profile, from_dense, schedule_layout
from repro.data import load_dataset


def main() -> None:
    # --- 1. a dataset and its profile --------------------------------
    rng = np.random.default_rng(0)
    X = (rng.random((1500, 200)) < 0.05) * rng.standard_normal((1500, 200))
    matrix = from_dense(X, "CSR")
    profile = extract_profile(matrix)
    print("Nine influencing parameters (paper Table IV):")
    print(f"  {profile}\n")

    # --- 2. the layout decision --------------------------------------
    relaid, decision = schedule_layout(matrix, strategy="hybrid")
    print(f"Scheduler chose {decision.fmt} via '{decision.strategy}':")
    print(f"  {decision.reason}\n")

    # --- 3. adaptive SVM end to end ----------------------------------
    ds = load_dataset("adult", seed=0)  # Table V clone
    train_idx, test_idx = ds.split(0.8, seed=1)
    Xall = ds.in_format("CSR")
    rows, cols, values = Xall.to_coo()

    # Slice rows for train/test (CSR row extraction keeps this cheap).
    def subset(idx):
        lookup = np.full(Xall.shape[0], -1, dtype=np.int64)
        lookup[idx] = np.arange(len(idx))
        keep = lookup[rows] >= 0
        return type(Xall).from_coo(
            lookup[rows[keep]], cols[keep], values[keep],
            (len(idx), Xall.shape[1]),
        )

    X_train, X_test = subset(train_idx), subset(test_idx)
    y_train, y_test = ds.y[train_idx], ds.y[test_idx]

    clf = AdaptiveSVC("gaussian", gamma=0.05, C=1.0, max_iter=3000)
    clf.fit(X_train, y_train)
    print(
        f"AdaptiveSVC on the 'adult' clone: format={clf.chosen_format} "
        f"(conversion took {clf.convert_seconds_ * 1e3:.1f} ms)"
    )
    print(
        f"  train acc={clf.score(X_train, y_train):.3f}  "
        f"test acc={clf.score(X_test, y_test):.3f}  "
        f"support vectors={clf.n_support}"
    )


if __name__ == "__main__":
    main()
