#!/usr/bin/env python
"""Tour of the adaptive system over the paper's Table V datasets.

For every dataset clone: extract the profile, show what each decision
strategy picks, measure all five formats, and report the adaptive
speedup over the worst format — a miniature, live regeneration of the
paper's Table VI.

Runs in ~half a minute::

    python examples/adaptive_svm_tour.py
"""

from repro.core import AutoTuner, CostModel, LayoutScheduler
from repro.core.rules import rule_based_choice
from repro.data import dataset_names, load_dataset


def main() -> None:
    cost_model = CostModel()
    tuner = AutoTuner(probe_rows=1024, repeats=2, smsv_per_probe=2)

    header = (
        f"{'dataset':14s} {'rules':>6s} {'cost':>6s} {'probe':>6s} "
        f"{'worst':>6s} {'adaptive speedup vs worst':>26s}"
    )
    print(header)
    print("-" * len(header))

    for name in dataset_names():
        ds = load_dataset(name, seed=0)
        p = ds.profile

        by_rules = rule_based_choice(p).fmt
        by_cost = cost_model.best(p)
        probed = tuner.probe(ds.rows, ds.cols, ds.values, ds.shape)
        by_probe = probed[0].fmt
        worst = probed[-1].fmt
        speedup = probed[-1].median_seconds / probed[0].median_seconds

        print(
            f"{name:14s} {by_rules:>6s} {by_cost:>6s} {by_probe:>6s} "
            f"{worst:>6s} {speedup:>25.1f}x"
        )

    print(
        "\nEach row: what the three decision mechanisms pick for the "
        "dataset, the measured worst format, and the measured gain of "
        "the probed pick over that worst format (paper: 1.7-16.3x, "
        "6.8x average)."
    )


if __name__ == "__main__":
    main()
