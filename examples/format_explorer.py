#!/usr/bin/env python
"""Explore how matrix structure drives format performance (Figs. 2-4).

Sweeps the three structural parameters the paper isolates — number of
diagonals (DIA), maximum row length (ELL), and row-length variance
(CSR vs COO) — and prints measured and modelled timings side by side.

Run::

    python examples/format_explorer.py
"""

from repro.data.synthetic import (
    matrix_with_mdim,
    matrix_with_ndig,
    matrix_with_vdim,
)
from repro.formats import COOMatrix, CSRMatrix, DIAMatrix, ELLMatrix
from repro.hardware import VectorMachine, get_machine
from repro.perf.timers import benchmark


def _measure(matrix, n=3) -> float:
    v = matrix.row(0)
    return benchmark(lambda: matrix.smsv(v), repeats=n, warmup=1).median


def main() -> None:
    vm = VectorMachine(get_machine("ivybridge"))

    print("Fig. 2 — DIA vs number of diagonals (M=N=nnz=2048)")
    for ndig in (2, 8, 32, 128, 512):
        m = DIAMatrix.from_coo(*matrix_with_ndig(2048, 2048, 2048, ndig))
        print(
            f"  ndig={ndig:5d}  measured {_measure(m) * 1e6:9.1f} us   "
            f"model {vm.count(m).seconds * 1e6:9.1f} us"
        )

    print("\nFig. 3 — ELL vs max row length (M=N=2048, nnz=4096)")
    for mdim in (2, 8, 32, 128, 512):
        m = ELLMatrix.from_coo(*matrix_with_mdim(2048, 2048, 4096, mdim))
        print(
            f"  mdim={mdim:5d}  measured {_measure(m) * 1e6:9.1f} us   "
            f"model {vm.count(m).seconds * 1e6:9.1f} us"
        )

    print("\nFig. 4 — CSR vs COO as row-length variance grows (adim=40)")
    vm8 = VectorMachine(get_machine("knc"))
    for vdim in (0.0, 100.0, 400.0, 1600.0):
        triples = matrix_with_vdim(2048, 4096, adim=40, vdim=vdim, seed=3)
        csr = CSRMatrix.from_coo(*triples)
        coo = COOMatrix.from_coo(*triples)
        ratio = vm8.count(csr).seconds / vm8.count(coo).seconds
        winner = "COO" if ratio > 1 else "CSR"
        print(
            f"  vdim={vdim:7.0f}  COO-over-CSR (SIMD model) "
            f"{ratio:5.2f}x  -> {winner} wins"
        )

    print(
        "\nTakeaway: each format has one structural parameter that "
        "makes or breaks it — which is why a runtime scheduler beats "
        "any fixed choice."
    )


if __name__ == "__main__":
    main()
