"""Machine catalog.

Every platform the paper evaluates, with published peak numbers and the
street prices of Table VII.  ``dnn_efficiency`` is the fraction of peak
the CIFAR-10 training workload attains on that machine; the values are
back-solved from the paper's own measured times (Table VII) — e.g. the
paper itself observes that KNL "runs much slower than Haswell" despite
2.5x the peak, which shows up here as a 2% vs 13% efficiency.
``iteration_overhead_s`` is the fixed per-iteration cost (framework +
synchronisation + multi-GPU allreduce), also back-solved: it is what
makes the straightforward DGX port only 1.3x over one P100 at B=100 and
what batch-size tuning amortises.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass(frozen=True)
class MachineSpec:
    """One hardware platform.

    Attributes
    ----------
    name / long_name:
        Short key and the paper's description.
    cores:
        Physical cores (or GPUs x SMs proxy for GPU platforms).
    simd_width:
        Double-precision SIMD lanes per vector unit.
    peak_gflops:
        Peak floating-point rate in Gflop/s (DP for CPUs, SP for GPUs —
        DNN training runs single precision).
    bandwidth_gbs:
        Measured STREAM-like memory bandwidth, GB/s.
    price_usd:
        Street price (Table VII column "Price").
    dnn_efficiency:
        Fraction of peak attained by CIFAR-10 training (back-solved
        from Table VII, see module docstring).
    iteration_overhead_s:
        Fixed per-iteration time, seconds (back-solved from Table VII).
    n_accelerators:
        Data-parallel workers for the divide-and-conquer strategy
        (Section IV-B): 4 for the DGX station, 1 elsewhere.
    """

    name: str
    long_name: str
    cores: int
    simd_width: int
    peak_gflops: float
    bandwidth_gbs: float
    price_usd: float
    dnn_efficiency: float = 0.1
    iteration_overhead_s: float = 1e-3
    n_accelerators: int = 1

    @property
    def attained_gflops(self) -> float:
        """Peak x efficiency: the sustained rate the workload sees."""
        return self.peak_gflops * self.dnn_efficiency


#: The five DNN platforms of Section IV / Table VII.
DNN_MACHINES: Dict[str, MachineSpec] = {
    "cpu8": MachineSpec(
        name="cpu8",
        long_name="Intel Caffe on 8-core CPU (Xeon E5-1660 v4 @ 3.2 GHz)",
        cores=8,
        simd_width=4,
        peak_gflops=410.0,
        bandwidth_gbs=60.0,
        price_usd=1_571.0,
        dnn_efficiency=0.025,
        iteration_overhead_s=0.5e-3,
    ),
    "knl": MachineSpec(
        name="knl",
        long_name="Intel Caffe on KNL (Xeon Phi 7250, 68 cores @ 1.4 GHz)",
        cores=68,
        simd_width=8,
        peak_gflops=3_000.0,
        bandwidth_gbs=450.0,
        price_usd=4_876.0,
        dnn_efficiency=0.021,
        iteration_overhead_s=2.0e-3,
    ),
    "haswell": MachineSpec(
        name="haswell",
        long_name="Intel Caffe on Haswell (2x Xeon E5-2698 v3 @ 2.3 GHz)",
        cores=32,
        simd_width=4,
        peak_gflops=1_200.0,
        bandwidth_gbs=100.0,
        price_usd=7_400.0,
        dnn_efficiency=0.127,
        iteration_overhead_s=0.5e-3,
    ),
    "p100": MachineSpec(
        name="p100",
        long_name="NVIDIA Caffe on one Tesla P100",
        cores=56,
        simd_width=32,
        peak_gflops=9_300.0,
        bandwidth_gbs=720.0,
        price_usd=11_571.0,
        dnn_efficiency=0.101,
        iteration_overhead_s=3.05e-3,
    ),
    "dgx": MachineSpec(
        name="dgx",
        long_name="NVIDIA Caffe on DGX station (4x Tesla P100 + NCCL)",
        cores=224,
        simd_width=32,
        peak_gflops=37_200.0,
        bandwidth_gbs=2_880.0,
        price_usd=79_000.0,
        dnn_efficiency=0.099,
        # The NCCL allreduce + launch overhead that makes the naive
        # port only 1.3x over one P100 at B=100.
        iteration_overhead_s=5.2e-3,
        n_accelerators=4,
    ),
}

#: The SVM experimental platforms of Section V-A.
SVM_MACHINES: Dict[str, MachineSpec] = {
    "ivybridge": MachineSpec(
        name="ivybridge",
        long_name="24-core Intel Ivy Bridge CPU",
        cores=24,
        simd_width=4,
        peak_gflops=480.0,
        bandwidth_gbs=80.0,
        price_usd=2_600.0,
        dnn_efficiency=0.1,
    ),
    "knc": MachineSpec(
        name="knc",
        long_name="61-core Intel Xeon Phi Knights Corner coprocessor",
        cores=61,
        simd_width=8,
        peak_gflops=1_000.0,
        bandwidth_gbs=170.0,
        price_usd=2_000.0,
        dnn_efficiency=0.05,
    ),
}

#: All machines, keyed by short name.
MACHINES: Dict[str, MachineSpec] = {**DNN_MACHINES, **SVM_MACHINES}


def get_machine(name: str) -> MachineSpec:
    """Look up a machine by short name (case-insensitive)."""
    key = name.lower()
    try:
        return MACHINES[key]
    except KeyError:
        raise ValueError(
            f"unknown machine {name!r}; available: {sorted(MACHINES)}"
        ) from None
