"""Roofline analysis reports for matrices and formats.

Bridges the counters and the machine models into one human-readable
answer to "where would my time go on machine X?": for each format,
the counted flops/traffic of one SMSV, the roofline-predicted time,
which roof binds, and the SIMD model's lane accounting.

Used by ``examples/hardware_analysis.py``; also a convenient debugging
view when a scheduler decision looks surprising.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.formats.base import FORMAT_NAMES, MatrixFormat
from repro.formats.convert import convert
from repro.hardware.roofline import RooflineModel
from repro.hardware.specs import MachineSpec
from repro.hardware.vectormachine import VectorMachine
from repro.perf.counters import OpCounter


@dataclass(frozen=True)
class FormatAnalysis:
    """One format's row of a roofline report."""

    fmt: str
    flops: int
    bytes_moved: int
    arithmetic_intensity: float
    roofline_seconds: float
    bound: str
    simd_seconds: float
    vector_ops: int


def analyse_matrix(
    matrix: MatrixFormat,
    machine: MachineSpec,
    *,
    formats: Optional[List[str]] = None,
    efficiency: float = 0.5,
) -> List[FormatAnalysis]:
    """Per-format roofline + SIMD analysis of one SMSV.

    ``efficiency`` is the attained-vs-peak compute fraction assumed for
    the roofline's compute ceiling (sparse kernels rarely exceed 50%).
    """
    names = formats if formats is not None else list(FORMAT_NAMES)
    roof = RooflineModel(machine, efficiency=efficiency)
    vm = VectorMachine(machine)
    v = matrix.row(0)
    out: List[FormatAnalysis] = []
    for name in names:
        m = convert(matrix, name)
        c = OpCounter()
        m.smsv(v, counter=c)
        cost = vm.count(m)
        out.append(
            FormatAnalysis(
                fmt=name,
                flops=c.flops,
                bytes_moved=c.bytes_total,
                arithmetic_intensity=c.arithmetic_intensity(),
                roofline_seconds=roof.time(c),
                bound=roof.bound(c),
                simd_seconds=cost.seconds,
                vector_ops=cost.total_ops,
            )
        )
    return sorted(out, key=lambda a: a.simd_seconds)


def format_report(
    analyses: List[FormatAnalysis], machine: MachineSpec
) -> str:
    """Render an analysis list as an aligned table."""
    header = (
        f"roofline analysis on {machine.long_name}\n"
        f"(balance point "
        f"{machine.peak_gflops / machine.bandwidth_gbs:.1f} flop/byte "
        f"at full efficiency)\n"
        f"{'fmt':5s} {'flops':>12s} {'bytes':>12s} {'f/B':>6s} "
        f"{'roofline':>10s} {'bound':>8s} {'SIMD model':>11s} "
        f"{'vec ops':>10s}"
    )
    lines = [header, "-" * 84]
    for a in analyses:
        lines.append(
            f"{a.fmt:5s} {a.flops:12,d} {a.bytes_moved:12,d} "
            f"{a.arithmetic_intensity:6.2f} "
            f"{a.roofline_seconds * 1e6:8.1f}us {a.bound:>8s} "
            f"{a.simd_seconds * 1e6:9.1f}us {a.vector_ops:10,d}"
        )
    return "\n".join(lines)
