"""Deterministic fixed-width SIMD execution model for format kernels.

The NumPy kernels in :mod:`repro.formats` are faithful to each format's
*work* (padding costs real time), but NumPy's own inner loops hide one
architecture effect the paper leans on: **fixed-width SIMD processes
each CSR row in ceil(dim_i / W) vector instructions**, so the padding
waste per row is ``W*ceil(dim_i/W) - dim_i`` and grows with row-length
irregularity — COO, streaming one flat element array, has no such
per-row remainder.  That is the mechanism behind Fig. 4.

This module counts exactly those vector instructions for all five
formats:

=======  =====================================================
DEN      ``M * ceil(N / W)``
CSR      ``sum over groups of W rows: max(dim_i in group)``
         (lockstep lane-per-row, Bell-Garland CSR-vector)
COO      ``ceil(nnz / W) * streams`` (flat element stream)
ELL      ``M * ceil(mdim / W)``
DIA      ``ndig * ceil(Ldiag / W)``  + per-diagonal startup
=======  =====================================================

The CSR rule is the key: the standard SIMD CSR kernel assigns one row
per vector lane, and all W lanes step together until the *longest* row
in the group finishes — so irregular row lengths (high ``vdim``) leave
lanes idle in exact proportion to ``E[max of W dims] / adim``.  Uniform
rows cost the optimal ``nnz / W``; a wide distribution approaches the
per-group maximum.  COO never groups by row, so its cost is ``vdim``-
independent — the two curves cross exactly as in Fig. 4.

and converts them to time with the machine's frequency-per-lane-issue
plus the roofline memory bound, yielding deterministic, reproducible
"measurements" for the architecture-sensitive experiments (Fig. 4 and
the Table IV correlation checks).  See DESIGN.md's substitution table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.features.profile import DatasetProfile
from repro.formats.base import FORMAT_NAMES, MatrixFormat
from repro.formats.csr import CSRMatrix
from repro.formats.convert import convert
from repro.hardware.specs import MachineSpec

#: Value/index stream widths in bytes (float64 values, int32 indices).
_VB, _IB = 8, 4


@dataclass(frozen=True)
class VectorCost:
    """Counted cost of one SMSV under the SIMD model."""

    fmt: str
    vector_ops: int  #: width-W vector instructions issued
    startup_ops: int  #: per-row / per-diagonal pipeline startups
    bytes_moved: int  #: memory traffic (padding included)
    seconds: float  #: modelled wall time on the bound machine

    @property
    def total_ops(self) -> int:
        return self.vector_ops + self.startup_ops


class VectorMachine:
    """Executes format SMSVs symbolically on a fixed-width SIMD model.

    Parameters
    ----------
    machine:
        The modelled platform (its ``simd_width``, frequency proxy and
        bandwidth are used).
    issue_ghz:
        Base vector instructions issued per second, in billions.  The
        default models one core's vector pipe:
        ``peak_gflops / (2 * W * cores)``.  Each format then attains a
        fraction of it (``issue_efficiency``): DEN runs contiguous
        loads at full rate; DIA is regular-strided; CSR/COO/ELL issue a
        gather per step, which on in-order wide-SIMD machines (the
        paper's Xeon Phi) limits them to ~1/4 of peak issue.  Sparse
        SMSV kernels are therefore issue-bound rather than
        bandwidth-bound, which is what lets the lane-utilisation
        effects show through.
    issue_efficiency:
        Per-format fraction of the base issue rate (see above).
    row_startup / diag_startup:
        Pipeline startup cost, in vector-instruction equivalents, per
        CSR row / DIA diagonal.
    coo_streams:
        COO per-element overhead factor relative to one lane-step (the
        extra row-index stream and scatter); 1.5 reproduces the paper's
        CSR-better-at-low-vdim, COO-better-at-high-vdim crossover.
    """

    #: Fraction of the base issue rate each format's access pattern
    #: attains (contiguous > strided > gather).
    DEFAULT_ISSUE_EFFICIENCY = {
        "DEN": 1.0,
        "DIA": 0.3,
        "CSR": 0.25,
        "COO": 0.25,
        "ELL": 0.25,
        # SELL issues the same gather per lane-step as ELL; the
        # reordered wrappers add only a boundary scatter, so the inner
        # format's gather rate dominates.
        "SELL": 0.25,
        "RCSR": 0.25,
        "RELL": 0.25,
        "RSELL": 0.25,
    }

    def __init__(
        self,
        machine: MachineSpec,
        *,
        issue_ghz: Optional[float] = None,
        row_startup: float = 2.0,
        diag_startup: float = 8.0,
        coo_streams: float = 1.5,
        issue_efficiency: Optional[Dict[str, float]] = None,
    ) -> None:
        self.machine = machine
        self.w = machine.simd_width
        if issue_ghz is None:
            issue_ghz = machine.peak_gflops / (2.0 * self.w * machine.cores)
        if issue_ghz <= 0:
            raise ValueError("issue_ghz must be positive")
        self.issue_rate = issue_ghz * 1e9
        self.row_startup = row_startup
        self.diag_startup = diag_startup
        self.coo_streams = coo_streams
        self.issue_efficiency = dict(
            issue_efficiency
            if issue_efficiency is not None
            else self.DEFAULT_ISSUE_EFFICIENCY
        )

    # -- counting --------------------------------------------------------
    def _ceil_w(self, x: float) -> int:
        return int(math.ceil(x / self.w))

    def _streams(self, matrix: MatrixFormat):
        """Decompose one SMSV into ``(vops, startup, matrix_bytes,
        percol_bytes)``.

        ``matrix_bytes`` is the traffic of the matrix's own storage
        streams (values, indices, pointers) — read once per sweep no
        matter how many right-hand sides ride along.  ``percol_bytes``
        is the ``x``-gather traffic, paid per column.  ``count`` charges
        ``matrix_bytes + percol_bytes`` (one column), exactly the
        historical totals.
        """
        fmt = matrix.name
        m, n = matrix.shape
        if fmt == "CSR":
            assert isinstance(matrix, CSRMatrix)
            lengths = np.asarray(matrix.row_lengths, dtype=np.int64)
            # Lockstep lane-per-row: pad the row-length vector to a
            # multiple of W, reshape into groups of W lanes, and charge
            # each group its longest row.
            pad = (-lengths.shape[0]) % self.w
            if pad:
                lengths = np.concatenate(
                    [lengths, np.zeros(pad, dtype=np.int64)]
                )
            groups = lengths.reshape(-1, self.w)
            vops = int(groups.max(axis=1).sum())
            startup = int(self.row_startup * groups.shape[0])
            nnz = matrix.nnz
            matrix_bytes = nnz * (_VB + _IB) + (m + 1) * 8
            percol_bytes = nnz * _VB
        elif fmt == "DEN":
            vops = m * self._ceil_w(n)
            startup = 0
            matrix_bytes = m * n * _VB
            percol_bytes = n * _VB
        elif fmt == "COO":
            nnz = matrix.nnz
            # One flat element stream: nnz / W lane-steps, scaled by the
            # per-element overhead of the extra row stream + scatter.
            vops = int(math.ceil(self.coo_streams * nnz / self.w))
            startup = 0
            matrix_bytes = nnz * (_VB + 2 * _IB)
            percol_bytes = nnz * _VB
        elif fmt == "ELL":
            mdim = matrix.data.shape[1]  # type: ignore[attr-defined]
            vops = m * self._ceil_w(mdim)
            startup = int(self.row_startup * m) // 2  # regular rows
            matrix_bytes = m * mdim * (_VB + _IB)
            percol_bytes = m * mdim * _VB
        elif fmt == "DIA":
            ndig = matrix.ndig  # type: ignore[attr-defined]
            ldiag = min(m, n)
            vops = ndig * self._ceil_w(ldiag)
            startup = int(self.diag_startup * ndig)
            matrix_bytes = ndig * ldiag * _VB
            percol_bytes = ndig * ldiag * _VB
        elif fmt == "SELL":
            # One vector instruction per stored column of each slice,
            # lanes across the slice's rows: sum_s w_s * ceil(C_s / W).
            widths = np.asarray(matrix.slice_widths, dtype=np.int64)  # type: ignore[attr-defined]
            chunk = int(matrix.chunk)  # type: ignore[attr-defined]
            heights = np.minimum(
                chunk, m - chunk * np.arange(widths.shape[0], dtype=np.int64)
            )
            lane_groups = -(-heights // self.w)
            vops = int((widths * lane_groups).sum())
            startup = int(self.row_startup * widths.shape[0])
            padded = int(matrix.padded_elements)  # type: ignore[attr-defined]
            matrix_bytes = padded * (_VB + _IB) + (widths.shape[0] + 1) * 8
            percol_bytes = padded * _VB
        elif fmt in ("RCSR", "RELL", "RSELL"):
            # Permutation-transparent wrapper: the stored core pays its
            # own streams; transparency adds the permutation stream
            # (once per sweep) and a scattered output write per column.
            vops, startup, matrix_bytes, percol_bytes = self._streams(
                matrix.stored  # type: ignore[attr-defined]
            )
            vops += self._ceil_w(m)
            matrix_bytes += m * 8  # perm vector (int64)
            percol_bytes += m * _VB  # scattered y write-back
        else:
            raise ValueError(f"unknown format {fmt!r}")
        return vops, startup, matrix_bytes, percol_bytes

    def count(self, matrix: MatrixFormat) -> VectorCost:
        """Count vector ops + traffic for one SMSV of ``matrix``.

        CSR is counted exactly from the true row lengths; the other
        formats are exact functions of the profile.
        """
        fmt = matrix.name
        vops, startup, matrix_bytes, percol_bytes = self._streams(matrix)
        bytes_moved = matrix_bytes + percol_bytes
        seconds = self._time(fmt, vops + startup, bytes_moved)
        return VectorCost(
            fmt=fmt,
            vector_ops=vops,
            startup_ops=startup,
            bytes_moved=bytes_moved,
            seconds=seconds,
        )

    def count_multi(self, matrix: MatrixFormat, k: int) -> VectorCost:
        """Count one blocked SpMM sweep with ``k`` right-hand sides.

        Arithmetic lane-steps scale with ``k``; pipeline startups and
        the matrix's own storage streams are paid once per sweep, the
        per-column ``x``-gather traffic ``k`` times.  ``k=1`` equals
        :meth:`count` exactly — the single-vector model is the
        degenerate sweep.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        fmt = matrix.name
        vops, startup, matrix_bytes, percol_bytes = self._streams(matrix)
        vops_k = vops * k
        bytes_moved = matrix_bytes + k * percol_bytes
        seconds = self._time(fmt, vops_k + startup, bytes_moved)
        return VectorCost(
            fmt=fmt,
            vector_ops=vops_k,
            startup_ops=startup,
            bytes_moved=bytes_moved,
            seconds=seconds,
        )

    def batched_speedup(self, matrix: MatrixFormat, k: int) -> float:
        """Modelled speedup of one k-wide sweep over k single SMSVs."""
        if k < 1:
            raise ValueError("k must be >= 1")
        single = self.count(matrix).seconds
        return (k * single) / self.count_multi(matrix, k).seconds

    def _time(self, fmt: str, total_ops: float, bytes_moved: float) -> float:
        rate = self.issue_rate * self.issue_efficiency[fmt]
        t_compute = total_ops / rate
        t_memory = bytes_moved / (self.machine.bandwidth_gbs * 1e9)
        return max(t_compute, t_memory)

    # -- convenience -------------------------------------------------------
    def compare(self, matrix: MatrixFormat) -> Dict[str, VectorCost]:
        """Model all five formats for the same logical matrix."""
        return {
            name: self.count(convert(matrix, name)) for name in FORMAT_NAMES
        }

    def speedups(self, matrix: MatrixFormat) -> Dict[str, float]:
        """Per-format speedup normalised to the slowest (Fig. 1 style)."""
        costs = self.compare(matrix)
        worst = max(c.seconds for c in costs.values())
        return {k: worst / c.seconds for k, c in costs.items()}

    def csr_cost_from_profile(self, p: DatasetProfile) -> float:
        """Approximate CSR seconds from a profile alone (no matrix).

        Normal-approximates ``E[max of W row lengths]`` as
        ``adim + sqrt(vdim) * sqrt(2 ln W)`` (the Gaussian extreme-value
        asymptotic) — used by tests to check the analytic cost model
        tracks the exact per-group count.
        """
        e_max = p.adim + math.sqrt(max(p.vdim, 0.0)) * math.sqrt(
            2.0 * math.log(max(self.w, 2))
        )
        groups = math.ceil(p.m / self.w)
        total = groups * e_max + self.row_startup * groups
        bytes_moved = p.nnz * (2 * _VB + _IB) + (p.m + 1) * 8
        return self._time("CSR", total, bytes_moved)
