"""Per-iteration DNN time model (the functional form behind Table VII).

The paper's measured per-iteration times follow

    t_iter(B) = overhead + B * per_sample

— a fixed framework/synchronisation cost plus linear per-sample work.
(Back-solving Table VII's DGX rows: t(100) = 6.45 ms, t(512) = 12.0 ms
gives overhead ~5.2 ms and per-sample ~13.5 us, which is exactly why a
larger batch raises *throughput*: it amortises the overhead — the
paper's Section IV-C trade-off.)

``per_sample`` is derived from the machine's attained flop rate and the
model's flops per sample; for the DGX the per-sample work is divided
across its accelerators (the divide-and-conquer data parallelism of
Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import MachineSpec

#: Forward + backward flops per CIFAR-10 sample for Caffe's
#: ``cifar10_full`` network (3 conv + pool + FC; backward ~2x forward).
CIFAR10_FULL_FLOPS_PER_SAMPLE: float = 50e6


@dataclass(frozen=True)
class DNNPerfModel:
    """Iteration-time model for one machine and one network.

    Parameters
    ----------
    machine:
        Catalog entry; supplies attained flop rate, iteration overhead
        and accelerator count.
    flops_per_sample:
        Forward+backward flops of the trained network per sample.
    """

    machine: MachineSpec
    flops_per_sample: float = CIFAR10_FULL_FLOPS_PER_SAMPLE

    @property
    def per_sample_seconds(self) -> float:
        """Seconds of compute per training sample (after data-parallel
        division across accelerators)."""
        rate = self.machine.attained_gflops * 1e9
        return self.flops_per_sample / rate

    def iteration_time(self, batch_size: int) -> float:
        """``t_iter(B) = overhead + B * per_sample``.

        With P accelerators each worker computes B/P samples at 1/P of
        the machine's attained rate, so the P cancels: data parallelism
        shows up through the machine-level attained rate (P times one
        accelerator's) and through the overhead term (allreduce), not in
        this formula's shape.
        """
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return (
            self.machine.iteration_overhead_s
            + batch_size * self.per_sample_seconds
        )

    def training_time(self, iterations: int, batch_size: int) -> float:
        """Total seconds for ``iterations`` steps at batch ``B``."""
        if iterations < 0:
            raise ValueError("iterations must be non-negative")
        return iterations * self.iteration_time(batch_size)

    def throughput(self, batch_size: int) -> float:
        """Samples per second at batch ``B`` (monotone increasing in B —
        the computational half of the batch-size trade-off)."""
        return batch_size / self.iteration_time(batch_size)


def iteration_time(machine: MachineSpec, batch_size: int) -> float:
    """Convenience: iteration time of ``cifar10_full`` on ``machine``."""
    return DNNPerfModel(machine).iteration_time(batch_size)
