"""Roofline execution-time model — Eq. (7) with a compute ceiling.

The paper bounds execution time by ``transferred_memory / bandwidth``
(Eq. (7)); a kernel can also be compute-bound, so the full model is the
classic roofline:

    time = max(flops / attained_flops, bytes / bandwidth)

Both inputs come straight from :class:`~repro.perf.counters.OpCounter`,
so any kernel this library runs can be "re-timed" on any catalogued
machine.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.specs import MachineSpec
from repro.perf.counters import OpCounter


def roofline_time(
    flops: float,
    bytes_moved: float,
    machine: MachineSpec,
    *,
    efficiency: float | None = None,
    bandwidth_fraction: float = 1.0,
) -> float:
    """Predicted seconds for (flops, bytes) on ``machine``.

    Parameters
    ----------
    efficiency:
        Fraction of peak compute attained; defaults to the machine's
        calibrated ``dnn_efficiency``.
    bandwidth_fraction:
        Fraction of peak bandwidth attained (irregular access patterns
        achieve less; format-specific values come from the caller).
    """
    if flops < 0 or bytes_moved < 0:
        raise ValueError("flops and bytes must be non-negative")
    if not 0.0 < bandwidth_fraction <= 1.0:
        raise ValueError("bandwidth_fraction must lie in (0, 1]")
    eff = machine.dnn_efficiency if efficiency is None else efficiency
    if not 0.0 < eff <= 1.0:
        raise ValueError("efficiency must lie in (0, 1]")
    t_compute = flops / (machine.peak_gflops * 1e9 * eff)
    t_memory = bytes_moved / (
        machine.bandwidth_gbs * 1e9 * bandwidth_fraction
    )
    return max(t_compute, t_memory)


@dataclass(frozen=True)
class RooflineModel:
    """A machine-bound roofline: re-times counted work on one machine."""

    machine: MachineSpec
    efficiency: float | None = None
    bandwidth_fraction: float = 1.0

    def time(self, counter: OpCounter) -> float:
        """Seconds the counted work would take on this machine."""
        return roofline_time(
            counter.flops,
            counter.bytes_total,
            self.machine,
            efficiency=self.efficiency,
            bandwidth_fraction=self.bandwidth_fraction,
        )

    def bound(self, counter: OpCounter) -> str:
        """Which roof binds: ``"compute"`` or ``"memory"``."""
        eff = (
            self.machine.dnn_efficiency
            if self.efficiency is None
            else self.efficiency
        )
        t_c = counter.flops / (self.machine.peak_gflops * 1e9 * eff)
        t_m = counter.bytes_total / (
            self.machine.bandwidth_gbs * 1e9 * self.bandwidth_fraction
        )
        return "compute" if t_c >= t_m else "memory"

    def arithmetic_balance(self) -> float:
        """Machine balance point in flops/byte: kernels below it are
        memory-bound (where every sparse format in this library lives)."""
        eff = (
            self.machine.dnn_efficiency
            if self.efficiency is None
            else self.efficiency
        )
        return (self.machine.peak_gflops * eff) / (
            self.machine.bandwidth_gbs * self.bandwidth_fraction
        )
