"""Dollars-per-speedup — the paper's hardware-selection benchmark.

Section V-C: raw speedup flatters expensive hardware, so the paper
defines ``price / speedup`` (lower is better) and concludes the Tesla
P100 is the most efficient platform and the 8-core CPU the least —
despite the CPU being the cheapest and the DGX the fastest.  This module
computes the benchmark from (time, price) pairs; Fig. 6 and the last
column of Table VII are direct outputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


@dataclass(frozen=True)
class PricePoint:
    """One method's row in the Fig. 6 / Table VII comparison."""

    method: str
    seconds: float
    price_usd: float
    speedup: float
    price_per_speedup: float

    def __lt__(self, other: "PricePoint") -> bool:
        return self.price_per_speedup < other.price_per_speedup


def price_per_speedup_table(
    times: Mapping[str, float],
    prices: Mapping[str, float],
    *,
    baseline: str | None = None,
) -> List[PricePoint]:
    """Build the full benchmark table.

    Parameters
    ----------
    times:
        Method -> seconds to reach the target accuracy.
    prices:
        Method -> platform price in USD.
    baseline:
        The 1.0x reference; defaults to the slowest method (the paper's
        choice: "8 CPUs is the slowest case, which is the baseline").

    Returns
    -------
    Rows in the input order of ``times``; use ``sorted()`` for a
    ranking by efficiency.
    """
    if not times:
        return []
    missing = set(times) - set(prices)
    if missing:
        raise ValueError(f"no price for methods: {sorted(missing)}")
    for k, t in times.items():
        if t <= 0:
            raise ValueError(f"non-positive time for {k!r}")
    if baseline is None:
        baseline = max(times, key=lambda k: times[k])
    elif baseline not in times:
        raise ValueError(f"baseline {baseline!r} not among methods")
    t0 = times[baseline]
    rows = []
    for method, t in times.items():
        speedup = t0 / t
        rows.append(
            PricePoint(
                method=method,
                seconds=t,
                price_usd=float(prices[method]),
                speedup=speedup,
                price_per_speedup=float(prices[method]) / speedup,
            )
        )
    return rows


def best_value(rows: Sequence[PricePoint]) -> PricePoint:
    """The most efficient platform (minimum price per speedup)."""
    if not rows:
        raise ValueError("no rows")
    return min(rows)


def format_table(rows: Sequence[PricePoint]) -> str:
    """Render rows as an aligned text table (benchmark output)."""
    header = (
        f"{'Method':34s} {'Time (s)':>10s} {'Price ($)':>10s} "
        f"{'Speedup':>9s} {'$/Speedup':>10s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        lines.append(
            f"{r.method:34s} {r.seconds:10.1f} {r.price_usd:10,.0f} "
            f"{r.speedup:8.1f}x {r.price_per_speedup:10,.0f}"
        )
    return "\n".join(lines)
