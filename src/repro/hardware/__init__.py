"""Hardware substrate models.

The paper's numbers come from machines we do not have (Ivy Bridge +
Xeon Phi for SVM; 8-core CPU / KNL / Haswell / P100 / DGX station for
DNN).  This package simulates them at the level the paper's analysis
actually uses:

- :mod:`repro.hardware.specs` — the machine catalog: peak flop/s,
  memory bandwidth, SIMD width, core count, street price (Table VII's
  price column) and a measured-efficiency factor per machine.
- :mod:`repro.hardware.roofline` — Eq. (7) as a model:
  ``time = max(flops / attained_flops, bytes / bandwidth)``.
- :mod:`repro.hardware.vectormachine` — a deterministic fixed-width
  SIMD execution model for the five format kernels; counts the width-W
  vector instructions each layout issues (padding and per-row remainders
  included), which is what reproduces the CSR-vs-COO ``vdim`` effect of
  Fig. 4 exactly.
- :mod:`repro.hardware.dnn_perf` — per-iteration DNN time model
  ``t(B) = overhead + B * per_sample`` calibrated per machine (the
  functional form Table VII's measurements follow).
- :mod:`repro.hardware.pricing` — the dollars-per-speedup benchmark of
  Fig. 6.
"""

from repro.hardware.specs import (
    DNN_MACHINES,
    MACHINES,
    MachineSpec,
    SVM_MACHINES,
    get_machine,
)
from repro.hardware.roofline import RooflineModel, roofline_time
from repro.hardware.vectormachine import VectorMachine, VectorCost
from repro.hardware.dnn_perf import DNNPerfModel, iteration_time
from repro.hardware.pricing import PricePoint, price_per_speedup_table

__all__ = [
    "MachineSpec",
    "MACHINES",
    "DNN_MACHINES",
    "SVM_MACHINES",
    "get_machine",
    "RooflineModel",
    "roofline_time",
    "VectorMachine",
    "VectorCost",
    "DNNPerfModel",
    "iteration_time",
    "PricePoint",
    "price_per_speedup_table",
]
