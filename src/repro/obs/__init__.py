"""repro.obs — unified tracing, metrics, and scheduler-regret auditing.

The observability layer the rest of the repo reports into:

* :mod:`repro.obs.trace` — span tracer (``REPRO_TRACE=1`` /
  ``--trace``), zero-allocation when disabled;
* :mod:`repro.obs.metrics` — one registry of counters / gauges /
  histograms with mergeable per-thread shards;
* :mod:`repro.obs.audit` — the scheduler decision audit log and
  regret accounting;
* :mod:`repro.obs.export` — JSON-lines, Prometheus text, and
  chrome://tracing exporters;
* :mod:`repro.obs.report` — the ``repro obs report`` regret suite;
* :mod:`repro.obs.bench` — the disabled-mode overhead gate
  (``repro bench obs``).
"""

from repro.obs.audit import (
    AuditLog,
    DecisionRecord,
    RegretRow,
    audit_dataset,
    audit_log,
    current_dataset,
    regret_rows,
    render_regret_table,
)
from repro.obs.export import (
    read_audit_jsonl,
    read_spans_jsonl,
    registry_to_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
    validate_chrome_trace,
    write_audit_jsonl,
    write_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsShard,
    get_registry,
    opcounter_view,
)
from repro.obs.trace import (
    NOOP_SPAN,
    SpanNode,
    SpanRecord,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    span_tree,
    trace_enabled,
)

# report/bench sit above the formats/data layers that themselves
# import repro.obs, so they must resolve lazily to keep this package
# importable from the bottom of the stack.
_LAZY = {
    "REPORT_DATASET_NAMES": "repro.obs.report",
    "render_report": "repro.obs.report",
    "report_payload": "repro.obs.report",
    "run_report": "repro.obs.report",
    "run_overhead_bench": "repro.obs.bench",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module 'repro.obs' has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "AuditLog",
    "Counter",
    "DecisionRecord",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsShard",
    "NOOP_SPAN",
    "REPORT_DATASET_NAMES",
    "RegretRow",
    "SpanNode",
    "SpanRecord",
    "Tracer",
    "audit_dataset",
    "audit_log",
    "current_dataset",
    "disable_tracing",
    "enable_tracing",
    "get_registry",
    "get_tracer",
    "opcounter_view",
    "read_audit_jsonl",
    "read_spans_jsonl",
    "regret_rows",
    "registry_to_prometheus",
    "render_regret_table",
    "render_report",
    "report_payload",
    "run_overhead_bench",
    "run_report",
    "span_tree",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "trace_enabled",
    "validate_chrome_trace",
    "write_audit_jsonl",
    "write_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]
