"""repro.obs — unified tracing, metrics, and scheduler-regret auditing.

The observability layer the rest of the repo reports into:

* :mod:`repro.obs.trace` — span tracer (``REPRO_TRACE=1`` /
  ``--trace``), zero-allocation when disabled, with
  :class:`~repro.obs.trace.TraceContext` for cross-process parenting;
* :mod:`repro.obs.collect` — fleet trace collection: worker span
  rings shipped over the control plane and merged into one timeline;
* :mod:`repro.obs.metrics` — one registry of counters / gauges /
  histograms with mergeable per-thread shards;
* :mod:`repro.obs.audit` — the scheduler decision audit log and
  regret accounting;
* :mod:`repro.obs.slo` — declarative SLOs with multi-window
  burn-rate alerting (``repro obs slo``);
* :mod:`repro.obs.flight` — the always-on flight recorder, dumped on
  crash / SIGUSR1 / SLO breach (``repro obs dump``);
* :mod:`repro.obs.export` — JSON-lines, Prometheus text, and
  chrome://tracing exporters (single- and multi-process);
* :mod:`repro.obs.report` — the ``repro obs report`` regret suite;
* :mod:`repro.obs.bench` / :mod:`repro.obs.bench_fleet` — the
  disabled-mode overhead gate and the fleet observability gate
  (``repro bench obs [--fleet]``).
"""

from repro.obs.audit import (
    AuditLog,
    DecisionRecord,
    RegretRow,
    audit_dataset,
    audit_log,
    current_dataset,
    regret_rows,
    render_regret_table,
)
from repro.obs.collect import (
    MergedTrace,
    WorkerTraceBuffer,
    clear_fleet_trace,
    fold_worker_audits,
    last_fleet_trace,
    merge_fleet_trace,
    mount_tracer_health,
    publish_fleet_trace,
)
from repro.obs.export import (
    merged_to_chrome_trace,
    read_audit_jsonl,
    read_spans_jsonl,
    read_spans_meta,
    registry_to_prometheus,
    spans_to_chrome_trace,
    spans_to_jsonl,
    validate_chrome_trace,
    write_audit_jsonl,
    write_chrome_trace,
    write_merged_chrome_trace,
    write_prometheus,
    write_spans_jsonl,
)
from repro.obs.flight import (
    FlightRecorder,
    disable_flight,
    enable_flight,
    flight_recorder,
    install_signal_dump,
    read_flight_dump,
    render_flight,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsShard,
    get_registry,
    opcounter_view,
)
from repro.obs.slo import (
    SLOBreach,
    SLOMonitor,
    SLOSpec,
    SLOStatus,
    default_slos,
    render_slo,
)
from repro.obs.trace import (
    DOOR_LANE,
    NOOP_SPAN,
    SpanNode,
    SpanRecord,
    TraceContext,
    Tracer,
    disable_tracing,
    enable_tracing,
    get_tracer,
    new_trace_id,
    span_tree,
    trace_enabled,
)

# report/bench sit above the formats/data layers that themselves
# import repro.obs, so they must resolve lazily to keep this package
# importable from the bottom of the stack.
_LAZY = {
    "REPORT_DATASET_NAMES": "repro.obs.report",
    "render_report": "repro.obs.report",
    "report_payload": "repro.obs.report",
    "run_report": "repro.obs.report",
    "tracer_health": "repro.obs.report",
    "run_overhead_bench": "repro.obs.bench",
    "run_fleet_trace_gate": "repro.obs.bench_fleet",
    "run_slo_flight_gate": "repro.obs.bench_fleet",
}


def __getattr__(name):
    module = _LAZY.get(name)
    if module is None:
        raise AttributeError(
            f"module 'repro.obs' has no attribute {name!r}"
        )
    import importlib

    return getattr(importlib.import_module(module), name)


__all__ = [
    "AuditLog",
    "Counter",
    "DOOR_LANE",
    "DecisionRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MergedTrace",
    "MetricsRegistry",
    "MetricsShard",
    "NOOP_SPAN",
    "REPORT_DATASET_NAMES",
    "RegretRow",
    "SLOBreach",
    "SLOMonitor",
    "SLOSpec",
    "SLOStatus",
    "SpanNode",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "WorkerTraceBuffer",
    "audit_dataset",
    "audit_log",
    "clear_fleet_trace",
    "current_dataset",
    "default_slos",
    "disable_flight",
    "disable_tracing",
    "enable_flight",
    "enable_tracing",
    "flight_recorder",
    "fold_worker_audits",
    "get_registry",
    "get_tracer",
    "install_signal_dump",
    "last_fleet_trace",
    "merge_fleet_trace",
    "merged_to_chrome_trace",
    "mount_tracer_health",
    "new_trace_id",
    "opcounter_view",
    "publish_fleet_trace",
    "read_audit_jsonl",
    "read_flight_dump",
    "read_spans_jsonl",
    "read_spans_meta",
    "regret_rows",
    "registry_to_prometheus",
    "render_flight",
    "render_regret_table",
    "render_report",
    "render_slo",
    "report_payload",
    "run_fleet_trace_gate",
    "run_overhead_bench",
    "run_report",
    "run_slo_flight_gate",
    "span_tree",
    "spans_to_chrome_trace",
    "spans_to_jsonl",
    "trace_enabled",
    "tracer_health",
    "validate_chrome_trace",
    "write_audit_jsonl",
    "write_chrome_trace",
    "write_merged_chrome_trace",
    "write_prometheus",
    "write_spans_jsonl",
]
