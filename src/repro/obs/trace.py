"""Span-based tracing: the shared event model for train/schedule/serve.

A *span* is one named, timed region of work — an SMO iteration, a
format conversion, a scheduler decision, a serve batch flush.  Spans
nest: each carries the id of the span that was open when it started,
propagated through a :mod:`contextvars` variable so nesting survives
``yield`` and callback boundaries without any explicit plumbing.

The tracer is built around one hard constraint: **instrumentation must
be free when disabled**.  ``Tracer.span()`` on a disabled tracer
returns a process-wide no-op singleton — no object is allocated, no
clock is read, no context variable is touched — so hot paths can keep
their spans permanently in place.  The ``obs-overhead`` bench and the
RDL008 lint rule together enforce the discipline at the call sites:
span names are constant strings, and attribute computation sits behind
an ``if tracer.enabled`` guard.

Enable with ``REPRO_TRACE=1`` in the environment (read at import), the
``--trace`` CLI flags, or :func:`enable_tracing` at runtime.  Finished
spans accumulate in a bounded ring buffer (oldest dropped first) and
are exported through :mod:`repro.obs.export`.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    Deque,
    Dict,
    List,
    Optional,
    Tuple,
)

#: Id of the currently open span (``None`` at the root).  One variable
#: for the whole process: spans from different tracers still nest
#: correctly because records stay per-tracer.
_CURRENT: contextvars.ContextVar[Optional[int]] = contextvars.ContextVar(
    "repro_obs_current_span", default=None
)

#: Span-attribute keys that carry a cross-process parent link.  A
#: worker records them (under the ``tracer.enabled`` guard) from the
#: :class:`TraceContext` the front door shipped with the request;
#: :func:`repro.obs.collect.merge_fleet_trace` resolves them back into
#: real ``parent_id`` links when the rings are merged.
CTX_TRACE_ID = "ctx.trace_id"
CTX_PARENT_SPAN = "ctx.parent_span"
CTX_PARENT_LANE = "ctx.parent_lane"

#: Attribute marking a zero-duration marker span recorded by
#: :meth:`Tracer.instant` (exported as a chrome ``"i"`` instant event).
INSTANT_ATTR = "instant"

#: Lane number of the front-door process in a merged fleet trace;
#: worker ``w`` occupies lane ``w + 1``.
DOOR_LANE = 0

#: Process-wide trace-id allocator (cheap; ids only need to be unique
#: within the door process that stamps them onto outgoing requests).
_TRACE_IDS = itertools.count(1)


def new_trace_id() -> int:
    """A fresh trace id for one cross-process request."""
    return next(_TRACE_IDS)


@dataclass(frozen=True)
class TraceContext:
    """A span's identity, shipped across a process boundary.

    The front door opens a request span, wraps its id in a context and
    appends it to the wire message; the worker stamps the triplet onto
    its own spans as ``ctx.*`` attributes.  The context is deliberately
    tiny and picklable — three ints — so carrying it on the hot path
    costs a few bytes per *batch*, not per row.
    """

    trace_id: int
    span_id: int
    lane: int = DOOR_LANE


@dataclass(frozen=True)
class SpanRecord:
    """One finished span.

    ``attrs`` is a sorted tuple of ``(key, value)`` pairs rather than a
    dict so records are hashable, order-canonical, and compare equal
    after a JSON round-trip (values must be JSON scalars).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: float
    attrs: Tuple[Tuple[str, Any], ...] = ()

    @property
    def duration(self) -> float:
        return self.end - self.start

    def as_dict(self) -> Dict[str, Any]:
        return {
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": {k: v for k, v in self.attrs},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "SpanRecord":
        return cls(
            span_id=int(d["span_id"]),
            parent_id=(
                None if d.get("parent_id") is None else int(d["parent_id"])
            ),
            name=str(d["name"]),
            start=float(d["start"]),
            end=float(d["end"]),
            attrs=tuple(sorted(d.get("attrs", {}).items())),
        )


class _NoopSpan:
    """The shared disabled-mode span: every method is a no-op.

    A single instance serves every disabled ``span()`` call — the
    identity check ``tracer.span(n) is tracer.span(n)`` is the
    deterministic criterion the overhead gate builds on.
    """

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        """Discard an attribute (disabled mode)."""


NOOP_SPAN = _NoopSpan()


class _ActiveSpan:
    """An open span on an enabled tracer (context-manager protocol)."""

    __slots__ = ("_tracer", "name", "span_id", "parent_id", "start",
                 "_attrs", "_token")

    def __init__(self, tracer: "Tracer", name: str) -> None:
        self._tracer = tracer
        self.name = name
        self.span_id = next(tracer._ids)
        self._attrs: Dict[str, Any] = {}
        self.parent_id: Optional[int] = None
        self.start = 0.0
        self._token: Optional[contextvars.Token] = None

    def set(self, key: str, value: Any) -> None:
        """Attach one attribute (JSON-scalar values round-trip exactly)."""
        self._attrs[key] = value

    def __enter__(self) -> "_ActiveSpan":
        self.parent_id = _CURRENT.get()
        self._token = _CURRENT.set(self.span_id)
        self.start = self._tracer._clock()
        return self

    def __exit__(self, *exc: object) -> bool:
        end = self._tracer._clock()
        if self._token is not None:
            _CURRENT.reset(self._token)
        self._tracer._record(
            SpanRecord(
                span_id=self.span_id,
                parent_id=self.parent_id,
                name=self.name,
                start=self.start,
                end=end,
                attrs=tuple(sorted(self._attrs.items())),
            )
        )
        return False


class Tracer:
    """Collects spans into a bounded, thread-safe ring buffer.

    Parameters
    ----------
    enabled:
        Initial state.  Disabled tracers hand out :data:`NOOP_SPAN`
        and never touch the clock or the buffer.
    max_spans:
        Ring-buffer capacity; the oldest finished spans are dropped
        once full (keeps ``REPRO_TRACE=1`` runs memory-bounded).
    clock:
        Injection point for deterministic tests; defaults to
        :func:`time.perf_counter`.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        max_spans: int = 65536,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if max_spans < 1:
            raise ValueError("max_spans must be >= 1")
        self.enabled = bool(enabled)
        self._clock = clock
        self._ids = itertools.count(1)
        self._spans: Deque[SpanRecord] = deque(maxlen=max_spans)
        self._lock = threading.Lock()
        self.dropped = 0

    # -- recording -------------------------------------------------------
    def span(self, name: str):
        """Open a span; usable as ``with tracer.span("x") as sp:``.

        Disabled mode returns the shared no-op singleton: zero
        allocation, zero clock reads.  Call sites therefore compute
        attributes only under ``if tracer.enabled:`` (enforced by lint
        rule RDL008 in the hot-path packages).
        """
        if not self.enabled:
            return NOOP_SPAN
        return _ActiveSpan(self, name)

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._spans) == self._spans.maxlen:
                self.dropped += 1
            self._spans.append(record)

    def instant(self, name: str, attrs: Optional[Dict[str, Any]] = None) -> None:
        """Record a zero-duration marker (SLO breach, hot-spot, ...).

        Free when disabled — but call sites that build an ``attrs``
        dict should still sit behind ``if tracer.enabled:`` so the
        dict is never allocated on a disabled tracer.  The marker
        carries :data:`INSTANT_ATTR` so exporters emit a chrome
        instant event (``ph: "i"``) instead of a complete one.
        """
        if not self.enabled:
            return
        t = self._clock()
        merged: Dict[str, Any] = {INSTANT_ATTR: True}
        if attrs:
            merged.update(attrs)
        self._record(
            SpanRecord(
                span_id=next(self._ids),
                parent_id=_CURRENT.get(),
                name=name,
                start=t,
                end=t,
                attrs=tuple(sorted(merged.items())),
            )
        )

    def now(self) -> float:
        """One reading of this tracer's clock (the collect handshake)."""
        return self._clock()

    # -- control ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._spans.clear()
            self.dropped = 0

    # -- reading ---------------------------------------------------------
    def spans(self) -> List[SpanRecord]:
        """Snapshot of the finished spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def __len__(self) -> int:
        with self._lock:
            return len(self._spans)


# -- span trees ----------------------------------------------------------


@dataclass
class SpanNode:
    """One span with its children, for tree-shaped inspection."""

    record: SpanRecord
    children: List["SpanNode"] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.record.name,
            "span_id": self.record.span_id,
            "attrs": {k: v for k, v in self.record.attrs},
            "children": [c.as_dict() for c in self.children],
        }


def span_tree(records: List[SpanRecord]) -> List[SpanNode]:
    """Build the forest of spans from a flat record list.

    Children are ordered by start time (ties broken by span id, which
    is allocation order).  Spans whose parent is missing — dropped by
    the ring buffer, or recorded by another tracer — become roots, so
    the tree is total over the input.
    """
    nodes = {r.span_id: SpanNode(r) for r in records}
    roots: List[SpanNode] = []
    for r in sorted(records, key=lambda r: (r.start, r.span_id)):
        node = nodes[r.span_id]
        parent = (
            nodes.get(r.parent_id) if r.parent_id is not None else None
        )
        if parent is None:
            roots.append(node)
        else:
            parent.children.append(node)
    return roots


# -- the process-wide tracer ---------------------------------------------

_GLOBAL = Tracer(enabled=os.environ.get("REPRO_TRACE", "") == "1")


def get_tracer() -> Tracer:
    """The process-wide tracer every instrumented call site reports to."""
    return _GLOBAL


def trace_enabled() -> bool:
    return _GLOBAL.enabled


def enable_tracing() -> Tracer:
    """Turn the global tracer on (the ``--trace`` flags call this)."""
    _GLOBAL.enable()
    return _GLOBAL


def disable_tracing() -> Tracer:
    _GLOBAL.disable()
    return _GLOBAL
