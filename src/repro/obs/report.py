"""The ``repro obs report`` regret suite.

Runs the paper's decision system against ground truth on a fixed
family of synthetic shapes: for each dataset the analytic cost model
*predicts* a per-format ranking and the autotuner *measures* one, and
the gap between the model's pick and the measured winner is the
model's **regret** on that shape (see :mod:`repro.obs.audit`).

The suite spans the structures the nine parameters are supposed to
discriminate:

==========  ==========================================================
uniform     every row the same length (``vdim`` = 0) — ELL territory
bimodal     short rows with a thin long tail — the batch crossover
powerlaw    heavy-tailed rows — padding blowup, CSR/COO territory
banded      a few full diagonals — DIA territory
dense       fully dense — DEN territory (the known-correct pin)
==========  ==========================================================

``dense`` is the calibration anchor: a fully dense matrix is priced
and served through the BLAS-backed dense kernel, which dominates every
sparse format by an order of magnitude, so both the predicted and the
measured winner are DEN and the regret is exactly 0.0 — the regression
test pins that.  The other rows are *reported*, not gated: wall-clock
rankings on tiny probes are machine-dependent, and showing the honest
regret number is the point of the report.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Tuple

import numpy as np

from repro.core.autotune import AutoTuner
from repro.core.cost_model import CostModel
from repro.data.synthetic import (
    CooTriples,
    banded_matrix,
    bimodal_rows_matrix,
    powerlaw_rows_matrix,
    uniform_rows_matrix,
)
from repro.features.extract import profile_from_coo
from repro.formats.base import FORMAT_NAMES
from repro.obs.audit import (
    DecisionRecord,
    regret_by_decision_source,
    regret_rows,
    render_regret_table,
)
from repro.obs.trace import get_tracer


def _dense_matrix(m: int, n: int, *, seed: int = 0) -> CooTriples:
    """A fully dense matrix as canonical COO triples."""
    rng = np.random.default_rng(seed)
    values = 0.1 + rng.random((m, n))
    rows, cols = np.nonzero(values)
    return (
        rows.astype(np.int64),
        cols.astype(np.int64),
        values[rows, cols],
        (m, n),
    )


#: The report's dataset family: ``name -> (m, n) -> CooTriples``.
REPORT_DATASETS: Tuple[
    Tuple[str, Callable[[int, int, int], CooTriples]], ...
] = (
    ("uniform", lambda m, n, s: uniform_rows_matrix(m, n, 8, seed=s)),
    (
        "bimodal",
        lambda m, n, s: bimodal_rows_matrix(m, n, 6, 9, 0.1, seed=s),
    ),
    (
        "powerlaw",
        lambda m, n, s: powerlaw_rows_matrix(
            m, n, alpha=2.0, min_nnz=2, max_nnz=min(64, n), seed=s
        ),
    ),
    (
        "banded",
        lambda m, n, s: banded_matrix(m, n, (-1, 0, 1), seed=s),
    ),
    ("dense", lambda m, n, s: _dense_matrix(m, n, seed=s)),
)

#: Dataset names in suite order (CLI/help listing).
REPORT_DATASET_NAMES: Tuple[str, ...] = tuple(
    name for name, _ in REPORT_DATASETS
)


def run_report(
    *,
    quick: bool = False,
    repeats: int = 3,
    seed: int = 0,
    batch_k: int = 1,
) -> List[DecisionRecord]:
    """Predict and measure every suite dataset; one record per dataset.

    Each record carries the full nine-parameter profile, the analytic
    model's per-format costs and the autotuner's measured medians over
    the same candidates, so downstream regret math needs nothing else.
    ``quick`` shrinks the shapes for CI smoke runs.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    m, n = (256, 128) if quick else (1024, 512)
    model = CostModel()
    tuner = AutoTuner(repeats=repeats, seed=seed)
    tracer = get_tracer()
    records: List[DecisionRecord] = []
    for name, build in REPORT_DATASETS:
        with tracer.span("obs.report.dataset") as sp:
            if tracer.enabled:
                sp.set("dataset", name)
            rows, cols, values, shape = build(m, n, seed)
            profile = profile_from_coo(rows, cols, shape, validated=True)
            predicted = {
                fc.fmt: fc.cost
                for fc in model.rank(
                    profile, FORMAT_NAMES, batch_k=batch_k
                )
            }
            results = tuner.probe(rows, cols, values, shape, FORMAT_NAMES)
            measured = {r.fmt: r.median_seconds for r in results}
            chosen = min(predicted, key=predicted.__getitem__)
            records.append(
                DecisionRecord(
                    source="schedule",
                    dataset=name,
                    strategy="cost",
                    batch_k=batch_k,
                    chosen=chosen,
                    reason="obs report suite (predicted vs measured)",
                    cached=False,
                    features=profile.as_dict(),
                    predicted=predicted,
                    measured=measured,
                )
            )
    return records


def tracer_health() -> Dict[str, Any]:
    """The process tracer's ring state (enabled, held, evicted).

    A non-zero ``dropped`` means the ring wrapped and the oldest spans
    are gone — the report flags it so "only N spans" is never misread
    as "only N things happened".  Fleet runs carry the same counter
    per process in :class:`~repro.obs.collect.MergedTrace.dropped`.
    """
    tracer = get_tracer()
    return {
        "enabled": bool(tracer.enabled),
        "spans": len(tracer),
        "dropped": tracer.dropped,
    }


def report_payload(records: List[DecisionRecord]) -> Dict[str, Any]:
    """JSON-ready rollup: per-row dicts plus aggregate regret."""
    rows = regret_rows(records)
    regrets = [r.regret for r in rows if r.regret is not None]
    agreements = sum(
        1 for r in rows if r.predicted_best == r.measured_best
    )
    return {
        "tracer": tracer_health(),
        "rows": [r.as_dict() for r in rows],
        "records": [r.as_dict() for r in records],
        "n_datasets": len(rows),
        "n_agreements": agreements,
        "mean_regret": (
            float(np.mean(regrets)) if regrets else None
        ),
        "max_regret": float(max(regrets)) if regrets else None,
        "by_decision_source": regret_by_decision_source(records),
    }


def render_report(records: List[DecisionRecord]) -> str:
    """The human-readable regret report (table + summary line)."""
    rows = regret_rows(records)
    payload = report_payload(records)
    lines = [render_regret_table(rows)]
    if payload["mean_regret"] is not None:
        lines.append("")
        lines.append(
            f"prediction matched measurement on "
            f"{payload['n_agreements']}/{payload['n_datasets']} datasets; "
            f"mean regret {payload['mean_regret'] * 100:.1f}%, "
            f"max {payload['max_regret'] * 100:.1f}%"
        )
    health = payload["tracer"]
    if health["enabled"]:
        lines.append(
            f"tracer      : {health['spans']} spans held, "
            f"{health['dropped']} evicted from the ring"
            + (" (ring wrapped — oldest spans lost)"
               if health["dropped"] else "")
        )
    by_src = payload["by_decision_source"]
    if len(by_src) > 1:
        # Worth a breakdown only when decisions actually came from more
        # than one place (analytic vs tuned vs probe).
        for src, agg in by_src.items():
            if agg["mean_regret"] is None:
                lines.append(
                    f"  via {src:<9s}: {agg['n']} decisions, "
                    f"no measurements"
                )
            else:
                lines.append(
                    f"  via {src:<9s}: {agg['n']} decisions, mean regret "
                    f"{agg['mean_regret'] * 100:.1f}%, max "
                    f"{agg['max_regret'] * 100:.1f}%"
                )
    return "\n".join(lines)
