"""The fleet observability gate (``repro bench obs --fleet``).

Three promises the cross-process observability plane makes, each
checked end to end on a real multi-process fleet:

1. **Observation never changes the answer**: a fully traced fleet run
   (door tracer on, every worker's tracer on, flight recorder armed)
   must produce labels AND decision values bitwise identical to the
   same run untraced.  Not approximately — ``==`` on floats and
   :func:`numpy.array_equal` on arrays.
2. **The merged timeline is complete and coherent**: every worker
   lane contributes spans, every cross-boundary worker span's parent
   resolves to a door-side request span, nothing is left unresolved,
   and the chrome export passes schema validation.
3. **SLO breach → flight dump is deterministic**: a monitor with an
   unmeetable latency objective must breach on the virtual clock and
   leave a parseable flight dump behind, every run.

The disabled-mode overhead gate (:func:`repro.obs.bench.
run_overhead_bench`) rides along so one ``--fleet`` invocation gates
the whole plane; ``headline.pass`` requires all of it.  CI's
``fleet-trace-smoke`` job runs this with ``--smoke`` and gates on the
deterministic criteria.
"""

from __future__ import annotations

import json
import tempfile
from pathlib import Path
from typing import Any, Dict, Optional, Union

import numpy as np

from repro.obs.bench import run_overhead_bench
from repro.obs.export import (
    merged_to_chrome_trace,
    validate_chrome_trace,
)
from repro.obs.flight import FlightRecorder, read_flight_dump
from repro.obs.slo import SLOMonitor, SLOSpec
from repro.obs.trace import (
    CTX_PARENT_SPAN,
    DOOR_LANE,
    get_tracer,
)

#: Door-side span names a worker span's cross-boundary parent may
#: resolve to.
_DOOR_REQUEST_SPANS = ("fleet.request", "fleet.request_one")


def _run_session(
    *,
    workers: int,
    backend: str,
    smoke: bool,
    seed: int,
    traced: bool,
) -> Dict[str, Any]:
    """One fleet session; returns outputs (+ merged trace if traced)."""
    from repro.serve.bench_fleet import fleet_models, tenant_workload
    from repro.serve.fleet import ServingFleet, simulate_fleet

    tracer = get_tracer()
    was_enabled = tracer.enabled
    if traced:
        tracer.enable()
        tracer.clear()
    else:
        tracer.disable()
    try:
        with ServingFleet(
            fleet_models(smoke=smoke), workers, backend=backend
        ) as fleet:
            if traced:
                fleet.enable_worker_tracing()
            report = simulate_fleet(
                fleet, tenant_workload(smoke=smoke, seed=seed)
            )
            merged = fleet.merged_trace() if traced else None
        return {
            "responses": dict(report.responses),
            "decisions": dict(report.decisions),
            "merged": merged,
        }
    finally:
        if was_enabled:
            tracer.enable()
        else:
            tracer.disable()
        if traced:
            tracer.clear()


def run_fleet_trace_gate(
    *,
    smoke: bool = False,
    workers: int = 4,
    backend: str = "process",
    seed: int = 0,
) -> Dict[str, Any]:
    """Traced-vs-untraced bitwise equality + merged-timeline checks."""
    untraced = _run_session(
        workers=workers, backend=backend, smoke=smoke,
        seed=seed, traced=False,
    )
    traced = _run_session(
        workers=workers, backend=backend, smoke=smoke,
        seed=seed, traced=True,
    )

    labels_identical = untraced["responses"] == traced["responses"]
    ids = sorted(untraced["decisions"])
    decisions_identical = ids == sorted(traced["decisions"]) and all(
        np.array_equal(untraced["decisions"][i], traced["decisions"][i])
        for i in ids
    )

    merged = traced["merged"]
    by_id = {s.span_id: s for s in merged.spans}
    worker_lanes = merged.worker_lanes()
    lanes_complete = worker_lanes == list(range(1, workers + 1))

    cross = 0
    bad_parents = 0
    for s in merged.spans:
        if merged.lanes[s.span_id] == DOOR_LANE:
            continue
        attrs = dict(s.attrs)
        if CTX_PARENT_SPAN not in attrs:
            continue
        cross += 1
        parent = by_id.get(s.parent_id)
        if parent is None or parent.name not in _DOOR_REQUEST_SPANS:
            bad_parents += 1
    parents_resolve = cross > 0 and bad_parents == 0

    chrome = merged_to_chrome_trace(merged)
    try:
        validate_chrome_trace(chrome)
        chrome_valid = True
    except ValueError:
        chrome_valid = False

    return {
        "workers": workers,
        "backend": backend,
        "n_responses": len(traced["responses"]),
        "n_spans": len(merged.spans),
        "worker_lanes": worker_lanes,
        "lanes_complete": bool(lanes_complete),
        "cross_boundary_spans": cross,
        "bad_parents": bad_parents,
        "parents_resolve": bool(parents_resolve),
        "unresolved": merged.unresolved,
        "dropped": {
            str(lane): n for lane, n in sorted(merged.dropped.items())
        },
        "labels_identical": bool(labels_identical),
        "decisions_identical": bool(decisions_identical),
        "chrome_valid": bool(chrome_valid),
        "chrome_events": len(chrome["traceEvents"]),
        "pass": bool(
            labels_identical
            and decisions_identical
            and lanes_complete
            and parents_resolve
            and merged.unresolved == 0
            and chrome_valid
        ),
    }


def run_slo_flight_gate(
    *,
    smoke: bool = False,
    seed: int = 0,
    workdir: Union[str, Path, None] = None,
) -> Dict[str, Any]:
    """Deterministic breach: unmeetable SLO → flight dump on disk.

    Runs on the ``local`` backend (the breach mechanics live entirely
    door-side) with a private flight recorder, so nothing leaks into
    process-global state.  A 1 ns latency objective makes every
    request a bad event; with the whole virtual session inside the
    long window the burn rate is ``1 / error_budget = 100 ≫ 2``, so
    the breach cannot *not* fire.
    """
    from repro.serve.bench_fleet import fleet_models, tenant_workload
    from repro.serve.fleet import ServingFleet, simulate_fleet

    owns_dir = workdir is None
    base = Path(
        tempfile.mkdtemp(prefix="repro-slo-gate-")
        if owns_dir
        else workdir
    )
    dump_path = base / "flight-slo-breach.jsonl"
    flight = FlightRecorder(enabled=True)
    monitor = SLOMonitor(
        (
            SLOSpec(
                "latency_impossible", "latency",
                objective=0.99, threshold_ms=1e-6,
                long_window_s=1e9, short_window_s=1e9,
                burn_factor=2.0, min_events=8,
            ),
        ),
        flight=flight,
        dump_path=dump_path,
    )
    with ServingFleet(
        fleet_models(smoke=True), 2, backend="local"
    ) as fleet:
        simulate_fleet(
            fleet,
            tenant_workload(smoke=True, seed=seed),
            slo=monitor,
        )

    breaches = len(monitor.breaches)
    dumped = dump_path.exists()
    dump_ok = False
    reason = None
    if dumped:
        try:
            parsed = read_flight_dump(dump_path)
            reason = parsed["header"].get("reason")
            dump_ok = (
                reason == "slo_breach:latency_impossible"
                and any(
                    e.get("kind") == "slo_breach"
                    for e in parsed["events"]
                )
            )
        except ValueError:
            dump_ok = False
    if owns_dir:
        try:
            if dumped:
                dump_path.unlink()
            base.rmdir()
        except OSError:  # pragma: no cover - cleanup best effort
            pass

    return {
        "breaches": breaches,
        "dump_written": bool(dumped),
        "dump_reason": reason,
        "dump_parses": bool(dump_ok),
        "pass": bool(breaches >= 1 and dumped and dump_ok),
    }


def run_suite(
    *,
    quick: bool = False,
    repeats: Optional[int] = None,
    seed: int = 0,
    workers: int = 4,
    backend: str = "process",
) -> Dict[str, Any]:
    """The full ``--fleet`` gate: overhead + trace + SLO/flight."""
    overhead_kwargs: Dict[str, Any] = {"quick": quick, "seed": seed}
    if repeats is not None:
        overhead_kwargs["rounds"] = repeats
    overhead = run_overhead_bench(**overhead_kwargs)
    trace = run_fleet_trace_gate(
        smoke=quick, workers=workers, backend=backend, seed=seed
    )
    slo = run_slo_flight_gate(smoke=quick, seed=seed)
    return {
        "suite": "obs-fleet",
        "quick": quick,
        "overhead": overhead,
        "fleet_trace": trace,
        "slo_flight": slo,
        "headline": {
            "pass": bool(
                overhead["headline"]["pass"]
                and trace["pass"]
                and slo["pass"]
            ),
            "overhead_pct": overhead["headline"]["overhead_pct"],
            "worker_lanes": trace["worker_lanes"],
            "breaches": slo["breaches"],
        },
    }


def render_summary(payload: Dict[str, Any]) -> str:
    t = payload["fleet_trace"]
    s = payload["slo_flight"]
    o = payload["overhead"]["headline"]
    lines = [
        "obs fleet gate (traced == untraced, merged timeline, "
        "SLO flight dump)",
        f"  fleet       : {t['workers']} x {t['backend']} workers, "
        f"{t['n_responses']} responses",
        f"  bitwise     : labels "
        f"{'identical' if t['labels_identical'] else 'DIVERGED'}, "
        f"decisions "
        f"{'identical' if t['decisions_identical'] else 'DIVERGED'}",
        f"  timeline    : {t['n_spans']} spans, worker lanes "
        f"{t['worker_lanes']}, {t['cross_boundary_spans']} cross-"
        f"boundary ({t['bad_parents']} bad parents, "
        f"{t['unresolved']} unresolved)",
        f"  chrome      : "
        f"{'valid' if t['chrome_valid'] else 'INVALID'} "
        f"({t['chrome_events']} events)",
        f"  slo breach  : {s['breaches']} fired, dump "
        f"{'parsed' if s['dump_parses'] else 'MISSING/BAD'} "
        f"({s['dump_reason']})",
        f"  overhead    : {o['overhead_pct']:.3f}% "
        f"(pass={payload['overhead']['headline']['pass']})",
        f"  pass        : {payload['headline']['pass']}",
    ]
    return "\n".join(lines)


def write_report(
    payload: Dict[str, Any], path: Union[str, Path]
) -> None:
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
