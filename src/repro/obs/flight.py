"""Flight recorder: an always-on ring of recent events, dumped on fault.

Production incidents are observed *after* the fact; by the time
anyone attaches a tracer the interesting window is gone.  The flight
recorder closes that gap the way avionics do: a small bounded ring of
recent happenings (rebalances, SLO breaches, worker errors) is kept
continuously, costs one predicate per call when disabled (the same
free-when-disabled discipline as the span tracer and the race
sanitizer, gated by ``repro bench obs``), and the whole ring — plus
the tracer's recent spans and a metrics snapshot — is written to
JSONL when something goes wrong:

* a worker process crash (``fleet_worker_main`` dumps before dying),
* ``SIGUSR1`` (``install_signal_dump``; poke a live process for its
  recent history),
* an SLO breach (:class:`~repro.obs.slo.SLOMonitor` with a
  ``dump_path``).

Enable with ``REPRO_FLIGHT=1`` (read at import, so fleet workers
inherit it through the environment), ``enable_flight()``, or the
fleet's ``trace_on`` control verb.  ``REPRO_FLIGHT_DIR`` picks where
default-named dumps land; ``repro obs dump FILE`` renders one.
"""

from __future__ import annotations

import itertools
import json
import os
import signal
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Union

from repro.obs.trace import SpanRecord, Tracer, get_tracer

#: Dump-format version stamped into every header line.
FLIGHT_VERSION = 1

#: Per-process sequence for default dump filenames (a crash and a
#: signal dump in one process must not clobber each other).
_DUMP_SEQ = itertools.count(1)


class FlightRecorder:
    """A bounded ring of recent events, free when disabled.

    ``record()`` on a disabled recorder is a single attribute check —
    it never touches the clock, the lock, or the ring — so call sites
    stay permanently in place on hot paths, guarded exactly like span
    attributes: ``if flight.enabled: flight.record(...)``.
    """

    def __init__(
        self,
        *,
        capacity: int = 512,
        enabled: bool = False,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.enabled = bool(enabled)
        self._clock = clock
        self._ring: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.dropped = 0

    # -- recording -------------------------------------------------------
    def record(self, kind: str, **data: Any) -> None:
        """Append one event (kind + JSON-scalar payload) to the ring."""
        if not self.enabled:
            return
        entry = {"t": self._clock(), "kind": kind}
        entry.update(data)
        with self._lock:
            if len(self._ring) == self._ring.maxlen:
                self.dropped += 1
            self._ring.append(entry)

    # -- control ---------------------------------------------------------
    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._ring.clear()
            self.dropped = 0

    # -- reading ---------------------------------------------------------
    def events(self) -> List[Dict[str, Any]]:
        with self._lock:
            return list(self._ring)

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    # -- dumping ---------------------------------------------------------
    def dump(
        self,
        path: Union[str, Path, None] = None,
        *,
        reason: str = "manual",
        tracer: Optional[Tracer] = None,
        registry: Any = None,
        span_tail: int = 256,
    ) -> Path:
        """Write the ring + recent spans + metrics snapshot as JSONL.

        Works whatever the enabled state (a disabled recorder dumps an
        empty ring — the header still records the reason and pid).
        Line shapes: a header object first, then ``{"event": ...}``,
        ``{"span": ...}`` and one ``{"metrics": ...}`` line; see
        :func:`read_flight_dump` for the inverse.
        """
        from repro.obs.metrics import get_registry

        tracer = tracer if tracer is not None else get_tracer()
        registry = registry if registry is not None else get_registry()
        if path is None:
            base = Path(os.environ.get("REPRO_FLIGHT_DIR", "."))
            path = base / (
                f"flight-{os.getpid()}-{next(_DUMP_SEQ)}.jsonl"
            )
        path = Path(path)
        with self._lock:
            events = list(self._ring)
            events_dropped = self.dropped
        spans = tracer.spans()[-span_tail:] if span_tail > 0 else []
        lines = [
            json.dumps(
                {
                    "flight": FLIGHT_VERSION,
                    "pid": os.getpid(),
                    "reason": reason,
                    "at": self._clock(),
                    "n_events": len(events),
                    "events_dropped": events_dropped,
                    "n_spans": len(spans),
                    "tracer_dropped": tracer.dropped,
                },
                sort_keys=True,
            )
        ]
        lines.extend(
            json.dumps({"event": e}, sort_keys=True) for e in events
        )
        lines.extend(
            json.dumps({"span": s.as_dict()}, sort_keys=True)
            for s in spans
        )
        lines.append(
            json.dumps({"metrics": registry.as_dict()}, sort_keys=True)
        )
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("\n".join(lines) + "\n")
        return path


def read_flight_dump(path: Union[str, Path]) -> Dict[str, Any]:
    """Parse a dump back into ``{header, events, spans, metrics}``."""
    header: Dict[str, Any] = {}
    events: List[Dict[str, Any]] = []
    spans: List[Dict[str, Any]] = []
    metrics: Dict[str, Any] = {}
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        d = json.loads(line)
        if "flight" in d:
            header = d
        elif "event" in d:
            events.append(d["event"])
        elif "span" in d:
            spans.append(d["span"])
        elif "metrics" in d:
            metrics = d["metrics"]
    if not header:
        raise ValueError(f"{path}: not a flight-recorder dump")
    return {
        "header": header,
        "events": events,
        "spans": spans,
        "metrics": metrics,
    }


def render_flight(dump: Dict[str, Any]) -> str:
    """Human-readable rendering of a parsed dump."""
    h = dump["header"]
    lines = [
        f"flight dump : pid {h.get('pid')} — {h.get('reason')} "
        f"(format v{h.get('flight')})",
        f"  events    : {h.get('n_events')} recorded, "
        f"{h.get('events_dropped')} dropped from the ring",
        f"  spans     : {h.get('n_spans')} recent "
        f"({h.get('tracer_dropped')} dropped from the tracer ring)",
    ]
    for e in dump["events"]:
        extra = ", ".join(
            f"{k}={v}" for k, v in sorted(e.items())
            if k not in ("t", "kind")
        )
        lines.append(
            f"    [{e.get('t', 0.0):.6f}] {e.get('kind')}"
            + (f"  {extra}" if extra else "")
        )
    for d in dump["spans"][-10:]:
        s = SpanRecord.from_dict(d)
        lines.append(
            f"    span {s.name} [{s.start:.6f}..{s.end:.6f}]"
        )
    if len(dump["spans"]) > 10:
        lines.append(
            f"    ... ({len(dump['spans']) - 10} earlier spans in file)"
        )
    if dump["metrics"]:
        lines.append(f"  metrics   : {len(dump['metrics'])} series")
    return "\n".join(lines)


# -- the process-wide recorder -------------------------------------------

_GLOBAL = FlightRecorder(
    enabled=os.environ.get("REPRO_FLIGHT", "") == "1"
)


def flight_recorder() -> FlightRecorder:
    """The process-wide flight recorder."""
    return _GLOBAL


def enable_flight() -> FlightRecorder:
    _GLOBAL.enable()
    return _GLOBAL


def disable_flight() -> FlightRecorder:
    _GLOBAL.disable()
    return _GLOBAL


def install_signal_dump(
    signum: int = signal.SIGUSR1,
    recorder: Optional[FlightRecorder] = None,
) -> bool:
    """Dump the recorder when ``signum`` arrives (default SIGUSR1).

    Returns ``False`` where handlers cannot be installed (non-main
    thread, exotic platforms) instead of raising — the recorder is a
    best-effort safety net, never a crash source of its own.
    """
    rec = recorder if recorder is not None else _GLOBAL

    def _handler(_signum: int, _frame: Any) -> None:
        rec.dump(reason=f"signal {_signum}")

    try:
        signal.signal(signum, _handler)
    except (ValueError, OSError, AttributeError):
        return False
    return True
