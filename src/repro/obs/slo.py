"""Declarative SLOs with multi-window burn-rate alerting.

The fleet's behaviour is summarised by four event streams the door
already produces — request latency, deadline misses, admission
rejections, and per-shard dispatch backlog.  An :class:`SLOSpec`
declares an objective over one stream ("99 % of requests under
50 ms"); the :class:`SLOMonitor` consumes observations, keeps each
stream in a rolling window, and alerts on the **burn rate** — how
fast the error budget is being spent — evaluated on two windows at
once (the Google SRE workbook's multi-window pattern): the long
window proves the problem is sustained, the short one proves it is
*still happening*, so a breach both fires fast and clears fast.

A breach emits a tracer instant event, a flight-recorder entry, and
(optionally) a full flight dump — the deterministic SLO-breach →
flight-dump path ``repro bench obs --fleet`` gates on.  Burn rates
land in a metrics registry as gauges for scraping.

Everything is clock-agnostic: observations carry their own timestamps
(virtual or wall), so the monitor works identically under
:func:`~repro.serve.fleet.simulate_fleet`'s virtual clock and a live
session.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.flight import FlightRecorder, flight_recorder
from repro.obs.trace import Tracer, get_tracer

#: The event streams a spec can bind to.
SLO_KINDS = ("latency", "deadline", "rejection", "saturation")


@dataclass(frozen=True)
class SLOSpec:
    """One objective over one event stream.

    ``objective`` is the target good-event fraction (0.99 = "99 % of
    events good"); its complement is the error budget the burn rate
    is measured against.  ``threshold_ms`` is the goodness bound for
    the value-carrying kinds (latency: request latency, saturation:
    dispatch backlog); the deadline/rejection kinds are already
    boolean.  A breach requires the burn rate to exceed
    ``burn_factor`` on *both* windows, with at least ``min_events``
    events in the long window (so a single early bad event cannot
    page).
    """

    name: str
    kind: str
    objective: float = 0.99
    threshold_ms: float = 50.0
    long_window_s: float = 1.0
    short_window_s: float = 0.25
    burn_factor: float = 2.0
    min_events: int = 16

    def __post_init__(self) -> None:
        if self.kind not in SLO_KINDS:
            raise ValueError(
                f"unknown SLO kind {self.kind!r}; "
                f"expected one of {SLO_KINDS}"
            )
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.short_window_s > self.long_window_s:
            raise ValueError("short window must be <= long window")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective

    def bad(self, value: float) -> bool:
        """Is one observed value a bad event under this spec?"""
        if self.kind in ("latency", "saturation"):
            return value > self.threshold_ms
        return value >= 0.5  # deadline / rejection: 1.0 = bad


@dataclass(frozen=True)
class SLOStatus:
    """One spec's evaluation at a point in time."""

    name: str
    kind: str
    at: float
    events_long: int
    bad_long: int
    burn_long: float
    burn_short: float
    breached: bool


@dataclass(frozen=True)
class SLOBreach:
    """A fired alert (one per breach episode, hysteresis re-armed)."""

    at: float
    name: str
    kind: str
    burn_long: float
    burn_short: float


def default_slos(
    *,
    latency_ms: float = 50.0,
    saturation_ms: float = 20.0,
) -> Tuple[SLOSpec, ...]:
    """The serving tier's stock objectives (tunable thresholds)."""
    return (
        SLOSpec(
            "latency_p99", "latency",
            objective=0.99, threshold_ms=latency_ms,
        ),
        SLOSpec("deadline_miss", "deadline", objective=0.99),
        SLOSpec("rejection", "rejection", objective=0.95),
        SLOSpec(
            "shard_saturation", "saturation",
            objective=0.90, threshold_ms=saturation_ms,
        ),
    )


class SLOMonitor:
    """Consumes door observations; fires on sustained budget burn.

    One monitor serves one door thread (the DES loop or a live
    session loop); observations carry their own timestamps so the
    monitor never reads a clock.  ``evaluate`` is cheap but not free,
    so observations self-evaluate every ``check_every`` events —
    call :meth:`evaluate` once more at session end for the final
    statuses.

    On breach: a ``slo.breach`` tracer instant event, a flight-
    recorder entry, burn-rate gauges in ``registry``, and — when
    ``dump_path`` is set — a full flight dump to that path.  Each
    spec re-arms only after its long-window burn falls back under the
    factor, so a sustained breach fires once, not once per batch.
    """

    def __init__(
        self,
        specs: Optional[Sequence[SLOSpec]] = None,
        *,
        tracer: Optional[Tracer] = None,
        flight: Optional[FlightRecorder] = None,
        registry: Any = None,
        check_every: int = 64,
        dump_path: Any = None,
        max_events: int = 65536,
    ) -> None:
        if check_every < 1:
            raise ValueError("check_every must be >= 1")
        self.specs: Tuple[SLOSpec, ...] = tuple(
            specs if specs is not None else default_slos()
        )
        names = [s.name for s in self.specs]
        if len(set(names)) != len(names):
            raise ValueError("spec names must be unique")
        self._tracer = tracer
        self._flight = flight
        self._registry = registry
        self._check_every = check_every
        self._dump_path = dump_path
        # One stream per kind, shared by every spec of that kind:
        # (t, value) where value is ms for latency/saturation and
        # 0.0/1.0 for the boolean kinds.
        self._streams: Dict[str, Deque[Tuple[float, float]]] = {
            kind: deque(maxlen=max_events) for kind in SLO_KINDS
        }
        self._horizon: Dict[str, float] = {
            kind: max(
                [s.long_window_s for s in self.specs if s.kind == kind],
                default=0.0,
            )
            for kind in SLO_KINDS
        }
        self._armed: Dict[str, bool] = {s.name: True for s in self.specs}
        self.breaches: List[SLOBreach] = []
        self.last_statuses: List[SLOStatus] = []
        self._since_eval = 0
        self._last_t = 0.0

    # -- observation ----------------------------------------------------
    def observe_latency(self, t: float, latency_s: float) -> None:
        self._observe("latency", t, latency_s * 1e3)

    def observe_deadline(self, t: float, missed: bool) -> None:
        self._observe("deadline", t, 1.0 if missed else 0.0)

    def observe_admission(self, t: float, rejected: bool) -> None:
        self._observe("rejection", t, 1.0 if rejected else 0.0)

    def observe_shard(
        self, t: float, shard: int, backlog_s: float
    ) -> None:
        """One dispatch's queue delay on ``shard`` (the saturation
        signal: how far behind the shard's virtual core is running)."""
        self._observe("saturation", t, backlog_s * 1e3)
        if self._registry is not None:
            self._registry.gauge(
                f"repro_slo.shard{shard}.backlog_ms",
                "dispatch backlog at the last routed batch",
            ).set(backlog_s * 1e3)

    def _observe(self, kind: str, t: float, value: float) -> None:
        stream = self._streams[kind]
        stream.append((t, value))
        horizon = self._horizon[kind]
        while stream and t - stream[0][0] > horizon:
            stream.popleft()
        self._last_t = max(self._last_t, t)
        self._since_eval += 1
        if self._since_eval >= self._check_every:
            self.evaluate(self._last_t)

    # -- evaluation ------------------------------------------------------
    def evaluate(self, t: Optional[float] = None) -> List[SLOStatus]:
        """Burn rates for every spec at time ``t`` (default: latest)."""
        at = t if t is not None else self._last_t
        self._since_eval = 0
        statuses: List[SLOStatus] = []
        for spec in self.specs:
            stream = self._streams[spec.kind]
            n_long = bad_long = n_short = bad_short = 0
            for ts, value in reversed(stream):
                age = at - ts
                if age > spec.long_window_s:
                    break
                bad = spec.bad(value)
                n_long += 1
                bad_long += bad
                if age <= spec.short_window_s:
                    n_short += 1
                    bad_short += bad
            burn_long = (
                (bad_long / n_long) / spec.error_budget if n_long else 0.0
            )
            burn_short = (
                (bad_short / n_short) / spec.error_budget
                if n_short
                else 0.0
            )
            breached = (
                n_long >= spec.min_events
                and burn_long >= spec.burn_factor
                and burn_short >= spec.burn_factor
            )
            status = SLOStatus(
                name=spec.name,
                kind=spec.kind,
                at=at,
                events_long=n_long,
                bad_long=bad_long,
                burn_long=burn_long,
                burn_short=burn_short,
                breached=breached,
            )
            statuses.append(status)
            if breached and self._armed[spec.name]:
                self._armed[spec.name] = False
                self._fire(spec, status)
            elif not breached and burn_long < spec.burn_factor:
                self._armed[spec.name] = True
            if self._registry is not None:
                self._registry.gauge(
                    f"repro_slo.{spec.name}.burn_long",
                    "long-window error-budget burn rate",
                ).set(burn_long)
                self._registry.gauge(
                    f"repro_slo.{spec.name}.burn_short",
                    "short-window error-budget burn rate",
                ).set(burn_short)
        self.last_statuses = statuses
        return statuses

    def _fire(self, spec: SLOSpec, status: SLOStatus) -> None:
        self.breaches.append(
            SLOBreach(
                at=status.at,
                name=spec.name,
                kind=spec.kind,
                burn_long=status.burn_long,
                burn_short=status.burn_short,
            )
        )
        tracer = self._tracer if self._tracer is not None else get_tracer()
        if tracer.enabled:
            tracer.instant(
                "slo.breach",
                {
                    "slo": spec.name,
                    "kind": spec.kind,
                    "burn_long": status.burn_long,
                    "burn_short": status.burn_short,
                },
            )
        flight = (
            self._flight if self._flight is not None else flight_recorder()
        )
        if flight.enabled:
            flight.record(
                "slo_breach",
                slo=spec.name,
                slo_kind=spec.kind,
                at=status.at,
                burn_long=status.burn_long,
                burn_short=status.burn_short,
            )
        if self._dump_path is not None:
            flight.dump(
                self._dump_path,
                reason=f"slo_breach:{spec.name}",
                tracer=tracer,
            )

    # -- reporting -------------------------------------------------------
    def payload(self) -> Dict[str, Any]:
        """JSON-ready statuses + breach history."""
        return {
            "specs": [
                {
                    "name": s.name,
                    "kind": s.kind,
                    "objective": s.objective,
                    "threshold_ms": s.threshold_ms,
                    "long_window_s": s.long_window_s,
                    "short_window_s": s.short_window_s,
                    "burn_factor": s.burn_factor,
                }
                for s in self.specs
            ],
            "statuses": [
                {
                    "name": st.name,
                    "kind": st.kind,
                    "at": st.at,
                    "events_long": st.events_long,
                    "bad_long": st.bad_long,
                    "burn_long": st.burn_long,
                    "burn_short": st.burn_short,
                    "breached": st.breached,
                }
                for st in self.last_statuses
            ],
            "breaches": [
                {
                    "at": b.at,
                    "name": b.name,
                    "kind": b.kind,
                    "burn_long": b.burn_long,
                    "burn_short": b.burn_short,
                }
                for b in self.breaches
            ],
        }


def render_slo(monitor: SLOMonitor) -> str:
    """Terminal table of the monitor's last evaluation + breach log."""
    lines = [
        f"{'slo':18s} {'kind':10s} {'events':>7s} {'bad':>5s} "
        f"{'burn(long)':>10s} {'burn(short)':>11s}  state"
    ]
    for st in monitor.last_statuses:
        lines.append(
            f"{st.name:18s} {st.kind:10s} {st.events_long:7d} "
            f"{st.bad_long:5d} {st.burn_long:10.2f} "
            f"{st.burn_short:11.2f}  "
            + ("BREACHED" if st.breached else "ok")
        )
    if monitor.breaches:
        lines.append("")
        lines.append(f"breaches    : {len(monitor.breaches)}")
        for b in monitor.breaches:
            lines.append(
                f"  [{b.at:.6f}] {b.name} burn "
                f"{b.burn_long:.1f}x/{b.burn_short:.1f}x "
                f"(long/short) over budget"
            )
    else:
        lines.append("")
        lines.append("breaches    : none")
    return "\n".join(lines)
