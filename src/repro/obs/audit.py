"""The scheduler decision audit log and regret accounting.

Every ``schedule()`` call — training-time layout decisions and
serving-time re-schedule flips alike — leaves a :class:`DecisionRecord`
here: the nine influencing parameters the paper's decision system runs
on, the per-format costs the model predicted, and the format that was
chosen.  When tracing is enabled the scheduler additionally *measures*
each candidate (the autotuner's probe discipline), so the record can
answer the question the repo previously could not: did the prediction
pick the format that actually won?

**Regret** is the measured penalty of trusting the model::

    regret = measured(predicted_best) / measured(measured_best) - 1

0.0 means the model's winner was also the measured winner; 0.25 means
the run paid 25 % over the best available layout.  ``repro obs
report`` renders the per-dataset regret table over the synthetic
suite; per-flip serve records appear in the same log with
``source="serve"``.

Dataset labels travel on a context variable
(:func:`audit_dataset`) so the scheduler itself stays label-agnostic.
"""

from __future__ import annotations

import contextlib
import contextvars
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

from repro.analysis.race import make_lock, track_shared

_DATASET: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_obs_audit_dataset", default=""
)


@contextlib.contextmanager
def audit_dataset(label: str) -> Iterator[None]:
    """Label every decision recorded inside the block with ``label``."""
    token = _DATASET.set(label)
    try:
        yield
    finally:
        _DATASET.reset(token)


def current_dataset() -> str:
    return _DATASET.get()


@dataclass(frozen=True)
class DecisionRecord:
    """One audited scheduling decision.

    ``predicted`` maps format name to model cost (dimensionless model
    units); ``measured`` maps format name to probed median seconds and
    is empty unless tracing was on (or the strategy probed anyway).
    """

    source: str  #: "schedule" (training-time) or "serve" (runtime flip)
    dataset: str
    strategy: str
    batch_k: int
    chosen: str
    reason: str
    cached: bool
    features: Dict[str, float] = field(default_factory=dict)
    predicted: Dict[str, float] = field(default_factory=dict)
    measured: Dict[str, float] = field(default_factory=dict)
    #: Where the chosen format came from: "analytic" (cost model /
    #: rules), "tuned" (persisted tuning cache warm key), or "probe"
    #: (measured on the spot).  Lets the regret report separate the
    #: model's mistakes from the tuning cache's.
    decision_source: str = "analytic"

    @property
    def predicted_best(self) -> Optional[str]:
        if not self.predicted:
            return None
        return min(self.predicted, key=self.predicted.__getitem__)

    @property
    def measured_best(self) -> Optional[str]:
        if not self.measured:
            return None
        return min(self.measured, key=self.measured.__getitem__)

    def regret(self) -> Optional[float]:
        """Measured cost penalty of the model's pick; ``None`` if the
        record carries no measurement covering the predicted best."""
        pb, mb = self.predicted_best, self.measured_best
        if pb is None or mb is None or pb not in self.measured:
            return None
        best = self.measured[mb]
        if best <= 0.0:
            return 0.0
        return self.measured[pb] / best - 1.0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "dataset": self.dataset,
            "strategy": self.strategy,
            "batch_k": self.batch_k,
            "chosen": self.chosen,
            "reason": self.reason,
            "cached": self.cached,
            "features": dict(self.features),
            "predicted": dict(self.predicted),
            "measured": dict(self.measured),
            "decision_source": self.decision_source,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "DecisionRecord":
        return cls(
            source=str(d["source"]),
            dataset=str(d.get("dataset", "")),
            strategy=str(d["strategy"]),
            batch_k=int(d.get("batch_k", 1)),
            chosen=str(d["chosen"]),
            reason=str(d.get("reason", "")),
            cached=bool(d.get("cached", False)),
            features=dict(d.get("features", {})),
            predicted=dict(d.get("predicted", {})),
            measured=dict(d.get("measured", {})),
            # Records written before provenance tracking default to the
            # analytic model, which is what they were.
            decision_source=str(d.get("decision_source", "analytic")),
        )


class AuditLog:
    """Bounded, thread-safe store of decision records.

    ``seen_measurement`` / ``mark_measured`` implement the probing
    dedupe: under ``REPRO_TRACE=1`` the scheduler measures candidates
    once per (quantised profile, batch_k) key, so a test suite that
    schedules the same shapes hundreds of times pays for one probe,
    not hundreds.
    """

    def __init__(self, maxlen: int = 4096) -> None:
        if maxlen < 1:
            raise ValueError("maxlen must be >= 1")
        self._records: Deque[DecisionRecord] = deque(maxlen=maxlen)
        self._measured_keys: set = set()
        self._lock = make_lock("obs.audit")
        track_shared(self, ("_records", "_measured_keys"))

    def record(self, rec: DecisionRecord) -> None:
        with self._lock:
            self._records.append(rec)

    def records(self, source: Optional[str] = None) -> List[DecisionRecord]:
        with self._lock:
            out = list(self._records)
        if source is not None:
            out = [r for r in out if r.source == source]
        return out

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
            self._measured_keys.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    # -- measurement dedupe ---------------------------------------------
    def seen_measurement(self, key: Tuple) -> bool:
        with self._lock:
            return key in self._measured_keys

    def mark_measured(self, key: Tuple) -> None:
        with self._lock:
            self._measured_keys.add(key)


# -- regret rollup -------------------------------------------------------


@dataclass(frozen=True)
class RegretRow:
    """One line of the regret table."""

    dataset: str
    source: str
    batch_k: int
    chosen: str
    predicted_best: Optional[str]
    measured_best: Optional[str]
    regret: Optional[float]
    decision_source: str = "analytic"

    def as_dict(self) -> Dict[str, Any]:
        return {
            "dataset": self.dataset,
            "source": self.source,
            "batch_k": self.batch_k,
            "chosen": self.chosen,
            "predicted_best": self.predicted_best,
            "measured_best": self.measured_best,
            "regret": self.regret,
            "decision_source": self.decision_source,
        }


def regret_rows(records: List[DecisionRecord]) -> List[RegretRow]:
    """Flatten records into table rows (one per record, input order)."""
    return [
        RegretRow(
            dataset=r.dataset or "<unlabelled>",
            source=r.source,
            batch_k=r.batch_k,
            chosen=r.chosen,
            predicted_best=r.predicted_best,
            measured_best=r.measured_best,
            regret=r.regret(),
            decision_source=r.decision_source,
        )
        for r in records
    ]


def regret_by_decision_source(
    records: List[DecisionRecord],
) -> Dict[str, Dict[str, Any]]:
    """Aggregate regret split by where the decision came from.

    Returns ``{decision_source: {"n", "n_with_regret", "mean_regret",
    "max_regret"}}`` — the comparison the tuning cache has to win: if
    ``tuned`` decisions carry more regret than ``analytic`` ones, the
    cache is hurting and should be reset.
    """
    out: Dict[str, Dict[str, Any]] = {}
    for src in sorted({r.decision_source for r in records}):
        subset = [r for r in records if r.decision_source == src]
        regrets = [
            g for g in (r.regret() for r in subset) if g is not None
        ]
        out[src] = {
            "n": len(subset),
            "n_with_regret": len(regrets),
            "mean_regret": (
                sum(regrets) / len(regrets) if regrets else None
            ),
            "max_regret": max(regrets) if regrets else None,
        }
    return out


def render_regret_table(rows: List[RegretRow]) -> str:
    """Fixed-width regret table (what ``repro obs report`` prints)."""
    header = (
        f"{'dataset':<16s} {'source':<9s} {'via':<9s} {'k':>3s} "
        f"{'chosen':<7s} {'predicted':<10s} {'measured':<9s} "
        f"{'regret':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in rows:
        regret = "  --  " if r.regret is None else f"{r.regret * 100:.1f}%"
        lines.append(
            f"{r.dataset:<16s} {r.source:<9s} {r.decision_source:<9s} "
            f"{r.batch_k:>3d} {r.chosen:<7s} "
            f"{(r.predicted_best or '--'):<10s} "
            f"{(r.measured_best or '--'):<9s} {regret:>8s}"
        )
    return "\n".join(lines)


# -- the process-wide log ------------------------------------------------

_GLOBAL = AuditLog()


def audit_log() -> AuditLog:
    """The process-wide decision audit log."""
    return _GLOBAL
