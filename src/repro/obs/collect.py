"""Cross-process trace collection: ship worker rings home and merge.

The serving fleet (PR 7) put the hot path behind a process boundary,
which cut the tracer's view in half: the front door records its
request spans, each worker records its own serve/reschedule spans, and
nothing joined them.  This module is the joining layer:

* :class:`WorkerTraceBuffer` — one worker's ring-buffer snapshot as it
  comes back over the control plane (``trace_collect`` verb): spans,
  drop count, audit records, the worker's pid, and one clock reading
  for offset estimation.
* :func:`merge_fleet_trace` — re-ids every span into one namespace,
  resolves cross-boundary parents from the ``ctx.*`` attributes a
  :class:`~repro.obs.trace.TraceContext` left on worker spans, aligns
  clocks, and returns a :class:`MergedTrace` whose lanes map onto
  chrome://tracing pids (door = lane 0, worker ``w`` = lane ``w + 1``).
* :func:`fold_worker_audits` — worker-side rescheduler decisions land
  in the door's audit log so ``repro obs report`` regret covers
  per-replica mid-stream flips.

A killed or wedged worker simply contributes no buffer: merging is
total over whatever survived, and a span whose parent fell out of a
ring (or died with its process) becomes a root rather than an error.

The module also keeps the *last fleet trace* as a process-level
hand-off point: ``repro serve --workers N`` publishes its merged
timeline here, and the wrapping ``repro trace`` command exports it —
the two commands compose without threading a value through argparse.
"""

from __future__ import annotations

import itertools
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.audit import AuditLog, DecisionRecord, audit_log
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import (
    CTX_PARENT_LANE,
    CTX_PARENT_SPAN,
    DOOR_LANE,
    SpanRecord,
    Tracer,
    get_tracer,
)


@dataclass(frozen=True)
class WorkerTraceBuffer:
    """One worker's observability state, as collected over the pipe.

    ``clock_offset`` is (worker clock − door clock) at collect time;
    subtracting it from worker timestamps puts them on the door's
    axis.  On one machine both clocks are ``time.perf_counter`` and
    the offset is indistinguishable from pipe latency, so the fleet
    zeroes it; injected virtual clocks in tests exercise the general
    path.
    """

    worker_id: int
    pid: int
    spans: Tuple[SpanRecord, ...]
    dropped: int = 0
    clock_offset: float = 0.0
    audit: Tuple[DecisionRecord, ...] = ()

    @property
    def lane(self) -> int:
        return self.worker_id + 1


@dataclass
class MergedTrace:
    """One coherent multi-process timeline.

    ``spans`` are re-identified into a single id namespace; ``lanes``
    maps each new span id to its lane (0 = door), ``pids``/``names``
    label the lanes for the chrome exporter, ``dropped`` carries each
    ring's drop counter, and ``unresolved`` counts cross-boundary
    parent links whose door span was not found (ring overflow or a
    killed worker) — those spans surface as roots.
    """

    spans: List[SpanRecord]
    lanes: Dict[int, int]
    pids: Dict[int, int] = field(default_factory=dict)
    names: Dict[int, str] = field(default_factory=dict)
    dropped: Dict[int, int] = field(default_factory=dict)
    unresolved: int = 0

    def lane_spans(self, lane: int) -> List[SpanRecord]:
        return [s for s in self.spans if self.lanes[s.span_id] == lane]

    def worker_lanes(self) -> List[int]:
        """Lanes (other than the door's) that contributed spans."""
        present = {
            lane for lane in self.lanes.values() if lane != DOOR_LANE
        }
        return sorted(present)


def merge_fleet_trace(
    door_spans: List[SpanRecord],
    buffers: List[WorkerTraceBuffer],
    *,
    door_pid: Optional[int] = None,
    door_dropped: int = 0,
) -> MergedTrace:
    """Merge the door's ring with every collected worker ring.

    Per-lane span ids collide (every tracer counts from 1), so each
    ``(lane, old_id)`` pair is assigned a fresh id first; parents then
    resolve in two ways — a ``ctx.parent_span`` attribute names a span
    in *another* lane (the cross-process link), while a plain
    ``parent_id`` stays within its own lane.  Either may be missing
    (dropped from a ring, or the owning process died); the span then
    becomes a root, keeping the merge total.
    """
    door_pid = door_pid if door_pid is not None else os.getpid()
    ordered: List[Tuple[int, List[SpanRecord]]] = [
        (DOOR_LANE, list(door_spans))
    ]
    pids = {DOOR_LANE: door_pid}
    names = {DOOR_LANE: f"door (pid {door_pid})"}
    dropped = {DOOR_LANE: int(door_dropped)}
    offsets = {DOOR_LANE: 0.0}
    for buf in sorted(buffers, key=lambda b: b.worker_id):
        ordered.append((buf.lane, list(buf.spans)))
        pids[buf.lane] = buf.pid
        names[buf.lane] = f"worker {buf.worker_id} (pid {buf.pid})"
        dropped[buf.lane] = int(buf.dropped)
        offsets[buf.lane] = float(buf.clock_offset)

    ids = itertools.count(1)
    mapping: Dict[Tuple[int, int], int] = {}
    for lane, spans in ordered:
        for s in spans:
            mapping[(lane, s.span_id)] = next(ids)

    out: List[SpanRecord] = []
    lanes: Dict[int, int] = {}
    unresolved = 0
    for lane, spans in ordered:
        off = offsets[lane]
        for s in spans:
            attrs = dict(s.attrs)
            parent: Optional[int] = None
            if CTX_PARENT_SPAN in attrs:
                key = (
                    int(attrs.get(CTX_PARENT_LANE, DOOR_LANE)),
                    int(attrs[CTX_PARENT_SPAN]),
                )
                parent = mapping.get(key)
                if parent is None:
                    unresolved += 1
            elif s.parent_id is not None:
                parent = mapping.get((lane, s.parent_id))
            new_id = mapping[(lane, s.span_id)]
            out.append(
                SpanRecord(
                    span_id=new_id,
                    parent_id=parent,
                    name=s.name,
                    start=s.start - off,
                    end=s.end - off,
                    attrs=s.attrs,
                )
            )
            lanes[new_id] = lane
    out.sort(key=lambda r: (r.start, r.span_id))
    return MergedTrace(
        spans=out,
        lanes=lanes,
        pids=pids,
        names=names,
        dropped=dropped,
        unresolved=unresolved,
    )


def fold_worker_audits(
    buffers: List[WorkerTraceBuffer],
    log: Optional[AuditLog] = None,
) -> int:
    """Land worker-side decision records in the (door's) audit log.

    Worker reschedulers record into their own process's log, which
    dies with the process; shipping the records back with the trace
    buffers is what lets ``repro obs report`` score per-replica flips.
    Records without a dataset label get a ``worker-<id>`` one so rows
    stay attributable after the fold.
    """
    import dataclasses

    log = log if log is not None else audit_log()
    n = 0
    for buf in sorted(buffers, key=lambda b: b.worker_id):
        for rec in buf.audit:
            if not rec.dataset:
                rec = dataclasses.replace(
                    rec, dataset=f"worker-{buf.worker_id}"
                )
            log.record(rec)
            n += 1
    return n


def mount_tracer_health(
    registry: MetricsRegistry, tracer: Optional[Tracer] = None
) -> None:
    """Expose the tracer's ring health as live callback gauges."""
    t = tracer if tracer is not None else get_tracer()
    registry.gauge(
        "repro_obs.tracer_spans",
        "finished spans currently in the tracer ring",
        fn=lambda: float(len(t)),
    )
    registry.gauge(
        "repro_obs.tracer_dropped_spans",
        "spans evicted from the ring since the last clear",
        fn=lambda: float(t.dropped),
    )


# -- the last fleet trace -------------------------------------------------
#
# `repro serve --workers N` runs inside `repro trace`: the inner
# command owns the fleet (and must collect before closing it), the
# outer command owns the exports.  One module-level slot hands the
# merged timeline across that boundary.

_LAST_FLEET_TRACE: Optional[MergedTrace] = None


def publish_fleet_trace(merged: MergedTrace) -> None:
    global _LAST_FLEET_TRACE
    _LAST_FLEET_TRACE = merged


def last_fleet_trace() -> Optional[MergedTrace]:
    return _LAST_FLEET_TRACE


def clear_fleet_trace() -> None:
    global _LAST_FLEET_TRACE
    _LAST_FLEET_TRACE = None
