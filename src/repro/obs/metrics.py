"""The unified metrics registry: counters, gauges, histograms.

One store for every number the runtime reports about itself.  The
pre-existing instrument classes become *views* over it:

* :class:`~repro.perf.counters.OpCounter` snapshots surface as
  callback gauges (:func:`opcounter_view`) that read the live counter
  at collection time;
* :class:`~repro.serve.metrics.ServeMetrics` computes its p50/95/99
  through the :class:`Histogram` primitive here (one quantile
  implementation for the whole repo) and publishes its session totals
  via :meth:`~repro.serve.metrics.ServeMetrics.registry_view`.

Thread model: the registry itself is lock-protected and safe to share.
For the parallel kernels — where a lock per block observation would
serialise exactly the code being parallelised — :meth:`MetricsRegistry.
shard` hands out lock-free *shards*: registry-shaped local stores a
single worker fills and the caller merges back in one locked step.

All quantile handling is NaN-free by construction: an empty histogram
reports zeros (there is nothing to summarise, not an undefined
number), and a one-sample histogram reports that sample at every
percentile.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.race import make_lock, track_shared

#: Percentiles the standard summary reports (matches serving SLOs).
SUMMARY_PERCENTILES = (50.0, 95.0, 99.0)

#: Default histogram bucket upper bounds for the Prometheus exporter
#: (seconds-flavoured: covers sub-ms kernel spans up to multi-second
#: runs).  ``+Inf`` is always appended at export time.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 5.0, 10.0,
)


class Counter:
    """A monotonically increasing count."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: float = 0.0

    def inc(self, n: float = 1.0) -> None:
        if n < 0:
            raise ValueError("counters only go up; use a gauge")
        self.value += n

    def merge(self, other: "Counter") -> None:
        self.value += other.value


class Gauge:
    """A point-in-time value, settable or computed by a callback.

    Callback gauges are what makes existing instruments *views* over
    the registry: collection calls ``fn()`` so the exported number is
    always the live one, with no copy kept in sync.
    """

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        self.name = name
        self.help = help
        self._value: float = 0.0
        self._fn = fn

    def set(self, value: float) -> None:
        if self._fn is not None:
            raise ValueError(f"gauge {self.name!r} is callback-backed")
        self._value = float(value)

    @property
    def value(self) -> float:
        if self._fn is not None:
            return float(self._fn())
        return self._value

    def merge(self, other: "Gauge") -> None:
        # Last write wins: a shard's gauge overrides only if it was set.
        if other._fn is None:
            self._value = other._value


class Histogram:
    """Raw-sample histogram with exact, NaN-free quantiles.

    This is the repo's single quantile implementation.  ``percentile``
    uses numpy's ``lower`` interpolation so every reported percentile
    is an actual observed sample (bit-reproducible across numpy
    versions); the empty window reports ``0.0`` everywhere and a
    one-sample window reports that sample at every percentile — never
    ``NaN``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str = "",
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self.samples: List[float] = []

    def observe(self, value: float) -> None:
        self.samples.append(float(value))

    def observe_many(self, values: Sequence[float]) -> None:
        self.samples.extend(float(v) for v in values)

    # -- reading ---------------------------------------------------------
    @property
    def count(self) -> int:
        return len(self.samples)

    @property
    def total(self) -> float:
        return float(sum(self.samples))

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile ("lower" method); 0.0 when empty."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be in [0, 100]")
        if not self.samples:
            return 0.0
        arr = np.asarray(self.samples, dtype=np.float64)
        return float(np.percentile(arr, q, method="lower"))

    def mean(self) -> float:
        if not self.samples:
            return 0.0
        return self.total / len(self.samples)

    def max(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def summary(self) -> Dict[str, float]:
        """Count, p50/p95/p99, mean and max — all NaN-free."""
        if not self.samples:
            return {
                "count": 0, "p50": 0.0, "p95": 0.0, "p99": 0.0,
                "mean": 0.0, "max": 0.0,
            }
        arr = np.asarray(self.samples, dtype=np.float64)
        p50, p95, p99 = (
            float(np.percentile(arr, q, method="lower"))
            for q in SUMMARY_PERCENTILES
        )
        return {
            "count": int(arr.shape[0]),
            "p50": p50,
            "p95": p95,
            "p99": p99,
            "mean": float(arr.mean()),
            "max": float(arr.max()),
        }

    def bucket_counts(self) -> List[Tuple[float, int]]:
        """Cumulative ``(le, count)`` pairs for the Prometheus format."""
        arr = np.asarray(self.samples, dtype=np.float64)
        out = []
        for b in self.buckets:
            out.append((b, int((arr <= b).sum()) if arr.size else 0))
        out.append((float("inf"), int(arr.size)))
        return out

    def merge(self, other: "Histogram") -> None:
        self.samples.extend(other.samples)


Metric = Any  # Counter | Gauge | Histogram


class _MetricStore:
    """Name -> metric map with get-or-create-by-kind semantics."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, kind: str, factory) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory()
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as a {metric.kind}"
            )
        return metric


class MetricsShard(_MetricStore):
    """A lock-free, single-thread view of the registry.

    Workers fill a shard with the same ``counter``/``gauge``/
    ``histogram`` API and the owner merges it back with
    :meth:`MetricsRegistry.merge` — one lock acquisition per shard
    instead of one per observation.
    """

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get(name, "gauge", lambda: Gauge(name, help))

    def histogram(
        self, name: str, help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._get(
            name, "histogram", lambda: Histogram(name, help, buckets)
        )


class MetricsRegistry(_MetricStore):
    """The process store: thread-safe registration, collection, merge."""

    def __init__(self) -> None:
        super().__init__()
        self._lock = make_lock("obs.metrics")
        track_shared(self, ("_metrics",))

    # -- registration ----------------------------------------------------
    def counter(self, name: str, help: str = "") -> Counter:
        with self._lock:
            return self._get(name, "counter", lambda: Counter(name, help))

    def gauge(
        self,
        name: str,
        help: str = "",
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        with self._lock:
            g = self._get(name, "gauge", lambda: Gauge(name, help, fn))
            if fn is not None:
                g._fn = fn
            return g

    def histogram(
        self, name: str, help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> Histogram:
        with self._lock:
            return self._get(
                name, "histogram", lambda: Histogram(name, help, buckets)
            )

    # -- shards ----------------------------------------------------------
    def shard(self) -> MetricsShard:
        """A fresh lock-free shard to be filled by one worker."""
        return MetricsShard()

    def merge(self, shard: MetricsShard) -> None:
        """Fold a shard's deltas in (one locked pass)."""
        with self._lock:
            for name, metric in shard._metrics.items():
                if metric.kind == "counter":
                    self._get(name, "counter",
                              lambda: Counter(name, metric.help)
                              ).merge(metric)
                elif metric.kind == "gauge":
                    self._get(name, "gauge",
                              lambda: Gauge(name, metric.help)
                              ).merge(metric)
                else:
                    self._get(
                        name, "histogram",
                        lambda: Histogram(name, metric.help, metric.buckets),
                    ).merge(metric)

    # -- reading ---------------------------------------------------------
    def collect(self) -> List[Metric]:
        """All metrics, name-sorted (the exporters' input)."""
        with self._lock:
            return [self._metrics[k] for k in sorted(self._metrics)]

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready snapshot (histograms as summaries)."""
        out: Dict[str, Any] = {}
        for metric in self.collect():
            if metric.kind == "histogram":
                out[metric.name] = metric.summary()
            else:
                out[metric.name] = metric.value
        return out

    def clear(self) -> None:
        with self._lock:
            self._metrics.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._metrics)


def opcounter_view(
    registry: MetricsRegistry, counter, prefix: str = "repro_ops"
) -> List[Gauge]:
    """Register live gauges over every field of an ``OpCounter``.

    The gauges are callback-backed: collection reads the counter at
    that moment, so the registry is a *view*, not a copy.  Fields are
    discovered from the dataclass, so counters grown by later PRs are
    picked up automatically (the same exhaustiveness contract the
    merge/snapshot regression test locks).
    """
    gauges = []
    for name in counter.as_dict():
        gauges.append(
            registry.gauge(
                f"{prefix}.{name}",
                help=f"OpCounter field {name}",
                fn=(lambda n=name: getattr(counter, n)),
            )
        )
    return gauges


def opcounter_shard(
    counter, prefix: str = "repro_ops"
) -> MetricsShard:
    """Freeze an ``OpCounter`` into a picklable shard.

    The live-view variant (:func:`opcounter_view`) holds callbacks and
    cannot cross a process boundary; fleet workers instead snapshot
    their counters into a shard of plain :class:`Counter` metrics and
    ship it to the front door, where :meth:`MetricsRegistry.merge`
    folds shards from every worker additively.  High-water-mark fields
    also sum here (a registry counter has no max semantics) — the
    fleet's exact per-field merge goes through ``OpCounter.merge``;
    this shard is the observability export, not the accounting source
    of truth.
    """
    shard = MetricsShard()
    for name, value in counter.as_dict().items():
        shard.counter(
            f"{prefix}.{name}", help=f"OpCounter field {name}"
        ).inc(float(value))
    return shard


# -- the process-wide registry -------------------------------------------

_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _GLOBAL
