"""The disabled-mode tracing overhead gate (``repro bench obs``).

The tracer's contract is that instrumentation left permanently in hot
paths is *free when disabled*.  This bench checks that two ways:

1. **Deterministically**: a disabled tracer must hand out the process
   no-op singleton from every ``span()`` call (identity, not equality
   — zero allocation) and must record nothing.  These checks cannot
   flake and are the primary gate.
2. **Empirically**: the disabled span's per-entry cost is measured
   directly in a tight loop (nanoseconds, stable even on a loaded
   box), the bare SMSV kernel's per-call cost is measured the same
   way, and the gate is their quotient: one disabled span per kernel
   call must cost under the threshold (default 2 %) of the call.
   Gating on the quotient of two *directly measured* costs — instead
   of the difference of two nearly-equal end-to-end timings — is what
   keeps a 2 % gate stable on a single-core CI container where
   run-to-run kernel jitter alone exceeds 5 %.  The end-to-end
   interleaved ratio is still reported, as information.

The race sanitizer (``REPRO_RACE``) makes the same free-when-disabled
promise and is gated here the same two ways: deterministically
(disabled :func:`~repro.analysis.race.RaceSanitizer.make_lock` must
hand out a *plain* ``threading.Lock`` — the exact built-in type, no
wrapper — and disabled ``track`` must return the object untouched,
class unchanged) and empirically (the per-call cost of the
``enabled`` guard that stays in the parallel kernel path must be
under the same threshold fraction of one SMSV call).

``pass`` requires all of it; the payload lands in ``BENCH_obs.json``
and CI's ``obs-overhead-smoke`` job gates on it.
"""

from __future__ import annotations

import json
import statistics
import threading
import time
from pathlib import Path
from typing import Any, Dict, Union

from repro.analysis.race import RaceSanitizer
from repro.data.synthetic import uniform_rows_matrix
from repro.formats.csr import CSRMatrix
from repro.obs.flight import FlightRecorder
from repro.obs.trace import NOOP_SPAN, Tracer

#: Disabled-mode overhead gate: span cost as a fraction of one SMSV
#: kernel call (0.02 = the 2 % budget).
OVERHEAD_THRESHOLD = 0.02


def run_overhead_bench(
    *,
    quick: bool = False,
    rounds: int = 9,
    calls: int = 64,
    seed: int = 0,
    threshold: float = OVERHEAD_THRESHOLD,
) -> Dict[str, Any]:
    """Measure disabled-span overhead on the SMSV hot path.

    Uses a private disabled :class:`Tracer` so the result is
    independent of ``REPRO_TRACE`` in the environment — the question
    is what *disabled* instrumentation costs, wherever the global
    tracer happens to be.
    """
    if rounds < 1 or calls < 1:
        raise ValueError("rounds and calls must be >= 1")
    # quick shrinks only the matrix, never the round count — with a
    # smaller per-round time the gate needs MORE samples, not fewer,
    # to keep timer jitter out of the ratio.
    m, n, row_nnz = (1024, 256, 16) if quick else (4096, 512, 32)

    rows, cols, values, shape = uniform_rows_matrix(
        m, n, row_nnz, seed=seed
    )
    matrix = CSRMatrix.from_coo(rows, cols, values, shape)
    v = matrix.row(0)  # the SMO access pattern: a row as the query

    tracer = Tracer(enabled=False)
    # Deterministic gate: disabled span() returns the shared no-op
    # singleton — same object every call, nothing allocated, nothing
    # recorded.
    noop_singleton = (
        tracer.span("bench.smsv") is NOOP_SPAN
        and tracer.span("bench.smsv") is tracer.span("other")
    )

    # Same contract, race sanitizer: disabled make_lock() hands out
    # the exact built-in lock type (no wrapper in any with-block that
    # guards a hot path), and disabled track() is the identity — the
    # instance keeps its own class, no descriptors installed.
    race = RaceSanitizer(enabled=False)
    race_plain_lock = type(race.make_lock("bench")) is type(
        threading.Lock()
    )

    # Third free-when-disabled contract, the flight recorder: record()
    # on a disabled ring must be a bare predicate — no clock read, no
    # lock, nothing retained.
    flight = FlightRecorder(enabled=False)
    flight.record("bench")
    flight_disabled_noop = len(flight) == 0 and flight.dropped == 0
    probe = CSRMatrix.from_coo(rows, cols, values, shape)
    probe_cls = type(probe)
    race_track_identity = (
        race.track(probe, ("values",)) is probe
        and type(probe) is probe_cls
        and not race.reports()
    )

    clock = time.perf_counter

    # The gated quantity: what one disabled span entry/exit costs,
    # measured in a tight loop where the cost dominates the loop
    # overhead it is charged with (a conservative over-estimate).
    span_iters = 20_000 if quick else 50_000

    def span_only() -> None:
        for _ in range(span_iters):
            with tracer.span("smo.iteration"):
                pass

    # What the disabled race sanitizer leaves in the parallel kernel
    # path: one `.enabled` branch per dispatch (see
    # repro.parallel.kernels._run_blocks).
    def race_guard_only() -> None:
        for _ in range(span_iters):
            if race.enabled:
                pass  # pragma: no cover - disabled by construction

    # What a disabled flight-recorder call site costs: record() itself
    # is the guard (first line returns), so the measured unit is one
    # full call into a disabled ring.
    def flight_only() -> None:
        for _ in range(span_iters):
            flight.record("smo.iteration")

    def bare() -> None:
        for _ in range(calls):
            matrix.smsv(v)

    def instrumented() -> None:
        for _ in range(calls):
            with tracer.span("smo.iteration"):
                matrix.smsv(v)

    # Warm every path once (allocator, caches) before timing.
    span_only()
    race_guard_only()
    flight_only()
    bare()
    instrumented()

    t_span = []
    t_race = []
    t_flight = []
    t_bare = []
    t_inst = []
    for _ in range(rounds):
        t0 = clock()
        span_only()
        t_span.append(clock() - t0)
        t0 = clock()
        race_guard_only()
        t_race.append(clock() - t0)
        t0 = clock()
        flight_only()
        t_flight.append(clock() - t0)
        t0 = clock()
        bare()
        t_bare.append(clock() - t0)
        t0 = clock()
        instrumented()
        t_inst.append(clock() - t0)

    # Minimum, not median: scheduler noise only ever ADDS time, so the
    # fastest round is the cleanest estimate of each true cost.
    span_per_call = min(t_span) / span_iters
    race_per_call = min(t_race) / span_iters
    flight_per_call = min(t_flight) / span_iters
    bare_per_call = min(t_bare) / calls
    overhead = (
        span_per_call / bare_per_call if bare_per_call > 0 else 1.0
    )
    race_overhead = (
        race_per_call / bare_per_call if bare_per_call > 0 else 1.0
    )
    flight_overhead = (
        flight_per_call / bare_per_call if bare_per_call > 0 else 1.0
    )
    insitu_ratio = (
        min(t_inst) / min(t_bare) if min(t_bare) > 0 else 1.0
    )
    nothing_recorded = len(tracer) == 0 and tracer.dropped == 0

    return {
        "suite": "obs-overhead",
        "quick": quick,
        "shape": [m, n],
        "row_nnz": row_nnz,
        "calls_per_round": calls,
        "rounds": rounds,
        "span_iters": span_iters,
        "noop_singleton": bool(noop_singleton),
        "nothing_recorded": bool(nothing_recorded),
        "race_plain_lock": bool(race_plain_lock),
        "race_track_identity": bool(race_track_identity),
        "flight_disabled_noop": bool(flight_disabled_noop),
        "span_cost_s": span_per_call,
        "race_guard_cost_s": race_per_call,
        "race_overhead_fraction": race_overhead,
        "flight_cost_s": flight_per_call,
        "flight_overhead_fraction": flight_overhead,
        "smsv_cost_s": bare_per_call,
        "bare_median_s": statistics.median(t_bare),
        "instrumented_median_s": statistics.median(t_inst),
        "insitu_ratio": insitu_ratio,
        "overhead_fraction": overhead,
        "threshold": threshold,
        "headline": {
            "pass": bool(
                noop_singleton
                and nothing_recorded
                and race_plain_lock
                and race_track_identity
                and flight_disabled_noop
                and overhead < threshold
                and race_overhead < threshold
                and flight_overhead < threshold
            ),
            "overhead_pct": overhead * 100.0,
            "race_overhead_pct": race_overhead * 100.0,
            "flight_overhead_pct": flight_overhead * 100.0,
        },
    }


#: CLI-facing aliases matching the other bench suites' module shape.
def run_suite(
    *, quick: bool = False, repeats: int = None, seed: int = 0
) -> Dict[str, Any]:
    kwargs: Dict[str, Any] = {"quick": quick, "seed": seed}
    if repeats is not None:
        kwargs["rounds"] = repeats
    return run_overhead_bench(**kwargs)


def render_summary(payload: Dict[str, Any]) -> str:
    h = payload["headline"]
    lines = [
        "obs overhead (disabled-mode tracing on the SMSV hot path)",
        f"  shape       : {tuple(payload['shape'])} at "
        f"{payload['row_nnz']} nnz/row, "
        f"{payload['calls_per_round']} calls x {payload['rounds']} rounds",
        f"  no-op span  : "
        f"{'singleton' if payload['noop_singleton'] else 'ALLOCATES'}",
        f"  recorded    : "
        f"{'nothing' if payload['nothing_recorded'] else 'SPANS LEAKED'}",
        f"  race locks  : "
        f"{'plain' if payload['race_plain_lock'] else 'WRAPPED'}"
        f" when disabled; track is "
        f"{'identity' if payload['race_track_identity'] else 'NOT identity'}",
        f"  span cost   : {payload['span_cost_s'] * 1e9:.0f} ns "
        f"per disabled span",
        f"  race guard  : {payload['race_guard_cost_s'] * 1e9:.0f} ns "
        f"per disabled check",
        f"  flight ring : "
        f"{'no-op' if payload['flight_disabled_noop'] else 'RECORDS'}"
        f" when disabled, {payload['flight_cost_s'] * 1e9:.0f} ns "
        f"per disabled record",
        f"  kernel cost : {payload['smsv_cost_s'] * 1e6:.1f} us "
        f"per SMSV call",
        f"  in-situ     : {(payload['insitu_ratio'] - 1) * 100:+.2f}% "
        f"(interleaved end-to-end; informational)",
        f"  overhead    : {h['overhead_pct']:.3f}% of one kernel call "
        f"(gate < {payload['threshold'] * 100:.0f}%)",
        f"  race ovhd   : {h['race_overhead_pct']:.3f}% of one kernel "
        f"call (same gate)",
        f"  flight ovhd : {h['flight_overhead_pct']:.3f}% of one "
        f"kernel call (same gate)",
        f"  pass        : {h['pass']}",
    ]
    return "\n".join(lines)


def write_report(
    payload: Dict[str, Any], path: Union[str, Path]
) -> None:
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))
