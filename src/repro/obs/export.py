"""Exporters: JSON-lines, Prometheus text format, chrome://tracing.

Three consumers, three formats:

* **JSON-lines** is the archival format — one span (or decision
  record) per line, lossless: reloading a trace yields records equal
  to the originals (Python's ``json`` round-trips floats exactly via
  ``repr``), which the round-trip tests pin.
* **Prometheus text format** (version 0.0.4) exposes a
  :class:`~repro.obs.metrics.MetricsRegistry` for scraping: counters
  and gauges as single samples, histograms as cumulative ``_bucket``
  series plus ``_sum``/``_count``.
* **chrome://tracing JSON** renders span timelines in any Chromium's
  ``about:tracing`` (or Perfetto): complete events (``"ph": "X"``)
  with microsecond timestamps.  :func:`validate_chrome_trace` checks
  payloads against the event-format schema so CI can gate on a full
  ``repro train --trace`` run producing a loadable file.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.obs.audit import DecisionRecord
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import INSTANT_ATTR, SpanRecord

# -- JSON-lines ----------------------------------------------------------


def spans_to_jsonl(spans: List[SpanRecord]) -> str:
    """One span per line; lossless (see the round-trip tests)."""
    return "\n".join(json.dumps(s.as_dict(), sort_keys=True) for s in spans)


def write_spans_jsonl(
    spans: List[SpanRecord],
    path: Union[str, Path],
    *,
    dropped: Union[int, Dict[str, int], None] = None,
) -> None:
    """Write spans as JSON-lines, optionally prefixed by a meta line.

    ``dropped`` (a count, or a per-lane mapping for fleet traces)
    records how many spans the ring(s) evicted before this export —
    without it a truncated trace is indistinguishable from a complete
    one.  The meta line has no ``span_id`` key, so readers (and old
    files) stay compatible.
    """
    text = spans_to_jsonl(spans)
    if dropped is not None:
        meta = json.dumps({"meta": {"dropped": dropped}}, sort_keys=True)
        text = meta + ("\n" + text if text else "")
    Path(path).write_text(text + ("\n" if text else ""))


def read_spans_jsonl(path: Union[str, Path]) -> List[SpanRecord]:
    out: List[SpanRecord] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            d = json.loads(line)
            if "span_id" not in d:
                continue  # meta line (drop counts), not a span
            out.append(SpanRecord.from_dict(d))
    return out


def read_spans_meta(path: Union[str, Path]) -> Dict[str, Any]:
    """The meta line of a spans JSONL file (``{}`` when absent)."""
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            d = json.loads(line)
            if "span_id" not in d and "meta" in d:
                return d["meta"]
    return {}


def audit_to_jsonl(records: List[DecisionRecord]) -> str:
    return "\n".join(
        json.dumps(r.as_dict(), sort_keys=True) for r in records
    )


def write_audit_jsonl(
    records: List[DecisionRecord], path: Union[str, Path]
) -> None:
    text = audit_to_jsonl(records)
    Path(path).write_text(text + ("\n" if text else ""))


def read_audit_jsonl(path: Union[str, Path]) -> List[DecisionRecord]:
    out: List[DecisionRecord] = []
    for line in Path(path).read_text().splitlines():
        line = line.strip()
        if line:
            out.append(DecisionRecord.from_dict(json.loads(line)))
    return out


# -- Prometheus text format ----------------------------------------------

_PROM_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")


def _prom_name(name: str) -> str:
    """Sanitise a metric name into the Prometheus grammar."""
    out = _PROM_NAME_RE.sub("_", name)
    if out and out[0].isdigit():
        out = "_" + out
    return out


def _prom_value(v: float) -> str:
    if v == float("inf"):
        return "+Inf"
    if v == float("-inf"):
        return "-Inf"
    return repr(float(v))


def registry_to_prometheus(registry: MetricsRegistry) -> str:
    """Render a registry in the Prometheus text exposition format."""
    lines: List[str] = []
    for metric in registry.collect():
        name = _prom_name(metric.name)
        if metric.help:
            lines.append(f"# HELP {name} {metric.help}")
        lines.append(f"# TYPE {name} {metric.kind}")
        if metric.kind in ("counter", "gauge"):
            lines.append(f"{name} {_prom_value(metric.value)}")
        else:  # histogram
            for le, count in metric.bucket_counts():
                lines.append(
                    f'{name}_bucket{{le="{_prom_value(le)}"}} {count}'
                )
            lines.append(f"{name}_sum {_prom_value(metric.total)}")
            lines.append(f"{name}_count {metric.count}")
    return "\n".join(lines) + ("\n" if lines else "")


def write_prometheus(
    registry: MetricsRegistry, path: Union[str, Path]
) -> None:
    Path(path).write_text(registry_to_prometheus(registry))


# -- chrome://tracing ----------------------------------------------------

#: Phase values this exporter emits: complete events, zero-duration
#: instants (SLO breaches, hot-spots), and process-name metadata.
_CHROME_PHASES = {"X", "i", "M"}

#: Valid scopes for an instant event's optional ``"s"`` key.
_INSTANT_SCOPES = {"t", "p", "g"}


def _span_event(s: SpanRecord, pid: int) -> Dict[str, Any]:
    args: Dict[str, Any] = {k: v for k, v in s.attrs}
    instant = bool(args.pop(INSTANT_ATTR, False))
    args["span_id"] = s.span_id
    if s.parent_id is not None:
        args["parent_id"] = s.parent_id
    event: Dict[str, Any] = {
        "name": s.name,
        "cat": s.name.split(".", 1)[0],
        "ph": "i" if instant else "X",
        "ts": s.start * 1e6,
        "pid": pid,
        "tid": 1,
        "args": args,
    }
    if instant:
        event["s"] = "p"  # process-scoped marker line
    else:
        event["dur"] = max(s.end - s.start, 0.0) * 1e6
    return event


def spans_to_chrome_trace(
    spans: List[SpanRecord], *, pid: int = 1
) -> Dict[str, Any]:
    """Complete-event (``ph: X``) trace in the chrome JSON object form.

    Timestamps and durations are microseconds per the event-format
    spec; span attributes land in ``args`` together with the span and
    parent ids so the hierarchy survives into the viewer.  Marker
    spans from :meth:`~repro.obs.trace.Tracer.instant` become instant
    events (``ph: "i"``).
    """
    events = [_span_event(s, pid) for s in spans]
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def merged_to_chrome_trace(merged: Any) -> Dict[str, Any]:
    """A fleet :class:`~repro.obs.collect.MergedTrace` as one timeline.

    Each lane becomes a chrome *process* (door = pid lane 0, workers
    after it), labelled via ``process_name`` metadata events; span
    timestamps are already clock-aligned and parent ids already
    resolved by the merge, so the viewer shows one coherent hierarchy
    across the real process boundaries.
    """
    events: List[Dict[str, Any]] = []
    for lane in sorted(merged.names):
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": lane,
                "tid": 1,
                "args": {"name": merged.names[lane]},
            }
        )
    base = min((s.start for s in merged.spans), default=0.0)
    for s in merged.spans:
        e = _span_event(s, merged.lanes[s.span_id])
        # Chrome requires non-negative timestamps; rebase onto the
        # earliest span so virtual-clock traces starting at 0 and
        # perf_counter traces both land at the origin.
        e["ts"] = max(s.start - base, 0.0) * 1e6
        events.append(e)
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_merged_chrome_trace(
    merged: Any, path: Union[str, Path]
) -> None:
    payload = merged_to_chrome_trace(merged)
    validate_chrome_trace(payload)
    Path(path).write_text(json.dumps(payload))


def write_chrome_trace(
    spans: List[SpanRecord], path: Union[str, Path]
) -> None:
    payload = spans_to_chrome_trace(spans)
    validate_chrome_trace(payload)
    Path(path).write_text(json.dumps(payload))


def validate_chrome_trace(payload: Dict[str, Any]) -> None:
    """Check a payload against the trace-event-format schema.

    Raises ``ValueError`` naming the first offending event.  Checked:
    the object form (``traceEvents`` list), per-event required keys,
    known phase, numeric non-negative ``ts``/``dur``, integer
    ``pid``/``tid``, and JSON-serialisable ``args``.
    """
    if not isinstance(payload, dict) or "traceEvents" not in payload:
        raise ValueError(
            "chrome trace must be the object form with a 'traceEvents' key"
        )
    events = payload["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("'traceEvents' must be a list")
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise ValueError(f"event {i} is not an object")
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in e:
                raise ValueError(f"event {i} missing required key {key!r}")
        if e["ph"] not in _CHROME_PHASES:
            raise ValueError(
                f"event {i} has unsupported phase {e['ph']!r}"
            )
        if not isinstance(e["ts"], (int, float)) or e["ts"] < 0:
            raise ValueError(f"event {i} has invalid ts {e['ts']!r}")
        if e["ph"] == "X":
            if "dur" not in e:
                raise ValueError(f"complete event {i} missing 'dur'")
            if not isinstance(e["dur"], (int, float)) or e["dur"] < 0:
                raise ValueError(
                    f"event {i} has invalid dur {e['dur']!r}"
                )
        if e["ph"] == "i" and "s" in e and e["s"] not in _INSTANT_SCOPES:
            raise ValueError(
                f"instant event {i} has invalid scope {e['s']!r}"
            )
        if e["ph"] == "M" and e.get("name") not in (
            "process_name", "process_labels", "process_sort_index",
            "thread_name", "thread_sort_index",
        ):
            raise ValueError(
                f"metadata event {i} has unknown name {e.get('name')!r}"
            )
        for key in ("pid", "tid"):
            if not isinstance(e[key], int):
                raise ValueError(f"event {i} has non-integer {key!r}")
        if "args" in e:
            try:
                json.dumps(e["args"])
            except (TypeError, ValueError) as exc:
                raise ValueError(
                    f"event {i} has non-JSON args: {exc}"
                ) from exc
