"""Dataset synthesis and I/O.

The paper evaluates on eleven public datasets (Table V) plus families of
synthetic matrices with one structural parameter swept at a time (Figs.
2-4).  This package regenerates both:

- :mod:`repro.data.synthetic` — parametric sparse matrix generators
  (target ``ndig``, target ``mdim``, target ``vdim``, banded, uniform).
- :mod:`repro.data.datasets` — clones of every Table V dataset, matched
  to the published nine-parameter statistics (scaled where the original
  would not fit in test memory; scaling preserves density / balance /
  variation ratios — see DESIGN.md).
- :mod:`repro.data.cifar` — a synthetic CIFAR-10 stand-in: 10 visual
  classes of 3x32x32 images on which a small CNN reaches the paper's 0.8
  test-accuracy target quickly.
- :mod:`repro.data.libsvm_io` — reader/writer for the LIBSVM text format
  the original datasets ship in.
"""

from repro.data.synthetic import (
    attach_labels,
    banded_matrix,
    bimodal_rows_matrix,
    matrix_with_mdim,
    matrix_with_ndig,
    matrix_with_vdim,
    powerlaw_rows_matrix,
    row_lengths_for,
    uniform_rows_matrix,
    variable_rows_matrix,
)
from repro.data.datasets import (
    DATASET_SPECS,
    DatasetSpec,
    SVMDataset,
    dataset_names,
    load_dataset,
)
from repro.data.cifar import CIFAR_SHAPE, ImageDataset, synthetic_cifar10
from repro.data.libsvm_io import read_libsvm, write_libsvm
from repro.data.mtx_io import read_mtx, write_mtx

__all__ = [
    "uniform_rows_matrix",
    "variable_rows_matrix",
    "bimodal_rows_matrix",
    "powerlaw_rows_matrix",
    "banded_matrix",
    "matrix_with_ndig",
    "matrix_with_mdim",
    "matrix_with_vdim",
    "row_lengths_for",
    "attach_labels",
    "DatasetSpec",
    "SVMDataset",
    "DATASET_SPECS",
    "dataset_names",
    "load_dataset",
    "ImageDataset",
    "synthetic_cifar10",
    "CIFAR_SHAPE",
    "read_libsvm",
    "write_libsvm",
    "read_mtx",
    "write_mtx",
]
