"""MatrixMarket (.mtx) reader and writer.

The University of Florida collection — the source of the paper's
trefethen matrix — ships MatrixMarket files.  Supported subset:

- ``matrix coordinate real|integer|pattern general|symmetric``
- ``matrix array real|integer general`` (dense column-major)

Pattern entries read as 1.0; symmetric storage is expanded to both
triangles on read.  The writer emits ``coordinate real general``.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Tuple, Union

import numpy as np

from repro.data.synthetic import CooTriples
from repro.formats.base import VALUE_DTYPE, validate_coo

PathLike = Union[str, Path]


def read_mtx(source: Union[PathLike, io.TextIOBase]) -> CooTriples:
    """Parse a MatrixMarket file into canonical COO triples."""
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_mtx(fh)

    header = source.readline().strip().lower().split()
    if len(header) < 4 or header[0] != "%%matrixmarket" or header[1] != "matrix":
        raise ValueError("not a MatrixMarket matrix file")
    layout, field = header[2], header[3]
    symmetry = header[4] if len(header) > 4 else "general"
    if layout not in ("coordinate", "array"):
        raise ValueError(f"unsupported layout {layout!r}")
    if field not in ("real", "integer", "pattern"):
        raise ValueError(f"unsupported field {field!r}")
    if symmetry not in ("general", "symmetric"):
        raise ValueError(f"unsupported symmetry {symmetry!r}")
    if layout == "array" and (field == "pattern" or symmetry != "general"):
        raise ValueError("array layout supports only real/integer general")

    # skip comments
    line = source.readline()
    while line.startswith("%"):
        line = source.readline()
    dims = line.split()

    if layout == "coordinate":
        if len(dims) != 3:
            raise ValueError("coordinate header needs 'rows cols nnz'")
        m, n, nnz = (int(v) for v in dims)
        rows = np.empty(nnz, dtype=np.int64)
        cols = np.empty(nnz, dtype=np.int64)
        vals = np.empty(nnz, dtype=VALUE_DTYPE)
        for k in range(nnz):
            parts = source.readline().split()
            if len(parts) < (2 if field == "pattern" else 3):
                raise ValueError(f"entry {k + 1}: malformed line")
            rows[k] = int(parts[0]) - 1
            cols[k] = int(parts[1]) - 1
            vals[k] = 1.0 if field == "pattern" else float(parts[2])
        if symmetry == "symmetric":
            off = rows != cols
            rows, cols, vals = (
                np.concatenate([rows, cols[off]]),
                np.concatenate([cols, rows[off]]),
                np.concatenate([vals, vals[off]]),
            )
        r, c, v = validate_coo(rows, cols, vals, (m, n))
        return r, c, v, (m, n)

    # dense array layout: column-major values
    if len(dims) != 2:
        raise ValueError("array header needs 'rows cols'")
    m, n = (int(v) for v in dims)
    vals = np.empty(m * n, dtype=VALUE_DTYPE)
    for k in range(m * n):
        vals[k] = float(source.readline().split()[0])
    dense = vals.reshape((n, m)).T  # column-major on disk
    rows, cols = np.nonzero(dense)
    r, c, v = validate_coo(rows, cols, dense[rows, cols], (m, n))
    return r, c, v, (m, n)


def write_mtx(
    target: Union[PathLike, io.TextIOBase],
    triples: CooTriples,
    *,
    comment: str = "",
) -> None:
    """Write COO triples as ``coordinate real general``."""
    rows, cols, vals, (m, n) = triples
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_mtx(fh, triples, comment=comment)
            return
    target.write("%%MatrixMarket matrix coordinate real general\n")
    if comment:
        for line in comment.splitlines():
            target.write(f"% {line}\n")
    target.write(f"{m} {n} {len(vals)}\n")
    for r, c, v in zip(rows, cols, vals):
        target.write(f"{int(r) + 1} {int(c) + 1} {float(v):.17g}\n")
