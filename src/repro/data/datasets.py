"""Clones of the paper's Table V evaluation datasets.

Each spec records the *published* statistics verbatim and a generation
recipe that reproduces them (scaled where the original would not fit in
test memory — the scale factors are part of the spec and documented in
DESIGN.md).  Scaling multiplies M and N and rescales nnz so that
density, row balance (adim/mdim) and row variation (cv = sqrt(vdim)/adim)
are preserved: those ratios, not the absolute sizes, drive the layout
decision.

``benchmarks/test_table5_dataset_stats.py`` extracts the nine parameters
from every clone and prints them next to the paper's values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.data.synthetic import (
    CooTriples,
    attach_labels,
    banded_matrix,
    row_lengths_for,
    uniform_rows_matrix,
    variable_rows_matrix,
)
from repro.features.extract import profile_from_coo
from repro.features.profile import DatasetProfile
from repro.formats.base import MatrixFormat
from repro.formats.convert import format_class


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table V plus this library's generation recipe."""

    name: str
    application: str
    #: Published Table V statistics (verbatim).
    paper: DatasetProfile
    #: Generation recipe: 'two_point', 'normal', 'uniform', 'dense',
    #: or 'banded'.
    kind: str
    #: Scale factors applied to (M, N) for the clone; 1.0 = full size.
    m_scale: float = 1.0
    n_scale: float = 1.0
    #: Extra recipe parameters (e.g. diagonal offsets for 'banded').
    extra: Tuple = ()

    @property
    def clone_m(self) -> int:
        return max(2, int(round(self.paper.m * self.m_scale)))

    @property
    def clone_n(self) -> int:
        return max(2, int(round(self.paper.n * self.n_scale)))

    @property
    def scaled(self) -> bool:
        return self.m_scale != 1.0 or self.n_scale != 1.0


def _p(m, n, nnz, ndig, dnnz, mdim, adim, vdim, density) -> DatasetProfile:
    return DatasetProfile(
        m=m, n=n, nnz=nnz, ndig=ndig, dnnz=dnnz, mdim=mdim,
        adim=adim, vdim=vdim, density=density,
    )


#: Table V, verbatim, with generation recipes.  Order follows the paper.
DATASET_SPECS: Dict[str, DatasetSpec] = {
    "adult": DatasetSpec(
        name="adult",
        application="economy",
        paper=_p(2265, 119, 31404, 2347, 13.38, 14, 13.87, 0.059, 0.119),
        kind="two_point",
    ),
    "breast_cancer": DatasetSpec(
        name="breast_cancer",
        application="clinical",
        paper=_p(38, 7129, 270902, 7166, 37.80, 7129, 7129, 0.0, 1.0),
        kind="dense",
    ),
    "aloi": DatasetSpec(
        name="aloi",
        application="vision",
        paper=_p(1000, 128, 32142, 1125, 28.57, 74, 32.14, 85.22, 0.251),
        kind="normal",
    ),
    "gisette": DatasetSpec(
        name="gisette",
        application="selection",
        paper=_p(6000, 5000, 30_000_000, 10999, 2728, 5000, 5000, 0.0, 1.0),
        kind="dense",
        m_scale=0.25,
        n_scale=0.25,
    ),
    "mnist": DatasetSpec(
        name="mnist",
        application="recognition",
        paper=_p(450, 772, 66825, 1050, 63.64, 291, 148.5, 1594, 0.192),
        kind="normal",
    ),
    "sector": DatasetSpec(
        name="sector",
        application="industry",
        paper=_p(1500, 55188, 238790, 33770, 7.07, 1819, 159.19, 17634, 0.003),
        kind="normal",
        m_scale=0.25,
        n_scale=0.25,
    ),
    "epsilon": DatasetSpec(
        name="epsilon",
        application="AI",
        paper=_p(390000, 2000, 780_000_000, 391999, 1990, 2000, 2000, 0.0, 1.0),
        kind="dense",
        m_scale=0.005,
        n_scale=0.2,
    ),
    "leukemia": DatasetSpec(
        name="leukemia",
        application="biology",
        paper=_p(38, 7129, 270902, 7166, 37.8, 7129, 7129, 0.0, 1.0),
        kind="dense",
    ),
    "connect-4": DatasetSpec(
        name="connect-4",
        application="game",
        paper=_p(1800, 125, 75600, 1922, 39.33, 42, 42, 0.0, 0.336),
        kind="uniform",
    ),
    "trefethen": DatasetSpec(
        name="trefethen",
        application="numerical",
        paper=_p(2000, 2000, 21953, 12, 1829, 12, 10.98, 1.25, 0.006),
        kind="banded",
        extra=(0, 1, -1, 2, -2, 3, -3, 5, -5, 7, -7, 11),
    ),
    "dna": DatasetSpec(
        name="dna",
        application="genomics",
        paper=_p(3_600_000, 200, 720_000_000, 3_600_199, 200.0, 200, 200, 0.0, 1.0),
        kind="dense",
        m_scale=0.001,
    ),
}


def dataset_names() -> List[str]:
    """Dataset names in Table V order."""
    return list(DATASET_SPECS)


def _generate(spec: DatasetSpec, seed: int) -> CooTriples:
    m, n = spec.clone_m, spec.clone_n
    p = spec.paper
    if spec.kind == "dense":
        return uniform_rows_matrix(m, n, n, seed=seed)
    if spec.kind == "uniform":
        k = min(n, int(round(p.adim * spec.n_scale)) or 1)
        return uniform_rows_matrix(m, n, k, seed=seed)
    if spec.kind == "two_point":
        # Bernoulli mixture of floor/ceil(adim): reproduces tiny vdim
        # (adult: most rows have 14 features, a few have fewer).
        rng = np.random.default_rng(seed)
        adim = p.adim * spec.n_scale
        lo, hi = int(np.floor(adim)), int(np.ceil(adim))
        frac = adim - lo
        lengths = np.where(rng.random(m) < frac, hi, lo).astype(np.int64)
        np.clip(lengths, 1, n, out=lengths)
        return variable_rows_matrix(m, n, lengths, seed=seed + 1)
    if spec.kind == "normal":
        adim = p.adim * spec.n_scale
        mdim = max(1, min(n, int(round(p.mdim * spec.n_scale))))
        # Preserve the coefficient of variation under scaling.
        cv = np.sqrt(p.vdim) / p.adim if p.adim else 0.0
        vdim = (cv * adim) ** 2
        lengths = row_lengths_for(
            m, adim=adim, vdim=vdim, mdim=mdim, n=n, seed=seed
        )
        return variable_rows_matrix(m, n, lengths, seed=seed + 1)
    if spec.kind == "banded":
        # Thin the bands so total nnz matches the paper (UFlorida bands
        # are not perfectly full); the thinning also reproduces the
        # published small-but-nonzero vdim.
        full = sum(
            max(0, min(m, n - o) - max(0, -o))
            for o in set(int(o) for o in spec.extra)
        )
        fill = min(1.0, p.nnz / full) if full else 1.0
        return banded_matrix(m, n, spec.extra, fill=fill, seed=seed)
    raise ValueError(f"unknown recipe kind {spec.kind!r}")


@dataclass
class SVMDataset:
    """A generated classification dataset: matrix triples + labels."""

    spec: DatasetSpec
    rows: np.ndarray
    cols: np.ndarray
    values: np.ndarray
    shape: Tuple[int, int]
    y: np.ndarray

    @property
    def profile(self) -> DatasetProfile:
        return profile_from_coo(
            self.rows, self.cols, self.shape, validated=True
        )

    def in_format(self, fmt: str) -> MatrixFormat:
        """Materialise the data matrix in the requested format."""
        cls = format_class(fmt)
        return cls.from_coo(self.rows, self.cols, self.values, self.shape)

    def split(self, train_frac: float = 0.8, *, seed: int = 0):
        """Deterministic train/test row split; returns index arrays."""
        if not 0.0 < train_frac < 1.0:
            raise ValueError("train_frac must lie in (0, 1)")
        m = self.shape[0]
        rng = np.random.default_rng(seed)
        perm = rng.permutation(m)
        k = int(round(train_frac * m))
        return perm[:k], perm[k:]


def load_dataset(
    name: str,
    *,
    seed: int = 0,
    label_noise: float = 0.0,
    m_override: Optional[int] = None,
) -> SVMDataset:
    """Generate the named Table V clone.

    Parameters
    ----------
    name:
        A Table V dataset name (see :func:`dataset_names`).
    seed:
        Generator seed; the same seed always yields the same dataset.
    label_noise:
        Probability of flipping each label (0 = linearly separable).
    m_override:
        Optionally shrink the row count further (useful in unit tests);
        row statistics are preserved because rows are i.i.d.
    """
    try:
        spec = DATASET_SPECS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {dataset_names()}"
        ) from None
    triples = _generate(spec, seed)
    rows, cols, values, shape = triples
    if m_override is not None and m_override < shape[0]:
        keep = rows < m_override
        rows, cols, values = rows[keep], cols[keep], values[keep]
        shape = (m_override, shape[1])
        triples = (rows, cols, values, shape)
    y = attach_labels(triples, seed=seed, noise=label_noise)
    return SVMDataset(
        spec=spec, rows=rows, cols=cols, values=values, shape=shape, y=y
    )
