"""Parametric sparse-matrix generators.

These regenerate the controlled experiments of the paper:

- Fig. 2 sweeps ``ndig`` at fixed (M, N, nnz) = (4096, 4096, 4096) —
  :func:`matrix_with_ndig`.
- Fig. 3 sweeps ``mdim`` at fixed (M, N, nnz) = (4096, 4096, 8192) —
  :func:`matrix_with_mdim`.
- Fig. 4 sweeps ``vdim`` at fixed ``adim`` — :func:`matrix_with_vdim`.

All generators are deterministic given a seed and return canonical COO
triples ``(rows, cols, values, shape)`` ready for any
``MatrixFormat.from_coo``.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.formats.base import validate_coo

CooTriples = Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[int, int]]


def _canonical(
    rows: np.ndarray,
    cols: np.ndarray,
    values: np.ndarray,
    shape: Tuple[int, int],
) -> CooTriples:
    """All generators return canonical (row-major sorted) triples."""
    rows, cols, values = validate_coo(rows, cols, values, shape)
    return rows, cols, values, shape


def _values(rng: np.random.Generator, n: int) -> np.ndarray:
    """Non-zero values: uniform in [0.1, 1.1] so none vanish."""
    return 0.1 + rng.random(n)


def variable_rows_matrix(
    m: int,
    n: int,
    row_lengths: Sequence[int] | np.ndarray,
    *,
    seed: int = 0,
) -> CooTriples:
    """Matrix with prescribed non-zeros per row at random columns.

    The workhorse generator: every other sparse generator reduces to a
    choice of ``row_lengths``.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    if lengths.shape != (m,):
        raise ValueError("row_lengths must have length m")
    if lengths.min(initial=0) < 0:
        raise ValueError("row lengths must be non-negative")
    if lengths.max(initial=0) > n:
        raise ValueError("row length exceeds n")
    rng = np.random.default_rng(seed)
    rows = np.repeat(np.arange(m, dtype=np.int64), lengths)
    cols_parts = [
        rng.choice(n, size=int(k), replace=False) for k in lengths if k > 0
    ]
    cols = (
        np.concatenate(cols_parts)
        if cols_parts
        else np.empty(0, dtype=np.int64)
    )
    values = _values(rng, rows.shape[0])
    return _canonical(rows, cols, values, (m, n))


def uniform_rows_matrix(
    m: int, n: int, row_nnz: int, *, seed: int = 0
) -> CooTriples:
    """Every row has exactly ``row_nnz`` non-zeros (vdim = 0)."""
    return variable_rows_matrix(
        m, n, np.full(m, row_nnz, dtype=np.int64), seed=seed
    )


def bimodal_rows_matrix(
    m: int,
    n: int,
    short_nnz: int,
    long_nnz: int,
    long_frac: float,
    *,
    seed: int = 0,
) -> CooTriples:
    """Mostly-``short_nnz`` rows with a ``long_frac`` tail of longer rows.

    The batch-sensitive shape: with ``long_nnz / short_nnz`` around 1.4
    and a thin long tail, ELL's global padding is cheap enough to win
    single-vector sweeps while COO's flat stream (which amortises a
    larger traversal fraction across SpMM columns) wins blocked ones —
    the cost-model crossover the serving re-scheduler acts on when the
    observed batch width drifts.
    """
    if not 0.0 <= long_frac <= 1.0:
        raise ValueError("long_frac must be in [0, 1]")
    if long_nnz < short_nnz:
        raise ValueError("long_nnz must be >= short_nnz")
    rng = np.random.default_rng(seed)
    lengths = np.where(
        rng.random(m) < long_frac, long_nnz, short_nnz
    ).astype(np.int64)
    if m and lengths.max(initial=0) < long_nnz:
        lengths[0] = long_nnz  # keep mdim deterministic for tiny m
    return variable_rows_matrix(m, n, lengths, seed=seed + 1)


def powerlaw_rows_matrix(
    m: int,
    n: int,
    *,
    alpha: float = 2.0,
    min_nnz: int = 1,
    max_nnz: Optional[int] = None,
    seed: int = 0,
) -> CooTriples:
    """Row lengths drawn from a discrete Pareto tail (exponent ``alpha``).

    The high-``vdim`` stress shape for SELL-C-sigma: most rows are short
    but a heavy tail of long rows inflates ``mdim`` far beyond ``adim``,
    so plain ELL pads catastrophically while per-slice padding after a
    descending sort stays near nnz.  Lengths follow the inverse-CDF
    sample ``min_nnz * u^(-1/(alpha-1))`` clipped to ``[min_nnz,
    max_nnz]`` (default cap ``n``); smaller ``alpha`` means a heavier
    tail.  Deterministic given ``seed``; the longest draw is placed on a
    seeded row so ``mdim`` does not wobble between parameter tweaks.
    """
    if alpha <= 1.0:
        raise ValueError("alpha must be > 1 for a normalisable tail")
    if min_nnz < 1:
        raise ValueError("min_nnz must be >= 1")
    cap = n if max_nnz is None else int(max_nnz)
    if not min_nnz <= cap <= n:
        raise ValueError("need min_nnz <= max_nnz <= n")
    rng = np.random.default_rng(seed)
    u = rng.random(m)
    lengths = np.floor(min_nnz * u ** (-1.0 / (alpha - 1.0))).astype(
        np.int64
    )
    np.clip(lengths, min_nnz, cap, out=lengths)
    return variable_rows_matrix(m, n, lengths, seed=seed + 1)


def row_lengths_for(
    m: int,
    *,
    adim: float,
    vdim: float,
    mdim: int,
    n: int,
    seed: int = 0,
) -> np.ndarray:
    """Sample per-row lengths matching target mean / variance / max.

    Draws from a normal with the target moments, clips to ``[1, mdim]``,
    forces at least one row to hit ``mdim`` exactly, then adjusts counts
    by ±1 until the total equals ``round(adim * m)``.  The resulting
    empirical (adim, mdim) match exactly; vdim matches to within the
    clipping distortion (tests assert a tolerance).
    """
    if mdim > n:
        raise ValueError("mdim cannot exceed n")
    if not 1 <= adim <= n:
        raise ValueError("adim must lie in [1, n]")
    rng = np.random.default_rng(seed)
    target_nnz = int(round(adim * m))
    lengths = np.rint(
        rng.normal(adim, np.sqrt(max(vdim, 0.0)), size=m)
    ).astype(np.int64)
    np.clip(lengths, 1, mdim, out=lengths)
    lengths[int(rng.integers(m))] = mdim
    # Fix the total without disturbing max: add/subtract 1 from rows
    # that have slack.
    diff = target_nnz - int(lengths.sum())
    guard = 0
    while diff != 0 and guard < 20 * m:
        i = int(rng.integers(m))
        if diff > 0 and lengths[i] < mdim:
            lengths[i] += 1
            diff -= 1
        elif diff < 0 and lengths[i] > 1:
            lengths[i] -= 1
            diff += 1
        guard += 1
    return lengths


def matrix_with_vdim(
    m: int,
    n: int,
    *,
    adim: float,
    vdim: float,
    seed: int = 0,
) -> CooTriples:
    """Fixed ``adim``, swept ``vdim`` — the Fig. 4 family.

    Uses a symmetric two-point distribution: half the rows get
    ``adim - s`` non-zeros, half get ``adim + s`` with ``s =
    sqrt(vdim)``, which hits the target mean and variance exactly (up to
    integer rounding) without touching nnz.
    """
    s = float(np.sqrt(max(vdim, 0.0)))
    lo = int(round(adim - s))
    hi = int(round(adim + s))
    if lo < 0:
        raise ValueError(
            f"vdim={vdim} too large for adim={adim} (rows would be negative)"
        )
    if hi > n:
        raise ValueError(f"adim + sqrt(vdim) = {hi} exceeds n = {n}")
    lengths = np.empty(m, dtype=np.int64)
    half = m // 2
    lengths[:half] = lo
    lengths[half:] = hi
    # For odd m, fix the mean by averaging the middle row.
    if m % 2 == 1:
        lengths[half] = int(round(adim))
    rng = np.random.default_rng(seed)
    rng.shuffle(lengths)
    return variable_rows_matrix(m, n, lengths, seed=seed + 1)


def matrix_with_mdim(
    m: int,
    n: int,
    nnz: int,
    mdim: int,
    *,
    seed: int = 0,
) -> CooTriples:
    """Fixed (M, N, nnz), swept ``mdim`` — the Fig. 3 family.

    ``h`` heavy rows carry ``mdim`` non-zeros each; all other rows carry
    the minimal uniform load so the total stays at ``nnz``.  At
    ``mdim = nnz/m`` every row is equal (best case); at ``mdim = n`` a
    single row forces maximal padding (worst case), exactly the paper's
    mat2 vs mat4096 contrast.
    """
    if not 1 <= mdim <= n:
        raise ValueError("mdim must lie in [1, n]")
    if nnz < m:
        raise ValueError("need nnz >= m so every row keeps >= 1 element")
    if mdim < int(np.ceil(nnz / m)):
        raise ValueError(
            f"mdim={mdim} infeasible: nnz={nnz} over m={m} rows forces "
            f"some row >= {int(np.ceil(nnz / m))}"
        )
    # h heavy rows of mdim, (m - h) light rows of ~1:
    #   h * mdim + (m - h) * 1 = nnz  =>  h = (nnz - m) / (mdim - 1)
    if mdim == 1:
        h = 0
    else:
        h = int((nnz - m) // (mdim - 1))
        h = min(h, m)
    lengths = np.ones(m, dtype=np.int64)
    lengths[:h] = mdim
    # Distribute the integer remainder over light rows (keeps max at
    # mdim because remainder < mdim - 1 per construction).
    rem = nnz - int(lengths.sum())
    i = h
    while rem > 0 and i < m:
        add = min(rem, mdim - 1)
        lengths[i] += add
        rem -= add
        i += 1
    if rem != 0:
        raise ValueError("could not place all nnz under the mdim cap")
    rng = np.random.default_rng(seed)
    rng.shuffle(lengths)
    return variable_rows_matrix(m, n, lengths, seed=seed + 1)


def banded_matrix(
    m: int,
    n: int,
    offsets: Sequence[int],
    *,
    fill: float = 1.0,
    seed: int = 0,
) -> CooTriples:
    """Matrix occupying the given diagonals (trefethen-style).

    ``fill`` < 1 keeps each diagonal partially occupied at random (the
    University-of-Florida matrices are not perfectly full bands).
    """
    if not 0.0 < fill <= 1.0:
        raise ValueError("fill must lie in (0, 1]")
    rng = np.random.default_rng(seed)
    rows_list = []
    cols_list = []
    for o in sorted(set(int(o) for o in offsets)):
        i0 = max(0, -o)
        i1 = min(m, n - o)
        if i1 <= i0:
            continue
        i = np.arange(i0, i1, dtype=np.int64)
        if fill < 1.0:
            keep = rng.random(i.shape[0]) < fill
            # Never drop a whole diagonal: ndig is the controlled
            # variable.
            if not keep.any():
                keep[rng.integers(i.shape[0])] = True
            i = i[keep]
        rows_list.append(i)
        cols_list.append(i + o)
    if rows_list:
        rows = np.concatenate(rows_list)
        cols = np.concatenate(cols_list)
    else:
        rows = np.empty(0, dtype=np.int64)
        cols = np.empty(0, dtype=np.int64)
    values = _values(rng, rows.shape[0])
    return _canonical(rows, cols, values, (m, n))


def matrix_with_ndig(
    m: int,
    n: int,
    nnz: int,
    ndig: int,
    *,
    seed: int = 0,
) -> CooTriples:
    """Fixed (M, N, nnz), swept ``ndig`` — the Fig. 2 family.

    Picks ``ndig`` distinct diagonals and places ``nnz/ndig`` elements
    on each; at ``ndig = nnz`` every diagonal holds a single element
    (maximal padding), at small ``ndig`` diagonals are dense (minimal
    padding) — the paper's 2-diagonal vs 4096-diagonal contrast.
    """
    if ndig < 1:
        raise ValueError("ndig must be >= 1")
    max_diag = m + n - 1
    if ndig > max_diag:
        raise ValueError("ndig exceeds the number of diagonals")
    rng = np.random.default_rng(seed)
    all_offsets = np.arange(-(m - 1), n)
    # Prefer central diagonals (they are longest and can actually hold
    # nnz/ndig elements each).
    center = np.argsort(np.abs(all_offsets), kind="stable")
    chosen = np.sort(all_offsets[center[:ndig]])

    spans = np.array(
        [min(m, n - int(o)) - max(0, -int(o)) for o in chosen], dtype=np.int64
    )
    if np.any(spans <= 0):
        raise ValueError("empty diagonal selected")
    capacity = int(spans.sum())
    if nnz > capacity:
        raise ValueError(
            f"nnz={nnz} exceeds the {capacity} slots of the {ndig} "
            f"longest diagonals"
        )
    # Even split with carry-over: a diagonal shorter than its share
    # fills completely and pushes the deficit to later diagonals.
    per = nnz // ndig
    extra = nnz - per * ndig
    want = np.full(ndig, per, dtype=np.int64)
    want[:extra] += 1
    deficit = np.maximum(want - spans, 0).sum()
    want = np.minimum(want, spans)
    j = 0
    while deficit > 0:
        spare = int(spans[j] - want[j])
        add = min(spare, int(deficit))
        want[j] += add
        deficit -= add
        j += 1
    rows_list = []
    cols_list = []
    for j, o in enumerate(chosen):
        o = int(o)
        i0 = max(0, -o)
        i = i0 + rng.choice(int(spans[j]), size=int(want[j]), replace=False)
        i = np.sort(i)
        rows_list.append(i)
        cols_list.append(i + o)
    rows = np.concatenate(rows_list)
    cols = np.concatenate(cols_list)
    values = _values(rng, rows.shape[0])
    return _canonical(rows, cols, values, (m, n))


def attach_labels(
    triples: CooTriples,
    *,
    seed: int = 0,
    noise: float = 0.0,
) -> np.ndarray:
    """Generate ±1 labels linearly separable in the matrix's features.

    Labels come from the sign of ``X @ w`` for a random hyperplane ``w``
    through the data median, optionally flipped with probability
    ``noise``.  SVM training on the result converges quickly and has a
    meaningful margin — enough to exercise the solver end to end.
    """
    rows, cols, values, (m, n) = triples
    rng = np.random.default_rng(seed + 12345)
    w = rng.standard_normal(n)
    score = np.zeros(m)
    np.add.at(score, rows, values * w[cols])
    thresh = float(np.median(score))
    y = np.where(score > thresh, 1.0, -1.0)
    # Guarantee both classes exist (degenerate draws are possible for
    # tiny m).
    if np.all(y == y[0]):
        y[: m // 2] = -y[0]
    if noise > 0.0:
        flip = rng.random(m) < noise
        y[flip] = -y[flip]
    return y
