"""LIBSVM text-format reader and writer.

The Table V datasets ship in LIBSVM's sparse text format::

    <label> <index>:<value> <index>:<value> ...

with 1-based feature indices.  The reader returns canonical COO triples
plus labels; the writer round-trips them.  This is the interchange point
for users who want to run the scheduler on their own (real) datasets.
"""

from __future__ import annotations

import io
from pathlib import Path
from typing import Optional, Tuple, Union

import numpy as np

from repro.data.synthetic import CooTriples
from repro.formats.base import VALUE_DTYPE

PathLike = Union[str, Path]


def read_libsvm(
    source: Union[PathLike, io.TextIOBase],
    *,
    n_features: Optional[int] = None,
) -> Tuple[CooTriples, np.ndarray]:
    """Parse a LIBSVM file into ``((rows, cols, values, shape), y)``.

    Parameters
    ----------
    source:
        Path or open text stream.
    n_features:
        Force the column count (otherwise the max seen index is used —
        the paper's definition of N, "maximum feature index of all
        samples").

    Raises
    ------
    ValueError
        On malformed lines, non-numeric fields, or non-positive feature
        indices.
    """
    if isinstance(source, (str, Path)):
        with open(source, "r", encoding="utf-8") as fh:
            return read_libsvm(fh, n_features=n_features)

    rows_list = []
    cols_list = []
    vals_list = []
    labels = []
    row = 0
    for lineno, line in enumerate(source, start=1):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        parts = line.split()
        try:
            labels.append(float(parts[0]))
        except ValueError:
            raise ValueError(
                f"line {lineno}: label {parts[0]!r} is not numeric"
            ) from None
        prev_idx = 0
        for tok in parts[1:]:
            try:
                idx_s, val_s = tok.split(":", 1)
                idx = int(idx_s)
                val = float(val_s)
            except ValueError:
                raise ValueError(
                    f"line {lineno}: malformed feature token {tok!r}"
                ) from None
            if idx < 1:
                raise ValueError(
                    f"line {lineno}: feature index {idx} must be >= 1"
                )
            if idx <= prev_idx:
                raise ValueError(
                    f"line {lineno}: feature indices must be increasing"
                )
            prev_idx = idx
            if val != 0.0:
                rows_list.append(row)
                cols_list.append(idx - 1)
                vals_list.append(val)
        row += 1

    rows = np.asarray(rows_list, dtype=np.int64)
    cols = np.asarray(cols_list, dtype=np.int64)
    values = np.asarray(vals_list, dtype=VALUE_DTYPE)
    max_seen = int(cols.max()) + 1 if cols.size else 0
    n = n_features if n_features is not None else max_seen
    if n < max_seen:
        raise ValueError(
            f"n_features={n} smaller than max feature index {max_seen}"
        )
    y = np.asarray(labels, dtype=VALUE_DTYPE)
    return (rows, cols, values, (row, n)), y


def write_libsvm(
    target: Union[PathLike, io.TextIOBase],
    triples: CooTriples,
    y: np.ndarray,
) -> None:
    """Write COO triples + labels in LIBSVM format (1-based indices)."""
    rows, cols, values, (m, _n) = triples
    y = np.asarray(y)
    if y.shape != (m,):
        raise ValueError("labels must have one entry per row")
    if isinstance(target, (str, Path)):
        with open(target, "w", encoding="utf-8") as fh:
            write_libsvm(fh, triples, y)
            return

    order = np.lexsort((cols, rows))
    rows, cols, values = rows[order], cols[order], values[order]
    ptr = np.searchsorted(rows, np.arange(m + 1))
    for i in range(m):
        label = y[i]
        label_s = str(int(label)) if float(label).is_integer() else repr(float(label))
        feats = " ".join(
            f"{int(cols[k]) + 1}:{values[k]:.17g}"
            for k in range(ptr[i], ptr[i + 1])
        )
        target.write(f"{label_s} {feats}".rstrip() + "\n")
