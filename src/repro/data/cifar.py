"""Synthetic CIFAR-10 stand-in.

The paper's DNN experiments train Caffe's ``cifar10_full`` model to 0.8
test accuracy on CIFAR-10 (50,000 train / 10,000 test 3x32x32 images,
10 classes).  CIFAR-10 itself is a download we cannot perform offline,
so this module synthesises a drop-in replacement:

- 10 classes, each defined by a smooth random colour-texture prototype;
- every sample is its class prototype under a random brightness/contrast
  jitter, a small spatial shift, optional horizontal flip, random
  *polarity inversion* (the whole image negated), and pixel noise.

The polarity inversion is what makes the task genuinely non-linear: a
linear classifier cannot score a texture and its negative the same way
(its logit flips sign), so it plateaus near 0.4 accuracy, while a CNN
learns filter pairs for both polarities and reaches the paper's 0.8
target within a few epochs.  Accuracy-vs-epoch curves also show the
larger-batch-needs-more-epochs behaviour the paper tunes against.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

#: Channels x height x width of one image, matching CIFAR-10.
CIFAR_SHAPE: Tuple[int, int, int] = (3, 32, 32)


@dataclass
class ImageDataset:
    """An image classification dataset in (N, C, H, W) layout."""

    x_train: np.ndarray
    y_train: np.ndarray
    x_test: np.ndarray
    y_test: np.ndarray
    n_classes: int

    @property
    def n_train(self) -> int:
        return int(self.x_train.shape[0])

    @property
    def n_test(self) -> int:
        return int(self.x_test.shape[0])

    def batches(self, batch_size: int, *, seed: int = 0):
        """Yield shuffled ``(x, y)`` minibatches covering one epoch."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        rng = np.random.default_rng(seed)
        perm = rng.permutation(self.n_train)
        for start in range(0, self.n_train, batch_size):
            idx = perm[start : start + batch_size]
            yield self.x_train[idx], self.y_train[idx]


def _smooth_noise(
    rng: np.random.Generator, shape: Tuple[int, ...], smoothing: int = 4
) -> np.ndarray:
    """Low-frequency noise: random coarse grid upsampled by repetition."""
    c, h, w = shape
    coarse = rng.standard_normal((c, h // smoothing, w // smoothing))
    return np.repeat(np.repeat(coarse, smoothing, axis=1), smoothing, axis=2)


def synthetic_cifar10(
    n_train: int = 2000,
    n_test: int = 500,
    *,
    n_classes: int = 10,
    image_shape: Tuple[int, int, int] = CIFAR_SHAPE,
    noise: float = 0.35,
    max_shift: int = 3,
    flip_prob: float = 0.35,
    seed: int = 0,
) -> ImageDataset:
    """Generate the synthetic CIFAR-10 replacement.

    Parameters
    ----------
    n_train, n_test:
        Sample counts (the real CIFAR-10 uses 50,000 / 10,000; the
        defaults are sized so a NumPy CNN trains in seconds).
    noise:
        Per-pixel Gaussian noise scale; 0.35 keeps classes separable but
        non-trivial.
    max_shift:
        Maximum spatial jitter in pixels (applied per sample).
    flip_prob:
        Probability of polarity inversion (image negation) per sample;
        the non-linearity that separates CNN from linear performance.
    seed:
        Determinism: same seed, same dataset.
    """
    if not 0.0 <= flip_prob <= 1.0:
        raise ValueError("flip_prob must lie in [0, 1]")
    if n_classes < 2:
        raise ValueError("need at least two classes")
    rng = np.random.default_rng(seed)
    c, h, w = image_shape
    protos = np.stack(
        [_smooth_noise(rng, image_shape) for _ in range(n_classes)]
    )
    # Normalise prototypes to unit RMS so classes are equidistant-ish.
    protos /= np.sqrt((protos**2).mean(axis=(1, 2, 3), keepdims=True))

    def make(n: int, rng: np.random.Generator):
        y = rng.integers(0, n_classes, size=n)
        x = protos[y].copy()
        # brightness / contrast jitter
        contrast = 0.8 + 0.4 * rng.random((n, 1, 1, 1))
        brightness = 0.2 * rng.standard_normal((n, 1, 1, 1))
        x = x * contrast + brightness
        # spatial shift: roll each sample by a small random amount
        if max_shift > 0:
            shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
            for i in range(n):
                x[i] = np.roll(x[i], tuple(shifts[i]), axis=(1, 2))
        # horizontal flip half the time
        flip = rng.random(n) < 0.5
        x[flip] = x[flip, :, :, ::-1]
        # polarity inversion: the anti-linear augmentation
        invert = rng.random(n) < flip_prob
        x[invert] *= -1.0
        x += noise * rng.standard_normal(x.shape)
        return x.astype(np.float32), y.astype(np.int64)

    x_train, y_train = make(n_train, rng)
    x_test, y_test = make(n_test, rng)
    return ImageDataset(
        x_train=x_train,
        y_train=y_train,
        x_test=x_test,
        y_test=y_test,
        n_classes=n_classes,
    )
