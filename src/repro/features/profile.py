"""The influencing-parameter vector (paper Table IV).

Besides the nine values themselves, this module encodes the paper's
documented correlation *signs* between each parameter and each format's
efficiency (the +/-/±/x entries of Table IV).  The rule-based scheduler
consumes the signs; ``benchmarks/test_table4_correlations.py`` verifies
the measurable ones empirically.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, asdict
from typing import Dict, Tuple

#: Field order matching Table IV / Table V columns.
PARAMETER_NAMES: Tuple[str, ...] = (
    "m",
    "n",
    "nnz",
    "ndig",
    "dnnz",
    "mdim",
    "adim",
    "vdim",
    "density",
)


class CorrelationSign(enum.Enum):
    """Table IV cell values."""

    POSITIVE = "+"
    NEGATIVE = "-"
    EITHER = "±"
    UNCORRELATED = "x"


_P = CorrelationSign.POSITIVE
_N = CorrelationSign.NEGATIVE
_E = CorrelationSign.EITHER
_X = CorrelationSign.UNCORRELATED

#: Table IV verbatim: signs[parameter][format].
TABLE_IV_SIGNS: Dict[str, Dict[str, CorrelationSign]] = {
    "m": {"ELL": _E, "CSR": _E, "COO": _E, "DEN": _E, "DIA": _E},
    "n": {"ELL": _X, "CSR": _X, "COO": _X, "DEN": _N, "DIA": _X},
    "nnz": {"ELL": _E, "CSR": _E, "COO": _E, "DEN": _P, "DIA": _E},
    "ndig": {"ELL": _X, "CSR": _X, "COO": _X, "DEN": _X, "DIA": _N},
    "dnnz": {"ELL": _X, "CSR": _X, "COO": _X, "DEN": _P, "DIA": _P},
    "mdim": {"ELL": _N, "CSR": _X, "COO": _X, "DEN": _X, "DIA": _X},
    "adim": {"ELL": _P, "CSR": _X, "COO": _X, "DEN": _P, "DIA": _X},
    "vdim": {"ELL": _N, "CSR": _N, "COO": _P, "DEN": _X, "DIA": _X},
    "density": {"ELL": _E, "CSR": _E, "COO": _E, "DEN": _P, "DIA": _E},
}


@dataclass(frozen=True)
class DatasetProfile:
    """The nine Table IV parameters of one data matrix.

    Attributes
    ----------
    m:
        Number of rows (samples).
    n:
        Number of columns (maximum feature index of all samples).
    nnz:
        Number of stored non-zero elements.
    ndig:
        Number of occupied diagonals.
    dnnz:
        Non-zeros per diagonal, ``nnz / ndig``.
    mdim:
        Maximum non-zeros in a row, ``max_i dim_i``.
    adim:
        Average non-zeros per row, ``nnz / M``.
    vdim:
        Variance of ``dim_i``: ``sum_i (dim_i - adim)^2 / M``.
    density:
        ``nnz / (M * N)``.
    """

    m: int
    n: int
    nnz: int
    ndig: int
    dnnz: float
    mdim: int
    adim: float
    vdim: float
    density: float

    def __post_init__(self) -> None:
        if self.m < 0 or self.n < 0 or self.nnz < 0:
            raise ValueError("m, n, nnz must be non-negative")
        if self.nnz > self.m * self.n:
            raise ValueError("nnz cannot exceed M * N")
        if self.mdim > self.n:
            raise ValueError("mdim cannot exceed N")
        if not (0.0 <= self.density <= 1.0 + 1e-12):
            raise ValueError("density must lie in [0, 1]")

    # -- convenience --------------------------------------------------
    @property
    def balance(self) -> float:
        """``adim / mdim`` in (0, 1]; 1 means perfectly uniform rows.

        The quantity behind ELL fitness: padding waste is
        ``1 - balance`` of the padded array.
        """
        if self.mdim == 0:
            return 1.0
        return self.adim / self.mdim

    @property
    def diag_fill(self) -> float:
        """``dnnz / min(M, N)``: fraction of a padded diagonal that is
        real data.  DIA fitness in one number (Fig. 2's x-axis is its
        reciprocal, scaled)."""
        ld = min(self.m, self.n)
        if ld == 0 or self.ndig == 0:
            return 0.0
        return self.dnnz / ld

    @property
    def cv_dim(self) -> float:
        """Coefficient of variation of row lengths, ``sqrt(vdim)/adim``.

        A scale-free version of vdim used by the CSR-vs-COO rule (Fig. 4
        plots raw vdim, but the decision boundary is scale-free).
        """
        if self.adim == 0:
            return 0.0
        return math.sqrt(self.vdim) / self.adim

    def as_dict(self) -> Dict[str, float]:
        return asdict(self)

    def as_vector(self) -> Tuple[float, ...]:
        """The nine values in canonical PARAMETER_NAMES order."""
        d = self.as_dict()
        return tuple(float(d[k]) for k in PARAMETER_NAMES)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"DatasetProfile(M={self.m}, N={self.n}, nnz={self.nnz}, "
            f"ndig={self.ndig}, dnnz={self.dnnz:.4g}, mdim={self.mdim}, "
            f"adim={self.adim:.4g}, vdim={self.vdim:.4g}, "
            f"density={self.density:.4g})"
        )
