"""Incremental (streaming) profile extraction.

For datasets too large to hold in memory, the nine Table IV parameters
can be accumulated one row-chunk at a time: every statistic is either a
count (M, N, nnz, ndig), a per-row histogram reduction (mdim, adim,
vdim via sum / sum-of-squares of ``dim_i``), or derived (dnnz,
density).  The scheduler can therefore decide the layout after a single
streaming pass over a file — before the matrix is ever materialised in
any format.
"""

from __future__ import annotations

from typing import Optional, Set, Tuple

import numpy as np

from repro.features.profile import DatasetProfile
from repro.formats.base import VALUE_DTYPE


class StreamingProfiler:
    """Accumulates the nine parameters from coordinate chunks.

    Usage::

        prof = StreamingProfiler(n_cols=5000)
        for rows, cols in chunks:       # global row ids, column ids
            prof.update(rows, cols)
        profile = prof.finalize()

    Parameters
    ----------
    n_cols:
        Declared column count; ``None`` infers ``N`` as the maximum
        seen column index + 1 (the paper's definition of N).
    n_rows:
        Declared row count; ``None`` infers ``M`` likewise (rows with
        no non-zeros at the tail would then be missed — declare
        explicitly for exactness).
    """

    def __init__(
        self,
        *,
        n_cols: Optional[int] = None,
        n_rows: Optional[int] = None,
    ) -> None:
        self._n_cols = n_cols
        self._n_rows = n_rows
        self._max_col = -1
        self._max_row = -1
        self._nnz = 0
        # dim_i moments: streaming per-row counts.
        self._row_counts: dict[int, int] = {}
        self._offsets: Set[int] = set()
        self._finalized = False

    def update(self, rows: np.ndarray, cols: np.ndarray) -> None:
        """Fold one chunk of coordinates into the running statistics.

        Chunks may split rows arbitrarily; duplicate coordinates across
        chunks are the caller's responsibility (they would be invalid
        input to any format anyway).
        """
        if self._finalized:
            raise RuntimeError("profiler already finalized")
        rows = np.asarray(rows).ravel()
        cols = np.asarray(cols).ravel()
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have equal length")
        if rows.size == 0:
            return
        if rows.min() < 0 or cols.min() < 0:
            raise ValueError("negative indices")
        self._max_row = max(self._max_row, int(rows.max()))
        self._max_col = max(self._max_col, int(cols.max()))
        self._nnz += int(rows.size)
        uniq, counts = np.unique(rows, return_counts=True)
        for r, c in zip(uniq.tolist(), counts.tolist()):
            self._row_counts[r] = self._row_counts.get(r, 0) + c
        self._offsets.update(
            (cols.astype(np.int64) - rows.astype(np.int64)).tolist()
        )

    @property
    def nnz_so_far(self) -> int:
        return self._nnz

    def finalize(self) -> DatasetProfile:
        """Produce the profile (the profiler stays readable after)."""
        m = self._n_rows if self._n_rows is not None else self._max_row + 1
        n = self._n_cols if self._n_cols is not None else self._max_col + 1
        m = max(m, 0)
        n = max(n, 0)
        if self._max_row >= m or self._max_col >= n:
            raise ValueError("declared shape smaller than seen indices")
        self._finalized = True
        if self._nnz == 0:
            return DatasetProfile(
                m=m, n=n, nnz=0, ndig=0, dnnz=0.0, mdim=0, adim=0.0,
                vdim=0.0, density=0.0,
            )
        counts = np.fromiter(
            self._row_counts.values(), dtype=VALUE_DTYPE,
            count=len(self._row_counts),
        )
        # Rows never seen have dim 0; include them in the moments.
        # Centred formula, bit-identical to the batch extractor's
        # np.mean((dim - adim)**2).
        n_empty = m - counts.shape[0]
        adim = float(counts.sum()) / m
        vdim = (
            float(((counts - adim) ** 2).sum()) + n_empty * adim**2
        ) / m
        ndig = len(self._offsets)
        return DatasetProfile(
            m=m,
            n=n,
            nnz=self._nnz,
            ndig=ndig,
            dnnz=self._nnz / ndig,
            mdim=int(counts.max()),
            adim=adim,
            vdim=max(vdim, 0.0),
            density=self._nnz / (m * n) if m and n else 0.0,
        )
