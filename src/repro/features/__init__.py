"""Dataset statistics — the paper's nine influencing parameters.

Table IV of the paper defines nine parameters of the data matrix that
drive format performance: M, N, nnz, ndig, dnnz, mdim, adim, vdim and
density.  :class:`DatasetProfile` holds them; :func:`extract_profile`
computes them from any :class:`~repro.formats.base.MatrixFormat` (or raw
COO triples) in one O(nnz) pass.
"""

from repro.features.profile import (
    PARAMETER_NAMES,
    CorrelationSign,
    DatasetProfile,
    TABLE_IV_SIGNS,
)
from repro.features.extract import (
    LayoutFeatures,
    extract_profile,
    layout_features,
    layout_features_from_matrix,
    profile_from_coo,
    profile_from_dense,
)
from repro.features.streaming import StreamingProfiler

__all__ = [
    "DatasetProfile",
    "PARAMETER_NAMES",
    "CorrelationSign",
    "TABLE_IV_SIGNS",
    "extract_profile",
    "profile_from_coo",
    "profile_from_dense",
    "LayoutFeatures",
    "layout_features",
    "layout_features_from_matrix",
    "StreamingProfiler",
]
