"""Profile extraction: one O(nnz) pass over any matrix.

This is the runtime component of the scheduler: before training starts,
the adaptive system extracts the nine parameters from the (arbitrary-
format) input and feeds them to the decision system.  Extraction cost is
a single pass over the coordinates — negligible next to even one SMO
iteration, which is what makes *runtime* scheduling viable.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.features.profile import DatasetProfile
from repro.formats.base import VALUE_DTYPE, MatrixFormat, validate_coo


def profile_from_coo(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: Tuple[int, int],
    *,
    validated: bool = False,
) -> DatasetProfile:
    """Compute the nine parameters from coordinate structure.

    Values are irrelevant — every Table IV parameter is structural — so
    only ``rows``/``cols`` are needed.
    """
    if not validated:
        rows, cols, _ = validate_coo(
            rows, cols, np.ones(len(np.asarray(rows).ravel())), shape
        )
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    m, n = int(shape[0]), int(shape[1])
    nnz = int(rows.shape[0])

    if nnz == 0:
        return DatasetProfile(
            m=m, n=n, nnz=0, ndig=0, dnnz=0.0, mdim=0, adim=0.0,
            vdim=0.0, density=0.0,
        )

    dim = np.bincount(rows, minlength=m).astype(VALUE_DTYPE)
    adim = nnz / m
    mdim = int(dim.max())
    vdim = float(np.mean((dim - adim) ** 2))

    offsets = cols.astype(np.int64) - rows.astype(np.int64)
    ndig = int(np.unique(offsets).shape[0])
    dnnz = nnz / ndig

    density = nnz / (m * n) if m and n else 0.0
    return DatasetProfile(
        m=m,
        n=n,
        nnz=nnz,
        ndig=ndig,
        dnnz=dnnz,
        mdim=mdim,
        adim=adim,
        vdim=vdim,
        density=density,
    )


def extract_profile(matrix: MatrixFormat) -> DatasetProfile:
    """Extract the Table IV parameters from any stored format."""
    rows, cols, _values = matrix.to_coo()
    return profile_from_coo(rows, cols, matrix.shape, validated=True)


def profile_from_dense(array: np.ndarray) -> DatasetProfile:
    """Extract the parameters from a dense 2-D array (zeros skipped)."""
    array = np.asarray(array)
    if array.ndim != 2:
        raise ValueError("expected a 2-D array")
    rows, cols = np.nonzero(array)
    return profile_from_coo(rows, cols, array.shape, validated=True)
