"""Profile extraction: one O(nnz) pass over any matrix.

This is the runtime component of the scheduler: before training starts,
the adaptive system extracts the nine parameters from the (arbitrary-
format) input and feeds them to the decision system.  Extraction cost is
a single pass over the coordinates — negligible next to even one SMO
iteration, which is what makes *runtime* scheduling viable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.features.profile import DatasetProfile
from repro.formats.base import VALUE_DTYPE, MatrixFormat, validate_coo


def profile_from_coo(
    rows: np.ndarray,
    cols: np.ndarray,
    shape: Tuple[int, int],
    *,
    validated: bool = False,
) -> DatasetProfile:
    """Compute the nine parameters from coordinate structure.

    Values are irrelevant — every Table IV parameter is structural — so
    only ``rows``/``cols`` are needed.
    """
    if not validated:
        rows, cols, _ = validate_coo(
            rows, cols, np.ones(len(np.asarray(rows).ravel())), shape
        )
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    m, n = int(shape[0]), int(shape[1])
    nnz = int(rows.shape[0])

    if nnz == 0:
        return DatasetProfile(
            m=m, n=n, nnz=0, ndig=0, dnnz=0.0, mdim=0, adim=0.0,
            vdim=0.0, density=0.0,
        )

    dim = np.bincount(rows, minlength=m).astype(VALUE_DTYPE)
    adim = nnz / m
    mdim = int(dim.max())
    vdim = float(np.mean((dim - adim) ** 2))

    offsets = cols.astype(np.int64) - rows.astype(np.int64)
    ndig = int(np.unique(offsets).shape[0])
    dnnz = nnz / ndig

    density = nnz / (m * n) if m and n else 0.0
    return DatasetProfile(
        m=m,
        n=n,
        nnz=nnz,
        ndig=ndig,
        dnnz=dnnz,
        mdim=mdim,
        adim=adim,
        vdim=vdim,
        density=density,
    )


def extract_profile(matrix: MatrixFormat) -> DatasetProfile:
    """Extract the Table IV parameters from any stored format."""
    rows, cols, _values = matrix.to_coo()
    return profile_from_coo(rows, cols, matrix.shape, validated=True)


def profile_from_dense(array: np.ndarray) -> DatasetProfile:
    """Extract the parameters from a dense 2-D array (zeros skipped)."""
    array = np.asarray(array)
    if array.ndim != 2:
        raise ValueError("expected a 2-D array")
    rows, cols = np.nonzero(array)
    return profile_from_coo(rows, cols, array.shape, validated=True)


# -- layout features (PR 4) -------------------------------------------
#
# The nine canonical parameters stay exactly the paper's; the padding
# features below are *derived* quantities the SELL/reordering machinery
# consumes (and the bench reports).  They are deliberately kept out of
# DatasetProfile so decision-cache keys and the Table IV canon are
# untouched.


@dataclass(frozen=True)
class LayoutFeatures:
    """Row-length-variance and padding-ratio features of one matrix.

    All ratios are padded-storage over nnz (1.0 = no padding, i.e. the
    layout stores exactly the non-zeros); ``inf``-free by construction
    (an all-zero matrix reports 1.0 everywhere).

    Attributes
    ----------
    row_nnz_variance:
        Population variance of the row lengths (``vdim``).
    row_nnz_cv:
        Coefficient of variation ``sqrt(vdim) / adim`` (0 for empty).
    ell_padding_ratio:
        ``M * mdim / nnz`` — what plain ELL pays.
    sell_padding_ratio:
        Per-slice padding of SELL-C over rows in natural order.
    sell_sorted_padding_ratio:
        Per-slice padding after the sigma-window descending sort —
        what RSELL (SELL-C-sigma) actually stores.  The gap between
        the last two is the value of reordering.
    """

    row_nnz_variance: float
    row_nnz_cv: float
    ell_padding_ratio: float
    sell_padding_ratio: float
    sell_sorted_padding_ratio: float


def _sell_padded_count(lengths: np.ndarray, chunk: int) -> int:
    m = lengths.shape[0]
    n_slices = -(-m // chunk) if m else 0
    if n_slices == 0:
        return 0
    padded = np.zeros(n_slices * chunk, dtype=np.int64)
    padded[:m] = lengths
    widths = padded.reshape(n_slices, chunk).max(axis=1)
    heights = np.minimum(chunk, m - chunk * np.arange(n_slices))
    return int((widths * heights).sum())


def layout_features(
    row_lengths: np.ndarray,
    *,
    chunk: int = 8,
    sigma: Optional[int] = None,
) -> LayoutFeatures:
    """Padding features of a row-length distribution.

    ``chunk`` is the SELL slice height C; ``sigma`` the sort-window
    size (None = global sort), matching
    :func:`repro.formats.reorder.sigma_window_permutation`.
    """
    lengths = np.asarray(row_lengths, dtype=np.int64)
    if np.any(lengths < 0):
        raise ValueError("row lengths must be non-negative")
    if chunk < 1:
        raise ValueError("chunk must be >= 1")
    m = lengths.shape[0]
    nnz = int(lengths.sum())
    mdim = int(lengths.max()) if m else 0
    adim = nnz / m if m else 0.0
    vdim = float(np.mean((lengths - adim) ** 2)) if m else 0.0
    cv = float(np.sqrt(vdim) / adim) if adim > 0 else 0.0
    if nnz == 0:
        return LayoutFeatures(
            row_nnz_variance=vdim,
            row_nnz_cv=cv,
            ell_padding_ratio=1.0,
            sell_padding_ratio=1.0,
            sell_sorted_padding_ratio=1.0,
        )
    if sigma is None:
        sigma = max(m, 1)
    if sigma < 1:
        raise ValueError("sigma must be >= 1")
    window = np.arange(m, dtype=np.int64) // int(sigma)
    order = np.lexsort((np.arange(m, dtype=np.int64), -lengths, window))
    return LayoutFeatures(
        row_nnz_variance=vdim,
        row_nnz_cv=cv,
        ell_padding_ratio=m * mdim / nnz,
        sell_padding_ratio=_sell_padded_count(lengths, chunk) / nnz,
        sell_sorted_padding_ratio=(
            _sell_padded_count(lengths[order], chunk) / nnz
        ),
    )


def layout_features_from_matrix(
    matrix: MatrixFormat,
    *,
    chunk: int = 8,
    sigma: Optional[int] = None,
) -> LayoutFeatures:
    """Layout features of any stored format (one O(nnz) pass)."""
    lengths = getattr(matrix, "row_lengths", None)
    if lengths is None:
        rows, _, _ = matrix.to_coo()
        lengths = np.bincount(rows, minlength=matrix.shape[0])
    return layout_features(
        np.asarray(lengths, dtype=np.int64), chunk=chunk, sigma=sigma
    )
