"""Runtime format sanitizer: structural invariants, checked on demand.

Every storage format keeps invariants the kernels rely on but never
re-verify (they sit on the hot path): CSR's row pointer is monotone
with canonical endpoints, COO triples are row-major sorted and
duplicate-free, ELL padding slots hold exactly ``(0.0, index 0)`` and
no row exceeds the padded width, DIA offsets stay inside ``(-M, N)``
with zeroed out-of-span slots, and all payloads stay
``VALUE_DTYPE``/``INDEX_DTYPE``.  This module makes those invariants
checkable:

- :func:`check_format` validates one matrix and raises
  :class:`FormatInvariantError` with a precise diagnostic;
- :func:`sanitize_format` additionally wraps the matrix in a
  :class:`SanitizedMatrix` proxy that re-validates before every
  operation — the tool for debugging suspected corruption;
- setting ``REPRO_SANITIZE=1`` makes every format constructor validate
  itself (via ``MatrixFormat._sanitize_check``), which is how CI runs
  the whole test suite under sanitisation.

Checks dispatch on the format's ``name`` attribute rather than its
class, so this module never imports the format submodules and cannot
create an import cycle with :mod:`repro.formats.base`.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.formats.base import (
    INDEX_DTYPE,
    VALUE_DTYPE,
    MatrixFormat,
    SparseVector,
    validate_coo,
)
from repro.perf.counters import OpCounter


class FormatInvariantError(ValueError):
    """A storage format violated one of its structural invariants."""


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` asks for construction-time checks."""
    raw = os.environ.get("REPRO_SANITIZE", "")
    return raw.strip().lower() not in ("", "0", "false", "no", "off")


# -- per-format checkers ----------------------------------------------


def _check_dtype(
    label: str, arr: np.ndarray, expected: np.dtype
) -> List[str]:
    if arr.dtype != np.dtype(expected):
        return [
            f"{label} has dtype {arr.dtype}, expected "
            f"{np.dtype(expected)}"
        ]
    return []


def _check_index_range(
    label: str, arr: np.ndarray, upper: int
) -> List[str]:
    if arr.size == 0:
        return []
    lo, hi = int(arr.min()), int(arr.max())
    if lo < 0 or hi >= upper:
        return [
            f"{label} out of range: values span [{lo}, {hi}], "
            f"valid range is [0, {upper})"
        ]
    return []


def _check_csr(m: MatrixFormat) -> List[str]:
    rows, cols = m.shape
    v: List[str] = []
    v += _check_dtype("values", m.values, VALUE_DTYPE)
    v += _check_dtype("col_idx", m.col_idx, INDEX_DTYPE)
    ptr = m.row_ptr
    if ptr.shape != (rows + 1,):
        return v + [
            f"row_ptr has shape {ptr.shape}, expected ({rows + 1},)"
        ]
    if ptr[0] != 0 or ptr[-1] != m.values.shape[0]:
        v.append(
            f"row_ptr endpoints ({int(ptr[0])}, {int(ptr[-1])}) "
            f"inconsistent with nnz={m.values.shape[0]}"
        )
    diffs = np.diff(ptr)
    bad = np.nonzero(diffs < 0)[0]
    if bad.size:
        v.append(
            f"row_ptr not monotonically non-decreasing at row "
            f"{int(bad[0])} ({int(ptr[bad[0]])} -> "
            f"{int(ptr[bad[0] + 1])})"
        )
        return v  # row segmentation is meaningless past this point
    v += _check_index_range("col_idx", m.col_idx, cols)
    if m.col_idx.size > 1:
        d = np.diff(m.col_idx.astype(np.int64))
        boundary = np.zeros(d.shape[0], dtype=bool)
        ends = ptr[1:-1].astype(np.int64) - 1
        ends = ends[(ends >= 0) & (ends < d.shape[0])]
        boundary[ends] = True
        bad_col = np.nonzero((d <= 0) & ~boundary)[0]
        if bad_col.size:
            v.append(
                f"col_idx not strictly increasing within a row at "
                f"position {int(bad_col[0])}"
            )
    return v


def _check_csc(m: MatrixFormat) -> List[str]:
    rows, cols = m.shape
    v: List[str] = []
    v += _check_dtype("values", m.values, VALUE_DTYPE)
    v += _check_dtype("row_idx", m.row_idx, INDEX_DTYPE)
    ptr = m.col_ptr
    if ptr.shape != (cols + 1,):
        return v + [
            f"col_ptr has shape {ptr.shape}, expected ({cols + 1},)"
        ]
    if ptr[0] != 0 or ptr[-1] != m.values.shape[0]:
        v.append(
            f"col_ptr endpoints ({int(ptr[0])}, {int(ptr[-1])}) "
            f"inconsistent with nnz={m.values.shape[0]}"
        )
    diffs = np.diff(ptr)
    bad = np.nonzero(diffs < 0)[0]
    if bad.size:
        v.append(
            f"col_ptr not monotonically non-decreasing at column "
            f"{int(bad[0])}"
        )
        return v
    v += _check_index_range("row_idx", m.row_idx, rows)
    return v


def _check_coo(m: MatrixFormat) -> List[str]:
    rows_n, cols_n = m.shape
    v: List[str] = []
    v += _check_dtype("values", m.values, VALUE_DTYPE)
    v += _check_dtype("rows", m.rows, INDEX_DTYPE)
    v += _check_dtype("cols", m.cols, INDEX_DTYPE)
    if not (m.rows.shape == m.cols.shape == m.values.shape):
        return v + [
            f"triple arrays disagree in length: rows={m.rows.shape}, "
            f"cols={m.cols.shape}, values={m.values.shape}"
        ]
    v += _check_index_range("rows", m.rows, rows_n)
    v += _check_index_range("cols", m.cols, cols_n)
    if m.rows.size > 1:
        dr = np.diff(m.rows.astype(np.int64))
        dc = np.diff(m.cols.astype(np.int64))
        if np.any(dr < 0):
            v.append(
                f"coordinates not row-major sorted at position "
                f"{int(np.nonzero(dr < 0)[0][0])}"
            )
        else:
            dup_or_unsorted = np.nonzero((dr == 0) & (dc <= 0))[0]
            if dup_or_unsorted.size:
                k = int(dup_or_unsorted[0])
                kind = (
                    "duplicate coordinate"
                    if dc[k] == 0
                    else "columns unsorted within a row"
                )
                v.append(f"{kind} at position {k}")
    return v


def _check_ell(m: MatrixFormat) -> List[str]:
    rows_n, cols_n = m.shape
    v: List[str] = []
    v += _check_dtype("data", m.data, VALUE_DTYPE)
    v += _check_dtype("indices", m.indices, INDEX_DTYPE)
    if m.data.ndim != 2 or m.data.shape != m.indices.shape:
        return v + [
            f"data {m.data.shape} and indices {m.indices.shape} must "
            f"be 2-D with equal shape"
        ]
    if m.data.shape[0] != rows_n:
        return v + [
            f"data has {m.data.shape[0]} rows, shape says {rows_n}"
        ]
    width = m.data.shape[1]
    lengths = m.row_lengths
    if lengths.shape != (rows_n,):
        return v + [
            f"row_lengths has shape {lengths.shape}, expected "
            f"({rows_n},)"
        ]
    too_long = np.nonzero(lengths > width)[0]
    if too_long.size:
        v.append(
            f"row_lengths[{int(too_long[0])}] = "
            f"{int(lengths[too_long[0]])} exceeds padded width (mdim) "
            f"{width}"
        )
        return v
    if np.any(lengths < 0):
        v.append("row_lengths contains negative entries")
        return v
    if width:
        pad = np.arange(width)[None, :] >= lengths[:, None]
        bad_val = np.nonzero(pad & (m.data != 0.0))
        if bad_val[0].size:
            i, j = int(bad_val[0][0]), int(bad_val[1][0])
            v.append(
                f"padding slot data[{i}, {j}] holds non-zero value "
                f"{m.data[i, j]!r} (padding must be 0.0)"
            )
        bad_idx = np.nonzero(pad & (m.indices != 0))
        if bad_idx[0].size:
            i, j = int(bad_idx[0][0]), int(bad_idx[1][0])
            v.append(
                f"padding slot indices[{i}, {j}] holds column "
                f"{int(m.indices[i, j])} (padding must be index 0)"
            )
        valid = ~pad
        if valid.any():
            v += _check_index_range(
                "indices (valid region)", m.indices[valid], cols_n
            )
    return v


def _check_sell(m: MatrixFormat) -> List[str]:
    rows_n, cols_n = m.shape
    v: List[str] = []
    v += _check_dtype("data", m.data, VALUE_DTYPE)
    v += _check_dtype("indices", m.indices, INDEX_DTYPE)
    if m.data.ndim != 1 or m.data.shape != m.indices.shape:
        return v + [
            f"data {m.data.shape} and indices {m.indices.shape} must "
            f"be flat with equal length"
        ]
    lengths = m.row_lengths
    if lengths.shape != (rows_n,):
        return v + [
            f"row_lengths has shape {lengths.shape}, expected "
            f"({rows_n},)"
        ]
    if np.any(lengths < 0):
        return v + ["row_lengths contains negative entries"]
    C = int(m.chunk)
    if C < 1:
        return v + [f"chunk must be >= 1, got {C}"]
    # Tight slice widths: each slice padded exactly to its own longest
    # row (recomputed here rather than trusted from the instance).
    n_slices = -(-rows_n // C) if rows_n else 0
    padded_len = np.zeros(n_slices * C, dtype=np.int64)
    padded_len[:rows_n] = lengths
    widths = (
        padded_len.reshape(n_slices, C).max(axis=1)
        if n_slices
        else np.zeros(0, dtype=np.int64)
    )
    if not np.array_equal(np.asarray(m.slice_widths), widths):
        v.append(
            "slice_widths not tight against row_lengths "
            f"(expected {widths.tolist()}, got "
            f"{np.asarray(m.slice_widths).tolist()})"
        )
        return v
    widths_per_row = (
        np.repeat(widths, C)[:rows_n]
        if rows_n
        else np.zeros(0, dtype=np.int64)
    )
    starts = np.zeros(rows_n + 1, dtype=np.int64)
    np.cumsum(widths_per_row, out=starts[1:])
    if m.data.shape[0] != int(starts[-1]):
        return v + [
            f"data length {m.data.shape[0]} inconsistent with slice "
            f"widths (expected {int(starts[-1])})"
        ]
    total = m.data.shape[0]
    if total:
        row_of_flat = np.repeat(
            np.arange(rows_n, dtype=np.int64), widths_per_row
        )
        pos = np.arange(total, dtype=np.int64) - starts[row_of_flat]
        pad = pos >= lengths[row_of_flat]
        bad_val = np.nonzero(pad & (m.data != 0.0))[0]
        if bad_val.size:
            j = int(bad_val[0])
            v.append(
                f"padding slot data[{j}] holds non-zero value "
                f"{m.data[j]!r} (padding must be 0.0)"
            )
        bad_idx = np.nonzero(pad & (m.indices != 0))[0]
        if bad_idx.size:
            j = int(bad_idx[0])
            v.append(
                f"padding slot indices[{j}] holds column "
                f"{int(m.indices[j])} (padding must be index 0)"
            )
        valid = ~pad
        if valid.any():
            v += _check_index_range(
                "indices (valid region)", m.indices[valid], cols_n
            )
            cols = m.indices[valid].astype(np.int64)
            if cols.size > 1:
                csr_starts = np.zeros(rows_n + 1, dtype=np.int64)
                np.cumsum(lengths, out=csr_starts[1:])
                d = np.diff(cols)
                boundary = np.zeros(d.shape[0], dtype=bool)
                ends = csr_starts[1:-1] - 1
                ends = ends[(ends >= 0) & (ends < d.shape[0])]
                boundary[ends] = True
                bad_col = np.nonzero((d <= 0) & ~boundary)[0]
                if bad_col.size:
                    v.append(
                        f"columns not strictly increasing within a row "
                        f"at compressed position {int(bad_col[0])}"
                    )
    return v


def _check_permuted(m: MatrixFormat) -> List[str]:
    rows_n, _ = m.shape
    v: List[str] = []
    perm = np.asarray(m.perm)
    if perm.shape != (rows_n,):
        return v + [
            f"perm has shape {perm.shape}, expected ({rows_n},)"
        ]
    if rows_n and not np.array_equal(
        np.sort(perm.astype(np.int64)), np.arange(rows_n)
    ):
        return v + ["perm is not a permutation of 0..M-1"]
    inv = np.asarray(m.inv_perm)
    if rows_n and not np.array_equal(
        inv.astype(np.int64)[perm.astype(np.int64)], np.arange(rows_n)
    ):
        v.append("inv_perm is not the inverse of perm")
    if tuple(m.stored.shape) != tuple(m.shape):
        v.append(
            f"stored matrix shape {m.stored.shape} disagrees with "
            f"wrapper shape {m.shape}"
        )
        return v
    # Structural pass on the wrapped core, prefixed for attribution.
    checker = _CHECKERS.get(getattr(m.stored, "name", ""))
    if checker is not None:
        v += [f"stored {m.stored.name}: {text}" for text in checker(m.stored)]
    return v


def _check_dia(m: MatrixFormat) -> List[str]:
    rows_n, cols_n = m.shape
    ldiag = min(rows_n, cols_n)
    v: List[str] = []
    v += _check_dtype("data", m.data, VALUE_DTYPE)
    offs = m.offsets
    if offs.ndim != 1:
        return v + ["offsets must be 1-D"]
    if m.data.shape != (offs.shape[0], ldiag):
        return v + [
            f"data has shape {m.data.shape}, expected "
            f"(ndig, min(M, N)) = ({offs.shape[0]}, {ldiag})"
        ]
    if offs.size > 1 and np.any(np.diff(offs) <= 0):
        v.append("offsets not strictly increasing")
    if offs.size:
        lo, hi = int(offs.min()), int(offs.max())
        if lo <= -rows_n or hi >= cols_n:
            v.append(
                f"diagonal offset out of bounds: offsets span "
                f"[{lo}, {hi}], valid range is ({-rows_n}, {cols_n})"
            )
            return v
        i0 = np.maximum(0, -offs.astype(np.int64))
        i1 = np.minimum(rows_n, cols_n - offs.astype(np.int64))
        span = np.maximum(0, i1 - i0)
        if ldiag:
            outside = np.arange(ldiag)[None, :] >= span[:, None]
            bad = np.nonzero(outside & (m.data != 0.0))
            if bad[0].size:
                k, t = int(bad[0][0]), int(bad[1][0])
                v.append(
                    f"out-of-span slot data[{k}, {t}] of diagonal "
                    f"offset {int(offs[k])} holds non-zero value "
                    f"{m.data[k, t]!r}"
                )
    return v


def _check_den(m: MatrixFormat) -> List[str]:
    v: List[str] = []
    v += _check_dtype("array", m.array, VALUE_DTYPE)
    if m.array.ndim != 2:
        return v + [f"array must be 2-D, got ndim={m.array.ndim}"]
    if tuple(m.array.shape) != tuple(m.shape):
        v.append(
            f"array shape {m.array.shape} disagrees with declared "
            f"shape {m.shape}"
        )
    return v


def _check_bcsr(m: MatrixFormat) -> List[str]:
    rows_n, cols_n = m.shape
    br, bc = m.block_shape
    v: List[str] = []
    v += _check_dtype("block_data", m.block_data, VALUE_DTYPE)
    v += _check_dtype("block_col", m.block_col, INDEX_DTYPE)
    n_brows = -(-rows_n // br) if br else 0
    n_bcols = -(-cols_n // bc) if bc else 0
    if m.block_data.ndim != 3 or m.block_data.shape[1:] != (br, bc):
        return v + [
            f"block_data has shape {m.block_data.shape}, expected "
            f"(n_blocks, {br}, {bc})"
        ]
    ptr = m.block_ptr
    if ptr.shape != (n_brows + 1,):
        return v + [
            f"block_ptr has shape {ptr.shape}, expected "
            f"({n_brows + 1},)"
        ]
    if ptr[0] != 0 or ptr[-1] != m.block_col.shape[0]:
        v.append(
            f"block_ptr endpoints ({int(ptr[0])}, {int(ptr[-1])}) "
            f"inconsistent with n_blocks={m.block_col.shape[0]}"
        )
    if np.any(np.diff(ptr) < 0):
        v.append("block_ptr not monotonically non-decreasing")
        return v
    v += _check_index_range("block_col", m.block_col, n_bcols)
    return v


_CHECKERS: Dict[str, Callable[[MatrixFormat], List[str]]] = {
    "CSR": _check_csr,
    "CSC": _check_csc,
    "COO": _check_coo,
    "ELL": _check_ell,
    "DIA": _check_dia,
    "DEN": _check_den,
    "BCSR": _check_bcsr,
    "SELL": _check_sell,
    "RCSR": _check_permuted,
    "RELL": _check_permuted,
    "RSELL": _check_permuted,
    "PERM": _check_permuted,
}


def _check_roundtrip(m: MatrixFormat) -> List[str]:
    """Deep check: the logical matrix survives a COO round trip."""
    try:
        # Several to_coo implementations validate internally, so a
        # corrupt matrix may raise here rather than emit bad triples.
        rows, cols, values = m.to_coo()
        validate_coo(rows, cols, values, m.shape)
    except ValueError as exc:
        return [f"to_coo emitted non-canonical triples: {exc}"]
    try:
        rebuilt = type(m).from_coo(rows, cols, values, m.shape)
    except ValueError as exc:
        return [f"from_coo rejected its own to_coo output: {exc}"]
    r2, c2, v2 = rebuilt.to_coo()
    if not (
        np.array_equal(rows, r2)
        and np.array_equal(cols, c2)
        and np.array_equal(values, v2)
    ):
        return [
            f"COO round trip does not conserve the logical matrix "
            f"({values.shape[0]} stored triples -> {v2.shape[0]})"
        ]
    if not np.isclose(m.density, rebuilt.density):
        return [
            f"density not conserved by round trip: {m.density!r} -> "
            f"{rebuilt.density!r}"
        ]
    return []


def format_violations(
    matrix: MatrixFormat, *, deep: bool = False
) -> List[str]:
    """All invariant violations of ``matrix`` (empty list = healthy).

    ``deep=True`` adds the O(nnz log nnz) COO round-trip conservation
    check on top of the structural pass.
    """
    inner = getattr(matrix, "inner", matrix)
    name = getattr(inner, "name", type(inner).__name__)
    violations: List[str] = []
    m, n = inner.shape
    if m < 0 or n < 0:
        violations.append(f"negative shape {inner.shape}")
    checker = _CHECKERS.get(name)
    if checker is not None:
        violations.extend(checker(inner))
    if deep and not violations:
        violations.extend(_check_roundtrip(inner))
    return [f"{name}: {text}" for text in violations]


def check_format(matrix: MatrixFormat, *, deep: bool = False) -> None:
    """Raise :class:`FormatInvariantError` if any invariant is broken."""
    violations = format_violations(matrix, deep=deep)
    if violations:
        raise FormatInvariantError("; ".join(violations))


# -- the per-operation wrapper ----------------------------------------


class SanitizedMatrix(MatrixFormat):
    """Proxy that re-validates the wrapped format before every operation.

    The wrapped matrix is checked deeply at wrap time and structurally
    before each kernel call, and kernel outputs are themselves checked
    for shape/dtype.  Use for debugging suspected in-place corruption;
    the overhead is a small constant factor over the kernel itself.
    """

    name = "SANITIZED"

    def __init__(self, inner: MatrixFormat, *, deep: bool = True) -> None:
        if isinstance(inner, SanitizedMatrix):
            inner = inner.inner
        check_format(inner, deep=deep)
        self.inner = inner
        self.shape = inner.shape
        # Shadow the ClassVar so the proxy is transparent to callers
        # that dispatch on the paper name (e.g. the scheduler).
        self.name = inner.name

    @classmethod
    def from_coo(
        cls,
        rows: np.ndarray,
        cols: np.ndarray,
        values: np.ndarray,
        shape: Tuple[int, int],
    ) -> "SanitizedMatrix":
        raise TypeError(
            "SanitizedMatrix wraps an existing matrix; build the "
            "concrete format first and call sanitize_format() on it"
        )

    def _recheck(self) -> None:
        check_format(self.inner)

    def _check_vector(self, y: np.ndarray, op: str) -> np.ndarray:
        if y.shape != (self.shape[0],):
            raise FormatInvariantError(
                f"{self.name}: {op} returned shape {y.shape}, "
                f"expected ({self.shape[0]},)"
            )
        if y.dtype != np.dtype(VALUE_DTYPE):
            raise FormatInvariantError(
                f"{self.name}: {op} returned dtype {y.dtype}, "
                f"expected {np.dtype(VALUE_DTYPE)}"
            )
        return y

    # -- delegated interface ------------------------------------------
    def to_coo(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        self._recheck()
        return self.inner.to_coo()

    @property
    def nnz(self) -> int:
        return self.inner.nnz

    def storage_elements(self) -> int:
        return self.inner.storage_elements()

    def _backing_arrays(self) -> Tuple[np.ndarray, ...]:
        return self.inner._backing_arrays()

    def matvec(
        self, x: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        self._recheck()
        return self._check_vector(
            self.inner.matvec(x, counter), "matvec"
        )

    def smsv(
        self, v: SparseVector, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        self._recheck()
        return self._check_vector(self.inner.smsv(v, counter), "smsv")

    def _check_block(self, Y: np.ndarray, k: int, op: str) -> np.ndarray:
        if Y.shape != (self.shape[0], k):
            raise FormatInvariantError(
                f"{self.name}: {op} returned shape {Y.shape}, "
                f"expected ({self.shape[0]}, {k})"
            )
        if Y.dtype != np.dtype(VALUE_DTYPE):
            raise FormatInvariantError(
                f"{self.name}: {op} returned dtype {Y.dtype}, "
                f"expected {np.dtype(VALUE_DTYPE)}"
            )
        return Y

    def matmat(
        self, V: np.ndarray, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        self._recheck()
        k = int(np.asarray(V).shape[1]) if np.asarray(V).ndim == 2 else -1
        return self._check_block(
            self.inner.matmat(V, counter), k, "matmat"
        )

    def smsv_multi(
        self, vectors, counter: Optional[OpCounter] = None
    ) -> np.ndarray:
        self._recheck()
        vectors = list(vectors)
        return self._check_block(
            self.inner.smsv_multi(vectors, counter),
            len(vectors),
            "smsv_multi",
        )

    def row(self, i: int) -> SparseVector:
        self._recheck()
        out = self.inner.row(i)
        if out.length != self.shape[1]:
            raise FormatInvariantError(
                f"{self.name}: row({i}) has length {out.length}, "
                f"expected {self.shape[1]}"
            )
        return out

    def row_norms_sq(self) -> np.ndarray:
        self._recheck()
        out = self.inner.row_norms_sq()
        if out.shape != (self.shape[0],):
            raise FormatInvariantError(
                f"{self.name}: row_norms_sq returned shape "
                f"{out.shape}, expected ({self.shape[0]},)"
            )
        return out

    def transpose(self) -> "SanitizedMatrix":
        self._recheck()
        return SanitizedMatrix(self.inner.transpose(), deep=False)


def sanitize_format(
    matrix: MatrixFormat, *, deep: bool = True
) -> SanitizedMatrix:
    """Validate ``matrix`` and wrap it so every later use re-validates.

    Raises :class:`FormatInvariantError` immediately if the matrix is
    already corrupt.  Used by ``repro train --sanitize`` and by tests
    that want hard guarantees around a suspect code path.
    """
    return SanitizedMatrix(matrix, deep=deep)
