"""Runtime lockset sanitizer: ``REPRO_RACE=1`` (the dynamic half of RDL009).

The static rules (RDL009–RDL012) prove lock *discipline* from source;
this module checks the same property at runtime, the way
``REPRO_SANITIZE=1`` checks format invariants and ``REPRO_TRACE=1``
records spans.  The algorithm is a simplified Eraser-style lockset
check:

* :func:`make_lock` hands out :class:`TrackedLock` wrappers (plain
  ``threading.Lock`` objects when the sanitizer is off) that maintain a
  per-thread set of currently held locks.
* :func:`track_shared` registers named attributes of an object for
  monitoring.  Tracked attributes become data descriptors, so every
  read and write records an ``(thread, lockset, read/write)`` event —
  call sites need no instrumentation at all.
* Two accesses to the same field from different threads, at least one
  of them a write, holding **disjoint** locksets, are a potential data
  race and produce a :class:`RaceReport` in a bounded buffer.

Zero-cost-when-disabled contract (the same bargain the tracer makes,
gated by ``repro bench obs``): with ``REPRO_RACE`` unset,
:func:`make_lock` returns an ordinary ``threading.Lock`` and
:func:`track_shared` returns its argument untouched — no wrapper
types, no descriptors, nothing on any hot path.

Locks created *before* a sanitizer is enabled are plain locks and
invisible to it; the env var is therefore read once at import, matching
the tracer's process-level switch.  Tests that need a live sanitizer
without the env var construct a private :class:`RaceSanitizer` and call
its ``make_lock``/``track`` methods directly.
"""

from __future__ import annotations

import os
import threading
from collections import deque
from dataclasses import dataclass
from typing import (
    Any,
    Deque,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Sequence,
    Tuple,
    Type,
)


def race_enabled() -> bool:
    """Whether ``REPRO_RACE`` asks for the lockset sanitizer.

    Mirrors :func:`repro.analysis.sanitize.sanitize_enabled`: empty,
    ``0``, ``false``, ``no`` and ``off`` (any case) mean disabled;
    anything else enables.
    """
    flag = os.environ.get("REPRO_RACE", "")
    return flag.strip().lower() not in ("", "0", "false", "no", "off")


class RaceError(AssertionError):
    """Raised by :func:`assert_race_clean` when reports are pending."""


@dataclass(frozen=True)
class Access:
    """One recorded read or write of a tracked field."""

    field: str
    thread_id: int
    thread_name: str
    write: bool
    lockset: FrozenSet[int]
    lock_names: Tuple[str, ...]

    def render(self) -> str:
        kind = "write" if self.write else "read"
        held = ", ".join(self.lock_names) if self.lock_names else "no locks"
        return f"{kind} by {self.thread_name!r} holding {{{held}}}"


@dataclass(frozen=True)
class RaceReport:
    """Two conflicting accesses to one field under disjoint locksets."""

    field: str
    first: Access
    second: Access

    def render(self) -> str:
        return (
            f"data race on {self.field}: {self.first.render()} vs "
            f"{self.second.render()}"
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "field": self.field,
            "first": self.first.render(),
            "second": self.second.render(),
        }


class TrackedLock:
    """A ``threading.Lock`` that maintains the holder's lockset.

    API-compatible with the subset of ``threading.Lock`` the repo uses
    (context manager, ``acquire``/``release``, ``locked``), so modules
    can swap it in via :func:`make_lock` without any other change.
    """

    __slots__ = ("name", "_lock", "_sanitizer")

    def __init__(self, name: str, sanitizer: "RaceSanitizer") -> None:
        self.name = name
        self._lock = threading.Lock()
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        ok = self._lock.acquire(blocking, timeout)
        if ok:
            self._sanitizer._push(self)
        return ok

    def release(self) -> None:
        # Drop from the holder's lockset first: the set is thread-local,
        # so the order only matters for *this* thread's later events.
        self._sanitizer._pop(self)
        self._lock.release()

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> "TrackedLock":
        self.acquire()
        return self

    def __exit__(self, *exc: object) -> bool:
        self.release()
        return False


class RaceSanitizer:
    """Records tracked-field accesses and flags disjoint-lockset pairs.

    Parameters
    ----------
    enabled:
        Off by default; the module-level instance reads ``REPRO_RACE``.
    history:
        Accesses remembered per field (the comparison window).  Small
        on purpose: a race needs two *temporally close* conflicting
        accesses, and a bounded window keeps long runs memory-flat.
    max_reports:
        Ring-buffer capacity for findings; one report per field is
        kept (the first), so this bounds distinct racy fields.
    """

    def __init__(
        self,
        *,
        enabled: bool = False,
        history: int = 64,
        max_reports: int = 256,
    ) -> None:
        if history < 2:
            raise ValueError("history must be >= 2")
        if max_reports < 1:
            raise ValueError("max_reports must be >= 1")
        self.enabled = bool(enabled)
        self.history = history
        self._tls = threading.local()
        # A plain lock on purpose: the sanitizer's own bookkeeping must
        # never feed back into the locksets it is checking.
        self._guard = threading.Lock()
        self._events: Dict[Tuple[int, str], Deque[Access]] = {}
        self._labels_reported: set = set()
        self._reports: Deque[RaceReport] = deque(maxlen=max_reports)
        self._tracked_classes: Dict[Tuple[type, Tuple[str, ...]], type] = {}

    # -- lockset maintenance ----------------------------------------------
    def _locks(self) -> List[TrackedLock]:
        held = getattr(self._tls, "held", None)
        if held is None:
            held = []
            self._tls.held = held
        return held

    def _push(self, lock: TrackedLock) -> None:
        self._locks().append(lock)

    def _pop(self, lock: TrackedLock) -> None:
        held = self._locks()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    def current_lockset(self) -> Tuple[str, ...]:
        """Names of the tracked locks the calling thread holds."""
        return tuple(lk.name for lk in self._locks())

    # -- lock / field registration ----------------------------------------
    def make_lock(self, name: str):
        """A lock participating in lockset tracking (plain when off)."""
        if not self.enabled:
            return threading.Lock()
        return TrackedLock(name, self)

    def track(self, obj: Any, fields: Iterable[str]) -> Any:
        """Monitor ``fields`` of ``obj``; returns ``obj`` (no-op when off).

        Enabled mode swaps the instance's class for a cached subclass
        whose tracked fields are data descriptors recording every
        read/write.  Existing values stay in the instance ``__dict__``
        (the descriptors read and write it directly), so behaviour is
        unchanged apart from the recording.
        """
        if not self.enabled:
            return obj
        names = tuple(sorted(set(fields)))
        cls = type(obj)
        if getattr(cls, "_repro_race_base", None) is not None:
            cls = cls._repro_race_base  # re-track: extend from the base
            names = tuple(sorted(set(names) | set(cls_tracked(type(obj)))))
        key = (cls, names)
        with self._guard:
            tracked = self._tracked_classes.get(key)
            if tracked is None:
                ns: Dict[str, Any] = {
                    "_repro_race_base": cls,
                    "_repro_race_fields": names,
                }
                for name in names:
                    ns[name] = self._descriptor(cls, name)
                tracked = type(cls.__name__, (cls,), ns)
                self._tracked_classes[key] = tracked
        obj.__class__ = tracked
        return obj

    def _descriptor(self, cls: type, name: str) -> property:
        label = f"{cls.__name__}.{name}"
        sanitizer = self

        def fget(instance: Any) -> Any:
            sanitizer._note(instance, name, label, write=False)
            try:
                return instance.__dict__[name]
            except KeyError:
                raise AttributeError(label) from None

        def fset(instance: Any, value: Any) -> None:
            sanitizer._note(instance, name, label, write=True)
            instance.__dict__[name] = value

        def fdel(instance: Any) -> None:
            sanitizer._note(instance, name, label, write=True)
            del instance.__dict__[name]

        return property(fget, fset, fdel)

    # -- event recording ---------------------------------------------------
    def _note(self, instance: Any, field: str, label: str, write: bool) -> None:
        held = self._locks()
        acc = Access(
            field=label,
            thread_id=threading.get_ident(),
            thread_name=threading.current_thread().name,
            write=write,
            lockset=frozenset(id(lk) for lk in held),
            lock_names=tuple(lk.name for lk in held),
        )
        key = (id(instance), field)
        with self._guard:
            window = self._events.get(key)
            if window is None:
                window = deque(maxlen=self.history)
                self._events[key] = window
            if label not in self._labels_reported:
                for prior in window:
                    if (
                        prior.thread_id != acc.thread_id
                        and (prior.write or acc.write)
                        and not (prior.lockset & acc.lockset)
                    ):
                        self._labels_reported.add(label)
                        self._reports.append(
                            RaceReport(field=label, first=prior, second=acc)
                        )
                        break
            window.append(acc)

    # -- reading -----------------------------------------------------------
    def reports(self) -> List[RaceReport]:
        with self._guard:
            return list(self._reports)

    def clear(self) -> None:
        with self._guard:
            self._events.clear()
            self._labels_reported.clear()
            self._reports.clear()

    def assert_clean(self) -> None:
        reports = self.reports()
        if reports:
            raise RaceError(
                "lockset sanitizer found potential data races:\n"
                + "\n".join(f"  {r.render()}" for r in reports)
            )


def cls_tracked(cls: Type) -> Tuple[str, ...]:
    """Fields tracked on a (possibly wrapped) class; empty when none."""
    return tuple(getattr(cls, "_repro_race_fields", ()))


# -- block-partition runtime check ----------------------------------------


def check_disjoint_blocks(blocks: Sequence[Tuple[int, int]], m: int) -> None:
    """Assert a row-block partition is disjoint and within ``[0, m)``.

    The parallel kernels are race-free *by construction* because every
    closure writes only its own ``y[s:e]`` slice; this is the runtime
    check of that construction (descriptors cannot see NumPy element
    writes).  Called by ``repro.parallel.kernels`` only when the
    sanitizer is enabled.
    """
    prev_end = 0
    for s, e in blocks:
        if not 0 <= s <= e <= m:
            raise RaceError(
                f"row block [{s}, {e}) escapes the output range [0, {m})"
            )
        if s < prev_end:
            raise RaceError(
                f"row block [{s}, {e}) overlaps the previous block "
                f"(ends at {prev_end}); workers would write shared slices"
            )
        prev_end = e


# -- the process-wide sanitizer --------------------------------------------

_GLOBAL = RaceSanitizer(enabled=race_enabled())


def get_race_sanitizer() -> RaceSanitizer:
    """The process-wide sanitizer (enabled iff ``REPRO_RACE`` was set)."""
    return _GLOBAL


def make_lock(name: str):
    """A lock from the global sanitizer: tracked when on, plain when off."""
    return _GLOBAL.make_lock(name)


def track_shared(obj: Any, fields: Iterable[str]) -> Any:
    """Register ``obj.fields`` with the global sanitizer (no-op when off)."""
    return _GLOBAL.track(obj, fields)


def race_reports() -> List[RaceReport]:
    """Findings accumulated by the global sanitizer."""
    return _GLOBAL.reports()


def clear_race_reports() -> None:
    _GLOBAL.clear()


def assert_race_clean() -> None:
    """Raise :class:`RaceError` if the global sanitizer saw a race."""
    _GLOBAL.assert_clean()
