"""Static analysis and runtime sanitisation for the repro codebase.

The kernel-level invariants this library depends on — canonical
``VALUE_DTYPE``/``INDEX_DTYPE`` payloads, vectorised hot paths,
race-free worker closures, OpCounter accounting, quantised scheduler
cache keys — are stated in docstrings but were historically enforced by
nothing.  This package enforces them with two cooperating layers:

- :mod:`repro.analysis.lint` — an AST-based lint pass with the
  repo-specific rule catalogue RDL001–RDL012 (``repro lint``).
  RDL001–RDL008 live in :mod:`repro.analysis.rules`; the concurrency
  family RDL009–RDL012 (lock discipline, closure escapes, lock order,
  double-checked init) lives in :mod:`repro.analysis.concurrency` and
  is also runnable on its own via ``repro race``.
- :mod:`repro.analysis.sanitize` — a runtime sanitizer that validates
  the structural invariants of every storage format (CSR indptr
  monotonicity, COO canonical ordering, ELL padding, DIA offset bounds,
  round-trip conservation), enabled globally via ``REPRO_SANITIZE=1``
  or per-matrix via :func:`sanitize_format`.
- :mod:`repro.analysis.race` — a runtime lockset sanitizer (Eraser
  style) behind ``REPRO_RACE=1``: instrumented locks plus
  :func:`track_shared` field tracking report shared fields touched by
  two threads under disjoint locksets.  Free when disabled.

``python -m repro.analysis src tests`` is the CI entry point: it lints
in JSON mode and exits non-zero on any finding.
"""

from repro.analysis.lint import (
    Finding,
    Rule,
    explain_rule,
    get_rule,
    iter_rules,
    lint_paths,
    lint_source,
    render_json,
    render_text,
)
from repro.analysis.race import (
    RaceError,
    RaceReport,
    RaceSanitizer,
    assert_race_clean,
    clear_race_reports,
    get_race_sanitizer,
    make_lock,
    race_enabled,
    race_reports,
    track_shared,
)
from repro.analysis.sanitize import (
    FormatInvariantError,
    SanitizedMatrix,
    check_format,
    format_violations,
    sanitize_enabled,
    sanitize_format,
)

__all__ = [
    "Finding",
    "Rule",
    "explain_rule",
    "get_rule",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "FormatInvariantError",
    "SanitizedMatrix",
    "check_format",
    "format_violations",
    "sanitize_enabled",
    "sanitize_format",
    "RaceError",
    "RaceReport",
    "RaceSanitizer",
    "assert_race_clean",
    "clear_race_reports",
    "get_race_sanitizer",
    "make_lock",
    "race_enabled",
    "race_reports",
    "track_shared",
]
