"""CI entry point: ``python -m repro.analysis [paths...]``.

Equivalent to ``repro lint --json`` — lints the given paths (default:
``src tests``) and exits 1 on any finding, which is what the CI lint
job gates on.
"""

from __future__ import annotations

import sys
from typing import List, Optional

from repro.analysis.lint import lint_paths, render_json


def main(argv: Optional[List[str]] = None) -> int:
    paths = list(sys.argv[1:] if argv is None else argv)
    if not paths:
        paths = ["src", "tests"]
    try:
        findings = lint_paths(paths)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(render_json(findings))
    return 1 if findings else 0


if __name__ == "__main__":
    raise SystemExit(main())
