"""The RDL rule catalogue: repo-specific invariants, enforced.

Each rule encodes one convention the rest of the library relies on but
cannot express in code.  The scopes are deliberately narrow — a rule
fires only in the packages where its invariant is load-bearing, so the
whole tree lints clean without drowning unrelated code in noise.

RDL001–RDL008 live here; the concurrency rules RDL009–RDL012 live in
:mod:`repro.analysis.concurrency` (imported below so one import of
this module registers the full catalogue).
"""

from __future__ import annotations

import ast
import re
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.analysis.lint import (
    Finding,
    Rule,
    _ends_with,
    _in_package,
    _posix,
    register,
)

#: Kernel methods where interpreted per-element loops destroy the O(nnz)
#: NumPy vectorisation the cost model assumes.  The SpMM entry points
#: (``matmat``/``smsv_multi``) are in scope too: their per-*column*
#: loops are the documented exception (trip count is ``batch_k``) and
#: carry a justifying noqa, but a per-element loop inside them would be
#: the same O(nnz) interpreter tax as in ``matvec``.
KERNEL_METHODS = frozenset(
    {"matvec", "smsv", "row_norms_sq", "matmat", "smsv_multi"}
)

#: SpMM kernel methods that must report to the OpCounter (RDL007), the
#: multi-vector mirror of RDL004's matvec/smsv scope.
SPMM_METHODS = frozenset({"matmat", "smsv_multi"})

#: Raw dtype spellings and the canonical alias each must use instead.
RAW_DTYPES: Dict[str, str] = {
    "float64": "VALUE_DTYPE",
    "int32": "INDEX_DTYPE",
}


def _class_methods(tree: ast.Module) -> Iterator[tuple]:
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield node, item


@register
class HotPathLoopRule(Rule):
    """RDL001: no interpreted loops inside format kernel methods."""

    code = "RDL001"
    name = "hot-path-python-loop"
    rationale = """
    The scheduler's cost model prices every format kernel as O(stored
    elements) of *vectorised* NumPy work; a Python-level ``for``/``while``
    over rows or non-zeros inside ``matvec``/``smsv``/``row_norms_sq``
    multiplies the constant factor by two to three orders of magnitude
    and silently invalidates every probe measurement and Table VI
    comparison built on top of it.  Loops whose trip count is itself the
    modelled cost driver (DIA iterates per diagonal, ndig times; CSC's
    smsv iterates per sparse-vector support element) are the documented
    exceptions and carry a justifying noqa.
    """

    def applies_to(self, path: str) -> bool:
        return _in_package(path, "formats")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for cls, fn in _class_methods(tree):
            if fn.name not in KERNEL_METHODS:
                continue
            for node in ast.walk(fn):
                if isinstance(node, (ast.For, ast.While)):
                    yield self.finding(
                        path,
                        node,
                        f"Python loop in kernel method "
                        f"{cls.name}.{fn.name}; use vectorised NumPy "
                        f"(or justify with a noqa if the trip count is "
                        f"the modelled cost driver)",
                    )


@register
class RawDtypeLiteralRule(Rule):
    """RDL002: payload dtypes must use the canonical aliases."""

    code = "RDL002"
    name = "raw-dtype-literal"
    rationale = """
    Every numeric payload in the format/data/feature pipeline must stay
    ``VALUE_DTYPE`` (8-byte float) and every index array ``INDEX_DTYPE``
    (4-byte int), because the storage model (Table II), the byte
    counters, and the roofline analysis all derive traffic from those
    item sizes.  A raw ``np.float64`` / ``np.int32`` / ``"float64"``
    literal works today but detaches the call site from the single
    point of control in ``repro/formats/base.py`` — change the canonical
    dtype there and the literal becomes a silent mixed-precision bug.
    Import the aliases instead.
    """

    _SCOPED = ("formats", "data", "features", "parallel", "baselines")

    def applies_to(self, path: str) -> bool:
        if _ends_with(path, "formats/base.py"):
            return False  # the defining module
        return _in_package(path, *self._SCOPED)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.value, ast.Name)
                and node.value.id in ("np", "numpy")
                and node.attr in RAW_DTYPES
            ):
                yield self.finding(
                    path,
                    node,
                    f"raw dtype literal np.{node.attr}; use "
                    f"{RAW_DTYPES[node.attr]} from repro.formats.base",
                )
            elif isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg == "dtype"
                        and isinstance(kw.value, ast.Constant)
                        and kw.value.value in RAW_DTYPES
                    ):
                        yield self.finding(
                            path,
                            kw.value,
                            f'raw dtype string "{kw.value.value}"; use '
                            f"{RAW_DTYPES[kw.value.value]} from "
                            f"repro.formats.base",
                        )


class _ClosureRace:
    """Best-effort race analysis of one closure submitted to a pool."""

    _MUTATORS = frozenset(
        {
            "append",
            "extend",
            "insert",
            "add",
            "update",
            "setdefault",
            "remove",
            "discard",
            "clear",
            "pop",
            "popitem",
        }
    )

    def __init__(self, fn: ast.AST) -> None:
        self.fn = fn
        args = fn.args
        params: Set[str] = {
            a.arg
            for a in (
                list(args.posonlyargs)
                + list(args.args)
                + list(args.kwonlyargs)
            )
        }
        if args.vararg:
            params.add(args.vararg.arg)
        if args.kwarg:
            params.add(args.kwarg.arg)
        self.params = params
        self.assigned = self._assigned_names()
        self.tainted = self._taint()

    def _body_walk(self) -> Iterator[ast.AST]:
        if isinstance(self.fn, ast.Lambda):
            yield from ast.walk(self.fn.body)
            return
        for stmt in self.fn.body:
            yield from ast.walk(stmt)

    def _assigned_names(self) -> Set[str]:
        out: Set[str] = set()
        for node in self._body_walk():
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, ast.Store
            ):
                out.add(node.id)
            elif isinstance(node, (ast.For, ast.comprehension)):
                target = node.target
                for n in ast.walk(target):
                    if isinstance(n, ast.Name):
                        out.add(n.id)
        return out

    def _taint(self) -> Set[str]:
        """Names derived (transitively) from the closure's parameters."""
        tainted = set(self.params)
        changed = True
        while changed:
            changed = False
            for node in self._body_walk():
                if not isinstance(node, ast.Assign):
                    continue
                value_names = {
                    n.id
                    for n in ast.walk(node.value)
                    if isinstance(n, ast.Name)
                }
                if not (value_names & tainted):
                    continue
                for target in node.targets:
                    for n in ast.walk(target):
                        if (
                            isinstance(n, ast.Name)
                            and n.id not in tainted
                        ):
                            tainted.add(n.id)
                            changed = True
        return tainted

    def _is_captured(self, name: str) -> bool:
        return name not in self.params and name not in self.assigned

    def violations(self) -> Iterator[tuple]:
        """Yield ``(node, description)`` pairs for each race pattern."""
        for node in self._body_walk():
            if isinstance(node, (ast.Nonlocal, ast.Global)):
                kind = (
                    "nonlocal"
                    if isinstance(node, ast.Nonlocal)
                    else "global"
                )
                yield node, (
                    f"{kind} write to {', '.join(node.names)} shares "
                    f"state across workers"
                )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(node, ast.AugAssign)
                        and isinstance(target, ast.Name)
                        and self._is_captured(target.id)
                    ):
                        yield node, (
                            f"augmented assignment to captured "
                            f"{target.id!r} accumulates shared state"
                        )
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ):
                        base = target.value.id
                        if not self._is_captured(base):
                            continue
                        index_names = {
                            n.id
                            for n in ast.walk(target.slice)
                            if isinstance(n, ast.Name)
                        }
                        if not (index_names & self.tainted):
                            yield node, (
                                f"write to captured {base!r} at an "
                                f"index not derived from the work item; "
                                f"workers must write disjoint slices"
                            )
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and isinstance(node.func.value, ast.Name)
                and node.func.attr in self._MUTATORS
                and self._is_captured(node.func.value.id)
            ):
                yield node, (
                    f"mutating call .{node.func.attr}() on captured "
                    f"{node.func.value.id!r} shares state across workers"
                )


@register
class ParallelClosureCaptureRule(Rule):
    """RDL003: worker closures must only write disjoint output slices."""

    code = "RDL003"
    name = "parallel-closure-capture"
    rationale = """
    ``WorkerPool`` provides no locking by design: the format kernels are
    data-race free *by construction* because every closure they submit
    writes only into an output slice derived from its own work item
    (the discipline the paper's OpenMP loops rely on).  A closure that
    mutates captured shared state — a nonlocal accumulator, a fixed
    array slot, an append to a shared list — reintroduces exactly the
    race class the construction was chosen to exclude, and NumPy
    releasing the GIL makes such races real, not theoretical.  This rule
    is a lightweight static race detector for closures handed to
    ``WorkerPool.map``/``submit``/``parallel_map``.
    """

    _POOL_HINT = re.compile(r"pool|executor", re.IGNORECASE)
    _POOL_FUNCS = frozenset({"parallel_map", "parallel_reduce"})

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        defs: Dict[str, ast.AST] = {}
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                defs[node.name] = node
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            func = node.func
            submits = False
            if isinstance(func, ast.Attribute) and func.attr in (
                "map",
                "submit",
            ):
                receiver = func.value
                hint = (
                    receiver.id
                    if isinstance(receiver, ast.Name)
                    else receiver.attr
                    if isinstance(receiver, ast.Attribute)
                    else ""
                )
                submits = bool(self._POOL_HINT.search(hint))
            elif isinstance(func, ast.Name) and func.id in self._POOL_FUNCS:
                submits = True
            if not submits:
                continue
            closure = self._resolve(node.args[0], defs)
            if closure is None:
                continue
            label = (
                "<lambda>"
                if isinstance(closure, ast.Lambda)
                else closure.name
            )
            for bad_node, description in _ClosureRace(
                closure
            ).violations():
                yield self.finding(
                    path,
                    bad_node,
                    f"closure {label!r} submitted to a worker pool: "
                    f"{description}",
                )

    @staticmethod
    def _resolve(
        arg: ast.AST, defs: Dict[str, ast.AST]
    ) -> Optional[ast.AST]:
        if isinstance(arg, ast.Lambda):
            return arg
        if isinstance(arg, ast.Name):
            return defs.get(arg.id)
        return None


@register
class MissingOpCounterRule(Rule):
    """RDL004: kernels taking an OpCounter must actually report to it."""

    code = "RDL004"
    name = "missing-opcounter-accounting"
    rationale = """
    The paper's entire analysis (Section III, Eq. 7) reasons about
    transferred bytes and flops, not wall time; ``OpCounter`` is how the
    kernels make those quantities auditable, and the roofline and
    vector-machine models consume them directly.  A kernel method that
    accepts a ``counter`` parameter but never calls ``counter.add_*``
    (nor forwards the counter to a delegate kernel) reports zero traffic
    for real work — the hardware models then silently underestimate that
    format and the scheduler's ranking is corrupted without any test
    failing.
    """

    def applies_to(self, path: str) -> bool:
        return _in_package(path, "formats")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for cls, fn in _class_methods(tree):
            if fn.name not in ("matvec", "smsv"):
                continue
            arg_names = {a.arg for a in fn.args.args}
            if "counter" not in arg_names:
                continue
            if self._is_stub(fn):
                continue  # abstract interface definitions
            if not self._accounts(fn):
                yield self.finding(
                    path,
                    fn,
                    f"kernel method {cls.name}.{fn.name} accepts an "
                    f"OpCounter but never reports to it (no "
                    f"counter.add_* call and counter not forwarded)",
                )

    @staticmethod
    def _is_stub(fn: ast.FunctionDef) -> bool:
        for dec in fn.decorator_list:
            name = (
                dec.attr
                if isinstance(dec, ast.Attribute)
                else dec.id
                if isinstance(dec, ast.Name)
                else ""
            )
            if "abstract" in name:
                return True
        return all(
            isinstance(stmt, ast.Pass)
            or (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Constant)
            )
            or isinstance(stmt, ast.Raise)
            for stmt in fn.body
        )

    @staticmethod
    def _accounts(fn: ast.AST) -> bool:
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id == "counter"
                and func.attr.startswith("add_")
            ):
                return True
            passed = list(node.args) + [
                kw.value for kw in node.keywords
            ]
            for arg in passed:
                if isinstance(arg, ast.Name) and arg.id == "counter":
                    return True
        return False


@register
class MissingSpmmCounterRule(Rule):
    """RDL007: SpMM kernels taking an OpCounter must report to it."""

    code = "RDL007"
    name = "missing-spmm-accounting"
    rationale = """
    The blocked multi-vector kernels (``matmat``/``smsv_multi``) exist
    to amortise one matrix traversal over ``batch_k`` right-hand sides;
    the cost model's ``batch_k`` knob and the vector-machine's
    ``count_multi`` both price that amortisation from the byte and flop
    totals the kernels report.  An SpMM kernel that accepts a
    ``counter`` but never calls ``counter.add_*`` (``add_spmm`` plus the
    flop/byte accounting, or forwarding the counter to a delegate
    kernel) makes batched sweeps invisible: ``spmm_columns`` stays zero,
    the single-vs-batched comparison in ``repro bench smsv`` loses its
    audit trail, and the scheduler's batch-aware ranking is validated
    against nothing.  This is RDL004's invariant extended to the
    multi-vector entry points.
    """

    def applies_to(self, path: str) -> bool:
        return _in_package(path, "formats")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for cls, fn in _class_methods(tree):
            if fn.name not in SPMM_METHODS:
                continue
            arg_names = {a.arg for a in fn.args.args}
            if "counter" not in arg_names:
                continue
            if MissingOpCounterRule._is_stub(fn):
                continue  # abstract interface definitions
            if not MissingOpCounterRule._accounts(fn):
                yield self.finding(
                    path,
                    fn,
                    f"SpMM kernel method {cls.name}.{fn.name} accepts "
                    f"an OpCounter but never reports to it (no "
                    f"counter.add_* call and counter not forwarded)",
                )


@register
class SchedulerCacheKeyRule(Rule):
    """RDL005: decision-cache keys must be hashable and quantised."""

    code = "RDL005"
    name = "scheduler-cache-key-hygiene"
    rationale = """
    The decision cache is what keeps *runtime* scheduling cheap: two
    matrices whose profiles agree coarsely must hit the same entry, so
    keys are built by quantising every profile statistic to ~1.5
    significant figures before hashing.  A key built from raw floats
    almost never repeats (cache hit rate collapses to zero and every
    training run re-probes), and an unhashable key — a list, dict, or
    generator — fails only at runtime on the first insert.  Any key
    flowing into a cache store must therefore be a hashable expression,
    and profile vectors must pass through a quantisation function.
    """

    _CACHE_HINT = re.compile(r"cache|store", re.IGNORECASE)
    _QUANT_HINT = re.compile(r"quant|round|int$", re.IGNORECASE)
    _UNHASHABLE = (
        ast.List,
        ast.Set,
        ast.Dict,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )

    def applies_to(self, path: str) -> bool:
        return _in_package(path, "core")

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("get", "put", "setdefault")
                    and self._is_cache_ref(func.value)
                    and node.args
                ):
                    yield from self._key_findings(node.args[0], path)
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(
                        target, ast.Subscript
                    ) and self._is_cache_ref(target.value):
                        yield from self._key_findings(
                            target.slice, path
                        )
            elif isinstance(node, ast.ClassDef) and "Cache" in node.name:
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name == "key"
                        and self._contains_as_vector(item)
                        and not self._contains_quantiser(item)
                    ):
                        yield self.finding(
                            path,
                            item,
                            f"{node.name}.key builds a key from raw "
                            f"profile values; quantise each statistic "
                            f"before hashing or cache hits will never "
                            f"occur",
                        )

    def _is_cache_ref(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return bool(self._CACHE_HINT.search(node.id))
        if isinstance(node, ast.Attribute):
            return bool(self._CACHE_HINT.search(node.attr))
        return False

    @staticmethod
    def _contains_as_vector(node: ast.AST) -> bool:
        for n in ast.walk(node):
            if isinstance(n, ast.Call):
                f = n.func
                name = (
                    f.attr
                    if isinstance(f, ast.Attribute)
                    else f.id
                    if isinstance(f, ast.Name)
                    else ""
                )
                if name == "as_vector":
                    return True
        return False

    def _contains_quantiser(self, node: ast.AST) -> bool:
        for n in ast.walk(node):
            if isinstance(n, ast.Call):
                f = n.func
                name = (
                    f.attr
                    if isinstance(f, ast.Attribute)
                    else f.id
                    if isinstance(f, ast.Name)
                    else ""
                )
                if name and self._QUANT_HINT.search(name):
                    return True
        return False

    def _key_findings(
        self, key: ast.AST, path: str
    ) -> Iterator[Finding]:
        if isinstance(key, self._UNHASHABLE):
            yield self.finding(
                path,
                key,
                "unhashable expression used as a decision-cache key; "
                "use a (quantised) tuple",
            )
        elif self._contains_as_vector(key) and not self._contains_quantiser(
            key
        ):
            yield self.finding(
                path,
                key,
                "cache key built from raw profile values; quantise "
                "each statistic before hashing",
            )


@register
class SwallowedExceptionRule(Rule):
    """RDL006: no bare excepts; no silently swallowed errors in IO/CLI."""

    code = "RDL006"
    name = "swallowed-exception"
    rationale = """
    IO and CLI paths are where malformed user input surfaces; a bare
    ``except:`` there also traps ``KeyboardInterrupt`` and
    ``SystemExit``, and an ``except ValueError: pass`` turns a corrupt
    LIBSVM or MatrixMarket file into a silently truncated dataset — the
    scheduler then profiles and trains on data that is wrong in a way no
    downstream check can see.  Handlers in IO/CLI code must re-raise
    with context, return an error status, or at minimum warn; bare
    excepts are flagged everywhere.
    """

    _IO_PACKAGES = ("data", "analysis")

    def _io_scope(self, path: str) -> bool:
        return _in_package(path, *self._IO_PACKAGES) or _ends_with(
            path, "cli.py", "__main__.py"
        )

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        io_scope = self._io_scope(path)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    path,
                    node,
                    "bare except traps KeyboardInterrupt/SystemExit; "
                    "catch a specific exception",
                )
            elif io_scope and all(
                isinstance(stmt, ast.Pass)
                or (
                    isinstance(stmt, ast.Expr)
                    and isinstance(stmt.value, ast.Constant)
                )
                for stmt in node.body
            ):
                yield self.finding(
                    path,
                    node,
                    "exception silently swallowed in an IO/CLI path; "
                    "re-raise with context, warn, or return an error "
                    "status",
                )


@register
class SpanAllocationRule(Rule):
    """RDL008: hot-path span sites must be free when tracing is off."""

    code = "RDL008"
    name = "span-allocation-unguarded"
    rationale = """
    The tracer's whole bargain is that instrumentation may live
    permanently inside the SMO loop, the format kernels, and the
    serving path because a disabled span costs one method call and
    nothing else.  That bargain is broken at the *call site*, not in
    the tracer: an f-string span name, a dict-literal attribute
    payload, or a ``span.set(...)`` call outside an ``if
    tracer.enabled:`` guard allocates and computes on every iteration
    whether or not anyone is tracing — and the overhead gate
    (``repro bench obs``) then fails for code the tracer itself cannot
    see.  In the hot-path packages, arguments to ``.span(...)`` must
    be allocation-free constants and every ``<span>.set(...)`` on a
    ``with ....span(...) as <span>:`` target must sit under an
    enabled guard (an enclosing ``if ....enabled:`` block counts).
    """

    _HOT = ("formats", "svm", "parallel", "serve", "core", "obs")
    _ALLOC_NODES = (
        ast.JoinedStr,
        ast.Dict,
        ast.List,
        ast.Set,
        ast.ListComp,
        ast.SetComp,
        ast.DictComp,
        ast.GeneratorExp,
    )
    _ALLOC_CALL_NAMES = frozenset({"dict", "list", "set", "tuple"})
    _ALLOC_CALL_ATTRS = frozenset({"format", "join"})

    def applies_to(self, path: str) -> bool:
        return _in_package(path, *self._HOT)

    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        yield from self._walk(tree.body, False, frozenset(), path)

    # -- statement walk carrying the guard state -----------------------
    def _walk(
        self,
        stmts: List[ast.stmt],
        guarded: bool,
        span_vars: FrozenSet[str],
        path: str,
    ) -> Iterator[Finding]:
        for stmt in stmts:
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                names = set(span_vars)
                for item in stmt.items:
                    yield from self._scan_expr(
                        item.context_expr, guarded, span_vars, path
                    )
                    if self._is_span_call(item.context_expr) and isinstance(
                        item.optional_vars, ast.Name
                    ):
                        names.add(item.optional_vars.id)
                yield from self._walk(
                    stmt.body, guarded, frozenset(names), path
                )
            elif isinstance(stmt, ast.If):
                yield from self._scan_expr(
                    stmt.test, guarded, span_vars, path
                )
                yield from self._walk(
                    stmt.body,
                    guarded or self._is_enabled_guard(stmt.test),
                    span_vars,
                    path,
                )
                yield from self._walk(
                    stmt.orelse, guarded, span_vars, path
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                yield from self._scan_expr(
                    stmt.iter, guarded, span_vars, path
                )
                yield from self._walk(stmt.body, guarded, span_vars, path)
                yield from self._walk(
                    stmt.orelse, guarded, span_vars, path
                )
            elif isinstance(stmt, ast.While):
                yield from self._scan_expr(
                    stmt.test, guarded, span_vars, path
                )
                yield from self._walk(stmt.body, guarded, span_vars, path)
                yield from self._walk(
                    stmt.orelse, guarded, span_vars, path
                )
            elif isinstance(stmt, ast.Try):
                yield from self._walk(stmt.body, guarded, span_vars, path)
                for handler in stmt.handlers:
                    yield from self._walk(
                        handler.body, guarded, span_vars, path
                    )
                yield from self._walk(
                    stmt.orelse, guarded, span_vars, path
                )
                yield from self._walk(
                    stmt.finalbody, guarded, span_vars, path
                )
            elif isinstance(
                stmt,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef),
            ):
                # New scope: a guard outside a def does not protect the
                # def's body at its (later) call time, and span targets
                # do not leak in.
                yield from self._walk(
                    stmt.body, False, frozenset(), path
                )
            else:
                yield from self._scan_expr(
                    stmt, guarded, span_vars, path
                )

    def _scan_expr(
        self,
        node: ast.AST,
        guarded: bool,
        span_vars: FrozenSet[str],
        path: str,
    ) -> Iterator[Finding]:
        if guarded:
            return
        for sub in ast.walk(node):
            if not isinstance(sub, ast.Call) or not isinstance(
                sub.func, ast.Attribute
            ):
                continue
            args = list(sub.args) + [kw.value for kw in sub.keywords]
            if sub.func.attr == "span":
                for arg in args:
                    if self._allocates(arg):
                        yield self.finding(
                            path,
                            arg,
                            "allocation in a .span(...) argument runs "
                            "even with tracing disabled; use a constant "
                            "name and set attributes under an "
                            "`if tracer.enabled:` guard",
                        )
            elif (
                sub.func.attr == "set"
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in span_vars
            ):
                yield self.finding(
                    path,
                    sub,
                    f"span attribute call "
                    f"{sub.func.value.id}.set(...) outside an "
                    f"`if tracer.enabled:` guard computes its "
                    f"arguments even with tracing disabled",
                )

    @staticmethod
    def _is_span_call(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "span"
        )

    @staticmethod
    def _is_enabled_guard(test: ast.AST) -> bool:
        return any(
            isinstance(n, ast.Attribute) and n.attr == "enabled"
            for n in ast.walk(test)
        )

    def _allocates(self, expr: ast.AST) -> bool:
        for n in ast.walk(expr):
            if isinstance(n, self._ALLOC_NODES):
                return True
            if isinstance(n, ast.Call):
                f = n.func
                if (
                    isinstance(f, ast.Name)
                    and f.id in self._ALLOC_CALL_NAMES
                ):
                    return True
                if (
                    isinstance(f, ast.Attribute)
                    and f.attr in self._ALLOC_CALL_ATTRS
                ):
                    return True
            if isinstance(n, ast.BinOp) and isinstance(
                n.op, (ast.Mod, ast.Add)
            ):
                for side in (n.left, n.right):
                    if isinstance(side, ast.Constant) and isinstance(
                        side.value, str
                    ):
                        return True
        return False


# The concurrency rules (RDL009-RDL012) register on import; pulling
# them in here keeps "import repro.analysis.rules" the single
# registration entry point iter_rules() relies on.
import repro.analysis.concurrency  # noqa: E402,F401  (registration side effect)

#: Names of every registered rule code, for docs and tests.
ALL_CODES = tuple(
    sorted(code for code in Rule._registry)
)
