"""The lint engine: findings, the rule registry, and path runners.

The engine is deliberately small — a rule is a class with a ``code``,
a one-paragraph ``rationale`` (what ``repro lint --explain RDLxxx``
prints), a path-scope predicate, and a ``check`` method that walks a
parsed module and yields :class:`Finding` objects.  The repo-specific
rules themselves live in :mod:`repro.analysis.rules`.

Suppression follows the flake8 idiom with a repo-specific marker so it
cannot collide with other tools::

    for k, o in enumerate(self.offsets):  # repro: noqa RDL001 — why

A bare ``# repro: noqa`` (no codes) suppresses every rule on that line;
listing codes suppresses only those.  Trailing prose after the codes is
encouraged: a suppression without a justification is a smell.
"""

from __future__ import annotations

import abc
import ast
import json
import re
import textwrap
from dataclasses import dataclass
from pathlib import Path
from typing import (
    ClassVar,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)


@dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def as_dict(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


class Rule(abc.ABC):
    """One lint rule.  Concrete rules register via :func:`register`."""

    #: ``RDLxxx`` identifier used in output, ``--select`` and noqa.
    code: ClassVar[str]
    #: Short kebab-case name.
    name: ClassVar[str]
    #: One paragraph: why the invariant matters (``--explain`` output).
    rationale: ClassVar[str]

    _registry: ClassVar[Dict[str, "Rule"]] = {}

    def applies_to(self, path: str) -> bool:
        """Whether this rule is in scope for ``path`` (default: yes)."""
        return True

    @abc.abstractmethod
    def check(self, tree: ast.Module, path: str) -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def finding(
        self, path: str, node: ast.AST, message: str
    ) -> Finding:
        return Finding(
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            message=message,
        )


def register(cls: type) -> type:
    """Class decorator adding a rule to the engine's registry."""
    Rule._registry[cls.code] = cls()
    return cls


# -- path-scope helpers shared by every rule module -----------------------
# These live in the engine (not repro.analysis.rules) so rule modules
# never import each other: rules.py imports concurrency.py for
# registration, and an import in the other direction would compute
# ALL_CODES from a half-populated registry.


def _posix(path: str) -> str:
    return Path(path).as_posix()


def _in_package(path: str, *subpackages: str) -> bool:
    p = _posix(path)
    return any(f"repro/{sub}/" in p for sub in subpackages)


def _ends_with(path: str, *names: str) -> bool:
    p = _posix(path)
    return any(p.endswith(f"repro/{name}") for name in names)


def iter_rules() -> Tuple[Rule, ...]:
    """All registered rules, sorted by code."""
    # Importing the rules module populates the registry on first use.
    import repro.analysis.rules  # noqa: F401  (registration side effect)

    return tuple(
        Rule._registry[code] for code in sorted(Rule._registry)
    )


def get_rule(code: str) -> Rule:
    """Look up one rule by its ``RDLxxx`` code."""
    for rule in iter_rules():
        if rule.code == code.upper():
            return rule
    known = ", ".join(r.code for r in iter_rules())
    raise ValueError(f"unknown rule {code!r}; known rules: {known}")


def explain_rule(code: str) -> str:
    """Render a rule's rationale in the style of :mod:`repro.core.explain`."""
    rule = get_rule(code)
    lines: List[str] = []
    lines.append(f"{rule.code} — {rule.name}")
    lines.append("")
    body = " ".join(rule.rationale.split())
    lines.extend(
        f"  {wrapped}" for wrapped in textwrap.wrap(body, width=70)
    )
    lines.append("")
    lines.append(
        f"  suppress with: # repro: noqa {rule.code} — <justification>"
    )
    return "\n".join(lines)


# -- noqa handling ----------------------------------------------------

_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa"
    r"(?:\s+(?P<codes>RDL\d{3}(?:[,\s]+RDL\d{3})*))?",
)


def suppressed_codes(source: str) -> Dict[int, Optional[FrozenSet[str]]]:
    """Map line number -> suppressed codes (``None`` means all codes)."""
    out: Dict[int, Optional[FrozenSet[str]]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        m = _NOQA_RE.search(text)
        if not m:
            continue
        codes = m.group("codes")
        if codes is None:
            out[lineno] = None
        else:
            out[lineno] = frozenset(re.findall(r"RDL\d{3}", codes))
    return out


def _is_suppressed(
    finding: Finding, noqa: Dict[int, Optional[FrozenSet[str]]]
) -> bool:
    codes = noqa.get(finding.line, frozenset())
    if codes is None:
        return True
    return finding.code in codes


# -- runners ----------------------------------------------------------


def _select_rules(
    select: Optional[Iterable[str]], ignore: Optional[Iterable[str]]
) -> Tuple[Rule, ...]:
    rules = iter_rules()
    if select:
        wanted = {c.upper() for c in select}
        rules = tuple(r for r in rules if r.code in wanted)
    if ignore:
        dropped = {c.upper() for c in ignore}
        rules = tuple(r for r in rules if r.code not in dropped)
    return rules


def lint_source(
    source: str,
    path: str = "<string>",
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint one module given as source text.

    ``path`` determines rule scope (several rules apply only inside
    particular packages), so tests pass virtual paths like
    ``src/repro/formats/example.py``.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [
            Finding(
                path=path,
                line=exc.lineno or 1,
                col=exc.offset or 0,
                code="RDL000",
                message=f"syntax error: {exc.msg}",
            )
        ]
    noqa = suppressed_codes(source)
    findings: List[Finding] = []
    for rule in _select_rules(select, ignore):
        if not rule.applies_to(path):
            continue
        findings.extend(rule.check(tree, path))
    findings = [f for f in findings if not _is_suppressed(f, noqa)]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.code))
    return findings


def lint_file(
    path: Path,
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    source = Path(path).read_text(encoding="utf-8")
    return lint_source(
        source, str(path), select=select, ignore=ignore
    )


def iter_python_files(paths: Sequence[str]) -> Iterator[Path]:
    """Expand files/directories into a sorted stream of ``*.py`` files.

    A path that does not exist raises rather than yielding nothing: a
    typo'd path in a CI invocation must fail the job, not lint zero
    files and report success.
    """
    for raw in paths:
        p = Path(raw)
        if p.is_dir():
            yield from sorted(p.rglob("*.py"))
        elif p.is_file():
            if p.suffix == ".py":
                yield p
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")


def lint_paths(
    paths: Sequence[str],
    *,
    select: Optional[Iterable[str]] = None,
    ignore: Optional[Iterable[str]] = None,
) -> List[Finding]:
    """Lint every Python file under ``paths`` (files or directories)."""
    findings: List[Finding] = []
    for file in iter_python_files(paths):
        findings.extend(lint_file(file, select=select, ignore=ignore))
    return findings


# -- output -----------------------------------------------------------


def render_text(findings: Sequence[Finding]) -> str:
    lines = [f.render() for f in findings]
    n = len(findings)
    lines.append(
        "no findings" if n == 0 else f"{n} finding{'s' if n != 1 else ''}"
    )
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    return json.dumps(
        {
            "findings": [f.as_dict() for f in findings],
            "count": len(findings),
            "ok": not findings,
        },
        indent=2,
    )
